file(REMOVE_RECURSE
  "libadafgl_partition.a"
)
