file(REMOVE_RECURSE
  "CMakeFiles/adafgl_partition.dir/louvain.cc.o"
  "CMakeFiles/adafgl_partition.dir/louvain.cc.o.d"
  "CMakeFiles/adafgl_partition.dir/metis_like.cc.o"
  "CMakeFiles/adafgl_partition.dir/metis_like.cc.o.d"
  "libadafgl_partition.a"
  "libadafgl_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adafgl_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
