
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/louvain.cc" "src/partition/CMakeFiles/adafgl_partition.dir/louvain.cc.o" "gcc" "src/partition/CMakeFiles/adafgl_partition.dir/louvain.cc.o.d"
  "/root/repo/src/partition/metis_like.cc" "src/partition/CMakeFiles/adafgl_partition.dir/metis_like.cc.o" "gcc" "src/partition/CMakeFiles/adafgl_partition.dir/metis_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/adafgl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adafgl_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
