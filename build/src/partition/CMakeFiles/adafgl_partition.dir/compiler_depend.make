# Empty compiler generated dependencies file for adafgl_partition.
# This may be replaced when dependencies are built.
