file(REMOVE_RECURSE
  "CMakeFiles/adafgl_graph.dir/graph.cc.o"
  "CMakeFiles/adafgl_graph.dir/graph.cc.o.d"
  "CMakeFiles/adafgl_graph.dir/io.cc.o"
  "CMakeFiles/adafgl_graph.dir/io.cc.o.d"
  "CMakeFiles/adafgl_graph.dir/metrics.cc.o"
  "CMakeFiles/adafgl_graph.dir/metrics.cc.o.d"
  "libadafgl_graph.a"
  "libadafgl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adafgl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
