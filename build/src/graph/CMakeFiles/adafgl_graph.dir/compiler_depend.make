# Empty compiler generated dependencies file for adafgl_graph.
# This may be replaced when dependencies are built.
