file(REMOVE_RECURSE
  "libadafgl_graph.a"
)
