file(REMOVE_RECURSE
  "libadafgl_tensor.a"
)
