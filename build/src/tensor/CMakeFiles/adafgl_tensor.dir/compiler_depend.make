# Empty compiler generated dependencies file for adafgl_tensor.
# This may be replaced when dependencies are built.
