file(REMOVE_RECURSE
  "CMakeFiles/adafgl_tensor.dir/csr.cc.o"
  "CMakeFiles/adafgl_tensor.dir/csr.cc.o.d"
  "CMakeFiles/adafgl_tensor.dir/matrix_ops.cc.o"
  "CMakeFiles/adafgl_tensor.dir/matrix_ops.cc.o.d"
  "CMakeFiles/adafgl_tensor.dir/ops.cc.o"
  "CMakeFiles/adafgl_tensor.dir/ops.cc.o.d"
  "CMakeFiles/adafgl_tensor.dir/optim.cc.o"
  "CMakeFiles/adafgl_tensor.dir/optim.cc.o.d"
  "CMakeFiles/adafgl_tensor.dir/tensor.cc.o"
  "CMakeFiles/adafgl_tensor.dir/tensor.cc.o.d"
  "libadafgl_tensor.a"
  "libadafgl_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adafgl_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
