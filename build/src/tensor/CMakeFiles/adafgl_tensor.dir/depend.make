# Empty dependencies file for adafgl_tensor.
# This may be replaced when dependencies are built.
