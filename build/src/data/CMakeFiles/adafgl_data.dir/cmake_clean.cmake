file(REMOVE_RECURSE
  "CMakeFiles/adafgl_data.dir/injection.cc.o"
  "CMakeFiles/adafgl_data.dir/injection.cc.o.d"
  "CMakeFiles/adafgl_data.dir/registry.cc.o"
  "CMakeFiles/adafgl_data.dir/registry.cc.o.d"
  "CMakeFiles/adafgl_data.dir/synthetic.cc.o"
  "CMakeFiles/adafgl_data.dir/synthetic.cc.o.d"
  "libadafgl_data.a"
  "libadafgl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adafgl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
