file(REMOVE_RECURSE
  "libadafgl_data.a"
)
