# Empty compiler generated dependencies file for adafgl_data.
# This may be replaced when dependencies are built.
