
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fed/federation.cc" "src/fed/CMakeFiles/adafgl_fed.dir/federation.cc.o" "gcc" "src/fed/CMakeFiles/adafgl_fed.dir/federation.cc.o.d"
  "/root/repo/src/fed/fedgl.cc" "src/fed/CMakeFiles/adafgl_fed.dir/fedgl.cc.o" "gcc" "src/fed/CMakeFiles/adafgl_fed.dir/fedgl.cc.o.d"
  "/root/repo/src/fed/fedpub.cc" "src/fed/CMakeFiles/adafgl_fed.dir/fedpub.cc.o" "gcc" "src/fed/CMakeFiles/adafgl_fed.dir/fedpub.cc.o.d"
  "/root/repo/src/fed/fedsage.cc" "src/fed/CMakeFiles/adafgl_fed.dir/fedsage.cc.o" "gcc" "src/fed/CMakeFiles/adafgl_fed.dir/fedsage.cc.o.d"
  "/root/repo/src/fed/gcfl.cc" "src/fed/CMakeFiles/adafgl_fed.dir/gcfl.cc.o" "gcc" "src/fed/CMakeFiles/adafgl_fed.dir/gcfl.cc.o.d"
  "/root/repo/src/fed/splits.cc" "src/fed/CMakeFiles/adafgl_fed.dir/splits.cc.o" "gcc" "src/fed/CMakeFiles/adafgl_fed.dir/splits.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/adafgl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adafgl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/adafgl_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/adafgl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adafgl_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
