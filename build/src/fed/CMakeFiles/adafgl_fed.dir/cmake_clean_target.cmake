file(REMOVE_RECURSE
  "libadafgl_fed.a"
)
