file(REMOVE_RECURSE
  "CMakeFiles/adafgl_fed.dir/federation.cc.o"
  "CMakeFiles/adafgl_fed.dir/federation.cc.o.d"
  "CMakeFiles/adafgl_fed.dir/fedgl.cc.o"
  "CMakeFiles/adafgl_fed.dir/fedgl.cc.o.d"
  "CMakeFiles/adafgl_fed.dir/fedpub.cc.o"
  "CMakeFiles/adafgl_fed.dir/fedpub.cc.o.d"
  "CMakeFiles/adafgl_fed.dir/fedsage.cc.o"
  "CMakeFiles/adafgl_fed.dir/fedsage.cc.o.d"
  "CMakeFiles/adafgl_fed.dir/gcfl.cc.o"
  "CMakeFiles/adafgl_fed.dir/gcfl.cc.o.d"
  "CMakeFiles/adafgl_fed.dir/splits.cc.o"
  "CMakeFiles/adafgl_fed.dir/splits.cc.o.d"
  "libadafgl_fed.a"
  "libadafgl_fed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adafgl_fed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
