# Empty compiler generated dependencies file for adafgl_fed.
# This may be replaced when dependencies are built.
