file(REMOVE_RECURSE
  "CMakeFiles/adafgl_core.dir/adafgl.cc.o"
  "CMakeFiles/adafgl_core.dir/adafgl.cc.o.d"
  "CMakeFiles/adafgl_core.dir/label_propagation.cc.o"
  "CMakeFiles/adafgl_core.dir/label_propagation.cc.o.d"
  "CMakeFiles/adafgl_core.dir/propagation_matrix.cc.o"
  "CMakeFiles/adafgl_core.dir/propagation_matrix.cc.o.d"
  "libadafgl_core.a"
  "libadafgl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adafgl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
