# Empty compiler generated dependencies file for adafgl_core.
# This may be replaced when dependencies are built.
