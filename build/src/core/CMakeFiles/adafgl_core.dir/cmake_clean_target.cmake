file(REMOVE_RECURSE
  "libadafgl_core.a"
)
