# Empty dependencies file for adafgl_nn.
# This may be replaced when dependencies are built.
