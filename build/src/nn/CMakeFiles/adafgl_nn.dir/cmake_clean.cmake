file(REMOVE_RECURSE
  "CMakeFiles/adafgl_nn.dir/layers.cc.o"
  "CMakeFiles/adafgl_nn.dir/layers.cc.o.d"
  "CMakeFiles/adafgl_nn.dir/models.cc.o"
  "CMakeFiles/adafgl_nn.dir/models.cc.o.d"
  "CMakeFiles/adafgl_nn.dir/serialize.cc.o"
  "CMakeFiles/adafgl_nn.dir/serialize.cc.o.d"
  "libadafgl_nn.a"
  "libadafgl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adafgl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
