file(REMOVE_RECURSE
  "libadafgl_nn.a"
)
