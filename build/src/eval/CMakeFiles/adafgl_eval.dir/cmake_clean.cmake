file(REMOVE_RECURSE
  "CMakeFiles/adafgl_eval.dir/report.cc.o"
  "CMakeFiles/adafgl_eval.dir/report.cc.o.d"
  "CMakeFiles/adafgl_eval.dir/runner.cc.o"
  "CMakeFiles/adafgl_eval.dir/runner.cc.o.d"
  "CMakeFiles/adafgl_eval.dir/sparsity.cc.o"
  "CMakeFiles/adafgl_eval.dir/sparsity.cc.o.d"
  "CMakeFiles/adafgl_eval.dir/tuner.cc.o"
  "CMakeFiles/adafgl_eval.dir/tuner.cc.o.d"
  "libadafgl_eval.a"
  "libadafgl_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adafgl_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
