# Empty compiler generated dependencies file for adafgl_eval.
# This may be replaced when dependencies are built.
