
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/report.cc" "src/eval/CMakeFiles/adafgl_eval.dir/report.cc.o" "gcc" "src/eval/CMakeFiles/adafgl_eval.dir/report.cc.o.d"
  "/root/repo/src/eval/runner.cc" "src/eval/CMakeFiles/adafgl_eval.dir/runner.cc.o" "gcc" "src/eval/CMakeFiles/adafgl_eval.dir/runner.cc.o.d"
  "/root/repo/src/eval/sparsity.cc" "src/eval/CMakeFiles/adafgl_eval.dir/sparsity.cc.o" "gcc" "src/eval/CMakeFiles/adafgl_eval.dir/sparsity.cc.o.d"
  "/root/repo/src/eval/tuner.cc" "src/eval/CMakeFiles/adafgl_eval.dir/tuner.cc.o" "gcc" "src/eval/CMakeFiles/adafgl_eval.dir/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adafgl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fed/CMakeFiles/adafgl_fed.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/adafgl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/adafgl_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adafgl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adafgl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/adafgl_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
