file(REMOVE_RECURSE
  "libadafgl_eval.a"
)
