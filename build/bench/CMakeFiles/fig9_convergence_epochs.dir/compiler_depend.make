# Empty compiler generated dependencies file for fig9_convergence_epochs.
# This may be replaced when dependencies are built.
