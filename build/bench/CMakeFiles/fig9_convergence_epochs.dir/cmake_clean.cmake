file(REMOVE_RECURSE
  "CMakeFiles/fig9_convergence_epochs.dir/fig9_convergence_epochs.cc.o"
  "CMakeFiles/fig9_convergence_epochs.dir/fig9_convergence_epochs.cc.o.d"
  "fig9_convergence_epochs"
  "fig9_convergence_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_convergence_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
