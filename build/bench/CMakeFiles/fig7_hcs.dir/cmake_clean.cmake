file(REMOVE_RECURSE
  "CMakeFiles/fig7_hcs.dir/fig7_hcs.cc.o"
  "CMakeFiles/fig7_hcs.dir/fig7_hcs.cc.o.d"
  "fig7_hcs"
  "fig7_hcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_hcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
