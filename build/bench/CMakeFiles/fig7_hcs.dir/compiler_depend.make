# Empty compiler generated dependencies file for fig7_hcs.
# This may be replaced when dependencies are built.
