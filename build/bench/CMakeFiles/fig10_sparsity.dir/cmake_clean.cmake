file(REMOVE_RECURSE
  "CMakeFiles/fig10_sparsity.dir/fig10_sparsity.cc.o"
  "CMakeFiles/fig10_sparsity.dir/fig10_sparsity.cc.o.d"
  "fig10_sparsity"
  "fig10_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
