# Empty compiler generated dependencies file for table8_paradigm_summary.
# This may be replaced when dependencies are built.
