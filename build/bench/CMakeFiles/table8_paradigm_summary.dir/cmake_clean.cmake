file(REMOVE_RECURSE
  "CMakeFiles/table8_paradigm_summary.dir/table8_paradigm_summary.cc.o"
  "CMakeFiles/table8_paradigm_summary.dir/table8_paradigm_summary.cc.o.d"
  "table8_paradigm_summary"
  "table8_paradigm_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_paradigm_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
