file(REMOVE_RECURSE
  "CMakeFiles/fig11_participation.dir/fig11_participation.cc.o"
  "CMakeFiles/fig11_participation.dir/fig11_participation.cc.o.d"
  "fig11_participation"
  "fig11_participation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_participation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
