# Empty compiler generated dependencies file for fig11_participation.
# This may be replaced when dependencies are built.
