file(REMOVE_RECURSE
  "CMakeFiles/fig5_topology_heterogeneity.dir/fig5_topology_heterogeneity.cc.o"
  "CMakeFiles/fig5_topology_heterogeneity.dir/fig5_topology_heterogeneity.cc.o.d"
  "fig5_topology_heterogeneity"
  "fig5_topology_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_topology_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
