file(REMOVE_RECURSE
  "CMakeFiles/fig6_sensitivity.dir/fig6_sensitivity.cc.o"
  "CMakeFiles/fig6_sensitivity.dir/fig6_sensitivity.cc.o.d"
  "fig6_sensitivity"
  "fig6_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
