# Empty compiler generated dependencies file for table3_inductive.
# This may be replaced when dependencies are built.
