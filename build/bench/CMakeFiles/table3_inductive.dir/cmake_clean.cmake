file(REMOVE_RECURSE
  "CMakeFiles/table3_inductive.dir/table3_inductive.cc.o"
  "CMakeFiles/table3_inductive.dir/table3_inductive.cc.o.d"
  "table3_inductive"
  "table3_inductive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_inductive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
