# Empty dependencies file for table4_injection_transductive.
# This may be replaced when dependencies are built.
