file(REMOVE_RECURSE
  "CMakeFiles/table4_injection_transductive.dir/table4_injection_transductive.cc.o"
  "CMakeFiles/table4_injection_transductive.dir/table4_injection_transductive.cc.o.d"
  "table4_injection_transductive"
  "table4_injection_transductive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_injection_transductive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
