file(REMOVE_RECURSE
  "CMakeFiles/table7_ablation_heterophilous.dir/table7_ablation_heterophilous.cc.o"
  "CMakeFiles/table7_ablation_heterophilous.dir/table7_ablation_heterophilous.cc.o.d"
  "table7_ablation_heterophilous"
  "table7_ablation_heterophilous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_ablation_heterophilous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
