# Empty dependencies file for table7_ablation_heterophilous.
# This may be replaced when dependencies are built.
