
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table7_ablation_heterophilous.cc" "bench/CMakeFiles/table7_ablation_heterophilous.dir/table7_ablation_heterophilous.cc.o" "gcc" "bench/CMakeFiles/table7_ablation_heterophilous.dir/table7_ablation_heterophilous.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/adafgl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adafgl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fed/CMakeFiles/adafgl_fed.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adafgl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/adafgl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/adafgl_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adafgl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/adafgl_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
