file(REMOVE_RECURSE
  "CMakeFiles/table2_transductive.dir/table2_transductive.cc.o"
  "CMakeFiles/table2_transductive.dir/table2_transductive.cc.o.d"
  "table2_transductive"
  "table2_transductive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_transductive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
