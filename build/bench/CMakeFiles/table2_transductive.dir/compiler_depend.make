# Empty compiler generated dependencies file for table2_transductive.
# This may be replaced when dependencies are built.
