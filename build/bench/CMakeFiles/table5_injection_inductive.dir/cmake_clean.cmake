file(REMOVE_RECURSE
  "CMakeFiles/table5_injection_inductive.dir/table5_injection_inductive.cc.o"
  "CMakeFiles/table5_injection_inductive.dir/table5_injection_inductive.cc.o.d"
  "table5_injection_inductive"
  "table5_injection_inductive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_injection_inductive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
