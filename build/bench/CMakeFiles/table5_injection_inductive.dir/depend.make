# Empty dependencies file for table5_injection_inductive.
# This may be replaced when dependencies are built.
