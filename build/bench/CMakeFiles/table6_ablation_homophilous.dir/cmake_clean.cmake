file(REMOVE_RECURSE
  "CMakeFiles/table6_ablation_homophilous.dir/table6_ablation_homophilous.cc.o"
  "CMakeFiles/table6_ablation_homophilous.dir/table6_ablation_homophilous.cc.o.d"
  "table6_ablation_homophilous"
  "table6_ablation_homophilous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_ablation_homophilous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
