# Empty compiler generated dependencies file for table6_ablation_homophilous.
# This may be replaced when dependencies are built.
