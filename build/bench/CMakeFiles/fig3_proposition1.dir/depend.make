# Empty dependencies file for fig3_proposition1.
# This may be replaced when dependencies are built.
