file(REMOVE_RECURSE
  "CMakeFiles/fig3_proposition1.dir/fig3_proposition1.cc.o"
  "CMakeFiles/fig3_proposition1.dir/fig3_proposition1.cc.o.d"
  "fig3_proposition1"
  "fig3_proposition1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_proposition1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
