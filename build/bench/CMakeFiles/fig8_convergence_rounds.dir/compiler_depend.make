# Empty compiler generated dependencies file for fig8_convergence_rounds.
# This may be replaced when dependencies are built.
