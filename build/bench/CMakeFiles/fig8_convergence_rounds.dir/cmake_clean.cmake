file(REMOVE_RECURSE
  "CMakeFiles/fig8_convergence_rounds.dir/fig8_convergence_rounds.cc.o"
  "CMakeFiles/fig8_convergence_rounds.dir/fig8_convergence_rounds.cc.o.d"
  "fig8_convergence_rounds"
  "fig8_convergence_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_convergence_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
