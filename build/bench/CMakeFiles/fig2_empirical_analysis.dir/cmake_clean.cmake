file(REMOVE_RECURSE
  "CMakeFiles/fig2_empirical_analysis.dir/fig2_empirical_analysis.cc.o"
  "CMakeFiles/fig2_empirical_analysis.dir/fig2_empirical_analysis.cc.o.d"
  "fig2_empirical_analysis"
  "fig2_empirical_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_empirical_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
