# Empty dependencies file for fig2_empirical_analysis.
# This may be replaced when dependencies are built.
