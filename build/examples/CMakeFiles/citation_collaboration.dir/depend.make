# Empty dependencies file for citation_collaboration.
# This may be replaced when dependencies are built.
