file(REMOVE_RECURSE
  "CMakeFiles/citation_collaboration.dir/citation_collaboration.cpp.o"
  "CMakeFiles/citation_collaboration.dir/citation_collaboration.cpp.o.d"
  "citation_collaboration"
  "citation_collaboration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_collaboration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
