
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adafgl_test.cc" "tests/CMakeFiles/adafgl_tests.dir/adafgl_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/adafgl_test.cc.o.d"
  "/root/repo/tests/autograd_test.cc" "tests/CMakeFiles/adafgl_tests.dir/autograd_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/autograd_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/adafgl_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/csr_test.cc" "tests/CMakeFiles/adafgl_tests.dir/csr_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/csr_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/adafgl_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/federation_test.cc" "tests/CMakeFiles/adafgl_tests.dir/federation_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/federation_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/adafgl_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/injection_test.cc" "tests/CMakeFiles/adafgl_tests.dir/injection_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/injection_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/adafgl_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/label_prop_test.cc" "tests/CMakeFiles/adafgl_tests.dir/label_prop_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/label_prop_test.cc.o.d"
  "/root/repo/tests/models_test.cc" "tests/CMakeFiles/adafgl_tests.dir/models_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/models_test.cc.o.d"
  "/root/repo/tests/optim_test.cc" "tests/CMakeFiles/adafgl_tests.dir/optim_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/optim_test.cc.o.d"
  "/root/repo/tests/partition_test.cc" "tests/CMakeFiles/adafgl_tests.dir/partition_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/partition_test.cc.o.d"
  "/root/repo/tests/splits_test.cc" "tests/CMakeFiles/adafgl_tests.dir/splits_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/splits_test.cc.o.d"
  "/root/repo/tests/synthetic_test.cc" "tests/CMakeFiles/adafgl_tests.dir/synthetic_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/synthetic_test.cc.o.d"
  "/root/repo/tests/tensor_test.cc" "tests/CMakeFiles/adafgl_tests.dir/tensor_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/tensor_test.cc.o.d"
  "/root/repo/tests/tuner_test.cc" "tests/CMakeFiles/adafgl_tests.dir/tuner_test.cc.o" "gcc" "tests/CMakeFiles/adafgl_tests.dir/tuner_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/adafgl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adafgl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fed/CMakeFiles/adafgl_fed.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adafgl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/adafgl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/adafgl_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/adafgl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/adafgl_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
