# Empty dependencies file for adafgl_tests.
# This may be replaced when dependencies are built.
