#include <gtest/gtest.h>

#include "core/adafgl.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::MakeSmallSbm;

FedConfig TinyConfig() {
  FedConfig cfg;
  cfg.rounds = 4;
  cfg.local_epochs = 2;
  cfg.post_local_epochs = 3;
  cfg.hidden = 16;
  cfg.seed = 23;
  return cfg;
}

AdaFglOptions TinyOptions() {
  AdaFglOptions opt;
  opt.personalized_epochs = 15;
  opt.hcs_repeats = 2;
  return opt;
}

FederatedDataset TinyFederation(InjectionMode mode = InjectionMode::kRandom,
                                uint64_t seed = 201) {
  Graph g = MakeSmallSbm(240, 3, 0.85, seed);
  Rng rng(seed + 1);
  return StructureNonIidSplit(g, 3, mode, 0.4, rng);
}

TEST(AdaFglTest, ProducesCompleteResult) {
  FederatedDataset fd = TinyFederation();
  AdaFglResult r = RunAdaFgl(fd, TinyConfig(), TinyOptions());
  EXPECT_EQ(r.step1.history.size(), 4u);
  EXPECT_FALSE(r.step2_epoch_acc.empty());
  EXPECT_EQ(r.client_test_acc.size(), 3u);
  EXPECT_EQ(r.client_hcs.size(), 3u);
  EXPECT_EQ(r.client_heads.size(), 3u);
  EXPECT_GT(r.final_test_acc, 0.0);
  EXPECT_LE(r.final_test_acc, 1.0);
  EXPECT_GT(r.bytes_up, 0);
  // Step 1 is the paradigm's entire communication footprint; the transport
  // report must mirror the legacy byte counters.
  EXPECT_EQ(r.comm.stats.bytes_up, r.bytes_up);
  EXPECT_EQ(r.comm.stats.bytes_down, r.bytes_down);
  EXPECT_GT(r.comm.stats.messages_up, 0);
  EXPECT_EQ(r.comm.codec, "lossless");
}

TEST(AdaFglTest, HcsInUnitInterval) {
  FederatedDataset fd = TinyFederation();
  AdaFglResult r = RunAdaFgl(fd, TinyConfig(), TinyOptions());
  for (double hcs : r.client_hcs) {
    EXPECT_GE(hcs, 0.0);
    EXPECT_LE(hcs, 1.0);
  }
}

TEST(AdaFglTest, LearnsHomophilousTask) {
  Graph g = MakeSmallSbm(240, 3, 0.9, 205);
  Rng rng(206);
  FederatedDataset fd =
      StructureNonIidSplit(g, 3, InjectionMode::kNone, 0.5, rng);
  FedConfig cfg = TinyConfig();
  cfg.rounds = 8;
  AdaFglOptions opt = TinyOptions();
  opt.personalized_epochs = 30;
  AdaFglResult r = RunAdaFgl(fd, cfg, opt);
  EXPECT_GT(r.final_test_acc, 0.55);
}

TEST(AdaFglTest, HeadDiagnosticsPopulated) {
  FederatedDataset fd = TinyFederation();
  AdaFglResult r = RunAdaFgl(fd, TinyConfig(), TinyOptions());
  for (const AdaFglHeadDiagnostics& d : r.client_heads) {
    EXPECT_GT(d.extractor, 0.0);
    EXPECT_GT(d.h_tilde, 0.0);
    EXPECT_GT(d.h_feature, 0.0);
    EXPECT_GT(d.h_message, 0.0);
    EXPECT_GT(d.combined, 0.0);
  }
}

struct AblationCase {
  std::string name;
  void (*apply)(AdaFglOptions*);
};

class AdaFglAblationTest : public ::testing::TestWithParam<AblationCase> {};

TEST_P(AdaFglAblationTest, RunsWithComponentDisabled) {
  FederatedDataset fd = TinyFederation(InjectionMode::kRandom, 211);
  AdaFglOptions opt = TinyOptions();
  GetParam().apply(&opt);
  AdaFglResult r = RunAdaFgl(fd, TinyConfig(), opt);
  EXPECT_GT(r.final_test_acc, 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Components, AdaFglAblationTest,
    ::testing::Values(
        AblationCase{"NoKnowledgePreserving",
                     [](AdaFglOptions* o) {
                       o->use_knowledge_preserving = false;
                     }},
        AblationCase{"NoTopologyIndependent",
                     [](AdaFglOptions* o) {
                       o->use_topology_independent = false;
                     }},
        AblationCase{"NoLearnableMessage",
                     [](AdaFglOptions* o) {
                       o->use_learnable_message = false;
                     }},
        AblationCase{"NoLocalTopology",
                     [](AdaFglOptions* o) { o->use_local_topology = false; }},
        AblationCase{"NoHcs",
                     [](AdaFglOptions* o) { o->use_hcs = false; }},
        AblationCase{"FixedCoefficients",
                     [](AdaFglOptions* o) {
                       o->adaptive_coefficients = false;
                       o->alpha = 0.3f;
                       o->beta = 0.3f;
                     }}),
    [](const ::testing::TestParamInfo<AblationCase>& info) {
      return info.param.name;
    });

TEST(AdaFglTest, AblationDropsHeads) {
  FederatedDataset fd = TinyFederation(InjectionMode::kRandom, 212);
  AdaFglOptions opt = TinyOptions();
  opt.use_topology_independent = false;
  opt.use_learnable_message = false;
  AdaFglResult r = RunAdaFgl(fd, TinyConfig(), opt);
  for (const AdaFglHeadDiagnostics& d : r.client_heads) {
    EXPECT_EQ(d.h_feature, 0.0);  // Head absent.
    EXPECT_EQ(d.h_message, 0.0);
  }
}

TEST(AdaFglTest, DeterministicForFixedSeed) {
  FederatedDataset fd = TinyFederation(InjectionMode::kRandom, 213);
  AdaFglResult a = RunAdaFgl(fd, TinyConfig(), TinyOptions());
  AdaFglResult b = RunAdaFgl(fd, TinyConfig(), TinyOptions());
  EXPECT_EQ(a.final_test_acc, b.final_test_acc);
  EXPECT_EQ(a.client_hcs, b.client_hcs);
}

TEST(AdaFglTest, AsFedAdapterMatchesFull) {
  FederatedDataset fd = TinyFederation(InjectionMode::kRandom, 214);
  AdaFglResult full = RunAdaFgl(fd, TinyConfig(), TinyOptions());
  FedRunResult as_fed = RunAdaFglAsFed(fd, TinyConfig(), TinyOptions());
  EXPECT_EQ(as_fed.final_test_acc, full.final_test_acc);
  EXPECT_EQ(as_fed.client_test_acc, full.client_test_acc);
  EXPECT_EQ(as_fed.history.size(), full.step1.history.size());
}

TEST(AdaFglTest, Step2CommunicatesNothing) {
  FederatedDataset fd = TinyFederation(InjectionMode::kRandom, 215);
  FedConfig cfg = TinyConfig();
  AdaFglResult r = RunAdaFgl(fd, cfg, TinyOptions());
  cfg.post_local_epochs = 0;
  FedRunResult fedavg = RunFedAvg(fd, cfg);
  // AdaFGL's total communication equals its Step-1 FedAvg communication.
  EXPECT_EQ(r.bytes_up, fedavg.bytes_up);
  EXPECT_EQ(r.bytes_down, fedavg.bytes_down);
}

}  // namespace
}  // namespace adafgl
