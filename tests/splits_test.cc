#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "fed/splits.h"
#include "graph/metrics.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::MakeSmallSbm;

void CheckCoverage(const Graph& g, const FederatedDataset& fd) {
  std::set<int32_t> seen;
  int64_t total = 0;
  for (size_t c = 0; c < fd.clients.size(); ++c) {
    EXPECT_EQ(static_cast<int32_t>(fd.global_ids[c].size()),
              fd.clients[c].num_nodes());
    for (int32_t gid : fd.global_ids[c]) {
      EXPECT_TRUE(seen.insert(gid).second) << "node assigned twice";
      EXPECT_GE(gid, 0);
      EXPECT_LT(gid, g.num_nodes());
    }
    total += fd.clients[c].num_nodes();
  }
  EXPECT_EQ(total, g.num_nodes());
}

TEST(CommunitySplitTest, PartitionsAllNodesDisjointly) {
  Graph g = MakeSmallSbm(300, 3, 0.85, 81);
  Rng rng(1);
  FederatedDataset fd = CommunitySplit(g, 5, rng);
  EXPECT_EQ(fd.num_clients(), 5);
  CheckCoverage(g, fd);
  EXPECT_TRUE(fd.injections.empty());
}

TEST(CommunitySplitTest, ClientsNonEmptyAndRoughlyBalanced) {
  Graph g = MakeSmallSbm(300, 3, 0.85, 82);
  Rng rng(2);
  FederatedDataset fd = CommunitySplit(g, 4, rng);
  for (const Graph& c : fd.clients) {
    EXPECT_GT(c.num_nodes(), 0);
  }
}

TEST(CommunitySplitTest, LabelsAndFeaturesPreserved) {
  Graph g = MakeSmallSbm(200, 3, 0.85, 83);
  Rng rng(3);
  FederatedDataset fd = CommunitySplit(g, 3, rng);
  for (size_t c = 0; c < fd.clients.size(); ++c) {
    for (int32_t v = 0; v < fd.clients[c].num_nodes(); ++v) {
      const int32_t gid = fd.global_ids[c][static_cast<size_t>(v)];
      EXPECT_EQ(fd.clients[c].labels[static_cast<size_t>(v)],
                g.labels[static_cast<size_t>(gid)]);
      EXPECT_FLOAT_EQ(fd.clients[c].features(v, 0), g.features(gid, 0));
    }
  }
}

TEST(CommunitySplitTest, HomophilyPreservedOnHomophilousGraph) {
  Graph g = MakeSmallSbm(300, 3, 0.9, 84);
  Rng rng(4);
  FederatedDataset fd = CommunitySplit(g, 3, rng);
  for (const Graph& c : fd.clients) {
    if (c.num_edges() < 20) continue;
    EXPECT_GT(EdgeHomophily(c.adj, c.labels), 0.7);
  }
}

TEST(StructureNonIidSplitTest, NoInjectionKeepsTopologyRegime) {
  Graph g = MakeSmallSbm(300, 3, 0.85, 85);
  Rng rng(5);
  FederatedDataset fd =
      StructureNonIidSplit(g, 4, InjectionMode::kNone, 0.5, rng);
  CheckCoverage(g, fd);
  EXPECT_TRUE(fd.injections.empty());
}

TEST(StructureNonIidSplitTest, RandomInjectionCreatesTopologyVariance) {
  Graph g = MakeSmallSbm(400, 3, 0.85, 86);
  Rng rng(6);
  FederatedDataset fd =
      StructureNonIidSplit(g, 6, InjectionMode::kRandom, 0.5, rng);
  ASSERT_EQ(fd.injections.size(), 6u);
  double min_h = 1.0, max_h = 0.0;
  for (size_t c = 0; c < fd.clients.size(); ++c) {
    const double h = EdgeHomophily(fd.clients[c].adj, fd.clients[c].labels);
    min_h = std::min(min_h, h);
    max_h = std::max(max_h, h);
    if (fd.injections[c] == InjectionType::kHeterophilous) {
      EXPECT_LT(h, 0.8);
    }
  }
  // Binary selection must generate spread across clients (Fig. 2b).
  EXPECT_GT(max_h - min_h, 0.1);
}

TEST(StructureNonIidSplitTest, MetaInjectionRuns) {
  Graph g = MakeSmallSbm(300, 3, 0.85, 87);
  Rng rng(7);
  FederatedDataset fd =
      StructureNonIidSplit(g, 3, InjectionMode::kMeta, 0.5, rng);
  CheckCoverage(g, fd);
  ASSERT_EQ(fd.injections.size(), 3u);
}

TEST(StructureNonIidSplitTest, TotalTrainNodesMatchesGlobal) {
  Graph g = MakeSmallSbm(300, 3, 0.85, 88);
  Rng rng(8);
  FederatedDataset fd =
      StructureNonIidSplit(g, 4, InjectionMode::kNone, 0.5, rng);
  EXPECT_EQ(fd.TotalTrainNodes(),
            static_cast<int64_t>(g.train_nodes.size()));
}

TEST(StructureNonIidSplitTest, DeterministicForFixedSeed) {
  Graph g = MakeSmallSbm(250, 3, 0.85, 89);
  Rng a(9), b(9);
  FederatedDataset f1 =
      StructureNonIidSplit(g, 4, InjectionMode::kRandom, 0.5, a);
  FederatedDataset f2 =
      StructureNonIidSplit(g, 4, InjectionMode::kRandom, 0.5, b);
  ASSERT_EQ(f1.clients.size(), f2.clients.size());
  for (size_t c = 0; c < f1.clients.size(); ++c) {
    EXPECT_EQ(f1.clients[c].num_edges(), f2.clients[c].num_edges());
    EXPECT_EQ(f1.global_ids[c], f2.global_ids[c]);
  }
}

TEST(StructureNonIidSplitTest, ClientCountScales) {
  Graph g = MakeSmallSbm(400, 3, 0.85, 90);
  for (int32_t k : {2, 5, 10}) {
    Rng rng(static_cast<uint64_t>(k));
    FederatedDataset fd =
        StructureNonIidSplit(g, k, InjectionMode::kNone, 0.5, rng);
    EXPECT_EQ(fd.num_clients(), k);
    CheckCoverage(g, fd);
  }
}

}  // namespace
}  // namespace adafgl
