#ifndef ADAFGL_TESTS_TEST_UTIL_H_
#define ADAFGL_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/graph.h"
#include "tensor/tensor.h"

namespace adafgl {
namespace testing {

/// Two k-cliques joined by a single bridge edge; nodes [0,k) labeled 0,
/// nodes [k,2k) labeled 1. The canonical homophilous fixture.
inline Graph MakeTwoCliqueGraph(int32_t k, int64_t feature_dim = 8,
                                uint64_t seed = 1) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i < k; ++i) {
    for (int32_t j = i + 1; j < k; ++j) {
      edges.emplace_back(i, j);
      edges.emplace_back(k + i, k + j);
    }
  }
  edges.emplace_back(k - 1, k);  // Bridge.
  std::vector<int32_t> labels(static_cast<size_t>(2 * k), 0);
  for (int32_t i = k; i < 2 * k; ++i) labels[static_cast<size_t>(i)] = 1;
  Rng rng(seed);
  Matrix features = GenerateClassFeatures(labels, 2, feature_dim,
                                          /*signal=*/1.0, /*noise=*/0.3,
                                          rng);
  Graph g = MakeGraph(2 * k, edges, std::move(features), std::move(labels),
                      2);
  StratifiedSplit(&g, 0.4, 0.3, rng);
  return g;
}

/// A small SBM graph for integration tests (homophilous by default).
inline Graph MakeSmallSbm(int32_t n = 120, int32_t classes = 3,
                          double homophily = 0.85, uint64_t seed = 3,
                          int32_t feature_dim = 12) {
  SbmParams p;
  p.num_nodes = n;
  p.num_classes = classes;
  p.num_edges = n * 3;
  p.edge_homophily = homophily;
  p.feature_dim = feature_dim;
  p.feature_signal = 0.8;
  p.train_frac = 0.3;
  p.val_frac = 0.2;
  Rng rng(seed);
  return GenerateSbmGraph(p, rng);
}

/// Central-difference gradient check: perturbs every entry of `param` and
/// compares d(loss)/d(entry) against the autograd gradient stored on
/// `param` (caller must have run Backward already for the analytic side,
/// or pass `loss_fn` and let the helper do both).
///
/// `loss_fn` must rebuild the full forward graph from current parameter
/// values and return the scalar loss value.
inline void CheckGradient(const Tensor& param,
                          const std::function<double()>& loss_fn,
                          double tolerance = 2e-2, double eps = 1e-3) {
  // Analytic gradient must already be accumulated on `param`.
  ASSERT_FALSE(param->grad().empty()) << "no gradient accumulated";
  Matrix analytic = param->grad();
  Matrix& value = param->mutable_value();
  for (int64_t i = 0; i < value.size(); ++i) {
    const float original = value.data()[i];
    value.data()[i] = original + static_cast<float>(eps);
    const double up = loss_fn();
    value.data()[i] = original - static_cast<float>(eps);
    const double down = loss_fn();
    value.data()[i] = original;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric,
                tolerance * std::max(1.0, std::abs(numeric)))
        << "entry " << i;
  }
}

}  // namespace testing
}  // namespace adafgl

#endif  // ADAFGL_TESTS_TEST_UTIL_H_
