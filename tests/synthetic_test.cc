#include <cmath>

#include <gtest/gtest.h>

#include "data/injection.h"
#include "data/registry.h"
#include "data/synthetic.h"
#include "graph/metrics.h"

namespace adafgl {
namespace {

SbmParams BaseParams(double homophily) {
  SbmParams p;
  p.num_nodes = 400;
  p.num_classes = 4;
  p.num_edges = 1600;
  p.edge_homophily = homophily;
  p.feature_dim = 16;
  p.feature_signal = 0.5;
  p.train_frac = 0.2;
  p.val_frac = 0.4;
  return p;
}

class SbmHomophilyTest : public ::testing::TestWithParam<double> {};

TEST_P(SbmHomophilyTest, MatchesTargetEdgeHomophily) {
  const double target = GetParam();
  SbmParams p = BaseParams(target);
  Rng rng(31);
  Graph g = GenerateSbmGraph(p, rng);
  EXPECT_NEAR(EdgeHomophily(g.adj, g.labels), target, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SbmHomophilyTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

TEST(SbmTest, NodeAndEdgeCounts) {
  SbmParams p = BaseParams(0.8);
  Rng rng(32);
  Graph g = GenerateSbmGraph(p, rng);
  EXPECT_EQ(g.num_nodes(), 400);
  // Duplicate rejection can fall slightly short of the target edge count.
  EXPECT_GT(g.num_edges(), 1500);
  EXPECT_LE(g.num_edges(), 1600);
  EXPECT_EQ(g.feature_dim(), 16);
}

TEST(SbmTest, AllClassesPresent) {
  SbmParams p = BaseParams(0.8);
  Rng rng(33);
  Graph g = GenerateSbmGraph(p, rng);
  const auto hist = LabelHistogram(g.labels, 4);
  for (int64_t c : hist) EXPECT_GE(c, 2);
}

TEST(SbmTest, ClassSkewOrdersClassSizes) {
  SbmParams p = BaseParams(0.8);
  p.class_skew = 0.8;
  Rng rng(34);
  Graph g = GenerateSbmGraph(p, rng);
  const auto hist = LabelHistogram(g.labels, 4);
  EXPECT_GT(hist[0], hist[3]);
}

TEST(SbmTest, DegreesAreHeavyTailed) {
  SbmParams p = BaseParams(0.8);
  p.num_nodes = 1000;
  p.num_edges = 4000;
  Rng rng(35);
  Graph g = GenerateSbmGraph(p, rng);
  const std::vector<float> deg = g.adj.RowSums();
  float mx = 0.0f;
  double mean = 0.0;
  for (float d : deg) {
    mx = std::max(mx, d);
    mean += d;
  }
  mean /= static_cast<double>(deg.size());
  EXPECT_GT(mx, 4.0 * mean);  // A hub exists.
}

TEST(SbmTest, DeterministicForFixedSeed) {
  SbmParams p = BaseParams(0.7);
  Rng a(36), b(36);
  Graph g1 = GenerateSbmGraph(p, a);
  Graph g2 = GenerateSbmGraph(p, b);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_EQ(g1.labels, g2.labels);
  EXPECT_EQ(g1.train_nodes, g2.train_nodes);
}

TEST(SplitTest, StratifiedFractions) {
  SbmParams p = BaseParams(0.8);
  Rng rng(37);
  Graph g = GenerateSbmGraph(p, rng);
  const auto n = static_cast<double>(g.num_nodes());
  EXPECT_NEAR(g.train_nodes.size() / n, 0.2, 0.03);
  EXPECT_NEAR(g.val_nodes.size() / n, 0.4, 0.03);
  EXPECT_NEAR(g.test_nodes.size() / n, 0.4, 0.03);
}

TEST(SplitTest, EveryClassHasTrainNodes) {
  SbmParams p = BaseParams(0.8);
  Rng rng(38);
  Graph g = GenerateSbmGraph(p, rng);
  std::vector<int> seen(4, 0);
  for (int32_t v : g.train_nodes) {
    seen[static_cast<size_t>(g.labels[static_cast<size_t>(v)])] = 1;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(FeatureTest, ClassMeansSeparateWithSignal) {
  std::vector<int32_t> labels(200, 0);
  for (size_t i = 100; i < 200; ++i) labels[i] = 1;
  Rng rng(39);
  Matrix x = GenerateClassFeatures(labels, 2, 32, /*signal=*/2.0,
                                   /*noise=*/0.1, rng);
  // Mean distance between class centroids should be large vs noise.
  Matrix mean0(1, 32), mean1(1, 32);
  for (int64_t i = 0; i < 100; ++i) {
    for (int64_t j = 0; j < 32; ++j) {
      mean0(0, j) += x(i, j) / 100.0f;
      mean1(0, j) += x(100 + i, j) / 100.0f;
    }
  }
  double dist = 0.0;
  for (int64_t j = 0; j < 32; ++j) {
    dist += (mean0(0, j) - mean1(0, j)) * (mean0(0, j) - mean1(0, j));
  }
  EXPECT_GT(std::sqrt(dist), 5.0);
}

TEST(FeatureTest, SharedStylePoolCarriesNoLabelSignal) {
  // With zero class signal and large style spread, per-class feature means
  // must coincide (style offsets are label-independent).
  std::vector<int32_t> labels(2000, 0);
  for (size_t i = 1000; i < 2000; ++i) labels[i] = 1;
  Rng rng(40);
  Matrix x = GenerateClassFeatures(labels, 2, 8, /*signal=*/0.0,
                                   /*noise=*/0.1, rng,
                                   /*subclusters=*/4,
                                   /*subcluster_spread=*/2.0);
  for (int64_t j = 0; j < 8; ++j) {
    double m0 = 0.0, m1 = 0.0;
    for (int64_t i = 0; i < 1000; ++i) {
      m0 += x(i, j);
      m1 += x(1000 + i, j);
    }
    EXPECT_NEAR(m0 / 1000.0, m1 / 1000.0, 0.4);
  }
}

// --------------------------------------------------------------- Registry

TEST(RegistryTest, HasAllTwelveDatasets) {
  EXPECT_EQ(DatasetRegistry().size(), 12u);
}

TEST(RegistryTest, FindDatasetSucceedsAndFails) {
  EXPECT_TRUE(FindDataset("Cora").ok());
  EXPECT_TRUE(FindDataset("arxiv-year").ok());
  const auto missing = FindDataset("NotADataset");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kNotFound);
}

TEST(RegistryTest, InductiveFlagsMatchTableOne) {
  for (const DatasetSpec& spec : DatasetRegistry()) {
    const bool expected = spec.name == "Reddit" || spec.name == "Flickr";
    EXPECT_EQ(spec.inductive, expected) << spec.name;
  }
}

TEST(RegistryTest, HomophilyClassification) {
  EXPECT_TRUE(FindDataset("Cora").value().IsHomophilous());
  EXPECT_TRUE(FindDataset("Physics").value().IsHomophilous());
  EXPECT_FALSE(FindDataset("Squirrel").value().IsHomophilous());
  EXPECT_FALSE(FindDataset("Actor").value().IsHomophilous());
  EXPECT_FALSE(FindDataset("Penn94").value().IsHomophilous());
}

class RegistryGenerationTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryGenerationTest, GeneratesInTargetRegime) {
  const DatasetSpec spec = FindDataset(GetParam()).value();
  Rng rng(41);
  Graph g = GenerateDataset(spec, rng);
  EXPECT_EQ(g.num_nodes(), spec.gen.num_nodes);
  EXPECT_EQ(g.num_classes, spec.num_classes);
  EXPECT_EQ(g.feature_dim(), spec.gen.feature_dim);
  EXPECT_NEAR(EdgeHomophily(g.adj, g.labels), spec.paper_edge_homophily,
              0.08);
  EXPECT_FALSE(g.train_nodes.empty());
  EXPECT_FALSE(g.test_nodes.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, RegistryGenerationTest,
    ::testing::Values("Cora", "CiteSeer", "Chameleon", "Actor", "Penn94"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace adafgl
