#include <gtest/gtest.h>

#include "tensor/matrix_ops.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace adafgl {
namespace {

/// Quadratic loss ||x - target||^2 via MseLoss; both optimizers must drive
/// x to the target.
template <typename Opt, typename... Args>
double OptimizeQuadratic(int steps, Args... args) {
  Matrix start(2, 2, {5.0f, -3.0f, 2.0f, 7.0f});
  Matrix target(2, 2, {1.0f, 1.0f, 1.0f, 1.0f});
  Tensor x = MakeParam(start);
  Opt opt({x}, args...);
  for (int i = 0; i < steps; ++i) {
    opt.ZeroGrad();
    Tensor loss = ops::MseLoss(x, target);
    Backward(loss);
    opt.Step();
  }
  return FrobeniusDistanceSquared(x->value(), target);
}

TEST(OptimTest, SgdConvergesOnQuadratic) {
  EXPECT_LT(OptimizeQuadratic<Sgd>(200, 0.5f, 0.0f), 1e-4);
}

TEST(OptimTest, AdamConvergesOnQuadratic) {
  EXPECT_LT(OptimizeQuadratic<Adam>(300, 0.1f, 0.0f), 1e-3);
}

TEST(OptimTest, WeightDecayShrinksWeights) {
  Matrix v(1, 1);
  v(0, 0) = 1.0f;
  Tensor x = MakeParam(v);
  Sgd opt({x}, 0.1f, /*weight_decay=*/0.5f);
  // No data gradient: only decay acts. A parameter with an empty grad is
  // skipped, so accumulate a zero gradient explicitly.
  for (int i = 0; i < 10; ++i) {
    opt.ZeroGrad();
    Backward(ops::Scale(x, 0.0f));
    opt.Step();
  }
  EXPECT_LT(x->value()(0, 0), 1.0f);
  EXPECT_GT(x->value()(0, 0), 0.0f);
}

TEST(OptimTest, ZeroGradResetsAll) {
  Matrix v(1, 1);
  v(0, 0) = 2.0f;
  Tensor x = MakeParam(v);
  Sgd opt({x}, 0.1f);
  Backward(ops::Mul(x, x));
  EXPECT_NE(x->grad()(0, 0), 0.0f);
  opt.ZeroGrad();
  EXPECT_FLOAT_EQ(x->grad()(0, 0), 0.0f);
}

TEST(OptimTest, StepSkipsParamsWithoutGradients) {
  Matrix v(1, 1);
  v(0, 0) = 3.0f;
  Tensor x = MakeParam(v);
  Adam opt({x}, 0.1f);
  opt.Step();  // No gradient accumulated yet.
  EXPECT_FLOAT_EQ(x->value()(0, 0), 3.0f);
}

TEST(OptimTest, AdamHandlesMultipleParams) {
  Rng rng(1);
  Tensor a = MakeParam(Matrix::Gaussian(2, 2, 1.0f, rng));
  Tensor b = MakeParam(Matrix::Gaussian(2, 2, 1.0f, rng));
  Matrix target(2, 2);
  Adam opt({a, b}, 0.05f);
  for (int i = 0; i < 400; ++i) {
    opt.ZeroGrad();
    Tensor loss = ops::Add(ops::MseLoss(a, target),
                           ops::MseLoss(b, target));
    Backward(loss);
    opt.Step();
  }
  EXPECT_LT(FrobeniusNorm(a->value()), 0.05f);
  EXPECT_LT(FrobeniusNorm(b->value()), 0.05f);
}

}  // namespace
}  // namespace adafgl
