#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/metrics.h"
#include "partition/louvain.h"
#include "partition/metis_like.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::MakeSmallSbm;
using ::adafgl::testing::MakeTwoCliqueGraph;

TEST(LouvainTest, SeparatesTwoCliques) {
  Graph g = MakeTwoCliqueGraph(8);
  Rng rng(1);
  const std::vector<int32_t> comm = Louvain(g.adj, rng);
  // Every node in clique 0 shares a community; ditto clique 1; distinct.
  for (int32_t i = 1; i < 8; ++i) {
    EXPECT_EQ(comm[static_cast<size_t>(i)], comm[0]);
    EXPECT_EQ(comm[static_cast<size_t>(8 + i)], comm[8]);
  }
  EXPECT_NE(comm[0], comm[8]);
}

TEST(LouvainTest, ModularityBeatsSinglePartition) {
  Graph g = MakeSmallSbm(150, 3, 0.9, 11);
  Rng rng(2);
  const std::vector<int32_t> comm = Louvain(g.adj, rng);
  EXPECT_GT(Modularity(g.adj, comm), 0.2);
}

TEST(LouvainTest, DeterministicForFixedSeed) {
  Graph g = MakeSmallSbm(100, 3, 0.85, 12);
  Rng a(3), b(3);
  EXPECT_EQ(Louvain(g.adj, a), Louvain(g.adj, b));
}

TEST(LouvainTest, CompactCommunityIds) {
  Graph g = MakeSmallSbm(100, 3, 0.85, 13);
  Rng rng(4);
  const std::vector<int32_t> comm = Louvain(g.adj, rng);
  std::set<int32_t> ids(comm.begin(), comm.end());
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), static_cast<int32_t>(ids.size()) - 1);
}

TEST(LouvainTest, HandlesEdgelessGraph) {
  CsrMatrix empty(5, 5);
  Rng rng(5);
  const std::vector<int32_t> comm = Louvain(empty, rng);
  EXPECT_EQ(comm.size(), 5u);  // Each node its own community.
}

// --------------------------------------------------------------- MetisLike

struct MetisCase {
  int32_t n;
  int32_t k;
  double homophily;
};

class MetisLikeTest : public ::testing::TestWithParam<MetisCase> {};

TEST_P(MetisLikeTest, BalancedNonEmptyValidParts) {
  const MetisCase& c = GetParam();
  Graph g = MakeSmallSbm(c.n, 3, c.homophily, 21);
  Rng rng(6);
  const std::vector<int32_t> part = MetisLikePartition(g.adj, c.k, rng);
  ASSERT_EQ(static_cast<int32_t>(part.size()), c.n);
  std::vector<int64_t> sizes(static_cast<size_t>(c.k), 0);
  for (int32_t p : part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, c.k);
    ++sizes[static_cast<size_t>(p)];
  }
  for (int64_t s : sizes) EXPECT_GT(s, 0);
  // Balance: max part within (1 + eps) of average, plus slack for the
  // feasibility fixups on small graphs.
  EXPECT_LE(PartitionImbalance(part, c.k), 1.25);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MetisLikeTest,
    ::testing::Values(MetisCase{60, 2, 0.9}, MetisCase{120, 4, 0.85},
                      MetisCase{240, 8, 0.8}, MetisCase{240, 3, 0.3},
                      MetisCase{400, 10, 0.7}),
    [](const ::testing::TestParamInfo<MetisCase>& info) {
      return "n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k);
    });

TEST(MetisLikePartitionTest, CutsFewerEdgesThanRandom) {
  Graph g = MakeSmallSbm(300, 3, 0.9, 22);
  Rng rng(7);
  const std::vector<int32_t> metis = MetisLikePartition(g.adj, 4, rng);
  Rng rng2(8);
  const std::vector<int32_t> random = RandomPartition(300, 4, rng2);
  EXPECT_LT(EdgeCut(g.adj, metis), EdgeCut(g.adj, random));
}

TEST(MetisLikePartitionTest, SinglePartIsTrivial) {
  Graph g = MakeSmallSbm(50, 3, 0.9, 23);
  Rng rng(9);
  const std::vector<int32_t> part = MetisLikePartition(g.adj, 1, rng);
  for (int32_t p : part) EXPECT_EQ(p, 0);
}

TEST(MetisLikePartitionTest, DeterministicForFixedSeed) {
  Graph g = MakeSmallSbm(150, 3, 0.8, 24);
  Rng a(10), b(10);
  EXPECT_EQ(MetisLikePartition(g.adj, 5, a), MetisLikePartition(g.adj, 5, b));
}

TEST(MetisLikePartitionTest, TwoCliquesSplitAtBridge) {
  Graph g = MakeTwoCliqueGraph(10);
  Rng rng(11);
  const std::vector<int32_t> part = MetisLikePartition(g.adj, 2, rng);
  EXPECT_EQ(EdgeCut(g.adj, part), 1);
}

TEST(RandomPartitionTest, ExactBalance) {
  Rng rng(12);
  const std::vector<int32_t> part = RandomPartition(100, 4, rng);
  std::vector<int64_t> sizes(4, 0);
  for (int32_t p : part) ++sizes[static_cast<size_t>(p)];
  for (int64_t s : sizes) EXPECT_EQ(s, 25);
}

}  // namespace
}  // namespace adafgl
