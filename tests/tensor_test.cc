#include <cmath>

#include <gtest/gtest.h>

#include "tensor/matrix.h"
#include "tensor/matrix_ops.h"
#include "tensor/rng.h"

namespace adafgl {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(m(i, j), 0.0f);
  }
  m.At(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 5.0f);
}

TEST(MatrixTest, FromData) {
  Matrix m(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_FLOAT_EQ(m(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 4.0f);
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::Identity(3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(eye(i, j), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(MatrixTest, FillAndZero) {
  Matrix m(2, 2);
  m.Fill(7.0f);
  EXPECT_FLOAT_EQ(SumAll(m), 28.0f);
  m.Zero();
  EXPECT_FLOAT_EQ(SumAll(m), 0.0f);
}

TEST(MatrixTest, GlorotBounds) {
  Rng rng(1);
  Matrix w = Matrix::Glorot(30, 40, rng);
  const float bound = std::sqrt(6.0f / 70.0f);
  for (int64_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w.data()[i], -bound);
    EXPECT_LE(w.data()[i], bound);
  }
}

TEST(MatrixOpsTest, MatMulAgainstManual) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(MatrixOpsTest, MatMulTransVariantsAgreeWithExplicitTranspose) {
  Rng rng(2);
  Matrix a = Matrix::Gaussian(4, 5, 1.0f, rng);
  Matrix b = Matrix::Gaussian(4, 3, 1.0f, rng);
  // a^T b via MatMulTransA == Transpose(a) * b.
  EXPECT_LT(MaxAbsDiff(MatMulTransA(a, b), MatMul(Transpose(a), b)), 1e-5f);
  Matrix c = Matrix::Gaussian(6, 5, 1.0f, rng);
  // a c^T via MatMulTransB == a * Transpose(c).
  EXPECT_LT(MaxAbsDiff(MatMulTransB(a, c), MatMul(a, Transpose(c))), 1e-5f);
}

TEST(MatrixOpsTest, ElementwiseOps) {
  Matrix a(1, 3, {1, -2, 3});
  Matrix b(1, 3, {4, 5, -6});
  EXPECT_LT(MaxAbsDiff(Add(a, b), Matrix(1, 3, {5, 3, -3})), 1e-6f);
  EXPECT_LT(MaxAbsDiff(Sub(a, b), Matrix(1, 3, {-3, -7, 9})), 1e-6f);
  EXPECT_LT(MaxAbsDiff(Mul(a, b), Matrix(1, 3, {4, -10, -18})), 1e-6f);
  EXPECT_LT(MaxAbsDiff(Scale(a, 2.0f), Matrix(1, 3, {2, -4, 6})), 1e-6f);
  EXPECT_LT(MaxAbsDiff(Relu(a), Matrix(1, 3, {1, 0, 3})), 1e-6f);
}

TEST(MatrixOpsTest, AxpyAccumulates) {
  Matrix a(1, 2, {1, 1});
  Matrix b(1, 2, {2, 4});
  Axpy(0.5f, b, &a);
  EXPECT_FLOAT_EQ(a(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(a(0, 1), 3.0f);
}

TEST(MatrixOpsTest, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Matrix a = Matrix::Gaussian(5, 7, 3.0f, rng);
  Matrix p = Softmax(a);
  for (int64_t i = 0; i < p.rows(); ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < p.cols(); ++j) {
      EXPECT_GT(p(i, j), 0.0f);
      sum += p(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(MatrixOpsTest, SoftmaxIsShiftInvariantAndStable) {
  Matrix a(1, 3, {1000.0f, 1001.0f, 1002.0f});
  Matrix p = Softmax(a);
  Matrix b(1, 3, {0.0f, 1.0f, 2.0f});
  EXPECT_LT(MaxAbsDiff(p, Softmax(b)), 1e-5f);
}

TEST(MatrixOpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(4);
  Matrix a = Matrix::Gaussian(4, 5, 2.0f, rng);
  Matrix ls = LogSoftmax(a);
  Matrix p = Softmax(a);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(ls.data()[i], std::log(p.data()[i]), 1e-4);
  }
}

TEST(MatrixOpsTest, TransposeRoundTrip) {
  Rng rng(5);
  Matrix a = Matrix::Gaussian(3, 6, 1.0f, rng);
  EXPECT_LT(MaxAbsDiff(Transpose(Transpose(a)), a), 1e-6f);
}

TEST(MatrixOpsTest, ConcatColsLayout) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 1, {9, 8});
  Matrix c = ConcatCols(a, b);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c(0, 2), 9.0f);
  EXPECT_FLOAT_EQ(c(1, 2), 8.0f);
  Matrix d = ConcatColsAll({a, b, a});
  EXPECT_EQ(d.cols(), 5);
  EXPECT_FLOAT_EQ(d(1, 4), 4.0f);
}

TEST(MatrixOpsTest, GatherRowsSelects) {
  Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix g = GatherRows(a, {2, 0});
  EXPECT_EQ(g.rows(), 2);
  EXPECT_FLOAT_EQ(g(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g(1, 1), 2.0f);
}

TEST(MatrixOpsTest, RowL2NormalizeMakesUnitRows) {
  Matrix a(2, 2, {3, 4, 0, 0});
  RowL2NormalizeInPlace(&a);
  EXPECT_NEAR(a(0, 0), 0.6f, 1e-5);
  EXPECT_NEAR(a(0, 1), 0.8f, 1e-5);
  EXPECT_FLOAT_EQ(a(1, 0), 0.0f);  // Zero row untouched.
}

TEST(MatrixOpsTest, ArgmaxAndAccuracy) {
  Matrix logits(3, 2, {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  std::vector<int32_t> labels = {0, 1, 1};
  EXPECT_EQ(ArgmaxRows(logits), (std::vector<int32_t>{0, 1, 0}));
  EXPECT_NEAR(Accuracy(logits, labels, {0, 1, 2}), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(Accuracy(logits, labels, {0, 1}), 1.0, 1e-9);
  EXPECT_NEAR(Accuracy(logits, labels, {}), 0.0, 1e-9);
}

TEST(MatrixOpsTest, FrobeniusNormAndDistance) {
  Matrix a(1, 2, {3, 4});
  EXPECT_NEAR(FrobeniusNorm(a), 5.0f, 1e-5);
  Matrix b(1, 2, {0, 0});
  EXPECT_NEAR(FrobeniusDistanceSquared(a, b), 25.0f, 1e-4);
}

TEST(MatrixOpsTest, ColMeanAveragesColumns) {
  Matrix a(2, 2, {1, 10, 3, 30});
  Matrix m = ColMean(a);
  EXPECT_FLOAT_EQ(m(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 20.0f);
}

TEST(MatrixOpsTest, DotMatchesManual) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {4, 5, 6});
  EXPECT_NEAR(Dot(a, b), 32.0, 1e-9);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(10);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 10);
    ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // Roughly uniform.
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(8);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(11);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace adafgl
