// Tests of the sampling profiler (obs/prof.h), the tensor memory
// accountant (obs/mem.h), and the trace-buffer overflow path — the
// PR 3 observability additions. Labeled `obs` so the tsan config vets
// the cross-thread stack sampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fed/federation.h"
#include "fed/splits.h"
#include "json_check.h"
#include "obs/mem.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/matrix.h"
#include "test_util.h"

namespace adafgl::obs {
namespace {

using ::adafgl::testing::IsValidJson;
using ::adafgl::testing::MakeSmallSbm;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(); }
  void TearDown() override {
    SetProfileEnabled(false);
    SetProfilePath("");
    Reset();
  }
  void Reset() {
    SetMetricsEnabled(false);
    SetTraceEnabled(false);
    MetricsRegistry::Global().ResetForTest();
    ResetTraceForTest();
    prof::ResetProfilerForTest();
    mem::ResetForTest();
  }
};

// ---------------------------------------------------------------------
// Span stack.

TEST_F(ProfTest, SpanPushesFrameWhenAnyKnobIsOn) {
  EXPECT_EQ(prof::CurrentFrame(), nullptr);
  SetMetricsEnabled(true);
  {
    Span outer("prof.outer");
    EXPECT_STREQ(prof::CurrentFrame(), "prof.outer");
    {
      Span inner(std::string("prof.") + "dynamic");
      EXPECT_STREQ(prof::CurrentFrame(), "prof.dynamic");
      prof::KernelFrame kernel("prof.kernel");
      EXPECT_STREQ(prof::CurrentFrame(), "prof.kernel");
    }
    EXPECT_STREQ(prof::CurrentFrame(), "prof.outer");
  }
  EXPECT_EQ(prof::CurrentFrame(), nullptr);
}

TEST_F(ProfTest, InternReturnsStablePointers) {
  const char* a = prof::InternName("prof.intern.x");
  const char* b = prof::InternName(std::string("prof.intern.") + "x");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "prof.intern.x");
  EXPECT_NE(a, prof::InternName("prof.intern.y"));
}

TEST_F(ProfTest, StackOverflowBalancesPushesAndPops) {
  SetMetricsEnabled(true);
  std::vector<std::unique_ptr<Span>> spans;
  for (int i = 0; i < prof::kMaxStackDepth + 8; ++i) {
    spans.push_back(std::make_unique<Span>("prof.deep"));
  }
  EXPECT_STREQ(prof::CurrentFrame(), "prof.deep");
  spans.clear();
  EXPECT_EQ(prof::CurrentFrame(), nullptr);
}

// ---------------------------------------------------------------------
// Sampling profiler.

TEST_F(ProfTest, ProfilerWritesValidFoldedStacksWithFullAttribution) {
  // A real (small) federated workload under a fast sampler: the folded
  // output must be flamegraph.pl-grammar text whose root frames cover
  // >= 90% of the sampled ticks.
  const std::string folded =
      ::testing::TempDir() + "/adafgl_prof_test.folded";
  std::remove(folded.c_str());
  SetProfilePath(folded);
  prof::SetProfileHz(4000);  // Fast so even a short run collects ticks.
  SetProfileEnabled(true);
  prof::StartSampler();
  {
    Span root("prof.test_root");
    Graph g = MakeSmallSbm(160, 3, 0.85, 17);
    Rng rng(18);
    FederatedDataset data =
        StructureNonIidSplit(g, 2, InjectionMode::kNone, 0.5, rng);
    FedConfig cfg;
    cfg.rounds = 3;
    cfg.local_epochs = 2;
    cfg.post_local_epochs = 1;
    cfg.hidden = 32;
    cfg.eval_every = 1;
    cfg.seed = 5;
    // Repeat the run until the sampler has enough ticks for a stable
    // attribution check (one smoke run lasts only a few milliseconds).
    for (int i = 0; i < 400 && prof::SampledTicks() < 80; ++i) {
      RunFedAvg(data, cfg);
    }
  }
  prof::StopSamplerAndWrite();
  SetProfileEnabled(false);

  const int64_t sampled = prof::SampledTicks();
  ASSERT_GT(sampled, 20) << "sampler collected too few ticks to judge";

  // Grammar: every line is "name(;name)* <count>", counts sum to the
  // sampled total.
  const std::string doc = ReadFile(folded);
  ASSERT_FALSE(doc.empty());
  std::istringstream lines(doc);
  std::string line;
  int64_t folded_total = 0;
  int64_t rooted = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string stack = line.substr(0, space);
    const std::string count_str = line.substr(space + 1);
    ASSERT_FALSE(stack.empty()) << line;
    ASSERT_FALSE(count_str.empty()) << line;
    EXPECT_NE(stack.front(), ';') << line;
    EXPECT_NE(stack.back(), ';') << line;
    EXPECT_EQ(stack.find(";;"), std::string::npos) << line;
    EXPECT_EQ(stack.find(' '), std::string::npos) << line;
    for (char ch : count_str) {
      ASSERT_TRUE(std::isdigit(static_cast<unsigned char>(ch))) << line;
    }
    const int64_t count = std::stoll(count_str);
    EXPECT_GT(count, 0) << line;
    folded_total += count;
    // Kernel-pool worker threads (ADAFGL_KERNEL_THREADS > 1) carry their
    // own stacks rooted at the kernel frame they re-announce; those ticks
    // are attributed workload too. At the default of 1 kernel thread no
    // such stacks exist.
    if (stack.rfind("prof.test_root", 0) == 0 ||
        stack.rfind("tensor.", 0) == 0) {
      rooted += count;
    }
  }
  EXPECT_EQ(folded_total, sampled);
  // Everything ran inside prof.test_root (or on a kernel worker thread
  // announcing its kernel frame), so >= 90% of the ticks must be
  // attributed (the margin absorbs samples racing span entry/exit).
  EXPECT_GE(rooted, (sampled * 9) / 10)
      << "rooted=" << rooted << " sampled=" << sampled << "\n" << doc;

  // The self/total report renders and lists the root.
  const std::string report = prof::ReportText(10);
  EXPECT_NE(report.find("prof.test_root"), std::string::npos) << report;
  std::remove(folded.c_str());
}

TEST_F(ProfTest, SamplerCountsIdleTicksWhenNoSpanIsOpen) {
  prof::SetProfileHz(4000);
  SetProfilePath(::testing::TempDir() + "/adafgl_prof_idle.folded");
  SetProfileEnabled(true);
  prof::StartSampler();
  // Touch the local stack so this thread is registered, then stay idle.
  { Span warm("prof.idle_warm"); }
  while (prof::IdleTicks() + prof::SampledTicks() < 8) {
  }
  prof::StopSamplerAndWrite();
  SetProfileEnabled(false);
  EXPECT_GT(prof::IdleTicks(), 0);
  std::remove((::testing::TempDir() + "/adafgl_prof_idle.folded").c_str());
}

// ---------------------------------------------------------------------
// Memory accounting.

TEST_F(ProfTest, MatrixLifecycleBalancesLivePeakAndAllocs) {
  SetMetricsEnabled(true);
  mem::ResetForTest();
  const int64_t bytes0 = mem::LiveBytes();
  {
    Matrix a(64, 32);  // >= 64*32*4 bytes once tracked.
    const int64_t one = mem::LiveBytes() - bytes0;
    EXPECT_GE(one, 64 * 32 * 4);
    Matrix b = a;  // Copy re-tracks its own buffer.
    EXPECT_GE(mem::LiveBytes() - bytes0, 2 * one);
    Matrix c = std::move(b);  // Move transfers, no new registration.
    EXPECT_GE(mem::LiveBytes() - bytes0, 2 * one);
    EXPECT_LE(mem::LiveBytes() - bytes0, 2 * one + 16);
    EXPECT_GE(mem::PeakBytes(), mem::LiveBytes());
    EXPECT_GE(mem::AllocCount(), 2);
  }
  EXPECT_EQ(mem::LiveBytes(), bytes0);       // All buffers released.
  EXPECT_GE(mem::PeakBytes(), 2 * 64 * 32 * 4);  // Peak survives the frees.
  mem::ResetPeakToLive();
  EXPECT_EQ(mem::PeakBytes(), mem::LiveBytes());
}

TEST_F(ProfTest, AllocationsAttributeToInnermostSpan) {
  SetMetricsEnabled(true);
  mem::ResetForTest();
  {
    Span span("prof.mem_site");
    Matrix a(32, 32);
    Matrix b(16, 16);
  }
  const std::map<std::string, mem::Snapshot> per_span =
      mem::PerSpanSnapshot();
  ASSERT_TRUE(per_span.count("prof.mem_site"));
  const mem::Snapshot& s = per_span.at("prof.mem_site");
  EXPECT_GE(s.peak_bytes, 32 * 32 * 4 + 16 * 16 * 4);
  EXPECT_GE(s.allocs, 2);
  EXPECT_EQ(s.live_bytes, 0);  // Freed before the snapshot.

  // The attribution joins PhaseSummary() under the span's name.
  const std::map<std::string, PhaseStat> phases = PhaseSummary();
  ASSERT_TRUE(phases.count("prof.mem_site"));
  EXPECT_EQ(phases.at("prof.mem_site").peak_bytes, s.peak_bytes);
}

TEST_F(ProfTest, TrackingStaysBalancedWhenMetricsFlipMidLifetime) {
  SetMetricsEnabled(false);
  Matrix a(32, 32);  // Allocated unobserved.
  SetMetricsEnabled(true);
  mem::ResetForTest();
  {
    Matrix b = a;  // Tracked: metrics are on now.
    EXPECT_GT(mem::LiveBytes(), 0);
    SetMetricsEnabled(false);  // Knob flips while b is live...
  }
  // ...but b remembered its registration, so its free still balanced.
  EXPECT_EQ(mem::LiveBytes(), 0);
}

TEST_F(ProfTest, PeakRssReadsProcStatus) {
  // Linux CI: VmHWM must parse to something sane (> 1 MiB).
  EXPECT_GT(mem::ReadPeakRssBytes(), 1 << 20);
}

TEST_F(ProfTest, PublishGaugesSurfacesAccountingInRegistry) {
  SetMetricsEnabled(true);
  mem::ResetForTest();
  Matrix a(64, 64);
  mem::PublishGauges();
  const std::string summary = MetricsRegistry::Global().SummaryText();
  EXPECT_NE(summary.find("tensor.mem.live_bytes"), std::string::npos);
  EXPECT_NE(summary.find("tensor.mem.peak_bytes"), std::string::npos);
  EXPECT_NE(summary.find("process.peak_rss_bytes"), std::string::npos);
}

// ---------------------------------------------------------------------
// Trace buffer cap.

TEST_F(ProfTest, TraceCapOverflowCountsDropsAndStaysValid) {
  internal::SetTraceCapForTest(64);
  SetTraceEnabled(true);
  constexpr int kSpans = 200;
  for (int i = 0; i < kSpans; ++i) {
    Span span("prof.cap_span");
  }
  SetTraceEnabled(false);
  EXPECT_EQ(DroppedSpanCount(), kSpans - 64);
  // Mirrored into the registry counter.
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("obs.trace.dropped_spans")->value(),
      kSpans - 64);
  // The truncated export is still valid JSON and carries the drop count.
  const std::string path =
      ::testing::TempDir() + "/adafgl_prof_cap_trace.json";
  ASSERT_TRUE(WriteChromeTrace(path));
  const std::string doc = ReadFile(path);
  std::string err;
  EXPECT_TRUE(IsValidJson(doc, &err)) << err;
  EXPECT_NE(doc.find("\"otherData\""), std::string::npos);
  EXPECT_NE(doc.find("\"dropped_spans\":136"), std::string::npos);
  // The kept events are intact.
  size_t begins = 0, pos = 0;
  while ((pos = doc.find("\"ph\":\"B\"", pos)) != std::string::npos) {
    ++begins;
    ++pos;
  }
  EXPECT_EQ(begins, 64u);
  std::remove(path.c_str());
  internal::SetTraceCapForTest(1 << 20);
}

TEST_F(ProfTest, PhaseSummaryTextIsNameSorted) {
  SetTraceEnabled(true);
  { Span z("zz.last"); }
  { Span m("mm.middle"); }
  { Span a("aa.first"); }
  { Span m2("mm.middle"); }
  SetTraceEnabled(false);
  const std::string text = PhaseSummaryText();
  const size_t pa = text.find("aa.first");
  const size_t pm = text.find("mm.middle");
  const size_t pz = text.find("zz.last");
  ASSERT_NE(pa, std::string::npos) << text;
  ASSERT_NE(pm, std::string::npos) << text;
  ASSERT_NE(pz, std::string::npos) << text;
  EXPECT_LT(pa, pm) << text;
  EXPECT_LT(pm, pz) << text;
}

}  // namespace
}  // namespace adafgl::obs
