#include <algorithm>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/metrics.h"
#include "tensor/matrix_ops.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::MakeTwoCliqueGraph;

TEST(GraphTest, MakeGraphBasics) {
  Graph g = MakeTwoCliqueGraph(4);
  EXPECT_EQ(g.num_nodes(), 8);
  // Two K4 cliques (6 edges each) + bridge.
  EXPECT_EQ(g.num_edges(), 13);
  EXPECT_EQ(g.num_classes, 2);
  EXPECT_EQ(g.feature_dim(), 8);
}

TEST(GraphTest, AdjacencyIsSymmetricWithoutSelfLoops) {
  Graph g = MakeTwoCliqueGraph(5);
  Matrix d = g.adj.ToDense();
  EXPECT_LT(MaxAbsDiff(d, Transpose(d)), 1e-6f);
  for (int32_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_FLOAT_EQ(d(i, i), 0.0f);
  }
}

TEST(GraphTest, SplitsAreDisjointAndCover) {
  Graph g = MakeTwoCliqueGraph(10);
  std::vector<int32_t> all;
  all.insert(all.end(), g.train_nodes.begin(), g.train_nodes.end());
  all.insert(all.end(), g.val_nodes.begin(), g.val_nodes.end());
  all.insert(all.end(), g.test_nodes.begin(), g.test_nodes.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_EQ(static_cast<int32_t>(all.size()), g.num_nodes());
}

TEST(GraphTest, InducedSubgraphKeepsInternalEdges) {
  Graph g = MakeTwoCliqueGraph(4);
  // First clique only: all 6 internal edges, no bridge.
  std::vector<int32_t> nodes = {0, 1, 2, 3};
  std::vector<int32_t> ids;
  Graph sub = InducedSubgraph(g, nodes, &ids);
  EXPECT_EQ(sub.num_nodes(), 4);
  EXPECT_EQ(sub.num_edges(), 6);
  EXPECT_EQ(ids, nodes);
  for (int32_t v = 0; v < 4; ++v) {
    EXPECT_EQ(sub.labels[static_cast<size_t>(v)], 0);
  }
}

TEST(GraphTest, InducedSubgraphRelabelsAndInheritsSplits) {
  Graph g = MakeTwoCliqueGraph(4);
  std::vector<int32_t> nodes = {4, 5, 6, 7};  // Second clique.
  Graph sub = InducedSubgraph(g, nodes);
  EXPECT_EQ(sub.num_nodes(), 4);
  for (int32_t v = 0; v < 4; ++v) {
    EXPECT_EQ(sub.labels[static_cast<size_t>(v)], 1);
  }
  // Split sizes must match the parent's restriction to these nodes.
  int64_t parent_count = 0;
  for (int32_t v : g.train_nodes) parent_count += (v >= 4);
  EXPECT_EQ(static_cast<int64_t>(sub.train_nodes.size()), parent_count);
  // Features must be gathered rows.
  for (int32_t v = 0; v < 4; ++v) {
    EXPECT_FLOAT_EQ(sub.features(v, 0), g.features(4 + v, 0));
  }
}

TEST(GraphTest, InducedSubgraphCrossEdgeKept) {
  Graph g = MakeTwoCliqueGraph(4);
  // Nodes 3 and 4 are the bridge endpoints.
  Graph sub = InducedSubgraph(g, {3, 4});
  EXPECT_EQ(sub.num_edges(), 1);
}

TEST(GraphTest, UndirectedEdgesRoundTrip) {
  Graph g = MakeTwoCliqueGraph(6);
  const auto edges = UndirectedEdges(g.adj);
  EXPECT_EQ(static_cast<int64_t>(edges.size()), g.num_edges());
  CsrMatrix rebuilt = CsrFromUndirectedEdges(g.num_nodes(), edges);
  EXPECT_LT(MaxAbsDiff(rebuilt.ToDense(), g.adj.ToDense()), 1e-6f);
}

TEST(GraphTest, GcnNormalizedProperties) {
  Graph g = MakeTwoCliqueGraph(4);
  CsrMatrix norm = GcnNormalized(g.adj);
  Matrix d = norm.ToDense();
  // Symmetric.
  EXPECT_LT(MaxAbsDiff(d, Transpose(d)), 1e-5f);
  // Self loops present.
  for (int32_t i = 0; i < g.num_nodes(); ++i) EXPECT_GT(d(i, i), 0.0f);
  // Spectral radius is <= 1, so row sums stay positive and bounded (they
  // can exceed 1 pointwise when a high-degree node borders low-degree
  // ones, but never by much on near-regular graphs).
  for (int32_t i = 0; i < g.num_nodes(); ++i) {
    double row = 0.0;
    for (int32_t j = 0; j < g.num_nodes(); ++j) row += d(i, j);
    EXPECT_GT(row, 0.0);
    EXPECT_LE(row, 2.0);
  }
  // On an isolated clique (perfectly regular), rows sum to exactly 1.
  CsrMatrix clique = GcnNormalized(
      CsrFromUndirectedEdges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3},
                                 {2, 3}}));
  Matrix cd = clique.ToDense();
  for (int32_t i = 0; i < 4; ++i) {
    double row = 0.0;
    for (int32_t j = 0; j < 4; ++j) row += cd(i, j);
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, HomophilyOnPureCliques) {
  // Without the bridge both metrics are exactly 1.
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i < 4; ++i) {
    for (int32_t j = i + 1; j < 4; ++j) {
      edges.emplace_back(i, j);
      edges.emplace_back(4 + i, 4 + j);
    }
  }
  std::vector<int32_t> labels = {0, 0, 0, 0, 1, 1, 1, 1};
  CsrMatrix adj = CsrFromUndirectedEdges(8, edges);
  EXPECT_NEAR(NodeHomophily(adj, labels), 1.0, 1e-9);
  EXPECT_NEAR(EdgeHomophily(adj, labels), 1.0, 1e-9);
}

TEST(MetricsTest, HomophilyOnBipartiteIsZero) {
  // Complete bipartite between two classes: no same-label edge.
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i < 3; ++i) {
    for (int32_t j = 3; j < 6; ++j) edges.emplace_back(i, j);
  }
  std::vector<int32_t> labels = {0, 0, 0, 1, 1, 1};
  CsrMatrix adj = CsrFromUndirectedEdges(6, edges);
  EXPECT_NEAR(NodeHomophily(adj, labels), 0.0, 1e-9);
  EXPECT_NEAR(EdgeHomophily(adj, labels), 0.0, 1e-9);
}

TEST(MetricsTest, EdgeHomophilyCountsFractions) {
  // Path 0-1-2 with labels 0,0,1: one homophilous of two edges.
  CsrMatrix adj = CsrFromUndirectedEdges(3, {{0, 1}, {1, 2}});
  EXPECT_NEAR(EdgeHomophily(adj, {0, 0, 1}), 0.5, 1e-9);
}

TEST(MetricsTest, LabelHistogram) {
  const auto hist = LabelHistogram({0, 1, 1, 2, 2, 2}, 4);
  EXPECT_EQ(hist, (std::vector<int64_t>{1, 2, 3, 0}));
}

TEST(MetricsTest, ModularityTwoCliquesHigh) {
  Graph g = MakeTwoCliqueGraph(6);
  std::vector<int32_t> perfect(12, 0);
  for (int32_t i = 6; i < 12; ++i) perfect[static_cast<size_t>(i)] = 1;
  const double q_good = Modularity(g.adj, perfect);
  std::vector<int32_t> single(12, 0);
  const double q_single = Modularity(g.adj, single);
  EXPECT_GT(q_good, 0.3);
  EXPECT_NEAR(q_single, 0.0, 1e-9);
  EXPECT_GT(q_good, q_single);
}

TEST(MetricsTest, EdgeCutCountsCrossEdges) {
  Graph g = MakeTwoCliqueGraph(4);
  std::vector<int32_t> part(8, 0);
  for (int32_t i = 4; i < 8; ++i) part[static_cast<size_t>(i)] = 1;
  EXPECT_EQ(EdgeCut(g.adj, part), 1);  // Only the bridge.
  std::vector<int32_t> bad = {0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_GT(EdgeCut(g.adj, bad), 1);
}

TEST(MetricsTest, PartitionImbalance) {
  EXPECT_NEAR(PartitionImbalance({0, 0, 1, 1}, 2), 1.0, 1e-9);
  EXPECT_NEAR(PartitionImbalance({0, 0, 0, 1}, 2), 1.5, 1e-9);
}

}  // namespace
}  // namespace adafgl
