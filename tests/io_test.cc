#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "graph/io.h"
#include "graph/metrics.h"
#include "nn/serialize.h"
#include "tensor/matrix_ops.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::MakeSmallSbm;
using ::adafgl::testing::MakeTwoCliqueGraph;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ----------------------------------------------------------- Graph text IO

TEST(GraphIoTest, RoundTripPreservesEverything) {
  Graph g = MakeTwoCliqueGraph(6);
  Result<Graph> parsed = ParseGraph(SerializeGraph(g));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Graph& r = parsed.value();
  EXPECT_EQ(r.num_nodes(), g.num_nodes());
  EXPECT_EQ(r.num_edges(), g.num_edges());
  EXPECT_EQ(r.num_classes, g.num_classes);
  EXPECT_EQ(r.labels, g.labels);
  EXPECT_EQ(r.train_nodes, g.train_nodes);
  EXPECT_EQ(r.val_nodes, g.val_nodes);
  EXPECT_EQ(r.test_nodes, g.test_nodes);
  EXPECT_LT(MaxAbsDiff(r.features, g.features), 1e-4f);
  EXPECT_LT(MaxAbsDiff(r.adj.ToDense(), g.adj.ToDense()), 1e-6f);
}

TEST(GraphIoTest, FileRoundTrip) {
  Graph g = MakeSmallSbm(60, 3, 0.8, 401);
  const std::string path = TempPath("graph_io_test.txt");
  ASSERT_TRUE(SaveGraphToFile(g, path).ok());
  Result<Graph> loaded = LoadGraphFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.value().num_edges(), g.num_edges());
  EXPECT_NEAR(EdgeHomophily(loaded.value().adj, loaded.value().labels),
              EdgeHomophily(g.adj, g.labels), 1e-9);
  std::remove(path.c_str());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "header 2 1 2\n"
      "\n"
      "node 0 0 1.5  # trailing comment\n"
      "node 1 1 -2.0\n"
      "edge 0 1\n"
      "split train 0\n";
  Result<Graph> g = ParseGraph(text);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().num_nodes(), 2);
  EXPECT_FLOAT_EQ(g.value().features(0, 0), 1.5f);
  EXPECT_EQ(g.value().train_nodes, std::vector<int32_t>{0});
}

struct BadInputCase {
  const char* name;
  const char* text;
};

class GraphIoErrorTest : public ::testing::TestWithParam<BadInputCase> {};

TEST_P(GraphIoErrorTest, RejectsMalformedInput) {
  Result<Graph> g = ParseGraph(GetParam().text);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GraphIoErrorTest,
    ::testing::Values(
        BadInputCase{"Empty", ""},
        BadInputCase{"NoHeader", "node 0 0 1.0\n"},
        BadInputCase{"DuplicateHeader",
                     "header 1 1 2\nnode 0 0 1\nheader 1 1 2\n"},
        BadInputCase{"NodeOutOfRange", "header 1 1 2\nnode 5 0 1.0\n"},
        BadInputCase{"LabelOutOfRange", "header 1 1 2\nnode 0 7 1.0\n"},
        BadInputCase{"DuplicateNode",
                     "header 1 1 2\nnode 0 0 1.0\nnode 0 0 1.0\n"},
        BadInputCase{"MissingFeature", "header 1 2 2\nnode 0 0 1.0\n"},
        BadInputCase{"MissingNode", "header 2 1 2\nnode 0 0 1.0\n"},
        BadInputCase{"BadEdge",
                     "header 2 1 2\nnode 0 0 1\nnode 1 0 1\nedge 0 9\n"},
        BadInputCase{"BadSplitKind",
                     "header 1 1 2\nnode 0 0 1\nsplit weird 0\n"},
        BadInputCase{"UnknownTag", "header 1 1 2\nnode 0 0 1\nblah\n"}),
    [](const ::testing::TestParamInfo<BadInputCase>& info) {
      return info.param.name;
    });

TEST(GraphIoTest, MissingFileIsNotFound) {
  Result<Graph> g = LoadGraphFromFile("/nonexistent/path/graph.txt");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kNotFound);
}

// ------------------------------------------------------ Weight checkpoints

TEST(SerializeWeightsTest, RoundTrip) {
  Rng rng(1);
  std::vector<Matrix> weights = {Matrix::Gaussian(3, 4, 1.0f, rng),
                                 Matrix::Gaussian(1, 1, 1.0f, rng),
                                 Matrix(2, 0)};
  Result<std::vector<Matrix>> back =
      DeserializeWeights(SerializeWeights(weights));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(back.value()[i].rows(), weights[i].rows());
    EXPECT_EQ(back.value()[i].cols(), weights[i].cols());
    if (weights[i].size() > 0) {
      EXPECT_LT(MaxAbsDiff(back.value()[i], weights[i]), 0.0f + 1e-9f);
    }
  }
}

TEST(SerializeWeightsTest, EmptyListRoundTrips) {
  Result<std::vector<Matrix>> back = DeserializeWeights(SerializeWeights({}));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(SerializeWeightsTest, RejectsCorruptedInput) {
  Rng rng(2);
  std::string bytes = SerializeWeights({Matrix::Gaussian(2, 2, 1.0f, rng)});
  EXPECT_FALSE(DeserializeWeights("JUNK").ok());
  EXPECT_FALSE(DeserializeWeights(bytes.substr(0, 10)).ok());
  EXPECT_FALSE(DeserializeWeights(bytes + "x").ok());
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DeserializeWeights(bad_magic).ok());
}

TEST(SerializeWeightsTest, FileRoundTrip) {
  Rng rng(3);
  std::vector<Matrix> weights = {Matrix::Gaussian(4, 5, 1.0f, rng)};
  const std::string path = TempPath("weights_test.bin");
  ASSERT_TRUE(SaveWeightsToFile(weights, path).ok());
  Result<std::vector<Matrix>> back = LoadWeightsFromFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_LT(MaxAbsDiff(back.value()[0], weights[0]), 1e-9f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adafgl
