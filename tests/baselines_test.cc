#include <gtest/gtest.h>

#include "fed/fedgl.h"
#include "fed/fedpub.h"
#include "fed/fedsage.h"
#include "fed/gcfl.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::MakeSmallSbm;

FedConfig TinyConfig() {
  FedConfig cfg;
  cfg.rounds = 4;
  cfg.local_epochs = 2;
  cfg.post_local_epochs = 2;
  cfg.hidden = 16;
  cfg.seed = 17;
  return cfg;
}

FederatedDataset TinyFederation(uint64_t seed = 101) {
  Graph g = MakeSmallSbm(240, 3, 0.85, seed);
  Rng rng(seed + 1);
  return StructureNonIidSplit(g, 3, InjectionMode::kRandom, 0.4, rng);
}

TEST(FedGlTest, RunsAndLearns) {
  FederatedDataset fd = TinyFederation();
  FedRunResult r = RunFedGL(fd, TinyConfig());
  EXPECT_EQ(r.history.size(), 4u);
  EXPECT_GT(r.final_test_acc, 0.4);
  EXPECT_EQ(r.client_test_acc.size(), 3u);
}

TEST(FedGlTest, UploadsPredictionsBeyondModelBytes) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  FedRunResult fedgl = RunFedGL(fd, cfg);
  FedRunResult fedavg = RunFedAvg(fd, cfg);
  // Global self-supervision uploads predictions on top of weights.
  EXPECT_GT(fedgl.bytes_up, fedavg.bytes_up);
}

TEST(GcflTest, RunsAndLearns) {
  FederatedDataset fd = TinyFederation(111);
  FedRunResult r = RunGcflPlus(fd, TinyConfig());
  EXPECT_EQ(r.history.size(), 4u);
  EXPECT_GT(r.final_test_acc, 0.4);
}

TEST(GcflTest, AggressiveThresholdsSplitClusters) {
  FederatedDataset fd = TinyFederation(112);
  GcflOptions opt;
  opt.eps1 = 1e9f;  // Mean condition always true.
  opt.eps2 = 0.0f;  // Max condition always true.
  FedRunResult r = RunGcflPlus(fd, TinyConfig(), opt);
  // Still runs to completion with per-cluster aggregation.
  EXPECT_GT(r.final_test_acc, 0.3);
}

TEST(FedSageTest, MendAddsGeneratedNodes) {
  Graph g = MakeSmallSbm(200, 3, 0.85, 113);
  FedSageOptions opt;
  opt.neighgen_epochs = 10;
  Rng rng(1);
  Graph mended = MendGraphWithNeighGen(g, opt, Matrix(), rng);
  EXPECT_GE(mended.num_nodes(), g.num_nodes());
  // Splits must not include generated nodes.
  for (int32_t v : mended.train_nodes) EXPECT_LT(v, g.num_nodes());
  for (int32_t v : mended.test_nodes) EXPECT_LT(v, g.num_nodes());
  EXPECT_EQ(mended.train_nodes, g.train_nodes);
}

TEST(FedSageTest, MendPreservesOriginalFeatures) {
  Graph g = MakeSmallSbm(150, 3, 0.85, 114);
  FedSageOptions opt;
  opt.neighgen_epochs = 5;
  Rng rng(2);
  Graph mended = MendGraphWithNeighGen(g, opt, Matrix(), rng);
  for (int32_t v = 0; v < g.num_nodes(); ++v) {
    EXPECT_FLOAT_EQ(mended.features(v, 0), g.features(v, 0));
  }
}

TEST(FedSageTest, TinyGraphIsNoOp) {
  Graph g = MakeSmallSbm(120, 3, 0.8, 115);
  // Force the too-small path by emptying edges below threshold.
  Graph small;
  small.adj = CsrFromUndirectedEdges(4, {{0, 1}});
  small.features = Matrix(4, 3);
  small.labels = {0, 1, 0, 1};
  small.num_classes = 2;
  FedSageOptions opt;
  Rng rng(3);
  Graph out = MendGraphWithNeighGen(small, opt, Matrix(), rng);
  EXPECT_EQ(out.num_nodes(), 4);
  (void)g;
}

TEST(FedSageTest, FullRunLearns) {
  FederatedDataset fd = TinyFederation(116);
  FedSageOptions opt;
  opt.neighgen_epochs = 5;
  FedRunResult r = RunFedSagePlus(fd, TinyConfig(), opt);
  EXPECT_GT(r.final_test_acc, 0.4);
  EXPECT_GT(r.bytes_up, 0);
}

TEST(FedPubTest, RunsAndLearns) {
  FederatedDataset fd = TinyFederation(117);
  FedPubOptions opt;
  opt.proxy_nodes = 60;
  FedRunResult r = RunFedPub(fd, TinyConfig(), opt);
  EXPECT_EQ(r.history.size(), 4u);
  EXPECT_GT(r.final_test_acc, 0.4);
}

TEST(FedPubTest, MaskedModelHasSixParams) {
  FederatedDataset fd = TinyFederation(118);
  FedConfig cfg = TinyConfig();
  cfg.model = "GCN+mask";
  FedClient client(fd.clients[0], cfg, 9);
  EXPECT_EQ(client.Weights().size(), 6u);
}

}  // namespace
}  // namespace adafgl
