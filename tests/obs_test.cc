// Unit tests of the observability layer: exact concurrent counting, trace
// export validity, phase aggregation, and the JSON primitives everything
// is built on. Federated-level obs tests live in obs_fed_test.cc.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "json_check.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace adafgl::obs {
namespace {

using ::adafgl::testing::IsValidJson;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetForTest();
    ResetTraceForTest();
    SetMetricsEnabled(false);
    SetTraceEnabled(false);
  }
  void TearDown() override {
    SetMetricsEnabled(false);
    SetTraceEnabled(false);
    MetricsRegistry::Global().ResetForTest();
    ResetTraceForTest();
  }
};

TEST_F(ObsTest, ConcurrentIncrementsSumExactly) {
  // The registry's core guarantee: relaxed atomic increments from many
  // threads lose nothing.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  Counter* counter = MetricsRegistry::Global().GetCounter("test.concurrent");
  Histogram* hist = MetricsRegistry::Global().GetHistogram(
      "test.concurrent_hist", UnitIntervalBounds());
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Inc();
        hist->Record(static_cast<double>(t) / kThreads);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->count(), static_cast<int64_t>(kThreads) * kPerThread);
  int64_t bucket_total = 0;
  for (size_t b = 0; b < hist->num_buckets(); ++b) {
    bucket_total += hist->bucket_count(b);
  }
  EXPECT_EQ(bucket_total, hist->count());
}

TEST_F(ObsTest, SameNameYieldsSamePointer) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.stable");
  Counter* b = MetricsRegistry::Global().GetCounter("test.stable");
  EXPECT_EQ(a, b);
  Histogram* ha = MetricsRegistry::Global().GetHistogram("test.stable_h");
  Histogram* hb = MetricsRegistry::Global().GetHistogram(
      "test.stable_h", UnitIntervalBounds());  // Bounds ignored on reuse.
  EXPECT_EQ(ha, hb);
  EXPECT_EQ(ha->bounds(), DefaultTimeBoundsNs());
}

TEST_F(ObsTest, HistogramBucketsObservations) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.buckets", std::vector<double>{1.0, 10.0, 100.0});
  h->Record(0.5);    // bucket 0: <= 1
  h->Record(5.0);    // bucket 1: <= 10
  h->Record(5.0);    // bucket 1
  h->Record(1e6);    // bucket 3: overflow
  EXPECT_EQ(h->count(), 4);
  EXPECT_EQ(h->bucket_count(0), 1);
  EXPECT_EQ(h->bucket_count(1), 2);
  EXPECT_EQ(h->bucket_count(2), 0);
  EXPECT_EQ(h->bucket_count(3), 1);
  EXPECT_DOUBLE_EQ(h->Mean(), (0.5 + 5.0 + 5.0 + 1e6) / 4.0);
}

TEST_F(ObsTest, QuantileEmptyHistogramReturnsZero) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.q_empty", std::vector<double>{1.0, 10.0});
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.99), 0.0);
}

TEST_F(ObsTest, QuantileInterpolatesInsideBucket) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.q_interp", std::vector<double>{10.0, 20.0, 30.0});
  // 10 observations in (10, 20]: ranks spread linearly across the bucket.
  for (int i = 0; i < 10; ++i) h->Record(15.0);
  // Median rank = 5 of 10 -> halfway through [10, 20].
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 20.0);
  // Rank 1 of 10 -> one tenth into the bucket.
  EXPECT_DOUBLE_EQ(h->Quantile(0.1), 11.0);
}

TEST_F(ObsTest, QuantileSpansMultipleBuckets) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.q_multi", std::vector<double>{10.0, 20.0, 30.0});
  for (int i = 0; i < 8; ++i) h->Record(5.0);    // bucket [*, 10]
  for (int i = 0; i < 1; ++i) h->Record(15.0);   // bucket (10, 20]
  for (int i = 0; i < 1; ++i) h->Record(25.0);   // bucket (20, 30]
  // p50 rank = 5 of 10 lands in the first bucket (8 observations):
  // 5/8 through [0, 10].
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 6.25);
  // p90 rank = 9 lands in the second bucket (cum 8, 1 in bucket).
  EXPECT_DOUBLE_EQ(h->Quantile(0.9), 20.0);
  // p100 lands in the third.
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 30.0);
}

TEST_F(ObsTest, QuantileEdgeConventions) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.q_edges", std::vector<double>{10.0, 20.0});
  h->Record(1e9);  // Overflow bucket only.
  // Ranks in the unbounded bucket clamp to the last finite bound.
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.99), 20.0);
  // q outside [0, 1] clamps instead of misbehaving.
  h->Record(5.0);
  EXPECT_DOUBLE_EQ(h->Quantile(-1.0), h->Quantile(0.0));
  EXPECT_DOUBLE_EQ(h->Quantile(2.0), h->Quantile(1.0));
  // q = 0 maps to the first observation's bucket, not below it.
  EXPECT_LE(h->Quantile(0.0), 10.0);
  EXPECT_GT(h->Quantile(0.0), 0.0);
}

TEST_F(ObsTest, QuantileDefaultBoundsOverflowClamps) {
  // Registering with empty bounds applies the default decades; an
  // observation beyond the last decade lands in the unbounded overflow
  // bucket and every quantile clamps to the last finite bound.
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.q_unbounded", std::vector<double>{});
  ASSERT_FALSE(h->bounds().empty());
  h->Record(1e11);  // Beyond 10 s.
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), h->bounds().back());
}

TEST_F(ObsTest, SummaryTextListsNonZeroInstruments) {
  MetricsRegistry::Global().GetCounter("test.zero");  // Stays silent.
  MetricsRegistry::Global().GetCounter("test.hot")->Inc(42);
  MetricsRegistry::Global().GetGauge("test.gauge")->Set(1.5);
  const std::string summary = MetricsRegistry::Global().SummaryText();
  EXPECT_NE(summary.find("test.hot"), std::string::npos);
  EXPECT_NE(summary.find("42"), std::string::npos);
  EXPECT_NE(summary.find("test.gauge"), std::string::npos);
  EXPECT_EQ(summary.find("test.zero"), std::string::npos);
}

TEST_F(ObsTest, TraceExportIsValidBalancedJson) {
  SetTraceEnabled(true);
  {
    Span outer("outer");
    { Span inner("inner"); }
    { Span inner2(std::string("dynamic.") + "name"); }
  }
  // Spans from worker threads land in per-thread buffers and must still
  // export balanced per-tid begin/end pairs after the threads exit.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      Span outer("worker.outer");
      Span inner("worker.inner");
    });
  }
  for (std::thread& t : workers) t.join();
  SetTraceEnabled(false);

  const std::string path =
      ::testing::TempDir() + "/adafgl_obs_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(path));
  const std::string doc = ReadFile(path);
  std::string err;
  EXPECT_TRUE(IsValidJson(doc, &err)) << err;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"dynamic.name\""), std::string::npos);

  // Balanced events: every "B" has a matching "E" and no tid's stack ever
  // goes negative when scanning in timestamp order (the writer emits in
  // sorted order, so a linear scan is the stack discipline check).
  std::map<int64_t, int64_t> depth;
  int64_t begins = 0, ends = 0;
  size_t pos = 0;
  while ((pos = doc.find("\"ph\":\"", pos)) != std::string::npos) {
    const char ph = doc[pos + 6];
    const size_t tid_pos = doc.find("\"tid\":", pos);
    ASSERT_NE(tid_pos, std::string::npos);
    const int64_t tid = std::strtoll(doc.c_str() + tid_pos + 6, nullptr, 10);
    if (ph == 'B') {
      ++begins;
      ++depth[tid];
    } else if (ph == 'E') {
      ++ends;
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "unbalanced E on tid " << tid;
    }
    ++pos;
  }
  EXPECT_EQ(begins, 11);  // 3 main-thread spans + 4 workers x 2 spans.
  EXPECT_EQ(begins, ends);
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "tid " << tid << " left " << d << " open spans";
  }
  std::remove(path.c_str());
}

TEST_F(ObsTest, PhaseSummaryAggregatesPerName) {
  SetTraceEnabled(true);
  { Span a("phase.a"); }
  { Span a("phase.a"); }
  { Span b("phase.b"); }
  SetTraceEnabled(false);
  const std::map<std::string, PhaseStat> summary = PhaseSummary();
  ASSERT_TRUE(summary.count("phase.a"));
  ASSERT_TRUE(summary.count("phase.b"));
  EXPECT_EQ(summary.at("phase.a").count, 2);
  EXPECT_EQ(summary.at("phase.b").count, 1);
  EXPECT_GE(summary.at("phase.a").total_ns, 0);
  const std::string text = PhaseSummaryText();
  EXPECT_NE(text.find("phase.a"), std::string::npos);
}

TEST_F(ObsTest, DisabledKnobsRecordNothing) {
  ASSERT_FALSE(MetricsEnabled());
  ASSERT_FALSE(TraceEnabled());
  { Span span("invisible"); }
  EXPECT_TRUE(PhaseSummary().empty());
  // The call-site pattern: the counter is never even registered.
  if (MetricsEnabled()) {
    MetricsRegistry::Global().GetCounter("test.never")->Inc();
  }
  EXPECT_EQ(MetricsRegistry::Global().SummaryText(), "");
}

TEST_F(ObsTest, EventRenderIsValidJson) {
  const std::string line = Event("test.event")
                               .I64("round", 3)
                               .F64("loss", 0.5)
                               .F64("nan_maps_to_null", std::nan(""))
                               .Str("method", "Fed\"Avg\"\n")
                               .Bool("ok", true)
                               .Render();
  std::string err;
  EXPECT_TRUE(IsValidJson(line, &err)) << err << "\n" << line;
  EXPECT_NE(line.find("\"event\":\"test.event\""), std::string::npos);
  EXPECT_NE(line.find("\"ts_ns\":"), std::string::npos);
  EXPECT_NE(line.find("\"nan_maps_to_null\":null"), std::string::npos);
}

TEST_F(ObsTest, JsonPrimitives) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonDouble(0.5), "0.5");
  EXPECT_EQ(JsonDouble(std::nan("")), "null");
  JsonWriter w;
  w.BeginObject();
  w.Key("list");
  w.BeginArray();
  w.Int(1);
  w.Double(2.5);
  w.String("three");
  w.Bool(false);
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.Key("k");
  w.Int(0);
  w.EndObject();
  w.EndObject();
  std::string err;
  EXPECT_TRUE(IsValidJson(w.str(), &err)) << err << "\n" << w.str();
  EXPECT_EQ(w.str(),
            "{\"list\":[1,2.5,\"three\",false],\"nested\":{\"k\":0}}");
}

TEST_F(ObsTest, ResetForTestZeroesButKeepsPointers) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.reset");
  c->Inc(10);
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.reset_h");
  h->Record(1.0);
  MetricsRegistry::Global().ResetForTest();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("test.reset"), c);
}

}  // namespace
}  // namespace adafgl::obs
