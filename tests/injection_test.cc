#include <set>

#include <gtest/gtest.h>

#include "data/injection.h"
#include "graph/metrics.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::MakeSmallSbm;

TEST(RandomInjectionTest, AddsRequestedEdgeCount) {
  Graph g = MakeSmallSbm(200, 3, 0.8, 51);
  Rng rng(1);
  Graph out = RandomInjection(g, InjectionType::kHomophilous, 0.5, rng);
  // Close to +50% (random pair sampling can exhaust attempts on tiny
  // graphs, but not at this size).
  EXPECT_NEAR(static_cast<double>(out.num_edges()),
              static_cast<double>(g.num_edges()) * 1.5,
              static_cast<double>(g.num_edges()) * 0.02);
}

TEST(RandomInjectionTest, HomophilousRaisesHomophily) {
  Graph g = MakeSmallSbm(200, 3, 0.6, 52);
  const double before = EdgeHomophily(g.adj, g.labels);
  Rng rng(2);
  Graph out = RandomInjection(g, InjectionType::kHomophilous, 0.5, rng);
  EXPECT_GT(EdgeHomophily(out.adj, out.labels), before + 0.05);
}

TEST(RandomInjectionTest, HeterophilousLowersHomophily) {
  Graph g = MakeSmallSbm(200, 3, 0.8, 53);
  const double before = EdgeHomophily(g.adj, g.labels);
  Rng rng(3);
  Graph out = RandomInjection(g, InjectionType::kHeterophilous, 0.5, rng);
  EXPECT_LT(EdgeHomophily(out.adj, out.labels), before - 0.1);
}

TEST(RandomInjectionTest, PreservesNodesFeaturesLabelsSplits) {
  Graph g = MakeSmallSbm(150, 3, 0.8, 54);
  Rng rng(4);
  Graph out = RandomInjection(g, InjectionType::kHeterophilous, 0.3, rng);
  EXPECT_EQ(out.num_nodes(), g.num_nodes());
  EXPECT_EQ(out.labels, g.labels);
  EXPECT_EQ(out.train_nodes, g.train_nodes);
  EXPECT_EQ(out.test_nodes, g.test_nodes);
  EXPECT_FLOAT_EQ(out.features(0, 0), g.features(0, 0));
}

TEST(RandomInjectionTest, ZeroRatioIsIdentityTopology) {
  Graph g = MakeSmallSbm(100, 3, 0.8, 55);
  Rng rng(5);
  Graph out = RandomInjection(g, InjectionType::kHomophilous, 0.0, rng);
  EXPECT_EQ(out.num_edges(), g.num_edges());
}

TEST(RandomInjectionTest, OnlyAddsMatchingLabelPairs) {
  Graph g = MakeSmallSbm(150, 3, 0.8, 56);
  Rng rng(6);
  Graph out = RandomInjection(g, InjectionType::kHomophilous, 0.4, rng);
  // Every new edge must be same-label.
  auto before = UndirectedEdges(g.adj);
  std::set<std::pair<int32_t, int32_t>> old_edges(before.begin(),
                                                  before.end());
  for (const auto& e : UndirectedEdges(out.adj)) {
    if (old_edges.count(e)) continue;
    EXPECT_EQ(out.labels[static_cast<size_t>(e.first)],
              out.labels[static_cast<size_t>(e.second)]);
  }
}

TEST(MetaInjectionTest, RespectsBudgetAndLowersHomophily) {
  Graph g = MakeSmallSbm(200, 3, 0.85, 57);
  const double before = EdgeHomophily(g.adj, g.labels);
  Rng rng(7);
  Graph out = MetaInjection(g, 0.2, rng);
  EXPECT_LE(out.num_edges(),
            g.num_edges() + static_cast<int64_t>(g.num_edges() * 0.2) + 1);
  EXPECT_GT(out.num_edges(), g.num_edges());
  EXPECT_LT(EdgeHomophily(out.adj, out.labels), before);
}

TEST(MetaInjectionTest, AddedEdgesAreCrossLabel) {
  Graph g = MakeSmallSbm(150, 3, 0.85, 58);
  Rng rng(8);
  Graph out = MetaInjection(g, 0.2, rng);
  auto before = UndirectedEdges(g.adj);
  std::set<std::pair<int32_t, int32_t>> old_edges(before.begin(),
                                                  before.end());
  int64_t added = 0;
  for (const auto& e : UndirectedEdges(out.adj)) {
    if (old_edges.count(e)) continue;
    ++added;
    EXPECT_NE(out.labels[static_cast<size_t>(e.first)],
              out.labels[static_cast<size_t>(e.second)]);
  }
  EXPECT_GT(added, 0);
}

TEST(MetaInjectionTest, ZeroBudgetIsNoOp) {
  Graph g = MakeSmallSbm(100, 3, 0.85, 59);
  Rng rng(9);
  Graph out = MetaInjection(g, 0.0, rng);
  EXPECT_EQ(out.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace adafgl
