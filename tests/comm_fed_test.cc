// Federated-level tests of the transport layer: codec compression factors,
// fault-injection robustness, and thread-count invariance of training
// results. Unit tests of the comm primitives live in comm_test.cc.
#include <gtest/gtest.h>

#include "fed/fedgl.h"
#include "fed/fedpub.h"
#include "fed/fedsage.h"
#include "fed/gcfl.h"
#include "fed/splits.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::MakeSmallSbm;

FedConfig TinyConfig() {
  FedConfig cfg;
  cfg.rounds = 4;
  cfg.local_epochs = 2;
  cfg.post_local_epochs = 2;
  cfg.hidden = 16;
  cfg.eval_every = 1;
  cfg.seed = 7;
  return cfg;
}

FederatedDataset TinyFederation(int clients = 3, uint64_t seed = 71) {
  Graph g = MakeSmallSbm(240, 3, 0.85, seed);
  Rng rng(seed + 1);
  return StructureNonIidSplit(g, clients, InjectionMode::kNone, 0.5, rng);
}

void ExpectSameRun(const FedRunResult& a, const FedRunResult& b) {
  EXPECT_EQ(a.final_test_acc, b.final_test_acc);
  EXPECT_EQ(a.bytes_up, b.bytes_up);
  EXPECT_EQ(a.bytes_down, b.bytes_down);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].test_acc, b.history[i].test_acc);
    EXPECT_EQ(a.history[i].train_loss, b.history[i].train_loss);
  }
  ASSERT_EQ(a.client_test_acc.size(), b.client_test_acc.size());
  for (size_t i = 0; i < a.client_test_acc.size(); ++i) {
    EXPECT_EQ(a.client_test_acc[i], b.client_test_acc[i]);
  }
}

TEST(CommFedTest, TwoWorkerThreadsReproduceSerialRunExactly) {
  // The acceptance bar for the parallel executor: under the lossless codec
  // the thread count must not change a single reported number.
  FederatedDataset fd = TinyFederation();
  FedConfig serial = TinyConfig();
  serial.comm.num_threads = 1;
  FedConfig threaded = TinyConfig();
  threaded.comm.num_threads = 2;
  ExpectSameRun(RunFedAvg(fd, serial), RunFedAvg(fd, threaded));
}

TEST(CommFedTest, ThreadCountInvarianceHoldsForBaselines) {
  FederatedDataset fd = TinyFederation();
  FedConfig serial = TinyConfig();
  serial.rounds = 3;
  FedConfig threaded = serial;
  threaded.comm.num_threads = 3;
  ExpectSameRun(RunGcflPlus(fd, serial), RunGcflPlus(fd, threaded));
  ExpectSameRun(RunFedGL(fd, serial), RunFedGL(fd, threaded));
  ExpectSameRun(RunFedPub(fd, serial), RunFedPub(fd, threaded));
}

TEST(CommFedTest, Fp16RoughlyHalvesWireBytes) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  FedRunResult dense = RunFedAvg(fd, cfg);
  cfg.comm.codec = "fp16";
  FedRunResult half = RunFedAvg(fd, cfg);
  // Same semantic volume, roughly half the wire bytes (frame + envelope
  // overhead keeps the ratio a bit above 0.5).
  EXPECT_EQ(half.comm.stats.payload_float_bytes_up,
            dense.comm.stats.payload_float_bytes_up);
  const double ratio = static_cast<double>(half.bytes_up) /
                       static_cast<double>(dense.bytes_up);
  EXPECT_GT(ratio, 0.45);
  EXPECT_LT(ratio, 0.60);
  // Half precision of a small GCN should not destroy training.
  EXPECT_GT(half.final_test_acc, 0.4);
}

TEST(CommFedTest, TopKCutsWireBytesByRoughlyKOverN) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  FedRunResult dense = RunFedAvg(fd, cfg);
  cfg.comm.codec = "topk";
  cfg.comm.topk_ratio = 0.1;
  FedRunResult sparse = RunFedAvg(fd, cfg);
  // Kept entries cost 8 bytes (index + value) vs 4 dense, so ratio 0.1
  // lands near 0.2x the dense payload (a bit above with the per-matrix
  // overhead of this small model); still a ~3x or better saving.
  const double ratio = static_cast<double>(sparse.bytes_up) /
                       static_cast<double>(dense.bytes_up);
  EXPECT_LT(ratio, 0.35);
  EXPECT_GT(sparse.final_test_acc, 0.0);
}

TEST(CommFedTest, DropoutDegradesGracefully) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  FedRunResult clean = RunFedAvg(fd, cfg);
  cfg.comm.link.dropout_prob = 0.3;
  FedRunResult faulty = RunFedAvg(fd, cfg);
  // The run completes with the full history, loses some client-rounds,
  // spends less traffic, and still produces a sane model.
  EXPECT_EQ(faulty.history.size(), clean.history.size());
  EXPECT_GT(faulty.comm.stats.dropouts, 0);
  EXPECT_LT(faulty.bytes_up, clean.bytes_up);
  EXPECT_GT(faulty.final_test_acc, 0.3);
}

TEST(CommFedTest, MessageLossUnderRetryKeepsTraining) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.comm.link.drop_prob = 0.15;
  cfg.comm.link.max_retries = 4;
  FedRunResult r = RunFedAvg(fd, cfg);
  EXPECT_GT(r.comm.stats.drops, 0);  // Losses happened and were billed...
  EXPECT_GT(r.final_test_acc, 0.3);  // ...but retries kept the run healthy.
}

TEST(CommFedTest, AllBaselinesSurviveFaultInjection) {
  // Graceful degradation, not crashes: every algorithm must cope with
  // losing clients mid-round (empty clusters, missing embeddings, stale
  // pseudo labels, unmended graphs).
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.rounds = 3;
  cfg.comm.link.dropout_prob = 0.35;
  cfg.comm.link.drop_prob = 0.10;
  cfg.comm.link.policy = comm::FaultPolicy::kSkip;
  for (int variant = 0; variant < 4; ++variant) {
    FedRunResult r;
    switch (variant) {
      case 0: r = RunFedGL(fd, cfg); break;
      case 1: r = RunGcflPlus(fd, cfg); break;
      case 2: r = RunFedSagePlus(fd, cfg); break;
      default: r = RunFedPub(fd, cfg); break;
    }
    EXPECT_EQ(r.history.size(), 3u) << "variant " << variant;
    EXPECT_GE(r.final_test_acc, 0.0) << "variant " << variant;
    EXPECT_LE(r.final_test_acc, 1.0) << "variant " << variant;
    EXPECT_GT(r.comm.stats.dropouts, 0) << "variant " << variant;
  }
}

TEST(CommFedTest, SimulatedRoundTimeTracksLinkSpeed) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.comm.link.latency_s = 0.05;
  cfg.comm.link.bandwidth_bps = 1e6;
  FedRunResult slow = RunFedAvg(fd, cfg);
  EXPECT_GT(slow.comm.stats.sim_seconds, 0.0);
  cfg.comm.link.bandwidth_bps = 1e8;
  FedRunResult fast = RunFedAvg(fd, cfg);
  EXPECT_LT(fast.comm.stats.sim_seconds, slow.comm.stats.sim_seconds);
  // Compression shortens the simulated clock too.
  cfg.comm.link.bandwidth_bps = 1e6;
  cfg.comm.codec = "fp16";
  FedRunResult compressed = RunFedAvg(fd, cfg);
  EXPECT_LT(compressed.comm.stats.sim_seconds, slow.comm.stats.sim_seconds);
}

TEST(CommFedTest, FedSageCountsMendPhaseTraffic) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.rounds = 2;
  FedSageOptions opt;
  opt.neighgen_epochs = 5;
  FedRunResult sage = RunFedSagePlus(fd, cfg, opt);
  FedRunResult avg = RunFedAvg(fd, cfg);
  // NeighGen parameter uploads + feature-moment downlinks ride on top of
  // the (mended-graph) FedAvg weight traffic.
  EXPECT_GT(sage.bytes_up, avg.bytes_up);
  EXPECT_GT(sage.bytes_down, avg.bytes_down);
  EXPECT_EQ(sage.bytes_up, sage.comm.stats.bytes_up);
}

}  // namespace
}  // namespace adafgl
