// Tests of the shared parallel kernel runtime (src/par) and the
// parallelized tensor kernels built on it: exact index coverage and
// inline-fallback semantics of the pool, bitwise parity of every
// parallel kernel against the seed serial loops (including adversarial
// shapes), thread-count invariance, the actual-work flop accounting,
// and the MatMulTransB profiling-frame regression. Labeled `par` so the
// tsan config vets the lock-free task claiming next to the obs lane.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "obs/mem.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "obs/registry.h"
#include "par/par.h"
#include "par/thread_pool.h"
#include "tensor/csr.h"
#include "tensor/matrix_ops.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace adafgl {
namespace {

using ::adafgl::par::ThreadPool;

// ---------------------------------------------------------------------
// ThreadPool mechanics.

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(5);
  pool.ParallelFor(5, [&](size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ReusableAcrossJobsAndHandlesEmpty) {
  ThreadPool pool(3);
  pool.ParallelFor(0, [](size_t) { FAIL() << "empty job ran a task"; });
  std::atomic<int64_t> sum{0};
  for (int job = 0; job < 50; ++job) {
    pool.ParallelFor(17, [&](size_t i) {
      sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50 * (17 * 16 / 2));
}

TEST(ThreadPoolTest, ChunksCoverRangeWithNonDividingGrain) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.ParallelForChunks(103, 10, [&](size_t b, size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  size_t next = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, next);
    EXPECT_LT(b, e);
    EXPECT_LE(e - b, 10u);
    next = e;
  }
  EXPECT_EQ(next, 103u);
}

TEST(ThreadPoolTest, ChunksAutoGrainCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(257, 0);
  pool.ParallelForChunks(257, 0, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) ++hits[i];  // Chunks are disjoint.
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ThreadPoolTest, ParallelFor2DCoversTileGrid) {
  ThreadPool pool(4);
  constexpr size_t kRows = 7, kCols = 5;
  std::vector<int> cell(kRows * kCols, 0);
  pool.ParallelFor2D(kRows, kCols, 3, 2,
                     [&](size_t r0, size_t r1, size_t c0, size_t c1) {
                       EXPECT_LE(r1 - r0, 3u);
                       EXPECT_LE(c1 - c0, 2u);
                       for (size_t r = r0; r < r1; ++r) {
                         for (size_t c = c0; c < c1; ++c) {
                           ++cell[r * kCols + c];  // Tiles are disjoint.
                         }
                       }
                     });
  for (size_t i = 0; i < cell.size(); ++i) EXPECT_EQ(cell[i], 1) << i;
}

TEST(ThreadPoolTest, ParallelFor2DZeroColGrainMeansFullStrips) {
  ThreadPool pool(2);
  std::atomic<int> tiles{0};
  pool.ParallelFor2D(8, 6, 4, 0,
                     [&](size_t r0, size_t r1, size_t c0, size_t c1) {
                       EXPECT_EQ(c0, 0u);
                       EXPECT_EQ(c1, 6u);
                       EXPECT_LT(r0, r1);
                       tiles.fetch_add(1);
                     });
  EXPECT_EQ(tiles.load(), 2);
}

TEST(ThreadPoolTest, NestedSubmissionRunsInlineWithoutDeadlock) {
  // A kernel running on the pool may itself reach a parallel kernel
  // (e.g. a client-pool body calling MatMul). The inner job must run
  // inline on the busy pool rather than deadlock.
  ThreadPool pool(4);
  std::atomic<int> inner{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(3, [&](size_t) {
      inner.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner.load(), 12);
}

TEST(ThreadPoolTest, ConcurrentSubmittersAllComplete) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int job = 0; job < 25; ++job) {
        pool.ParallelFor(10, [&](size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), 4 * 25 * 10);
}

// ---------------------------------------------------------------------
// Kernel bit-parity. Each parallel kernel must produce bytes identical
// to the seed serial loops — reproduced here verbatim as references —
// for every thread count.

class ParKernelTest : public ::testing::Test {
 protected:
  // Restore the process pool to the environment default so later suites
  // (and other test binaries' assumptions) see an untouched runtime.
  void TearDown() override { par::ResetKernelPoolForTest(0); }
};

Matrix RandomMatrix(int64_t rows, int64_t cols, Rng& rng, double zero_prob) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.Uniform() < zero_prob
                      ? 0.0f
                      : static_cast<float>(rng.Normal());
  }
  return m;
}

bool BitEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

// The seed serial kernels, copied verbatim (zero-skip included): the
// parity oracle no matter what the library paths become.
Matrix RefMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    float* ci = c.row(i);
    const float* ai = a.row(i);
    for (int64_t p = 0; p < a.cols(); ++p) {
      const float av = ai[p];
      if (av == 0.0f) continue;
      const float* bp = b.row(p);
      for (int64_t j = 0; j < b.cols(); ++j) ci[j] += av * bp[j];
    }
  }
  return c;
}

Matrix RefMatMulTransA(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    const float* bi = b.row(i);
    for (int64_t p = 0; p < a.cols(); ++p) {
      const float av = ai[p];
      if (av == 0.0f) continue;
      float* cp = c.row(p);
      for (int64_t j = 0; j < b.cols(); ++j) cp[j] += av * bi[j];
    }
  }
  return c;
}

Matrix RefMatMulTransB(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (int64_t j = 0; j < b.rows(); ++j) {
      const float* bj = b.row(j);
      float acc = 0.0f;
      for (int64_t p = 0; p < a.cols(); ++p) acc += ai[p] * bj[p];
      ci[j] = acc;
    }
  }
  return c;
}

Matrix RefSpMM(const CsrMatrix& a, const Matrix& x) {
  Matrix y(a.rows(), x.cols());
  for (int32_t r = 0; r < a.rows(); ++r) {
    float* yr = y.row(r);
    a.ForEachInRow(r, [&](int32_t c, float v) {
      const float* xr = x.row(c);
      for (int64_t j = 0; j < x.cols(); ++j) yr[j] += v * xr[j];
    });
  }
  return y;
}

Matrix RefSpMMTranspose(const CsrMatrix& a, const Matrix& x) {
  Matrix y(a.cols(), x.cols());
  for (int32_t r = 0; r < a.rows(); ++r) {
    const float* xr = x.row(r);
    a.ForEachInRow(r, [&](int32_t c, float v) {
      float* yr = y.row(c);
      for (int64_t j = 0; j < x.cols(); ++j) yr[j] += v * xr[j];
    });
  }
  return y;
}

CsrMatrix RandomCsr(int32_t rows, int32_t cols, int32_t entries, Rng& rng) {
  std::vector<Triplet> trip;
  trip.reserve(static_cast<size_t>(entries));
  for (int32_t i = 0; i < entries; ++i) {
    trip.push_back({static_cast<int32_t>(rng.UniformInt(rows)),
                    static_cast<int32_t>(rng.UniformInt(cols)),
                    static_cast<float>(rng.Normal())});
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(trip));
}

// Adversarial dense shapes: degenerate vectors, non-multiples of the
// kernel tile sizes (64/256), and a chunky mid-size case.
struct MmShape {
  int64_t m, k, n;
};
const MmShape kShapes[] = {
    {1, 37, 19}, {37, 1, 19}, {19, 37, 1}, {65, 129, 33}, {128, 96, 257}};

TEST_F(ParKernelTest, DenseKernelsBitIdenticalAcrossThreadCounts) {
  Rng rng(123);
  for (const MmShape& s : kShapes) {
    // Post-ReLU-like sparsity exercises the zero-skip branch.
    const Matrix a = RandomMatrix(s.m, s.k, rng, 0.4);
    const Matrix b = RandomMatrix(s.k, s.n, rng, 0.0);
    const Matrix at_b = RandomMatrix(s.m, s.n, rng, 0.0);   // TransA rhs.
    const Matrix bt = RandomMatrix(s.n, s.k, rng, 0.0);     // TransB rhs.
    const Matrix ref = RefMatMul(a, b);
    const Matrix ref_ta = RefMatMulTransA(a, at_b);
    const Matrix ref_tb = RefMatMulTransB(a, bt);
    for (int threads : {1, 2, 8}) {
      par::ResetKernelPoolForTest(threads);
      EXPECT_TRUE(BitEqual(MatMul(a, b), ref))
          << "MatMul " << s.m << "x" << s.k << "x" << s.n << " t=" << threads;
      EXPECT_TRUE(BitEqual(MatMulTransA(a, at_b), ref_ta))
          << "TransA " << s.m << "x" << s.k << "x" << s.n << " t=" << threads;
      EXPECT_TRUE(BitEqual(MatMulTransB(a, bt), ref_tb))
          << "TransB " << s.m << "x" << s.k << "x" << s.n << " t=" << threads;
    }
  }
}

TEST_F(ParKernelTest, SparseKernelsBitIdenticalAcrossThreadCounts) {
  Rng rng(7);
  const CsrMatrix a = RandomCsr(200, 150, 1200, rng);
  const Matrix x = RandomMatrix(150, 17, rng, 0.0);
  const Matrix xt = RandomMatrix(200, 17, rng, 0.0);
  const Matrix ref = RefSpMM(a, x);
  const Matrix ref_t = RefSpMMTranspose(a, xt);
  for (int threads : {1, 2, 8}) {
    par::ResetKernelPoolForTest(threads);
    EXPECT_TRUE(BitEqual(a.Multiply(x), ref)) << "SpMM t=" << threads;
    EXPECT_TRUE(BitEqual(a.MultiplyTranspose(xt), ref_t))
        << "SpMM^T t=" << threads;
  }
}

TEST_F(ParKernelTest, SparseEdgeCasesBitIdentical) {
  Rng rng(31);
  // Empty matrix, single dense column (every entry collides on one
  // output row of the transpose gather), and a single-row strip.
  const CsrMatrix empty(5, 4);
  std::vector<Triplet> col;
  for (int32_t r = 0; r < 64; ++r) {
    col.push_back({r, 2, static_cast<float>(rng.Normal())});
  }
  const CsrMatrix one_col = CsrMatrix::FromTriplets(64, 4, std::move(col));
  const CsrMatrix strip = RandomCsr(1, 40, 25, rng);
  const Matrix x4 = RandomMatrix(4, 9, rng, 0.0);
  const Matrix x64 = RandomMatrix(64, 9, rng, 0.0);
  const Matrix x40 = RandomMatrix(40, 9, rng, 0.0);
  const Matrix x1 = RandomMatrix(1, 9, rng, 0.0);
  for (int threads : {1, 2, 8}) {
    par::ResetKernelPoolForTest(threads);
    EXPECT_TRUE(BitEqual(empty.Multiply(x4), RefSpMM(empty, x4)));
    EXPECT_TRUE(BitEqual(empty.MultiplyTranspose(RandomMatrix(5, 3, rng, 0.0)),
                         Matrix(4, 3)));
    EXPECT_TRUE(BitEqual(one_col.Multiply(x4), RefSpMM(one_col, x4)));
    EXPECT_TRUE(BitEqual(one_col.MultiplyTranspose(x64),
                         RefSpMMTranspose(one_col, x64)));
    EXPECT_TRUE(BitEqual(strip.Multiply(x40), RefSpMM(strip, x40)));
    EXPECT_TRUE(
        BitEqual(strip.MultiplyTranspose(x1), RefSpMMTranspose(strip, x1)));
  }
}

TEST_F(ParKernelTest, ElementwiseMapsBitIdenticalAcrossThreadCounts) {
  Rng rng(55);
  // Big enough to cross the parallel-dispatch threshold (2^15 elements).
  const Matrix a = RandomMatrix(300, 120, rng, 0.1);
  par::ResetKernelPoolForTest(1);
  const Matrix relu1 = Relu(a);
  const Matrix tanh1 = TanhMat(a);
  const Matrix sig1 = SigmoidMat(a);
  const Matrix soft1 = Softmax(a);
  const Matrix lsoft1 = LogSoftmax(a);
  for (int threads : {2, 8}) {
    par::ResetKernelPoolForTest(threads);
    EXPECT_TRUE(BitEqual(Relu(a), relu1));
    EXPECT_TRUE(BitEqual(TanhMat(a), tanh1));
    EXPECT_TRUE(BitEqual(SigmoidMat(a), sig1));
    EXPECT_TRUE(BitEqual(Softmax(a), soft1));
    EXPECT_TRUE(BitEqual(LogSoftmax(a), lsoft1));
  }
}

// ---------------------------------------------------------------------
// Accounting and profiling-frame regressions.

class ParObsTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(); }
  void TearDown() override {
    obs::SetProfileEnabled(false);
    obs::SetProfilePath("");
    par::ResetKernelPoolForTest(0);
    Reset();
  }
  void Reset() {
    obs::SetMetricsEnabled(false);
    obs::SetTraceEnabled(false);
    obs::MetricsRegistry::Global().ResetForTest();
    obs::prof::ResetProfilerForTest();
    obs::mem::ResetForTest();
  }
};

TEST_F(ParObsTest, MatMulFlopCounterMatchesActualWork) {
  obs::SetMetricsEnabled(true);
  obs::Counter* flops =
      obs::MetricsRegistry::Global().GetCounter("tensor.matmul.flops");
  obs::Counter* calls =
      obs::MetricsRegistry::Global().GetCounter("tensor.matmul.calls");

  Matrix a(2, 2);
  a(0, 0) = 1.0f;
  a(1, 1) = 2.0f;  // nnz(a) = 2 of 4.
  Matrix b(2, 3);
  for (int64_t i = 0; i < b.size(); ++i) b.data()[i] = 1.0f;

  // MatMul skips the zero rows of a: 2 * nnz(a) * n = 2 * 2 * 3 = 12,
  // not the nominal 2*m*k*n = 24.
  int64_t before = flops->value();
  MatMul(a, b);
  EXPECT_EQ(flops->value() - before, 12);
  EXPECT_EQ(calls->value(), 1);

  // MatMulTransA has the same zero-skip.
  before = flops->value();
  MatMulTransA(a, b);
  EXPECT_EQ(flops->value() - before, 12);

  // MatMulTransB runs branch-free dot products: the full 2*m*k*n.
  Matrix bt(4, 2);
  before = flops->value();
  MatMulTransB(a, bt);
  EXPECT_EQ(flops->value() - before, 2 * 2 * 2 * 4);
}

TEST_F(ParObsTest, MatMulTransBCarriesKernelFrame) {
  // Regression: MatMulTransB (the backward-pass gradient matmul) used to
  // lack its tensor.matmul KernelFrame, so its allocations and samples
  // were attributed to the caller. The result allocation must now land
  // in the tensor.matmul bucket.
  obs::SetMetricsEnabled(true);  // Turns the span stack on.
  obs::mem::ResetForTest();
  Rng rng(3);
  const Matrix a = RandomMatrix(8, 8, rng, 0.0);
  const Matrix b = RandomMatrix(8, 8, rng, 0.0);
  const Matrix c = MatMulTransB(a, b);
  ASSERT_EQ(c.rows(), 8);
  const auto per_span = obs::mem::PerSpanSnapshot();
  auto it = per_span.find("tensor.matmul");
  ASSERT_NE(it, per_span.end())
      << "MatMulTransB allocated outside a tensor.matmul frame";
  EXPECT_GE(it->second.allocs, 1);
}

TEST_F(ParObsTest, KernelFrameDedupTopDoesNotDoubleStack) {
  obs::SetMetricsEnabled(true);  // Turns the span stack on.
  static const char* const kName = "par.dedup_test";
  static const char* const kOuter = "par.dedup_outer";
  {
    obs::prof::KernelFrame outer(kOuter);
    {
      obs::prof::KernelFrame named(kName);
      EXPECT_EQ(obs::prof::CurrentFrame(), kName);
      {
        obs::prof::KernelFrame dedup(kName, /*dedup_top=*/true);
        EXPECT_EQ(obs::prof::CurrentFrame(), kName);
      }
      // The dedup frame must not have popped the frame it deduped onto.
      EXPECT_EQ(obs::prof::CurrentFrame(), kName);
    }
    EXPECT_EQ(obs::prof::CurrentFrame(), kOuter);
    {
      // On a different top frame, dedup_top still pushes.
      obs::prof::KernelFrame fresh(kName, /*dedup_top=*/true);
      EXPECT_EQ(obs::prof::CurrentFrame(), kName);
    }
    EXPECT_EQ(obs::prof::CurrentFrame(), kOuter);
  }
}

TEST_F(ParObsTest, BackwardPassMatMulShowsUpInProfiles) {
  // End-to-end satellite check: with the sampler running, training-style
  // forward+backward loops must attribute ticks to tensor.matmul *under*
  // autograd.backward — the stack that was invisible before the
  // MatMulTransB frame fix.
  const std::string folded =
      ::testing::TempDir() + "/adafgl_par_backward.folded";
  std::remove(folded.c_str());
  obs::SetProfilePath(folded);
  obs::prof::SetProfileHz(4000);  // Fast so a short run collects ticks.
  obs::SetProfileEnabled(true);
  obs::prof::StartSampler();

  Rng rng(9);
  const Matrix av = RandomMatrix(128, 128, rng, 0.0);
  const Matrix bv = RandomMatrix(128, 128, rng, 0.0);
  const Matrix target = RandomMatrix(128, 128, rng, 0.0);
  for (int i = 0; i < 400 && obs::prof::SampledTicks() < 100; ++i) {
    Tensor a = MakeParam(av);
    Tensor b = MakeParam(bv);
    Tensor loss = ops::MseLoss(ops::MatMul(a, b), target);
    Backward(loss);
  }
  obs::prof::StopSamplerAndWrite();
  obs::SetProfileEnabled(false);

  ASSERT_GT(obs::prof::SampledTicks(), 20)
      << "sampler collected too few ticks to judge";
  bool backward_matmul_seen = false;
  for (const auto& [stack, ticks] : obs::prof::FoldedTicksForTest()) {
    if (stack.find("autograd.backward") != std::string::npos &&
        stack.find("tensor.matmul") != std::string::npos && ticks > 0) {
      backward_matmul_seen = true;
      break;
    }
  }
  EXPECT_TRUE(backward_matmul_seen)
      << "no sampled stack shows tensor.matmul under autograd.backward";
}

}  // namespace
}  // namespace adafgl
