#include <gtest/gtest.h>

#include "comm/wire.h"
#include "fed/federation.h"
#include "fed/splits.h"
#include "tensor/matrix_ops.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::MakeSmallSbm;

FedConfig TinyConfig() {
  FedConfig cfg;
  cfg.rounds = 4;
  cfg.local_epochs = 2;
  cfg.post_local_epochs = 2;
  cfg.hidden = 16;
  cfg.eval_every = 1;
  cfg.seed = 7;
  return cfg;
}

FederatedDataset TinyFederation(int clients = 3, double homophily = 0.85) {
  Graph g = MakeSmallSbm(240, 3, homophily, 71);
  Rng rng(72);
  return StructureNonIidSplit(g, clients, InjectionMode::kNone, 0.5, rng);
}

TEST(AverageWeightsTest, WeightedMean) {
  Matrix a(1, 2, {2.0f, 4.0f});
  Matrix b(1, 2, {4.0f, 8.0f});
  const auto avg = AverageWeights({{a}, {b}}, {1.0, 3.0});
  ASSERT_EQ(avg.size(), 1u);
  EXPECT_FLOAT_EQ(avg[0](0, 0), 3.5f);
  EXPECT_FLOAT_EQ(avg[0](0, 1), 7.0f);
}

TEST(AverageWeightsTest, SingleClientIsIdentity) {
  Matrix a(2, 2, {1, 2, 3, 4});
  const auto avg = AverageWeights({{a}}, {5.0});
  EXPECT_LT(MaxAbsDiff(avg[0], a), 1e-7f);
}

TEST(FedClientTest, TrainLowersLossAndTracksDelta) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  FedClient client(fd.clients[0], cfg, 99);
  EXPECT_GT(client.num_train(), 0);
  const auto before = client.Weights();
  const double loss1 = client.TrainEpochs(3);
  EXPECT_GT(loss1, 0.0);
  const auto& delta = client.last_delta();
  ASSERT_EQ(delta.size(), before.size());
  double norm = 0.0;
  for (const Matrix& d : delta) norm += FrobeniusNorm(d);
  EXPECT_GT(norm, 0.0);
}

TEST(FedClientTest, SetGlobalWeightsOverwrites) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  FedClient a(fd.clients[0], cfg, 1);
  FedClient b(fd.clients[1], cfg, 2);
  b.SetGlobalWeights(a.Weights());
  const auto wa = a.Weights();
  const auto wb = b.Weights();
  for (size_t i = 0; i < wa.size(); ++i) {
    EXPECT_LT(MaxAbsDiff(wa[i], wb[i]), 1e-7f);
  }
}

TEST(FedClientTest, EvalAccuracyInRange) {
  FederatedDataset fd = TinyFederation();
  FedClient client(fd.clients[0], TinyConfig(), 3);
  const double acc = client.EvalTest();
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(FedClientTest, MaskFlagsKeepMasksLocal) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.model = "GCN+mask";
  FedClient client(fd.clients[0], cfg, 4);
  client.SetMaskFlags({false, false, true, false, false, true});
  auto weights = client.Weights();
  ASSERT_EQ(weights.size(), 6u);
  // Zero out everything and broadcast: masked entries must keep their
  // original values.
  const Matrix original_mask = weights[2];
  for (Matrix& w : weights) w.Zero();
  client.SetGlobalWeights(weights);
  EXPECT_LT(MaxAbsDiff(client.Weights()[2], original_mask), 1e-7f);
  EXPECT_LT(FrobeniusNorm(client.Weights()[0]), 1e-7f);
}

TEST(RunFedAvgTest, ProducesHistoryAndWeights) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  FedRunResult r = RunFedAvg(fd, cfg);
  EXPECT_EQ(static_cast<int>(r.history.size()), cfg.rounds);
  EXPECT_FALSE(r.global_weights.empty());
  EXPECT_EQ(r.client_test_acc.size(), fd.clients.size());
  EXPECT_GT(r.final_test_acc, 0.0);
  EXPECT_LE(r.final_test_acc, 1.0);
}

TEST(RunFedAvgTest, LearnsHomophilousTask) {
  FederatedDataset fd = TinyFederation(3, 0.9);
  FedConfig cfg = TinyConfig();
  cfg.rounds = 10;
  FedRunResult r = RunFedAvg(fd, cfg);
  // Far above the 1/3 random baseline.
  EXPECT_GT(r.final_test_acc, 0.55);
}

TEST(RunFedAvgTest, CommunicationAccounting) {
  // Regression oracle against the pre-transport accounting: the serialized
  // float volume reported by the comm layer must match the historical
  // `rounds * clients * ParamBytes()` totals exactly under the lossless
  // codec, and the measured wire bytes must exceed it by exactly the
  // framing overhead of the exchanged messages.
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  FedRunResult r = RunFedAvg(fd, cfg);
  FedClient probe(fd.clients[0], cfg, 5);
  const auto messages = static_cast<int64_t>(cfg.rounds) *
                        static_cast<int64_t>(fd.clients.size());
  const int64_t expected = messages * probe.ParamBytes();
  EXPECT_EQ(r.comm.stats.payload_float_bytes_up, expected);
  EXPECT_EQ(r.comm.stats.payload_float_bytes_down, expected);
  EXPECT_EQ(r.comm.stats.messages_up, messages);
  EXPECT_EQ(r.comm.stats.messages_down, messages);
  // Per-message overhead: frame header + codec envelope (count field plus
  // one rows/cols pair per weight matrix).
  const int64_t overhead =
      comm::kFrameHeaderBytes + 4 +
      16 * static_cast<int64_t>(probe.Weights().size());
  EXPECT_EQ(r.bytes_up, expected + messages * overhead);
  EXPECT_EQ(r.bytes_down, expected + messages * overhead);
  EXPECT_EQ(r.bytes_up, r.comm.stats.bytes_up);
  EXPECT_EQ(r.bytes_down, r.comm.stats.bytes_down);
  EXPECT_EQ(r.comm.codec, "lossless");
  EXPECT_EQ(r.comm.stats.drops, 0);
  EXPECT_EQ(r.comm.stats.dropouts, 0);
}

TEST(RunFedAvgTest, PartialParticipationReducesTraffic) {
  FederatedDataset fd = TinyFederation(4);
  FedConfig cfg = TinyConfig();
  FedRunResult full = RunFedAvg(fd, cfg);
  cfg.participation = 0.5;
  FedRunResult half = RunFedAvg(fd, cfg);
  EXPECT_LT(half.bytes_up, full.bytes_up);
  EXPECT_EQ(half.bytes_up, full.bytes_up / 2);
}

TEST(RunFedAvgTest, DeterministicForFixedSeed) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  FedRunResult a = RunFedAvg(fd, cfg);
  FedRunResult b = RunFedAvg(fd, cfg);
  EXPECT_EQ(a.final_test_acc, b.final_test_acc);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].test_acc, b.history[i].test_acc);
  }
}

TEST(RunFedAvgTest, InductiveModeRuns) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.inductive = true;
  FedRunResult r = RunFedAvg(fd, cfg);
  EXPECT_GT(r.final_test_acc, 0.0);
}

TEST(RunFedAvgTest, EveryZooBackboneTrains) {
  FederatedDataset fd = TinyFederation();
  for (const std::string& model :
       {std::string("SGC"), std::string("GPRGNN"), std::string("GloGNN")}) {
    FedConfig cfg = TinyConfig();
    cfg.rounds = 2;
    cfg.model = model;
    FedRunResult r = RunFedAvg(fd, cfg);
    EXPECT_GT(r.final_test_acc, 0.2) << model;
  }
}

TEST(WeightedTestAccuracyTest, WeightsByTestSize) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  auto clients = MakeClients(fd, cfg);
  const double acc = WeightedTestAccuracy(clients);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace adafgl
