// Federated-level observability tests: the per-round event stream a
// FedAvg smoke run emits (pinned against a golden key list), the round
// trajectory recorded in FedRunResult, and the bench.json document.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/bench_json.h"
#include "fed/federation.h"
#include "fed/splits.h"
#include "json_check.h"
#include "obs/log.h"
#include "obs/obs.h"
#include "test_util.h"

#ifndef ADAFGL_TESTS_DIR
#define ADAFGL_TESTS_DIR "tests"
#endif

namespace adafgl {
namespace {

using ::adafgl::testing::IsValidJson;
using ::adafgl::testing::MakeSmallSbm;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Top-level key names of one flat JSON object line, in order.
std::vector<std::string> ObjectKeys(const std::string& line) {
  std::vector<std::string> keys;
  size_t pos = 0;
  while (pos < line.size()) {
    const size_t open = line.find('"', pos);
    if (open == std::string::npos) break;
    const size_t close = line.find('"', open + 1);
    if (close == std::string::npos) break;
    if (close + 1 < line.size() && line[close + 1] == ':') {
      keys.push_back(line.substr(open + 1, close - open - 1));
      // Skip the value; string values may contain '"' or ':'.
      size_t v = close + 2;
      if (v < line.size() && line[v] == '"') {
        ++v;
        while (v < line.size() && line[v] != '"') {
          if (line[v] == '\\') ++v;
          ++v;
        }
      }
      pos = v + 1;
    } else {
      pos = close + 1;
    }
  }
  return keys;
}

FederatedDataset TwoClientFederation() {
  Graph g = MakeSmallSbm(160, 3, 0.85, 17);
  Rng rng(18);
  return StructureNonIidSplit(g, 2, InjectionMode::kNone, 0.5, rng);
}

FedConfig SmokeConfig() {
  FedConfig cfg;
  cfg.rounds = 3;
  cfg.local_epochs = 1;
  cfg.post_local_epochs = 1;
  cfg.hidden = 16;
  cfg.eval_every = 1;
  cfg.seed = 5;
  return cfg;
}

TEST(ObsFedTest, FedAvgSmokeEmitsGoldenRoundEventKeys) {
  // The contract bench.json and any downstream consumer depend on: every
  // round of a FedAvg run emits one "fed.round" event whose key set (and
  // order) matches the checked-in golden file.
  const std::string jsonl =
      ::testing::TempDir() + "/adafgl_obs_fed_events.jsonl";
  std::remove(jsonl.c_str());
  obs::SetJsonlPath(jsonl);
  FedRunResult result = RunFedAvg(TwoClientFederation(), SmokeConfig());
  obs::Flush();
  obs::SetJsonlPath("");

  const std::vector<std::string> golden_keys = ReadLines(
      std::string(ADAFGL_TESTS_DIR) + "/golden/fed_round_event_keys.txt");
  ASSERT_FALSE(golden_keys.empty());

  int fed_round_events = 0;
  for (const std::string& line : ReadLines(jsonl)) {
    std::string err;
    ASSERT_TRUE(IsValidJson(line, &err)) << err << "\n" << line;
    if (line.find("\"event\":\"fed.round\"") == std::string::npos) continue;
    ++fed_round_events;
    EXPECT_EQ(ObjectKeys(line), golden_keys) << line;
  }
  // eval_every=1: one event per round.
  EXPECT_EQ(fed_round_events, SmokeConfig().rounds);
  EXPECT_EQ(result.history.size(),
            static_cast<size_t>(SmokeConfig().rounds));
  std::remove(jsonl.c_str());
}

TEST(ObsFedTest, RoundRecordsCarryMonotoneTransportAccounting) {
  FedConfig cfg = SmokeConfig();
  // A non-trivial link so the simulated clock advances.
  cfg.comm.link.latency_s = 0.01;
  FedRunResult result = RunFedAvg(TwoClientFederation(), cfg);
  ASSERT_EQ(result.history.size(), static_cast<size_t>(cfg.rounds));
  for (size_t i = 0; i < result.history.size(); ++i) {
    const RoundRecord& r = result.history[i];
    EXPECT_EQ(r.round, static_cast<int>(i) + 1);
    EXPECT_EQ(r.participants, 2);
    EXPECT_GT(r.train_loss, 0.0);
    EXPECT_GT(r.bytes_up, 0);
    EXPECT_GT(r.bytes_down, 0);
    EXPECT_GT(r.sim_seconds, 0.0);
    if (i > 0) {
      const RoundRecord& prev = result.history[i - 1];
      EXPECT_GE(r.bytes_up, prev.bytes_up);
      EXPECT_GE(r.bytes_down, prev.bytes_down);
      EXPECT_GE(r.sim_seconds, prev.sim_seconds);
    }
  }
  // The final record matches the run-level accounting.
  EXPECT_EQ(result.history.back().bytes_up, result.comm.stats.bytes_up);
  EXPECT_EQ(result.history.back().bytes_down, result.comm.stats.bytes_down);
}

TEST(ObsFedTest, BenchReportWritesSchemaDocument) {
  const std::string path = ::testing::TempDir() + "/adafgl_bench_test.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("ADAFGL_BENCH_JSON", path.c_str(), 1), 0);
  BenchReport::Global().ResetForTest();
  ASSERT_TRUE(BenchReport::Global().enabled());

  BenchReport::Global().SetExperiment("Test Table", "schema check");
  MeanStd acc;
  acc.mean = 0.81;
  acc.std = 0.02;
  BenchReport::Global().AddCell("FedGCN", "Cora", "noniid", acc);
  FedRunResult run = RunFedAvg(TwoClientFederation(), SmokeConfig());
  BenchReport::Global().AddRun("FedGCN", "Cora", "noniid", run);
  BenchReport::Global().Write();

  const std::string doc = ReadFile(path);
  std::string err;
  ASSERT_TRUE(IsValidJson(doc, &err)) << err;
  for (const char* key :
       {"schema_version", "experiment", "description", "knobs", "seeds",
        "rounds", "epochs", "post_epochs", "codec", "threads", "cells",
        "method", "dataset", "split", "acc_mean", "acc_std", "runs",
        "final_acc", "bytes_up", "bytes_down", "messages_up",
        "messages_down", "drops", "dropouts", "corruptions", "nacks",
        "deadline_cuts", "crashes", "rejected_updates", "clipped_updates",
        "rounds_skipped", "sim_seconds", "train_loss", "test_acc",
        "participants", "quorum"}) {
    EXPECT_NE(doc.find(std::string("\"") + key + "\":"), std::string::npos)
        << "missing key " << key;
  }
  // Per-round trajectory present: one entry per recorded round.
  EXPECT_NE(doc.find("\"round\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"round\":3"), std::string::npos);

  unsetenv("ADAFGL_BENCH_JSON");
  BenchReport::Global().ResetForTest();
  EXPECT_FALSE(BenchReport::Global().enabled());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adafgl
