#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "tensor/csr.h"
#include "tensor/matrix_ops.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::CheckGradient;

/// Reduces any tensor to a scalar via a fixed weighted sum, so every op can
/// be gradient-checked through the same harness.
Tensor ToScalar(const Tensor& t) {
  Matrix w(t->cols(), 1);
  for (int64_t j = 0; j < t->cols(); ++j) {
    w(j, 0) = 0.1f * static_cast<float>(j + 1);
  }
  Matrix ones(1, t->rows());
  for (int64_t i = 0; i < t->rows(); ++i) {
    ones(0, i) = 0.05f * static_cast<float>(i + 1);
  }
  return ops::MatMul(ops::MatMul(MakeConst(ones), t), MakeConst(w));
}

/// One gradient-check case: builds loss = scalar(op(param)) and verifies
/// d loss / d param numerically.
struct OpCase {
  std::string name;
  // Builds the op output from the parameter tensor.
  std::function<Tensor(const Tensor&)> build;
  int64_t rows = 3;
  int64_t cols = 4;
};

class OpGradientTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(OpGradientTest, MatchesNumericalGradient) {
  const OpCase& c = GetParam();
  Rng rng(13);
  Tensor param =
      MakeParam(Matrix::Gaussian(c.rows, c.cols, 0.7f, rng));
  auto loss_value = [&]() {
    return static_cast<double>(ToScalar(c.build(param))->value()(0, 0));
  };
  Tensor loss = ToScalar(c.build(param));
  Backward(loss);
  CheckGradient(param, loss_value);
}

std::vector<OpCase> OpCases() {
  std::vector<OpCase> cases;
  Rng rng(99);
  const auto other = std::make_shared<Matrix>(
      Matrix::Gaussian(3, 4, 0.5f, rng));
  const auto square = std::make_shared<Matrix>(
      Matrix::Gaussian(3, 3, 0.5f, rng));
  const auto csr = std::make_shared<CsrMatrix>(CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 1.0f}, {1, 0, 0.5f}, {1, 2, 2.0f}, {2, 2, 1.5f}}));

  cases.push_back({"Identity", [](const Tensor& x) { return x; }});
  cases.push_back({"Scale", [](const Tensor& x) {
    return ops::Scale(x, 2.5f);
  }});
  cases.push_back({"AddConst", [other](const Tensor& x) {
    return ops::AddConst(x, *other);
  }});
  cases.push_back({"AddSelf", [](const Tensor& x) {
    return ops::Add(x, x);
  }});
  cases.push_back({"SubConstOther", [other](const Tensor& x) {
    return ops::Sub(x, MakeConst(*other));
  }});
  cases.push_back({"MulConst", [other](const Tensor& x) {
    return ops::Mul(x, MakeConst(*other));
  }});
  cases.push_back({"MulSelf", [](const Tensor& x) {
    return ops::Mul(x, x);
  }});
  cases.push_back({"Relu", [](const Tensor& x) { return ops::Relu(x); }});
  cases.push_back({"Tanh", [](const Tensor& x) { return ops::Tanh(x); }});
  cases.push_back({"Sigmoid", [](const Tensor& x) {
    return ops::Sigmoid(x);
  }});
  cases.push_back({"Softmax", [](const Tensor& x) {
    return ops::Softmax(x);
  }});
  cases.push_back({"LogSoftmax", [](const Tensor& x) {
    return ops::LogSoftmax(x);
  }});
  cases.push_back({"MatMulLeft", [other](const Tensor& x) {
    return ops::MatMul(x, MakeConst(Transpose(*other)));
  }});
  cases.push_back({"MatMulRight", [square](const Tensor& x) {
    return ops::MatMul(MakeConst(*square), x);
  }});
  cases.push_back({"MatMulTransB", [other](const Tensor& x) {
    return ops::MatMulTransB(x, MakeConst(*other));
  }});
  cases.push_back({"GramSelf", [](const Tensor& x) {
    return ops::MatMulTransB(x, x);
  }});
  cases.push_back({"SpMM", [csr](const Tensor& x) {
    return ops::SpMM(csr, x);
  }});
  cases.push_back({"ConcatCols", [other](const Tensor& x) {
    return ops::ConcatCols({x, MakeConst(*other), x});
  }});
  cases.push_back({"SliceCols", [](const Tensor& x) {
    return ops::SliceCols(x, 1, 2);
  }});
  cases.push_back({"GatherRows", [](const Tensor& x) {
    return ops::GatherRows(x, {2, 0, 2});
  }});
  cases.push_back({"AddBiasAsInput", [other](const Tensor& x) {
    Matrix b(1, 4);
    for (int64_t j = 0; j < 4; ++j) b(0, j) = 0.3f * static_cast<float>(j);
    return ops::AddBias(x, MakeConst(b));
  }});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpGradientTest,
                         ::testing::ValuesIn(OpCases()),
                         [](const ::testing::TestParamInfo<OpCase>& info) {
                           return info.param.name;
                         });

// ---------------------------------------------------------- Scalar params

TEST(AutogradTest, ScaleByScalarGradient) {
  Rng rng(1);
  Tensor x = MakeConst(Matrix::Gaussian(3, 3, 1.0f, rng));
  Matrix sv(1, 1);
  sv(0, 0) = 0.7f;
  Tensor s = MakeParam(sv);
  auto loss_value = [&]() {
    return static_cast<double>(
        ToScalar(ops::ScaleByScalar(x, s))->value()(0, 0));
  };
  Tensor loss = ToScalar(ops::ScaleByScalar(x, s));
  Backward(loss);
  CheckGradient(s, loss_value);
}

TEST(AutogradTest, LerpGradientInAllThreeInputs) {
  Rng rng(2);
  Tensor a = MakeParam(Matrix::Gaussian(2, 3, 1.0f, rng));
  Tensor b = MakeParam(Matrix::Gaussian(2, 3, 1.0f, rng));
  Matrix gv(1, 1);
  gv(0, 0) = 0.3f;
  Tensor g = MakeParam(gv);
  auto loss_value = [&]() {
    return static_cast<double>(ToScalar(ops::Lerp(a, b, g))->value()(0, 0));
  };
  Tensor loss = ToScalar(ops::Lerp(a, b, g));
  Backward(loss);
  CheckGradient(a, loss_value);
  CheckGradient(b, loss_value);
  CheckGradient(g, loss_value);
}

TEST(AutogradTest, ScaleRowsGradientBothInputs) {
  Rng rng(3);
  Tensor x = MakeParam(Matrix::Gaussian(3, 4, 1.0f, rng));
  Tensor s = MakeParam(Matrix::Gaussian(3, 1, 0.5f, rng));
  auto loss_value = [&]() {
    return static_cast<double>(
        ToScalar(ops::ScaleRows(x, s))->value()(0, 0));
  };
  Tensor loss = ToScalar(ops::ScaleRows(x, s));
  Backward(loss);
  CheckGradient(x, loss_value);
  CheckGradient(s, loss_value);
}

// --------------------------------------------------------------- Losses

TEST(AutogradTest, NllLossGradient) {
  Rng rng(4);
  Tensor x = MakeParam(Matrix::Gaussian(4, 3, 1.0f, rng));
  const std::vector<int32_t> labels = {0, 2, 1, 0};
  const std::vector<int32_t> mask = {0, 1, 3};
  auto loss_value = [&]() {
    return static_cast<double>(
        ops::NllLoss(ops::LogSoftmax(x), labels, mask)->value()(0, 0));
  };
  Tensor loss = ops::NllLoss(ops::LogSoftmax(x), labels, mask);
  Backward(loss);
  CheckGradient(x, loss_value);
}

TEST(AutogradTest, ProbNllLossGradient) {
  Rng rng(5);
  Tensor x = MakeParam(Matrix::Gaussian(4, 3, 1.0f, rng));
  const std::vector<int32_t> labels = {0, 2, 1, 0};
  const std::vector<int32_t> mask = {1, 2};
  auto loss_value = [&]() {
    return static_cast<double>(
        ops::ProbNllLoss(ops::Softmax(x), labels, mask)->value()(0, 0));
  };
  Tensor loss = ops::ProbNllLoss(ops::Softmax(x), labels, mask);
  Backward(loss);
  CheckGradient(x, loss_value);
}

TEST(AutogradTest, FrobeniusLossGradient) {
  Rng rng(6);
  Tensor x = MakeParam(Matrix::Gaussian(3, 3, 1.0f, rng));
  Matrix target = Matrix::Gaussian(3, 3, 1.0f, rng);
  auto loss_value = [&]() {
    return static_cast<double>(
        ops::FrobeniusLoss(x, target)->value()(0, 0));
  };
  Tensor loss = ops::FrobeniusLoss(x, target);
  Backward(loss);
  CheckGradient(x, loss_value);
}

TEST(AutogradTest, MseLossGradient) {
  Rng rng(7);
  Tensor x = MakeParam(Matrix::Gaussian(3, 2, 1.0f, rng));
  Matrix target = Matrix::Gaussian(3, 2, 1.0f, rng);
  auto loss_value = [&]() {
    return static_cast<double>(ops::MseLoss(x, target)->value()(0, 0));
  };
  Tensor loss = ops::MseLoss(x, target);
  Backward(loss);
  CheckGradient(x, loss_value);
}

TEST(AutogradTest, L1PenaltyGradient) {
  // Use values away from 0 so the subgradient is well-defined.
  Matrix v(2, 2, {1.0f, -2.0f, 3.0f, -0.5f});
  Tensor x = MakeParam(v);
  auto loss_value = [&]() {
    return static_cast<double>(ops::L1Penalty(x)->value()(0, 0));
  };
  Tensor loss = ops::L1Penalty(x);
  Backward(loss);
  CheckGradient(x, loss_value);
}

// --------------------------------------------------------- Graph plumbing

TEST(AutogradTest, GradientAccumulatesAcrossTwoUses) {
  Matrix v(1, 1);
  v(0, 0) = 3.0f;
  Tensor x = MakeParam(v);
  // loss = x * x  ->  dloss/dx = 2x = 6.
  Tensor loss = ops::Mul(x, x);
  Backward(loss);
  EXPECT_NEAR(x->grad()(0, 0), 6.0f, 1e-4);
}

TEST(AutogradTest, NoGradientIntoConstants) {
  Rng rng(8);
  Tensor c = MakeConst(Matrix::Gaussian(2, 2, 1.0f, rng));
  Tensor x = MakeParam(Matrix::Gaussian(2, 2, 1.0f, rng));
  Tensor loss = ToScalar(ops::Add(x, c));
  Backward(loss);
  EXPECT_TRUE(c->grad().empty());
  EXPECT_FALSE(x->grad().empty());
}

TEST(AutogradTest, ZeroGradClears) {
  Matrix v(1, 1);
  v(0, 0) = 2.0f;
  Tensor x = MakeParam(v);
  Backward(ops::Mul(x, x));
  EXPECT_GT(std::abs(x->grad()(0, 0)), 0.0f);
  x->ZeroGrad();
  EXPECT_FLOAT_EQ(x->grad()(0, 0), 0.0f);
}

TEST(AutogradTest, DropoutEvalIsIdentity) {
  Rng rng(9);
  Tensor x = MakeParam(Matrix::Gaussian(4, 4, 1.0f, rng));
  Tensor out = ops::Dropout(x, 0.5f, /*training=*/false, rng);
  EXPECT_EQ(out.get(), x.get());
}

TEST(AutogradTest, DropoutPreservesExpectation) {
  Rng rng(10);
  Tensor x = MakeConst(Matrix::Constant(200, 50, 1.0f));
  Tensor out = ops::Dropout(x, 0.3f, /*training=*/true, rng);
  // Inverted dropout: E[out] == 1.
  EXPECT_NEAR(SumAll(out->value()) / 10000.0, 1.0, 0.05);
}

TEST(AutogradTest, DeepChainBackpropagates) {
  Matrix v(1, 1);
  v(0, 0) = 1.0f;
  Tensor x = MakeParam(v);
  Tensor h = x;
  for (int i = 0; i < 50; ++i) h = ops::Scale(h, 1.01f);
  Backward(h);
  EXPECT_NEAR(x->grad()(0, 0), std::pow(1.01f, 50.0f), 1e-2);
}

TEST(AutogradTest, MeanOfAveragesGradients) {
  Matrix v(1, 1);
  v(0, 0) = 2.0f;
  Tensor x = MakeParam(v);
  Tensor loss = ops::MeanOf({x, x, x, x});
  Backward(loss);
  EXPECT_NEAR(x->grad()(0, 0), 1.0f, 1e-5);
}

TEST(AutogradTest, AddScalarsSums) {
  Matrix v(1, 1);
  v(0, 0) = 1.5f;
  Tensor x = MakeParam(v);
  Tensor loss = ops::AddScalars({x, ops::Scale(x, 2.0f)});
  EXPECT_NEAR(loss->value()(0, 0), 4.5f, 1e-5);
  Backward(loss);
  EXPECT_NEAR(x->grad()(0, 0), 3.0f, 1e-5);
}

}  // namespace
}  // namespace adafgl
