#include <gtest/gtest.h>

#include "core/label_propagation.h"
#include "core/propagation_matrix.h"
#include "tensor/matrix_ops.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::MakeSmallSbm;
using ::adafgl::testing::MakeTwoCliqueGraph;

TEST(LabelPropagationTest, NoSeedsGivesNoClassPreference) {
  Graph g = MakeTwoCliqueGraph(5);
  Matrix y = LabelPropagation(g, /*labeled=*/{});
  for (int64_t i = 0; i < y.rows(); ++i) {
    // Both class scores stay equal (the operator cannot create class
    // preference from a uniform start) and near the 0.5 prior (the
    // sym-normalised operator bleeds a little mass at irregular nodes).
    EXPECT_NEAR(y(i, 0), y(i, 1), 1e-5);
    EXPECT_NEAR(y(i, 0), 0.5f, 0.05);
  }
}

TEST(LabelPropagationTest, ClassifiesTwoCliques) {
  Graph g = MakeTwoCliqueGraph(8);
  // Seed one node per clique.
  Matrix y = LabelPropagation(g, {0, 8});
  std::vector<int32_t> all_nodes;
  for (int32_t v = 0; v < g.num_nodes(); ++v) all_nodes.push_back(v);
  EXPECT_NEAR(Accuracy(y, g.labels, all_nodes), 1.0, 1e-9);
}

TEST(LabelPropagationTest, KappaOneFreezesSeeds) {
  Graph g = MakeTwoCliqueGraph(4);
  LabelPropOptions opt;
  opt.kappa = 1.0f;
  Matrix y = LabelPropagation(g, {0}, opt);
  EXPECT_NEAR(y(0, 0), 1.0f, 1e-5);
  // Unlabeled nodes stay uniform.
  EXPECT_NEAR(y(5, 0), 0.5f, 1e-5);
}

TEST(LabelPropagationTest, MoreStepsReachFurther) {
  // Path graph: influence decays with distance; more steps raise the far
  // node's seed-class mass.
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i < 9; ++i) edges.emplace_back(i, i + 1);
  std::vector<int32_t> labels(10, 0);
  labels[9] = 1;
  Rng rng(1);
  Matrix features = GenerateClassFeatures(labels, 2, 4, 1.0, 0.1, rng);
  Graph g = MakeGraph(10, edges, std::move(features), std::move(labels), 2);
  LabelPropOptions short_lp;
  short_lp.steps = 1;
  LabelPropOptions long_lp;
  long_lp.steps = 8;
  const Matrix y_short = LabelPropagation(g, {0}, short_lp);
  const Matrix y_long = LabelPropagation(g, {0}, long_lp);
  EXPECT_GT(y_long(5, 0), y_short(5, 0));
}

TEST(HcsTest, HighOnHomophilousGraph) {
  Graph g = MakeSmallSbm(300, 3, 0.95, 91);
  Rng rng(2);
  const double hcs = HomophilyConfidenceScore(g, 0.5, rng);
  EXPECT_GT(hcs, 0.6);
}

TEST(HcsTest, LowerOnHeterophilousGraph) {
  Graph homo = MakeSmallSbm(300, 3, 0.95, 92);
  Graph hete = MakeSmallSbm(300, 3, 0.1, 92);
  Rng r1(3), r2(3);
  double h_homo = 0.0, h_hete = 0.0;
  for (int i = 0; i < 5; ++i) {
    h_homo += HomophilyConfidenceScore(homo, 0.5, r1);
    h_hete += HomophilyConfidenceScore(hete, 0.5, r2);
  }
  EXPECT_GT(h_homo, h_hete + 0.2);
}

TEST(HcsTest, InUnitInterval) {
  Graph g = MakeSmallSbm(200, 3, 0.5, 93);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const double hcs = HomophilyConfidenceScore(g, 0.5, rng);
    EXPECT_GE(hcs, 0.0);
    EXPECT_LE(hcs, 1.0);
  }
}

TEST(HcsTest, TinyTrainSetFallsBack) {
  Graph g = MakeTwoCliqueGraph(4);
  g.train_nodes = {0};
  Rng rng(5);
  EXPECT_NEAR(HomophilyConfidenceScore(g, 0.5, rng), 0.5, 1e-9);
}

// --------------------------------------------------- Propagation matrix

TEST(PropagationMatrixTest, ScaleRemovesDiagonalAndNormalises) {
  Matrix p(3, 3, {5.0f, 1.0f, 1.0f,
                  1.0f, 5.0f, 2.0f,
                  1.0f, 2.0f, 5.0f});
  Matrix scaled = ScalePropagationMatrix(p);
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(scaled(i, i), 0.0f);
  // Symmetric input stays symmetric.
  EXPECT_LT(MaxAbsDiff(scaled, Transpose(scaled)), 1e-5f);
  // All entries non-negative and bounded.
  for (int64_t i = 0; i < scaled.size(); ++i) {
    EXPECT_GE(scaled.data()[i], 0.0f);
    EXPECT_LE(scaled.data()[i], 1.0f);
  }
}

TEST(PropagationMatrixTest, ZeroRowsStayZero) {
  Matrix p(2, 2);
  p(0, 0) = 3.0f;  // Only diagonal mass in row 0.
  Matrix scaled = ScalePropagationMatrix(p);
  EXPECT_FLOAT_EQ(SumAll(scaled), 0.0f);
}

TEST(PropagationMatrixTest, AlphaOneUsesTopologyOnly) {
  Graph g = MakeTwoCliqueGraph(4);
  Matrix uniform = Matrix::Constant(g.num_nodes(), 2, 0.5f);
  Matrix p = BuildPropagationMatrix(g, uniform, 1.0f);
  // With alpha = 1, non-adjacent off-diagonal pairs get zero weight.
  EXPECT_FLOAT_EQ(p(0, 5), 0.0f);  // Cross-clique non-bridge pair.
  EXPECT_GT(p(0, 1), 0.0f);        // Intra-clique edge.
}

TEST(PropagationMatrixTest, AffinityConnectsConfidentSameClassPairs) {
  Graph g = MakeTwoCliqueGraph(4);
  // Confident one-hot predictions by clique.
  Matrix probs(g.num_nodes(), 2);
  for (int32_t v = 0; v < g.num_nodes(); ++v) {
    probs(v, g.labels[static_cast<size_t>(v)]) = 1.0f;
  }
  Matrix p = BuildPropagationMatrix(g, probs, 0.0f);
  // Same-class non-adjacent pairs are connected, cross-class are not.
  EXPECT_GT(p(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(p(0, 5), 0.0f);
}

TEST(PropagationMatrixTest, SmoothingDenoisesFeatures) {
  // Smoothing class-pure affinity over noisy features pulls nodes toward
  // their class mean: same-class row distance shrinks.
  Graph g = MakeTwoCliqueGraph(10);
  Matrix probs(g.num_nodes(), 2);
  for (int32_t v = 0; v < g.num_nodes(); ++v) {
    probs(v, g.labels[static_cast<size_t>(v)]) = 1.0f;
  }
  Matrix p = BuildPropagationMatrix(g, probs, 0.5f);
  Matrix smoothed = MatMul(p, g.features);
  auto row_dist = [](const Matrix& m, int64_t a, int64_t b) {
    double acc = 0.0;
    for (int64_t j = 0; j < m.cols(); ++j) {
      acc += (m(a, j) - m(b, j)) * (m(a, j) - m(b, j));
    }
    return acc;
  };
  EXPECT_LT(row_dist(smoothed, 0, 1), row_dist(g.features, 0, 1) + 1e-9);
}

}  // namespace
}  // namespace adafgl
