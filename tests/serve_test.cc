// Tests of the online serving subsystem (serve/store.h, serve/server.h):
// freeze -> serialize -> restore -> serve must be bitwise identical to
// direct Step 2 inference, under any worker-thread count; plus the
// micro-batcher/queue/cache mechanics and the store wire format's error
// paths. Runs in the tsan CI lane (ctest -L serve) because the request
// path is the most concurrent code in the repo.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "core/adafgl.h"
#include "nn/serialize.h"
#include "obs/registry.h"
#include "serve/server.h"
#include "serve/store.h"
#include "test_util.h"

namespace adafgl::serve {
namespace {

using ::adafgl::testing::MakeSmallSbm;

FedConfig TinyConfig() {
  FedConfig cfg;
  cfg.rounds = 3;
  cfg.local_epochs = 1;
  cfg.post_local_epochs = 2;
  cfg.hidden = 16;
  cfg.seed = 23;
  return cfg;
}

AdaFglOptions ExportOptions() {
  AdaFglOptions opt;
  opt.personalized_epochs = 10;
  opt.hcs_repeats = 2;
  opt.export_predictions = true;
  return opt;
}

FederatedDataset TinyFederation(uint64_t seed = 201) {
  Graph g = MakeSmallSbm(240, 3, 0.85, seed);
  Rng rng(seed + 1);
  return StructureNonIidSplit(g, 3, InjectionMode::kRandom, 0.4, rng);
}

/// One trained-and-frozen fixture shared by the suite (training is the
/// expensive part; every test reads it immutably).
struct Frozen {
  FederatedDataset data;
  AdaFglResult trained;
  FrozenStore store;
};

const Frozen& SharedFrozen() {
  static const Frozen* fixture = [] {
    auto* f = new Frozen;
    f->data = TinyFederation();
    f->trained = RunAdaFgl(f->data, TinyConfig(), ExportOptions());
    f->store = *FreezeAdaFgl(f->trained);
    return f;
  }();
  return *fixture;
}

std::vector<CsrMatrix> Adjacency(const FederatedDataset& data) {
  std::vector<CsrMatrix> adj;
  for (const Graph& g : data.clients) adj.push_back(g.adj);
  return adj;
}

ServeOptions QuietOptions() {
  ServeOptions o;
  o.threads = 1;
  o.batch_size = 4;
  o.batch_deadline_us = 50;
  o.cache_mb = 1;
  return o;
}

TEST(ServeStoreTest, FreezeRequiresExportedPredictions) {
  AdaFglResult without;  // export_predictions defaulted off.
  Result<FrozenStore> r = FreezeAdaFgl(without);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(ServeStoreTest, FreezeMatchesPredictionsBitwise) {
  const Frozen& f = SharedFrozen();
  ASSERT_EQ(f.store.clients.size(), f.trained.client_predictions.size());
  std::vector<float> row;
  for (size_t c = 0; c < f.store.clients.size(); ++c) {
    const Matrix& direct = f.trained.client_predictions[c];
    const FrozenClient& frozen = f.store.clients[c];
    ASSERT_EQ(frozen.num_nodes, direct.rows());
    ASSERT_EQ(frozen.num_classes, direct.cols());
    row.resize(static_cast<size_t>(direct.cols()));
    for (int32_t v = 0; v < frozen.num_nodes; ++v) {
      frozen.ReadRow(v, row.data());
      EXPECT_EQ(std::memcmp(row.data(), direct.row(v),
                            row.size() * sizeof(float)),
                0)
          << "client " << c << " node " << v;
    }
  }
}

TEST(ServeStoreTest, SerializeRoundTripsBitExactly) {
  const Frozen& f = SharedFrozen();
  Result<FrozenStore> restored = DeserializeStore(SerializeStore(f.store));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->clients.size(), f.store.clients.size());
  for (size_t c = 0; c < f.store.clients.size(); ++c) {
    const FrozenClient& a = f.store.clients[c];
    const FrozenClient& b = restored->clients[c];
    EXPECT_EQ(a.num_nodes, b.num_nodes);
    EXPECT_EQ(a.num_classes, b.num_classes);
    EXPECT_EQ(a.hcs, b.hcs);
    ASSERT_EQ(a.probs.size(), b.probs.size());
    EXPECT_EQ(std::memcmp(a.probs.data(), b.probs.data(),
                          static_cast<size_t>(a.probs.size()) *
                              sizeof(float)),
              0);
  }
}

TEST(ServeStoreTest, Fp16StoreRoundTripsBitExactly) {
  const Frozen& f = SharedFrozen();
  Result<FrozenStore> half = FreezeAdaFgl(f.trained, Precision::kF16);
  ASSERT_TRUE(half.ok());
  // fp16 halves the payload.
  EXPECT_EQ(half->payload_bytes() * 2, f.store.payload_bytes());
  Result<FrozenStore> restored = DeserializeStore(SerializeStore(*half));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (size_t c = 0; c < half->clients.size(); ++c) {
    ASSERT_EQ(restored->clients[c].precision, Precision::kF16);
    EXPECT_EQ(restored->clients[c].probs_f16, half->clients[c].probs_f16);
  }
  // And the decoded rows are the fp16 rounding of the fp32 predictions.
  std::vector<float> row(
      static_cast<size_t>(half->clients[0].num_classes));
  const Matrix& direct = f.trained.client_predictions[0];
  half->clients[0].ReadRow(0, row.data());
  for (size_t j = 0; j < row.size(); ++j) {
    EXPECT_EQ(row[j], Fp16ToFloat(Fp16FromFloat(direct(0, j))));
  }
}

TEST(ServeStoreTest, DeserializeRejectsMalformedStores) {
  EXPECT_FALSE(DeserializeStore("not a checkpoint").ok());
  // A valid weight checkpoint that is not a frozen store (no header).
  Matrix w(2, 2);
  EXPECT_FALSE(DeserializeStore(SerializeWeights({w})).ok());
  // Header promising more clients than the payload carries.
  Matrix header(1, 4);
  header(0, 0) = 1.0f;  // version
  header(0, 1) = 3.0f;  // claims 3 clients, provides none
  EXPECT_FALSE(DeserializeStore(SerializeWeights({header})).ok());
}

TEST(ServeStoreTest, FileRoundTrip) {
  const Frozen& f = SharedFrozen();
  const std::string path =
      ::testing::TempDir() + "/adafgl_serve_store.bin";
  ASSERT_TRUE(SaveStoreToFile(f.store, path).ok());
  Result<FrozenStore> loaded = LoadStoreFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_clients(), f.store.num_clients());
  EXPECT_EQ(loaded->payload_bytes(), f.store.payload_bytes());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadStoreFromFile(path).ok());
}

TEST(ServeServerTest, ServedRowsMatchStepTwoBitwise) {
  const Frozen& f = SharedFrozen();
  Result<std::unique_ptr<Server>> server =
      Server::Create(f.store, Adjacency(f.data), QuietOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  for (int32_t c = 0; c < (*server)->num_clients(); ++c) {
    const Matrix& direct = f.trained.client_predictions[static_cast<size_t>(c)];
    for (int32_t v = 0; v < direct.rows(); v += 5) {
      Result<Prediction> p = (*server)->Predict({c, v, /*smooth=*/false});
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      ASSERT_EQ(p->probs.size(), static_cast<size_t>(direct.cols()));
      EXPECT_EQ(std::memcmp(p->probs.data(), direct.row(v),
                            p->probs.size() * sizeof(float)),
                0)
          << "client " << c << " node " << v;
      EXPECT_GE(p->latency_ns, 0);
    }
  }
}

TEST(ServeServerTest, ConcurrentQueriesDeterministicAcrossThreadCounts) {
  const Frozen& f = SharedFrozen();
  // The same query set must produce bitwise-identical predictions with 1,
  // 2 and 8 worker threads — batching and scheduling may differ, results
  // may not.
  std::vector<Query> queries;
  for (int32_t c = 0; c < f.store.num_clients(); ++c) {
    const int32_t n = f.store.clients[static_cast<size_t>(c)].num_nodes;
    for (int32_t v = 0; v < n; v += 3) {
      queries.push_back({c, v, /*smooth=*/(v % 2) == 0});
    }
  }
  std::vector<std::vector<float>> reference;
  for (int threads : {1, 2, 8}) {
    ServeOptions opts = QuietOptions();
    opts.threads = threads;
    opts.batch_size = 8;
    Result<std::unique_ptr<Server>> server =
        Server::Create(f.store, Adjacency(f.data), opts);
    ASSERT_TRUE(server.ok());
    // Submit everything asynchronously so micro-batches actually form.
    std::vector<std::future<Result<Prediction>>> futures;
    futures.reserve(queries.size());
    for (const Query& q : queries) futures.push_back((*server)->Submit(q));
    std::vector<std::vector<float>> got;
    got.reserve(queries.size());
    for (auto& fut : futures) {
      Result<Prediction> p = fut.get();
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      got.push_back(p->probs);
    }
    if (reference.empty()) {
      reference = std::move(got);
      continue;
    }
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].size(), reference[i].size());
      EXPECT_EQ(std::memcmp(got[i].data(), reference[i].data(),
                            got[i].size() * sizeof(float)),
                0)
          << "query " << i << " diverged at threads=" << threads;
    }
  }
}

TEST(ServeServerTest, QueueOverflowShedsLoadDeterministically) {
  const Frozen& f = SharedFrozen();
  ServeOptions opts = QuietOptions();
  opts.queue_capacity = 8;
  opts.start_paused = true;  // The batcher consumes nothing yet.
  Result<std::unique_ptr<Server>> server =
      Server::Create(f.store, {}, opts);
  ASSERT_TRUE(server.ok());
  std::vector<std::future<Result<Prediction>>> admitted;
  for (int i = 0; i < 8; ++i) {
    admitted.push_back((*server)->Submit({0, i, false}));
  }
  // Queue is exactly full: the next submits fail fast.
  for (int i = 0; i < 3; ++i) {
    Result<Prediction> shed = (*server)->Submit({0, 0, false}).get();
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), Status::Code::kOutOfRange);
  }
  EXPECT_EQ((*server)->Stats().rejected, 3);
  // Resume: every admitted query still completes.
  (*server)->ResumeForTest();
  for (auto& fut : admitted) {
    EXPECT_TRUE(fut.get().ok());
  }
  EXPECT_EQ((*server)->Stats().completed, 8);
}

TEST(ServeServerTest, CacheHitsRepeatQueriesAndStaysBitwise) {
  const Frozen& f = SharedFrozen();
  Result<std::unique_ptr<Server>> server =
      Server::Create(f.store, Adjacency(f.data), QuietOptions());
  ASSERT_TRUE(server.ok());
  Result<Prediction> first = (*server)->Predict({0, 7, true});
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  Result<Prediction> second = (*server)->Predict({0, 7, true});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(std::memcmp(first->probs.data(), second->probs.data(),
                        first->probs.size() * sizeof(float)),
            0);
  const ServeStats stats = (*server)->Stats();
  EXPECT_GE(stats.cache_hits, 1);
  EXPECT_GT(stats.cache_bytes, 0);
}

TEST(ServeServerTest, ZeroCacheBudgetDisablesCaching) {
  const Frozen& f = SharedFrozen();
  ServeOptions opts = QuietOptions();
  opts.cache_mb = 0;
  Result<std::unique_ptr<Server>> server = Server::Create(f.store, {}, opts);
  ASSERT_TRUE(server.ok());
  for (int i = 0; i < 3; ++i) {
    Result<Prediction> p = (*server)->Predict({0, 1, false});
    ASSERT_TRUE(p.ok());
    EXPECT_FALSE(p->cache_hit);
  }
  EXPECT_EQ((*server)->Stats().cache_hits, 0);
}

TEST(ServeServerTest, SmoothMatchesManualEgoGraphMix) {
  const Frozen& f = SharedFrozen();
  ServeOptions opts = QuietOptions();
  opts.smooth_gamma = 0.25;
  Result<std::unique_ptr<Server>> server =
      Server::Create(f.store, Adjacency(f.data), opts);
  ASSERT_TRUE(server.ok());
  const FrozenClient& client = f.store.clients[0];
  const CsrMatrix& adj = f.data.clients[0].adj;
  const auto k = static_cast<size_t>(client.num_classes);
  for (int32_t v : {0, 5, 11}) {
    Result<Prediction> p = (*server)->Predict({0, v, /*smooth=*/true});
    ASSERT_TRUE(p.ok());
    std::vector<float> expect(k), row(k), sum(k, 0.0f);
    client.ReadRow(v, expect.data());
    int64_t degree = 0;
    adj.ForEachInRow(v, [&](int32_t u, float) {
      client.ReadRow(u, row.data());
      for (size_t j = 0; j < k; ++j) sum[j] += row[j];
      ++degree;
    });
    if (degree > 0) {
      const float gamma = 0.25f;
      const float inv = 1.0f / static_cast<float>(degree);
      for (size_t j = 0; j < k; ++j) {
        expect[j] = (1.0f - gamma) * expect[j] + gamma * sum[j] * inv;
      }
    }
    EXPECT_EQ(std::memcmp(p->probs.data(), expect.data(),
                          k * sizeof(float)),
              0)
        << "node " << v;
  }
}

TEST(ServeServerTest, RejectsInvalidQueriesWithoutEnqueuing) {
  const Frozen& f = SharedFrozen();
  Result<std::unique_ptr<Server>> server =
      Server::Create(f.store, {}, QuietOptions());
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE((*server)->Predict({-1, 0, false}).ok());
  EXPECT_FALSE((*server)->Predict({99, 0, false}).ok());
  EXPECT_FALSE((*server)->Predict({0, -1, false}).ok());
  EXPECT_FALSE((*server)->Predict({0, 1 << 20, false}).ok());
  // Smooth without adjacency is a client error, not a crash.
  Result<Prediction> smooth = (*server)->Predict({0, 0, true});
  ASSERT_FALSE(smooth.ok());
  EXPECT_EQ(smooth.status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ((*server)->Stats().submitted, 0);
}

TEST(ServeServerTest, CreateValidatesStoreAndOptions) {
  const Frozen& f = SharedFrozen();
  EXPECT_FALSE(Server::Create(FrozenStore{}, {}, QuietOptions()).ok());
  // Adjacency count mismatch.
  std::vector<CsrMatrix> adj = Adjacency(f.data);
  adj.pop_back();
  EXPECT_FALSE(Server::Create(f.store, adj, QuietOptions()).ok());
  ServeOptions bad = QuietOptions();
  bad.batch_size = 0;
  EXPECT_FALSE(Server::Create(f.store, {}, bad).ok());
  bad = QuietOptions();
  bad.smooth_gamma = 1.5;
  EXPECT_FALSE(Server::Create(f.store, {}, bad).ok());
}

TEST(ServeServerTest, StatsReportLatencyQuantiles) {
  obs::MetricsRegistry::Global().ResetForTest();
  const Frozen& f = SharedFrozen();
  Result<std::unique_ptr<Server>> server =
      Server::Create(f.store, {}, QuietOptions());
  ASSERT_TRUE(server.ok());
  for (int32_t v = 0; v < 32; ++v) {
    ASSERT_TRUE((*server)->Predict({0, v % 8, false}).ok());
  }
  const ServeStats stats = (*server)->Stats();
  EXPECT_EQ(stats.completed, 32);
  EXPECT_GT(stats.p50_latency_ns, 0.0);
  EXPECT_GE(stats.p99_latency_ns, stats.p50_latency_ns);
  EXPECT_GT(stats.mean_latency_ns, 0.0);
}

}  // namespace
}  // namespace adafgl::serve
