#include <cstdlib>

#include <gtest/gtest.h>

#include "eval/report.h"
#include "eval/runner.h"
#include "eval/sparsity.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::MakeSmallSbm;

// ----------------------------------------------------------------- Report

TEST(ReportTest, AggregateMeanStd) {
  const MeanStd one = Aggregate({0.5});
  EXPECT_DOUBLE_EQ(one.mean, 0.5);
  EXPECT_DOUBLE_EQ(one.std, 0.0);
  const MeanStd two = Aggregate({0.4, 0.6});
  EXPECT_DOUBLE_EQ(two.mean, 0.5);
  EXPECT_NEAR(two.std, 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(Aggregate({}).mean, 0.0);
}

TEST(ReportTest, FormatAccPct) {
  EXPECT_EQ(FormatAccPct({0.813, 0.009}), "81.3±0.9");
  EXPECT_EQ(FormatAccPct({1.0, 0.0}), "100.0±0.0");
}

TEST(ReportTest, EnvIntFallbacks) {
  unsetenv("ADAFGL_TEST_ENV");
  EXPECT_EQ(EnvInt("ADAFGL_TEST_ENV", 7), 7);
  setenv("ADAFGL_TEST_ENV", "12", 1);
  EXPECT_EQ(EnvInt("ADAFGL_TEST_ENV", 7), 12);
  setenv("ADAFGL_TEST_ENV", "junk", 1);
  EXPECT_EQ(EnvInt("ADAFGL_TEST_ENV", 7), 7);
  setenv("ADAFGL_TEST_ENV", "-3", 1);
  EXPECT_EQ(EnvInt("ADAFGL_TEST_ENV", 7), 7);
  unsetenv("ADAFGL_TEST_ENV");
}

// --------------------------------------------------------------- Sparsity

TEST(SparsityTest, FeatureSparsityZeroesUnlabeledOnly) {
  Graph g = MakeSmallSbm(200, 3, 0.85, 301);
  Rng rng(1);
  Graph out = ApplyFeatureSparsity(g, 1.0, rng);  // All unlabeled missing.
  std::vector<uint8_t> is_train(static_cast<size_t>(g.num_nodes()), 0);
  for (int32_t v : g.train_nodes) is_train[static_cast<size_t>(v)] = 1;
  for (int32_t v = 0; v < g.num_nodes(); ++v) {
    double norm = 0.0;
    for (int64_t j = 0; j < out.features.cols(); ++j) {
      norm += std::abs(out.features(v, j));
    }
    if (is_train[static_cast<size_t>(v)]) {
      EXPECT_GT(norm, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(norm, 0.0);
    }
  }
}

TEST(SparsityTest, FeatureSparsityRate) {
  Graph g = MakeSmallSbm(400, 3, 0.85, 302);
  Rng rng(2);
  Graph out = ApplyFeatureSparsity(g, 0.5, rng);
  int64_t zeroed = 0, unlabeled = 0;
  std::vector<uint8_t> is_train(static_cast<size_t>(g.num_nodes()), 0);
  for (int32_t v : g.train_nodes) is_train[static_cast<size_t>(v)] = 1;
  for (int32_t v = 0; v < g.num_nodes(); ++v) {
    if (is_train[static_cast<size_t>(v)]) continue;
    ++unlabeled;
    double norm = 0.0;
    for (int64_t j = 0; j < out.features.cols(); ++j) {
      norm += std::abs(out.features(v, j));
    }
    zeroed += (norm == 0.0);
  }
  EXPECT_NEAR(static_cast<double>(zeroed) / unlabeled, 0.5, 0.1);
}

TEST(SparsityTest, EdgeSparsityRemovesFraction) {
  Graph g = MakeSmallSbm(300, 3, 0.85, 303);
  Rng rng(3);
  Graph out = ApplyEdgeSparsity(g, 0.4, rng);
  EXPECT_NEAR(static_cast<double>(out.num_edges()),
              static_cast<double>(g.num_edges()) * 0.6,
              static_cast<double>(g.num_edges()) * 0.08);
  EXPECT_EQ(out.num_nodes(), g.num_nodes());
}

TEST(SparsityTest, EdgeSparsityExtremes) {
  Graph g = MakeSmallSbm(150, 3, 0.85, 304);
  Rng r1(4), r2(5);
  EXPECT_EQ(ApplyEdgeSparsity(g, 0.0, r1).num_edges(), g.num_edges());
  EXPECT_EQ(ApplyEdgeSparsity(g, 1.0, r2).num_edges(), 0);
}

TEST(SparsityTest, LabelSparsityKeepsFractionPerClass) {
  Graph g = MakeSmallSbm(400, 4, 0.85, 305);
  Rng rng(6);
  Graph out = ApplyLabelSparsity(g, 0.5, rng);
  EXPECT_NEAR(static_cast<double>(out.train_nodes.size()),
              static_cast<double>(g.train_nodes.size()) * 0.5,
              static_cast<double>(g.train_nodes.size()) * 0.15);
  // Every class still trains.
  std::vector<int> seen(4, 0);
  for (int32_t v : out.train_nodes) {
    seen[static_cast<size_t>(out.labels[static_cast<size_t>(v)])] = 1;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(SparsityTest, ApplyToFederatedDataset) {
  Graph g = MakeSmallSbm(300, 3, 0.85, 306);
  Rng rng(7);
  FederatedDataset fd =
      StructureNonIidSplit(g, 3, InjectionMode::kNone, 0.5, rng);
  Rng rng2(8);
  FederatedDataset sparse =
      ApplySparsity(fd, SparsityKind::kEdge, 0.5, rng2);
  for (size_t c = 0; c < fd.clients.size(); ++c) {
    EXPECT_LT(sparse.clients[c].num_edges(), fd.clients[c].num_edges());
    EXPECT_EQ(sparse.clients[c].num_nodes(), fd.clients[c].num_nodes());
  }
}

// ----------------------------------------------------------------- Runner

TEST(RunnerTest, PrepareFederatedDatasetBothSplits) {
  ExperimentSpec spec;
  spec.dataset = "Cora";
  spec.num_clients = 5;
  spec.split = "community";
  FederatedDataset community = PrepareFederatedDataset(spec, 11);
  EXPECT_EQ(community.num_clients(), 5);
  spec.split = "noniid";
  FederatedDataset noniid = PrepareFederatedDataset(spec, 11);
  EXPECT_EQ(noniid.num_clients(), 5);
  EXPECT_EQ(noniid.injections.size(), 5u);
}

TEST(RunnerTest, MethodListsMatchPaperTables) {
  const auto t2 = Table2Methods();
  EXPECT_EQ(t2.size(), 11u);
  EXPECT_EQ(t2.back(), "AdaFGL");
  const auto t3 = Table3Methods();
  EXPECT_EQ(t3.size(), 7u);
  EXPECT_EQ(t3.back(), "AdaFGL");
}

TEST(RunnerTest, RunAlgorithmDispatch) {
  Graph g = MakeSmallSbm(200, 3, 0.85, 307);
  Rng rng(9);
  FederatedDataset fd =
      StructureNonIidSplit(g, 3, InjectionMode::kNone, 0.5, rng);
  FedConfig cfg;
  cfg.rounds = 2;
  cfg.local_epochs = 1;
  cfg.post_local_epochs = 1;
  cfg.hidden = 16;
  for (const std::string& name :
       {std::string("FedGCN"), std::string("FedGL"), std::string("GCFL+"),
        std::string("FED-PUB")}) {
    FedRunResult r = RunAlgorithm(name, fd, cfg);
    EXPECT_GT(r.final_test_acc, 0.0) << name;
  }
}

TEST(RunnerTest, BenchFedConfigRespectsEnv) {
  setenv("ADAFGL_ROUNDS", "5", 1);
  EXPECT_EQ(BenchFedConfig().rounds, 5);
  unsetenv("ADAFGL_ROUNDS");
  EXPECT_EQ(BenchFedConfig().rounds, 15);
}

}  // namespace
}  // namespace adafgl
