#include <string>

#include <gtest/gtest.h>

#include "nn/models.h"
#include "tensor/matrix_ops.h"
#include "tensor/optim.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::MakeTwoCliqueGraph;

ModelConfig SmallConfig(const Graph& g) {
  ModelConfig mc;
  mc.in_dim = g.feature_dim();
  mc.num_classes = g.num_classes;
  mc.hidden = 16;
  mc.dropout = 0.2f;
  mc.num_hops = 2;
  mc.low_rank = 4;
  return mc;
}

class ZooModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooModelTest, ForwardShapeAndFiniteness) {
  Graph g = MakeTwoCliqueGraph(6);
  GraphContext ctx = GraphContext::Create(g);
  Rng rng(1);
  auto model = CreateModel(GetParam(), SmallConfig(g), rng);
  Rng fwd(2);
  Tensor out = model->Forward(ctx, /*training=*/false, fwd);
  EXPECT_EQ(out->rows(), g.num_nodes());
  EXPECT_EQ(out->cols(), g.num_classes);
  for (int64_t i = 0; i < out->value().size(); ++i) {
    EXPECT_TRUE(std::isfinite(out->value().data()[i]));
  }
}

TEST_P(ZooModelTest, HasTrainableParams) {
  Graph g = MakeTwoCliqueGraph(6);
  Rng rng(3);
  auto model = CreateModel(GetParam(), SmallConfig(g), rng);
  EXPECT_FALSE(model->Params().empty());
  EXPECT_GT(ParameterCount(*model), 0);
  for (const Tensor& p : model->Params()) {
    EXPECT_TRUE(p->requires_grad());
  }
}

TEST_P(ZooModelTest, WeightsRoundTrip) {
  Graph g = MakeTwoCliqueGraph(6);
  Rng rng1(4), rng2(5);
  auto a = CreateModel(GetParam(), SmallConfig(g), rng1);
  auto b = CreateModel(GetParam(), SmallConfig(g), rng2);
  SetWeights(*b, GetWeights(*a));
  const auto wa = GetWeights(*a);
  const auto wb = GetWeights(*b);
  ASSERT_EQ(wa.size(), wb.size());
  for (size_t i = 0; i < wa.size(); ++i) {
    EXPECT_LT(MaxAbsDiff(wa[i], wb[i]), 1e-7f) << "param " << i;
  }
  // With identical weights, eval-mode forward must coincide.
  GraphContext ctx = GraphContext::Create(g);
  Rng f1(6), f2(6);
  Tensor oa = a->Forward(ctx, false, f1);
  Tensor ob = b->Forward(ctx, false, f2);
  EXPECT_LT(MaxAbsDiff(oa->value(), ob->value()), 1e-5f);
}

TEST_P(ZooModelTest, TrainingReducesLoss) {
  Graph g = MakeTwoCliqueGraph(8);
  GraphContext ctx = GraphContext::Create(g);
  Rng rng(7);
  auto model = CreateModel(GetParam(), SmallConfig(g), rng);
  Adam opt(model->Params(), 0.02f);
  Rng train_rng(8);
  double first = 0.0, last = 0.0;
  for (int e = 0; e < 40; ++e) {
    opt.ZeroGrad();
    Tensor logits = model->Forward(ctx, /*training=*/true, train_rng);
    Tensor loss =
        ops::CrossEntropyWithLogits(logits, g.labels, g.train_nodes);
    if (e == 0) first = loss->value()(0, 0);
    last = loss->value()(0, 0);
    Backward(loss);
    opt.Step();
  }
  EXPECT_LT(last, first);
}

TEST_P(ZooModelTest, LearnsSeparableCliques) {
  Graph g = MakeTwoCliqueGraph(10);
  GraphContext ctx = GraphContext::Create(g);
  Rng rng(9);
  auto model = CreateModel(GetParam(), SmallConfig(g), rng);
  Adam opt(model->Params(), 0.02f);
  Rng train_rng(10);
  for (int e = 0; e < 80; ++e) {
    opt.ZeroGrad();
    Tensor logits = model->Forward(ctx, true, train_rng);
    Backward(ops::CrossEntropyWithLogits(logits, g.labels, g.train_nodes));
    opt.Step();
  }
  Rng eval_rng(11);
  Tensor logits = model->Forward(ctx, false, eval_rng);
  EXPECT_GT(Accuracy(logits->value(), g.labels, g.test_nodes), 0.8);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooModelTest,
                         ::testing::ValuesIn(ModelZooNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(ModelZooTest, NamesAreStable) {
  const auto names = ModelZooNames();
  EXPECT_EQ(names.size(), 8u);
  EXPECT_EQ(names[1], "GCN");
}

TEST(ModelZooTest, MaskedGcnHasMaskParams) {
  Graph g = MakeTwoCliqueGraph(6);
  Rng rng(12);
  GcnModel plain(SmallConfig(g), rng);
  Rng rng2(12);
  GcnModel masked(SmallConfig(g), rng2, /*with_mask=*/true);
  EXPECT_EQ(plain.Params().size(), 4u);   // w1 b1 w2 b2.
  EXPECT_EQ(masked.Params().size(), 6u);  // + m1 m2.
}

TEST(ModelZooTest, GetSetWeightsShapeMismatchIsFatal) {
  Graph g = MakeTwoCliqueGraph(6);
  Rng rng(13);
  auto model = CreateModel("GCN", SmallConfig(g), rng);
  auto weights = GetWeights(*model);
  weights[0] = Matrix(1, 1);
  EXPECT_DEATH(SetWeights(*model, weights), "CHECK failed");
}

}  // namespace
}  // namespace adafgl
