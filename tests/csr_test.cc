#include <gtest/gtest.h>

#include "tensor/csr.h"
#include "tensor/matrix_ops.h"
#include "tensor/rng.h"

namespace adafgl {
namespace {

CsrMatrix SmallCsr() {
  // [[0, 2, 0],
  //  [1, 0, 3],
  //  [0, 0, 4]]
  return CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 2.0f}, {1, 0, 1.0f}, {1, 2, 3.0f}, {2, 2, 4.0f}});
}

TEST(CsrTest, FromTripletsSortsAndStores) {
  CsrMatrix m = SmallCsr();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.nnz(), 4);
  Matrix d = m.ToDense();
  EXPECT_FLOAT_EQ(d(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(d(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(d(1, 2), 3.0f);
  EXPECT_FLOAT_EQ(d(2, 2), 4.0f);
  EXPECT_FLOAT_EQ(d(0, 0), 0.0f);
}

TEST(CsrTest, DuplicateTripletsAreSummed) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0f}, {0, 0, 2.5f}, {1, 1, 1.0f}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_FLOAT_EQ(m.ToDense()(0, 0), 3.5f);
}

TEST(CsrTest, HasEntry) {
  CsrMatrix m = SmallCsr();
  EXPECT_TRUE(m.HasEntry(0, 1));
  EXPECT_TRUE(m.HasEntry(2, 2));
  EXPECT_FALSE(m.HasEntry(0, 0));
  EXPECT_FALSE(m.HasEntry(2, 0));
}

TEST(CsrTest, MultiplyMatchesDense) {
  Rng rng(1);
  CsrMatrix m = SmallCsr();
  Matrix x = Matrix::Gaussian(3, 4, 1.0f, rng);
  EXPECT_LT(MaxAbsDiff(m.Multiply(x), MatMul(m.ToDense(), x)), 1e-5f);
}

TEST(CsrTest, MultiplyTransposeMatchesDense) {
  Rng rng(2);
  CsrMatrix m = SmallCsr();
  Matrix x = Matrix::Gaussian(3, 4, 1.0f, rng);
  EXPECT_LT(MaxAbsDiff(m.MultiplyTranspose(x),
                       MatMul(Transpose(m.ToDense()), x)),
            1e-5f);
}

TEST(CsrTest, TransposedMatchesDenseTranspose) {
  CsrMatrix m = SmallCsr();
  EXPECT_LT(MaxAbsDiff(m.Transposed().ToDense(), Transpose(m.ToDense())),
            1e-6f);
}

TEST(CsrTest, RowSums) {
  CsrMatrix m = SmallCsr();
  const std::vector<float> sums = m.RowSums();
  EXPECT_FLOAT_EQ(sums[0], 2.0f);
  EXPECT_FLOAT_EQ(sums[1], 4.0f);
  EXPECT_FLOAT_EQ(sums[2], 4.0f);
}

TEST(CsrTest, WithSelfLoopsSetsUnitDiagonal) {
  CsrMatrix m = SmallCsr().WithSelfLoops();
  Matrix d = m.ToDense();
  for (int32_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(d(i, i), 1.0f);
  EXPECT_FLOAT_EQ(d(0, 1), 2.0f);  // Off-diagonal preserved.
}

TEST(CsrTest, NormalizedRandomWalkRowsSumToOne) {
  // r = 1 gives D^0 A D^-1... rows of  D^{r-1} A D^{-r} with r=0:
  // D^{-1} A — row-stochastic for symmetric input.
  CsrMatrix sym = CsrFromUndirectedEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  CsrMatrix rw = sym.Normalized(0.0f);
  Matrix d = rw.ToDense();
  for (int32_t i = 0; i < 4; ++i) {
    double row_sum = 0.0;
    for (int32_t j = 0; j < 4; ++j) row_sum += d(i, j);
    EXPECT_NEAR(row_sum, 1.0, 1e-5);
  }
}

TEST(CsrTest, NormalizedSymmetricIsSymmetric) {
  CsrMatrix sym =
      CsrFromUndirectedEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
                                 {0, 2}});
  Matrix d = sym.Normalized(0.5f).ToDense();
  EXPECT_LT(MaxAbsDiff(d, Transpose(d)), 1e-5f);
}

TEST(CsrTest, UndirectedEdgeConstructionSymmetricBinary) {
  CsrMatrix m =
      CsrFromUndirectedEdges(3, {{0, 1}, {1, 0}, {1, 2}});  // Duplicate.
  Matrix d = m.ToDense();
  EXPECT_FLOAT_EQ(d(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(d(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(d(1, 2), 1.0f);
  EXPECT_FLOAT_EQ(d(2, 1), 1.0f);
  EXPECT_EQ(m.nnz(), 4);
}

TEST(CsrTest, SelfLoopEdgesAreDropped) {
  CsrMatrix m = CsrFromUndirectedEdges(2, {{0, 0}, {0, 1}});
  EXPECT_FALSE(m.HasEntry(0, 0));
  EXPECT_TRUE(m.HasEntry(0, 1));
}

TEST(CsrTest, EmptyMatrix) {
  CsrMatrix m(3, 3);
  EXPECT_EQ(m.nnz(), 0);
  Matrix x = Matrix::Constant(3, 2, 1.0f);
  EXPECT_FLOAT_EQ(SumAll(m.Multiply(x)), 0.0f);
}

}  // namespace
}  // namespace adafgl
