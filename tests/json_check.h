#ifndef ADAFGL_TESTS_JSON_CHECK_H_
#define ADAFGL_TESTS_JSON_CHECK_H_

#include <cctype>
#include <string>

namespace adafgl {
namespace testing {

/// \brief Minimal recursive-descent JSON parser used to validate the
/// output of the obs emitters (trace export, events, bench.json) with a
/// real grammar rather than brace counting. Accepts exactly RFC 8259
/// documents; on failure `error` holds the byte offset and reason.
class JsonChecker {
 public:
  bool Validate(const std::string& text, std::string* error) {
    s_ = &text;
    pos_ = 0;
    err_.clear();
    SkipWs();
    const bool ok = Value() && (SkipWs(), pos_ == text.size());
    if (!ok && err_.empty()) {
      err_ = "trailing bytes at offset " + std::to_string(pos_);
    }
    if (error != nullptr) *error = err_;
    return ok;
  }

 private:
  char Peek() const { return pos_ < s_->size() ? (*s_)[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < s_->size() && (Peek() == ' ' || Peek() == '\t' ||
                                 Peek() == '\n' || Peek() == '\r')) {
      ++pos_;
    }
  }
  bool Fail(const std::string& why) {
    if (err_.empty()) err_ = why + " at offset " + std::to_string(pos_);
    return false;
  }

  bool Value() {
    SkipWs();
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (!Eat(*p)) return Fail(std::string("expected '") + lit + "'");
    }
    return true;
  }

  bool Object() {
    if (!Eat('{')) return Fail("expected '{'");
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Eat(':')) return Fail("expected ':'");
      if (!Value()) return false;
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool Array() {
    if (!Eat('[')) return Fail("expected '['");
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  bool String() {
    if (!Eat('"')) return Fail("expected '\"'");
    while (pos_ < s_->size()) {
      const char c = (*s_)[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        if (pos_ >= s_->size()) return Fail("truncated escape");
        const char e = (*s_)[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_->size() ||
                std::isxdigit(static_cast<unsigned char>((*s_)[pos_])) == 0) {
              return Fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape character");
        }
      }
    }
    return Fail("unterminated string");
  }

  bool Number() {
    const size_t start = pos_;
    Eat('-');
    if (Peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    } else {
      return Fail("expected a value");
    }
    if (Eat('.')) {
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return Fail("expected fraction digits");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return Fail("expected exponent digits");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  const std::string* s_ = nullptr;
  size_t pos_ = 0;
  std::string err_;
};

/// Convenience wrapper: true when `text` is one valid JSON document.
inline bool IsValidJson(const std::string& text, std::string* error) {
  JsonChecker checker;
  return checker.Validate(text, error);
}

}  // namespace testing
}  // namespace adafgl

#endif  // ADAFGL_TESTS_JSON_CHECK_H_
