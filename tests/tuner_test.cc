#include <cmath>

#include <gtest/gtest.h>

#include "eval/tuner.h"

namespace adafgl {
namespace {

TEST(HyperTunerTest, FindsQuadraticOptimum) {
  HyperTuner tuner(7);
  tuner.AddUniform("x", -2.0, 2.0);
  tuner.AddUniform("y", -2.0, 2.0);
  // Maximum at (0.5, -0.5).
  const auto best = tuner.Optimize(
      [](const HyperTuner::Trial& t) {
        const double dx = t.Get("x") - 0.5;
        const double dy = t.Get("y") + 0.5;
        return -(dx * dx + dy * dy);
      },
      80);
  EXPECT_NEAR(best.Get("x"), 0.5, 0.3);
  EXPECT_NEAR(best.Get("y"), -0.5, 0.3);
  EXPECT_EQ(tuner.history().size(), 80u);
}

TEST(HyperTunerTest, ChoiceParametersStayInChoices) {
  HyperTuner tuner(8);
  tuner.AddChoice("lr", {0.01, 0.05, 0.1, 0.5});
  const auto best = tuner.Optimize(
      [](const HyperTuner::Trial& t) {
        // Best choice is 0.05.
        return -std::abs(t.Get("lr") - 0.05);
      },
      30);
  EXPECT_DOUBLE_EQ(best.Get("lr"), 0.05);
  for (const auto& trial : tuner.history()) {
    const double v = trial.Get("lr");
    EXPECT_TRUE(v == 0.01 || v == 0.05 || v == 0.1 || v == 0.5);
  }
}

TEST(HyperTunerTest, RefinementBeatsBestRandomPrefix) {
  // On a smooth objective, the perturbation phase should not regress the
  // incumbent.
  HyperTuner tuner(9);
  tuner.AddUniform("x", 0.0, 1.0);
  const auto best = tuner.Optimize(
      [](const HyperTuner::Trial& t) { return -std::abs(t.Get("x") - 0.7); },
      60);
  double best_random = -1e9;
  const auto& history = tuner.history();
  for (size_t i = 0; i < 40; ++i) {  // Exploration prefix.
    best_random = std::max(best_random, history[i].objective);
  }
  EXPECT_GE(best.objective, best_random);
}

TEST(HyperTunerTest, DeterministicForFixedSeed) {
  // Compare the first sampled trial (pre-refinement, so it cannot hit the
  // boundary deterministically): identical for same seeds, different for
  // different ones.
  auto first_sample = [](uint64_t seed) {
    HyperTuner tuner(seed);
    tuner.AddUniform("x", 0.0, 1.0);
    tuner.Optimize([](const HyperTuner::Trial& t) { return t.Get("x"); },
                   20);
    return tuner.history().front().Get("x");
  };
  EXPECT_DOUBLE_EQ(first_sample(11), first_sample(11));
  EXPECT_NE(first_sample(11), first_sample(12));
}

TEST(HyperTunerTest, SingleTrialWorks) {
  HyperTuner tuner(10);
  tuner.AddUniform("x", 0.0, 1.0);
  const auto best = tuner.Optimize(
      [](const HyperTuner::Trial& t) { return t.Get("x"); }, 1);
  EXPECT_GE(best.Get("x"), 0.0);
  EXPECT_LE(best.Get("x"), 1.0);
}

TEST(HyperTunerTest, BoundsRespected) {
  HyperTuner tuner(11);
  tuner.AddUniform("x", 0.25, 0.75);
  tuner.Optimize([](const HyperTuner::Trial& t) { return t.Get("x"); }, 50);
  for (const auto& trial : tuner.history()) {
    EXPECT_GE(trial.Get("x"), 0.25);
    EXPECT_LE(trial.Get("x"), 0.75);
  }
}

TEST(HyperTunerTest, GetUnknownNameDies) {
  HyperTuner::Trial t;
  t.params.emplace_back("x", 1.0);
  EXPECT_DEATH(t.Get("y"), "CHECK failed");
}

}  // namespace
}  // namespace adafgl
