// Fault-tolerance tests (ctest -L resilience): option validation, robust
// aggregation semantics, checkpoint round-trips, the corruption NACK
// path, deadline/quorum behavior, and determinism of chaos runs across
// worker-thread counts. The chaos sweep itself lives in bench/chaos_fed.cc.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "comm/link.h"
#include "eval/runner.h"
#include "fed/federation.h"
#include "fed/resilience.h"
#include "fed/splits.h"
#include "test_util.h"

namespace adafgl {
namespace {

using ::adafgl::testing::MakeSmallSbm;

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

FedConfig TinyConfig() {
  FedConfig cfg;
  cfg.rounds = 4;
  cfg.local_epochs = 2;
  cfg.post_local_epochs = 2;
  cfg.hidden = 16;
  cfg.eval_every = 1;
  cfg.seed = 7;
  return cfg;
}

FederatedDataset TinyFederation(int clients = 3, uint64_t seed = 71) {
  Graph g = MakeSmallSbm(240, 3, 0.85, seed);
  Rng rng(seed + 1);
  return StructureNonIidSplit(g, clients, InjectionMode::kNone, 0.5, rng);
}

void ExpectSameRun(const FedRunResult& a, const FedRunResult& b) {
  EXPECT_EQ(a.final_test_acc, b.final_test_acc);
  EXPECT_EQ(a.bytes_up, b.bytes_up);
  EXPECT_EQ(a.bytes_down, b.bytes_down);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].test_acc, b.history[i].test_acc);
    EXPECT_EQ(a.history[i].train_loss, b.history[i].train_loss);
    EXPECT_EQ(a.history[i].participants, b.history[i].participants);
    EXPECT_EQ(a.history[i].quorum, b.history[i].quorum);
  }
}

// --- Option validation ----------------------------------------------------

TEST(ResilienceTest, ValidateLinkOptionsNamesTheOffendingField) {
  EXPECT_TRUE(comm::ValidateLinkOptions(comm::LinkOptions{}).ok());

  comm::LinkOptions bad;
  bad.max_retries = -1;
  Status s = comm::ValidateLinkOptions(bad);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("max_retries"), std::string::npos);

  bad = comm::LinkOptions{};
  bad.corrupt_prob = 1.5;
  s = comm::ValidateLinkOptions(bad);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("corrupt_prob"), std::string::npos);

  bad = comm::LinkOptions{};
  bad.crash_prob = -0.1;
  EXPECT_FALSE(comm::ValidateLinkOptions(bad).ok());

  bad = comm::LinkOptions{};
  bad.drop_prob = 2.0;
  EXPECT_FALSE(comm::ValidateLinkOptions(bad).ok());

  bad = comm::LinkOptions{};
  bad.backoff_base_s = -0.5;
  EXPECT_FALSE(comm::ValidateLinkOptions(bad).ok());

  bad = comm::LinkOptions{};
  bad.round_deadline_s = -1.0;
  EXPECT_FALSE(comm::ValidateLinkOptions(bad).ok());

  bad = comm::LinkOptions{};
  bad.latency_s = -0.01;
  EXPECT_FALSE(comm::ValidateLinkOptions(bad).ok());
}

TEST(ResilienceTest, ResilienceOptionsValidateRejectsBadRanges) {
  EXPECT_TRUE(ResilienceOptions{}.Validate().ok());

  ResilienceOptions bad;
  bad.trim_ratio = 0.5;  // Would trim everything.
  EXPECT_FALSE(bad.Validate().ok());

  bad = ResilienceOptions{};
  bad.min_participation = 1.5;
  EXPECT_FALSE(bad.Validate().ok());

  bad = ResilienceOptions{};
  bad.over_select = -0.25;
  EXPECT_FALSE(bad.Validate().ok());

  bad = ResilienceOptions{};
  bad.max_update_norm = -1.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = ResilienceOptions{};
  bad.nan_upload_prob = 1.1;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(ResilienceTest, ParseAggregatorRoundTrips) {
  for (Aggregator a : {Aggregator::kMean, Aggregator::kTrimmedMean,
                       Aggregator::kCoordinateMedian}) {
    Result<Aggregator> parsed = ParseAggregator(AggregatorName(a));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), a);
  }
  EXPECT_FALSE(ParseAggregator("krum").ok());
  EXPECT_FALSE(ParseAggregator("").ok());
}

// --- Robust aggregation ---------------------------------------------------

std::vector<std::vector<Matrix>> OneMatrixPerClient(
    const std::vector<std::vector<float>>& rows) {
  std::vector<std::vector<Matrix>> clients;
  for (const std::vector<float>& r : rows) {
    std::vector<Matrix> w;
    w.emplace_back(1, static_cast<int64_t>(r.size()), r);
    clients.push_back(std::move(w));
  }
  return clients;
}

TEST(ResilienceTest, MeanAggregatorIsBitIdenticalToAverageWeights) {
  Rng rng(31);
  std::vector<std::vector<Matrix>> clients;
  std::vector<double> sizes = {40.0, 25.0, 35.0};
  for (int c = 0; c < 3; ++c) {
    std::vector<Matrix> w;
    for (int64_t rows : {4, 7}) {
      Matrix m(rows, 5);
      for (int64_t i = 0; i < m.size(); ++i) {
        m.data()[i] = static_cast<float>(rng.Uniform() - 0.5);
      }
      w.push_back(std::move(m));
    }
    clients.push_back(std::move(w));
  }
  const std::vector<Matrix> expected = AverageWeights(clients, sizes);
  const std::vector<Matrix> got =
      AggregateRobust(Aggregator::kMean, 0.2, clients, sizes);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t p = 0; p < got.size(); ++p) {
    ASSERT_EQ(got[p].size(), expected[p].size());
    for (int64_t i = 0; i < got[p].size(); ++i) {
      EXPECT_EQ(got[p].data()[i], expected[p].data()[i]) << p << ":" << i;
    }
  }
}

TEST(ResilienceTest, MeanIsPoisonedByNaNButRobustRulesAreNot) {
  const std::vector<double> sizes = {1.0, 1.0, 1.0, 1.0, 1.0};
  auto clients = OneMatrixPerClient({{1.0f, 2.0f},
                                     {2.0f, 3.0f},
                                     {3.0f, 4.0f},
                                     {4.0f, 5.0f},
                                     {kNaN, kNaN}});
  const std::vector<Matrix> mean =
      AggregateRobust(Aggregator::kMean, 0.2, clients, sizes);
  EXPECT_FALSE(AllFinite(mean));

  // floor(0.2 * 5) = 1 trimmed per end of the 4 finite values -> mean of
  // the middle two.
  const std::vector<Matrix> trimmed =
      AggregateRobust(Aggregator::kTrimmedMean, 0.2, clients, sizes);
  ASSERT_TRUE(AllFinite(trimmed));
  EXPECT_FLOAT_EQ(trimmed[0].data()[0], 2.5f);
  EXPECT_FLOAT_EQ(trimmed[0].data()[1], 3.5f);

  const std::vector<Matrix> median =
      AggregateRobust(Aggregator::kCoordinateMedian, 0.2, clients, sizes);
  ASSERT_TRUE(AllFinite(median));
  EXPECT_FLOAT_EQ(median[0].data()[0], 2.5f);
  EXPECT_FLOAT_EQ(median[0].data()[1], 3.5f);
}

TEST(ResilienceTest, TrimmedMeanDiscardsOutliers) {
  const std::vector<double> sizes = {1.0, 1.0, 1.0, 1.0, 1.0};
  auto clients = OneMatrixPerClient(
      {{1.0f}, {1.1f}, {0.9f}, {1.0f}, {1000.0f}});
  const std::vector<Matrix> trimmed =
      AggregateRobust(Aggregator::kTrimmedMean, 0.2, clients, sizes);
  // The 1000 outlier is trimmed away; mean of {1.0, 1.0, 1.1}.
  EXPECT_NEAR(trimmed[0].data()[0], 1.0333f, 1e-4);
  const std::vector<Matrix> mean =
      AggregateRobust(Aggregator::kMean, 0.2, clients, sizes);
  EXPECT_GT(mean[0].data()[0], 100.0f);
}

TEST(ResilienceTest, AllNonFiniteCoordinateFallsBackToZero) {
  auto clients = OneMatrixPerClient({{kNaN}, {kNaN}});
  const std::vector<Matrix> out = AggregateRobust(
      Aggregator::kCoordinateMedian, 0.2, clients, {1.0, 1.0});
  EXPECT_EQ(out[0].data()[0], 0.0f);
}

TEST(ResilienceTest, ClipUpdateNormScalesOversizedUpdates) {
  std::vector<Matrix> reference;
  reference.emplace_back(1, 2, std::vector<float>{1.0f, 1.0f});
  std::vector<Matrix> upload;
  upload.emplace_back(1, 2, std::vector<float>{1.0f, 11.0f});  // Norm 10.
  ASSERT_TRUE(ClipUpdateNorm(reference, 5.0, &upload));
  EXPECT_FLOAT_EQ(upload[0].data()[0], 1.0f);
  EXPECT_FLOAT_EQ(upload[0].data()[1], 6.0f);  // 1 + 10 * (5 / 10).

  // Inside the ball: untouched.
  std::vector<Matrix> small;
  small.emplace_back(1, 2, std::vector<float>{1.5f, 1.0f});
  EXPECT_FALSE(ClipUpdateNorm(reference, 5.0, &small));
  EXPECT_FLOAT_EQ(small[0].data()[0], 1.5f);

  // A non-finite norm cannot be meaningfully clipped; rejection handles it.
  std::vector<Matrix> poisoned;
  poisoned.emplace_back(1, 2, std::vector<float>{kNaN, 0.0f});
  EXPECT_FALSE(ClipUpdateNorm(reference, 5.0, &poisoned));
}

TEST(ResilienceTest, QuorumAndOverSelectionArithmetic) {
  ResilienceOptions opt;
  EXPECT_FALSE(QuorumMet(opt, 0, 10));  // Zero participants never pass.
  EXPECT_TRUE(QuorumMet(opt, 1, 10));
  opt.min_participation = 0.5;
  EXPECT_FALSE(QuorumMet(opt, 4, 10));
  EXPECT_TRUE(QuorumMet(opt, 5, 10));

  opt = ResilienceOptions{};
  EXPECT_EQ(OverSelectedCount(opt, 8, 10), 8);  // Disabled: base.
  opt.over_select = 0.25;
  EXPECT_EQ(OverSelectedCount(opt, 8, 10), 10);  // ceil(8 * 1.25).
  EXPECT_EQ(OverSelectedCount(opt, 10, 10), 10);  // Capped at n.
}

TEST(ResilienceTest, SampleParticipantsIsAPrefixOfAShuffle) {
  Rng a(99), b(99);
  const std::vector<int32_t> all = SampleParticipants(a, 8, 8);
  const std::vector<int32_t> some = SampleParticipants(b, 8, 3);
  ASSERT_EQ(all.size(), 8u);
  ASSERT_EQ(some.size(), 3u);
  // Same RNG stream -> the subset is the prefix of the permutation, so
  // participation sweeps nest deterministically.
  for (size_t i = 0; i < some.size(); ++i) EXPECT_EQ(some[i], all[i]);
  std::vector<bool> seen(8, false);
  for (int32_t c : all) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 8);
    EXPECT_FALSE(seen[static_cast<size_t>(c)]);
    seen[static_cast<size_t>(c)] = true;
  }
}

TEST(ResilienceTest, ChaosScheduleIsCoordinateDeterministic) {
  const ChaosSchedule a(123, 0.25), b(123, 0.25), c(124, 0.25);
  int hits = 0, diff = 0;
  for (int round = 0; round < 50; ++round) {
    for (int32_t client = 0; client < 40; ++client) {
      EXPECT_EQ(a.PoisonUpload(round, client), b.PoisonUpload(round, client));
      if (a.PoisonUpload(round, client)) ++hits;
      if (a.PoisonUpload(round, client) != c.PoisonUpload(round, client)) {
        ++diff;
      }
    }
  }
  // Frequency tracks the probability; a different seed gives a different
  // schedule.
  EXPECT_GT(hits, 2000 * 0.15);
  EXPECT_LT(hits, 2000 * 0.35);
  EXPECT_GT(diff, 0);
}

// --- Checkpoint / restore -------------------------------------------------

TEST(ResilienceTest, CheckpointRoundTripIsBitIdentical) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  std::vector<std::unique_ptr<FedClient>> clients = MakeClients(fd, cfg);
  FedClient& client = *clients[0];
  client.TrainEpochs(2);

  const std::string cp = client.Checkpoint();
  ASSERT_FALSE(cp.empty());
  // More training moves the state away from the checkpoint...
  client.TrainEpochs(2);
  EXPECT_NE(client.Checkpoint(), cp);
  // ...and restoring brings back every bit of it (weights, Adam moments,
  // step counter).
  ASSERT_TRUE(client.Restore(cp).ok());
  EXPECT_EQ(client.Checkpoint(), cp);
}

TEST(ResilienceTest, RestoreRejectsMalformedBytes) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  std::vector<std::unique_ptr<FedClient>> clients = MakeClients(fd, cfg);
  FedClient& client = *clients[0];
  EXPECT_FALSE(client.Restore("not a checkpoint").ok());
  const std::string cp = client.Checkpoint();
  EXPECT_FALSE(client.Restore(cp.substr(0, cp.size() / 2)).ok());
  // The failed restores must not have corrupted the client.
  EXPECT_TRUE(client.Restore(cp).ok());
}

TEST(ResilienceTest, CrashAndRestoreRejoinsFromCheckpoint) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  std::vector<std::unique_ptr<FedClient>> clients = MakeClients(fd, cfg);
  FedClient& client = *clients[0];
  client.TrainEpochs(1);
  client.SaveCheckpoint();
  const std::string saved = client.Checkpoint();
  client.TrainEpochs(2);
  client.CrashAndRestore();
  EXPECT_EQ(client.Checkpoint(), saved);

  // Without a checkpoint the crash is a cold restart: all state zeroed,
  // waiting for the next broadcast.
  FedClient& cold = *clients[1];
  cold.TrainEpochs(1);
  ASSERT_FALSE(cold.has_checkpoint());
  cold.CrashAndRestore();
  for (const Matrix& m : cold.Weights()) {
    for (int64_t i = 0; i < m.size(); ++i) {
      ASSERT_EQ(m.data()[i], 0.0f);
    }
  }
}

// --- End-to-end fault paths -----------------------------------------------

TEST(ResilienceTest, ChaosRunsAreThreadCountInvariant) {
  // The determinism bar for the whole fault stack: every fault decision is
  // a function of (seed, round, client) coordinates, so a chaos run must
  // reproduce bit-identically under any worker-thread count.
  FederatedDataset fd = TinyFederation(4);
  FedConfig cfg = TinyConfig();
  cfg.comm.link.drop_prob = 0.2;
  cfg.comm.link.crash_prob = 0.05;
  cfg.comm.link.corrupt_prob = 0.05;
  cfg.comm.link.max_retries = 3;
  cfg.resilience.aggregator = Aggregator::kTrimmedMean;
  FedConfig threaded = cfg;
  threaded.comm.num_threads = 8;
  const FedRunResult serial = RunFedAvg(fd, cfg);
  const FedRunResult parallel = RunFedAvg(fd, threaded);
  ExpectSameRun(serial, parallel);
  EXPECT_EQ(serial.comm.stats.crashes, parallel.comm.stats.crashes);
  EXPECT_EQ(serial.comm.stats.corruptions, parallel.comm.stats.corruptions);
  EXPECT_EQ(serial.comm.stats.drops, parallel.comm.stats.drops);
  EXPECT_EQ(serial.comm.stats.nacks, parallel.comm.stats.nacks);
  EXPECT_EQ(serial.resilience.rejected_updates,
            parallel.resilience.rejected_updates);
  EXPECT_EQ(serial.resilience.rounds_skipped,
            parallel.resilience.rounds_skipped);
}

TEST(ResilienceTest, CorruptionIsNackedAndRetransmitted) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.comm.link.corrupt_prob = 0.3;
  cfg.comm.link.max_retries = 4;
  const FedRunResult r = RunFedAvg(fd, cfg);
  // Corruptions happened, each was NACKed, and retransmissions kept the
  // run healthy.
  EXPECT_GT(r.comm.stats.corruptions, 0);
  EXPECT_EQ(r.comm.stats.nacks, r.comm.stats.corruptions);
  EXPECT_GT(r.final_test_acc, 0.3);

  // Without retries a corrupted frame costs the client its round.
  cfg.comm.link.max_retries = 0;
  const FedRunResult no_retry = RunFedAvg(fd, cfg);
  EXPECT_GT(no_retry.comm.stats.dropouts, 0);
  EXPECT_EQ(no_retry.history.size(), static_cast<size_t>(cfg.rounds));
}

TEST(ResilienceTest, NanUploadsPoisonMeanButNotTrimmedMean) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.resilience.nan_upload_prob = 0.5;
  cfg.resilience.reject_nonfinite = false;  // Let the poison reach the rule.
  cfg.resilience.aggregator = Aggregator::kMean;
  const FedRunResult poisoned = RunFedAvg(fd, cfg);
  EXPECT_FALSE(AllFinite(poisoned.global_weights));

  cfg.resilience.aggregator = Aggregator::kTrimmedMean;
  const FedRunResult robust = RunFedAvg(fd, cfg);
  EXPECT_TRUE(AllFinite(robust.global_weights));
  for (const RoundRecord& rec : robust.history) {
    EXPECT_TRUE(std::isfinite(rec.test_acc));
  }
}

TEST(ResilienceTest, RejectionKeepsNanUploadsOutOfTheMean) {
  // Default validation path: poisoned uploads are rejected server-side, so
  // even the plain mean stays finite.
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.resilience.nan_upload_prob = 0.5;
  const FedRunResult r = RunFedAvg(fd, cfg);
  EXPECT_GT(r.resilience.rejected_updates, 0);
  EXPECT_TRUE(AllFinite(r.global_weights));
  EXPECT_GT(r.final_test_acc, 0.3);
}

TEST(ResilienceTest, UpdateNormClippingFiresAndKeepsTraining) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.resilience.max_update_norm = 0.05;  // Tight enough to always fire.
  const FedRunResult r = RunFedAvg(fd, cfg);
  EXPECT_GT(r.resilience.clipped_updates, 0);
  EXPECT_TRUE(AllFinite(r.global_weights));
}

TEST(ResilienceTest, BelowQuorumRoundsAreSkippedWithFullHistory) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.comm.link.dropout_prob = 0.5;
  cfg.resilience.min_participation = 0.9;
  const FedRunResult r = RunFedAvg(fd, cfg);
  EXPECT_GT(r.resilience.rounds_skipped, 0);
  ASSERT_EQ(r.history.size(), static_cast<size_t>(cfg.rounds));
  EXPECT_TRUE(AllFinite(r.global_weights));
  EXPECT_GT(r.final_test_acc, 0.3);
}

TEST(ResilienceTest, ZeroParticipantRoundsProduceNoBogusRecords) {
  // The all-dropout degenerate case: every round is skipped, the history
  // keeps full length, and nothing divides by zero.
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.comm.link.dropout_prob = 1.0;
  const FedRunResult r = RunFedAvg(fd, cfg);
  ASSERT_EQ(r.history.size(), static_cast<size_t>(cfg.rounds));
  EXPECT_EQ(r.resilience.rounds_skipped, cfg.rounds);
  for (const RoundRecord& rec : r.history) {
    EXPECT_EQ(rec.participants, 0);
    EXPECT_EQ(rec.quorum, 0.0);
    EXPECT_TRUE(std::isfinite(rec.train_loss));
    EXPECT_TRUE(std::isfinite(rec.test_acc));
  }
  EXPECT_TRUE(std::isfinite(r.final_test_acc));
}

TEST(ResilienceTest, DeadlineCutsStragglersAfterBackoff) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.comm.link.latency_s = 0.01;
  cfg.comm.link.heterogeneity = 1.0;
  cfg.comm.link.corrupt_prob = 0.3;  // Retry chains accrue backoff time.
  cfg.comm.link.max_retries = 3;
  cfg.comm.link.backoff_base_s = 0.05;
  cfg.comm.link.round_deadline_s = 0.08;
  const FedRunResult r = RunFedAvg(fd, cfg);
  EXPECT_GT(r.comm.stats.deadline_cuts, 0);
  EXPECT_GT(r.comm.stats.sim_seconds, 0.0);
  EXPECT_EQ(r.history.size(), static_cast<size_t>(cfg.rounds));

  // Without a deadline the same link delivers everything (retries always
  // win eventually here), so cuts are zero.
  cfg.comm.link.round_deadline_s = 0.0;
  const FedRunResult lax = RunFedAvg(fd, cfg);
  EXPECT_EQ(lax.comm.stats.deadline_cuts, 0);
}

TEST(ResilienceTest, CrashedClientsRejoinFromCheckpointsAndTrainOn) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.rounds = 6;
  cfg.comm.link.crash_prob = 0.2;
  const FedRunResult r = RunFedAvg(fd, cfg);
  EXPECT_GT(r.comm.stats.crashes, 0);
  ASSERT_EQ(r.history.size(), static_cast<size_t>(cfg.rounds));
  EXPECT_TRUE(AllFinite(r.global_weights));
  EXPECT_GT(r.final_test_acc, 0.3);
}

TEST(ResilienceTest, BaselinesSurviveTheFullChaosStack) {
  FederatedDataset fd = TinyFederation();
  FedConfig cfg = TinyConfig();
  cfg.rounds = 3;
  cfg.comm.link.drop_prob = 0.1;
  cfg.comm.link.crash_prob = 0.1;
  cfg.comm.link.corrupt_prob = 0.05;
  cfg.comm.link.max_retries = 3;
  cfg.resilience.aggregator = Aggregator::kCoordinateMedian;
  for (const char* algorithm : {"FedGL", "GCFL+", "FedSage+", "FED-PUB"}) {
    const FedRunResult r = RunAlgorithm(algorithm, fd, cfg);
    EXPECT_EQ(r.history.size(), 3u) << algorithm;
    EXPECT_GE(r.final_test_acc, 0.0) << algorithm;
    EXPECT_LE(r.final_test_acc, 1.0) << algorithm;
  }
}

TEST(ResilienceTest, TargetFaultLevelStaysWithinThreePointsOfClean) {
  // The ISSUE 4 acceptance gate, same configuration as bench/chaos_fed.cc:
  // Cora, drop=0.1 / crash=0.05 / corrupt=0.02 under trimmed mean +
  // deadlines completes every round, aggregates nothing non-finite, and
  // lands within 3 accuracy points of the fault-free run.
  ExperimentSpec spec;
  spec.dataset = "Cora";
  spec.split = "noniid";
  spec.num_clients = 10;

  FedConfig clean;
  clean.rounds = 15;
  clean.local_epochs = 3;
  clean.post_local_epochs = 2;
  clean.seed = 20240ULL;

  FedConfig target = clean;
  target.comm.link.drop_prob = 0.10;
  target.comm.link.crash_prob = 0.05;
  target.comm.link.corrupt_prob = 0.02;
  target.comm.link.latency_s = 0.01;
  target.comm.link.heterogeneity = 1.0;
  target.comm.link.max_retries = 3;
  target.comm.link.backoff_base_s = 0.05;
  target.comm.link.round_deadline_s = 0.1;
  target.resilience.aggregator = Aggregator::kTrimmedMean;
  target.resilience.trim_ratio = 0.2;
  target.resilience.min_participation = 0.3;
  target.resilience.over_select = 0.25;

  FederatedDataset data = PrepareFederatedDataset(spec, /*seed=*/1000);
  const FedRunResult base = RunAlgorithm("FedGCN", data, clean);
  const FedRunResult faulty = RunAlgorithm("FedGCN", data, target);

  ASSERT_EQ(faulty.history.size(), 15u);
  EXPECT_EQ(faulty.resilience.rounds_skipped, 0);
  EXPECT_TRUE(AllFinite(faulty.global_weights));
  for (const RoundRecord& rec : faulty.history) {
    EXPECT_TRUE(std::isfinite(rec.train_loss));
    EXPECT_TRUE(std::isfinite(rec.test_acc));
  }
  EXPECT_GT(faulty.comm.stats.crashes, 0);
  EXPECT_GT(faulty.comm.stats.corruptions, 0);
  EXPECT_NEAR(faulty.final_test_acc, base.final_test_acc, 0.03);
}

}  // namespace
}  // namespace adafgl
