#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "comm/channel.h"
#include "comm/codec.h"
#include "comm/link.h"
#include "comm/wire.h"
#include "par/thread_pool.h"
#include "tensor/matrix_ops.h"
#include "tensor/rng.h"

namespace adafgl::comm {
namespace {

using ::adafgl::par::ThreadPool;

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal());
  }
  return m;
}

void ExpectBitIdentical(const std::vector<Matrix>& a,
                        const std::vector<Matrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].rows(), b[i].rows()) << "matrix " << i;
    ASSERT_EQ(a[i].cols(), b[i].cols()) << "matrix " << i;
    for (int64_t j = 0; j < a[i].size(); ++j) {
      // Bit-level comparison: even NaNs and signed zeros must survive.
      uint32_t ba, bb;
      std::memcpy(&ba, a[i].data() + j, 4);
      std::memcpy(&bb, b[i].data() + j, 4);
      EXPECT_EQ(ba, bb) << "matrix " << i << " entry " << j;
    }
  }
}

// ---------------------------------------------------------------- wire ----

TEST(WireTest, FrameRoundTripPreservesHeaderAndPayload) {
  const std::string payload = "hello tensors";
  const std::string bytes =
      EncodeFrame(MessageType::kPredictions, CodecId::kFp16, payload);
  EXPECT_EQ(static_cast<int64_t>(bytes.size()),
            WireSize(static_cast<int64_t>(payload.size())));
  Result<Frame> frame = DecodeFrame(bytes);
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_EQ(frame->type, MessageType::kPredictions);
  EXPECT_EQ(frame->codec, CodecId::kFp16);
  EXPECT_EQ(frame->payload, payload);
}

TEST(WireTest, EmptyPayloadRoundTrips) {
  const std::string bytes =
      EncodeFrame(MessageType::kWeights, CodecId::kLossless, "");
  EXPECT_EQ(static_cast<int64_t>(bytes.size()), kFrameHeaderBytes);
  Result<Frame> frame = DecodeFrame(bytes);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->payload.empty());
}

TEST(WireTest, DetectsPayloadCorruption) {
  std::string bytes =
      EncodeFrame(MessageType::kWeights, CodecId::kLossless, "abcdefgh");
  bytes[static_cast<size_t>(kFrameHeaderBytes) + 3] ^= 0x40;
  Result<Frame> frame = DecodeFrame(bytes);
  EXPECT_FALSE(frame.ok());
}

TEST(WireTest, DetectsTruncationAndTrailingBytes) {
  const std::string bytes =
      EncodeFrame(MessageType::kWeights, CodecId::kLossless, "abcdefgh");
  EXPECT_FALSE(DecodeFrame(bytes.substr(0, bytes.size() - 1)).ok());
  EXPECT_FALSE(DecodeFrame(bytes.substr(0, 10)).ok());
  EXPECT_FALSE(DecodeFrame("").ok());
  EXPECT_FALSE(DecodeFrame(bytes + "x").ok());
}

TEST(WireTest, DetectsBadMagicAndVersion) {
  std::string bytes =
      EncodeFrame(MessageType::kWeights, CodecId::kLossless, "abc");
  std::string bad_magic = bytes;
  bad_magic[0] = 'Z';
  EXPECT_FALSE(DecodeFrame(bad_magic).ok());
  std::string bad_version = bytes;
  bad_version[4] = static_cast<char>(0x7f);
  EXPECT_FALSE(DecodeFrame(bad_version).ok());
}

TEST(WireTest, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
}

// --------------------------------------------------------------- codecs ----

TEST(CodecTest, RegistryKnowsAllCodecs) {
  for (const std::string& name : CodecNames()) {
    auto codec = MakeCodec(name);
    EXPECT_EQ(codec->name(), name);
    EXPECT_EQ(MakeCodec(codec->id())->name(), name);
  }
}

TEST(CodecTest, LosslessRoundTripIsBitIdentical) {
  const std::vector<Matrix> weights = {
      RandomMatrix(7, 13, 1),   // Non-square.
      RandomMatrix(1, 1, 2),    // Scalar.
      Matrix(),                 // Empty (0 x 0).
      Matrix(5, 0),             // Zero-column.
      RandomMatrix(64, 32, 3),  // Large-ish.
  };
  auto codec = MakeCodec("lossless");
  Result<std::vector<Matrix>> decoded = codec->Decode(codec->Encode(weights));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  ExpectBitIdentical(weights, *decoded);
}

TEST(CodecTest, LosslessEmptyListRoundTrips) {
  auto codec = MakeCodec("lossless");
  Result<std::vector<Matrix>> decoded = codec->Decode(codec->Encode({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(CodecTest, LosslessRejectsMalformedPayloads) {
  auto codec = MakeCodec("lossless");
  const std::string payload = codec->Encode({RandomMatrix(3, 4, 4)});
  EXPECT_FALSE(codec->Decode(payload.substr(0, payload.size() - 2)).ok());
  EXPECT_FALSE(codec->Decode(payload + "xx").ok());
  EXPECT_FALSE(codec->Decode("").ok());
  EXPECT_FALSE(codec->Decode("ab").ok());
}

TEST(CodecTest, LosslessPayloadSizeMatchesFloatVolume) {
  const std::vector<Matrix> weights = {RandomMatrix(10, 20, 5),
                                       RandomMatrix(20, 3, 6)};
  auto codec = MakeCodec("lossless");
  // Envelope: u32 count + 2x(i64 rows + i64 cols); body: fp32 entries.
  EXPECT_EQ(static_cast<int64_t>(codec->Encode(weights).size()),
            4 + 2 * 16 + PayloadFloatBytes(weights));
}

TEST(CodecTest, Fp16HalvesPayloadWithinErrorBound) {
  const std::vector<Matrix> weights = {RandomMatrix(40, 30, 7)};
  auto lossless = MakeCodec("lossless");
  auto fp16 = MakeCodec("fp16");
  const std::string p32 = lossless->Encode(weights);
  const std::string p16 = fp16->Encode(weights);
  // Bodies shrink exactly 2x; envelope overhead is shared.
  EXPECT_EQ(p16.size() - (4 + 16), (p32.size() - (4 + 16)) / 2);

  Result<std::vector<Matrix>> decoded = fp16->Decode(p16);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 1u);
  for (int64_t i = 0; i < weights[0].size(); ++i) {
    const float x = weights[0].data()[i];
    // binary16 has 10 mantissa bits: relative error <= 2^-11 for normals.
    EXPECT_NEAR((*decoded)[0].data()[i], x, std::abs(x) / 2048.0f + 1e-7f);
  }
}

TEST(CodecTest, Fp16RoundTripExactOnRepresentableValues) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(Fp16RoundTrip(v), v) << v;
  }
  // Values beyond half range saturate to +-inf rather than wrapping.
  EXPECT_TRUE(std::isinf(Fp16RoundTrip(1e30f)));
  EXPECT_LT(Fp16RoundTrip(-1e30f), 0.0f);
  // Round-to-nearest-even on the mantissa boundary.
  EXPECT_NEAR(Fp16RoundTrip(0.1f), 0.1f, 0.1f / 2048.0f);
}

TEST(CodecTest, TopKKeepsLargestMagnitudesZeroesRest) {
  Matrix m(1, 10, {0.1f, -5.0f, 0.2f, 3.0f, -0.3f, 0.05f, 4.0f, -0.01f,
                   0.15f, 2.0f});
  CodecConfig config;
  config.topk_ratio = 0.4;  // Keep 4 of 10.
  auto codec = MakeCodec("topk", config);
  Result<std::vector<Matrix>> decoded = codec->Decode(codec->Encode({m}));
  ASSERT_TRUE(decoded.ok());
  const Matrix& d = (*decoded)[0];
  // Largest |.|: -5, 4, 3, 2 survive exactly; everything else is zeroed.
  EXPECT_EQ(d(0, 1), -5.0f);
  EXPECT_EQ(d(0, 6), 4.0f);
  EXPECT_EQ(d(0, 3), 3.0f);
  EXPECT_EQ(d(0, 9), 2.0f);
  for (int64_t j : {0, 2, 4, 5, 7, 8}) EXPECT_EQ(d(0, j), 0.0f) << j;
}

TEST(CodecTest, TopKPayloadScalesWithRatio) {
  const std::vector<Matrix> weights = {RandomMatrix(50, 40, 8)};
  CodecConfig config;
  config.topk_ratio = 0.1;
  auto topk = MakeCodec("topk", config);
  auto lossless = MakeCodec("lossless");
  // Kept entries cost (u32 index + f32 value) = 8 bytes vs 4 for dense
  // fp32, so a 0.1 ratio lands near 0.2x the dense payload.
  const auto sparse = static_cast<double>(topk->Encode(weights).size());
  const auto dense = static_cast<double>(lossless->Encode(weights).size());
  EXPECT_LT(sparse / dense, 0.25);
  EXPECT_GT(sparse / dense, 0.15);
}

TEST(CodecTest, TopKKeepsAtLeastOneEntry) {
  CodecConfig config;
  config.topk_ratio = 1e-9;
  auto codec = MakeCodec("topk", config);
  Matrix m(2, 2, {0.0f, 0.0f, 7.0f, 0.0f});
  Result<std::vector<Matrix>> decoded = codec->Decode(codec->Encode({m}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0](1, 0), 7.0f);
}

TEST(CodecTest, TopKFullRatioIsLossless) {
  CodecConfig config;
  config.topk_ratio = 1.0;
  auto codec = MakeCodec("topk", config);
  const std::vector<Matrix> weights = {RandomMatrix(9, 11, 9)};
  Result<std::vector<Matrix>> decoded = codec->Decode(codec->Encode(weights));
  ASSERT_TRUE(decoded.ok());
  ExpectBitIdentical(weights, *decoded);
}

// ----------------------------------------------------------------- link ----

TEST(LinkTest, PerfectNetworkIsFreeAndFaultless) {
  LinkModel link(LinkOptions{}, 4, 42);
  EXPECT_EQ(link.TransferSeconds(0, 1 << 20), 0.0);
  for (int32_t c = 0; c < 4; ++c) {
    EXPECT_FALSE(link.ClientDropsOut(c, 1));
    EXPECT_FALSE(link.MessageLost(c, 1, 0, 0));
  }
}

TEST(LinkTest, TransferTimeIsLatencyPlusBytesOverBandwidth) {
  LinkOptions opt;
  opt.latency_s = 0.05;
  opt.bandwidth_bps = 1e6;
  LinkModel link(opt, 2, 42);
  EXPECT_NEAR(link.TransferSeconds(0, 500000), 0.05 + 0.5, 1e-9);
}

TEST(LinkTest, HeterogeneitySlowsClientsDeterministically) {
  LinkOptions opt;
  opt.latency_s = 0.01;
  opt.bandwidth_bps = 1e6;
  opt.heterogeneity = 1.0;
  LinkModel a(opt, 8, 42);
  LinkModel b(opt, 8, 42);
  bool any_slower = false;
  for (int32_t c = 0; c < 8; ++c) {
    const double ta = a.TransferSeconds(c, 100000);
    EXPECT_EQ(ta, b.TransferSeconds(c, 100000));  // Same seed, same times.
    EXPECT_GE(ta, 0.01 + 0.1 - 1e-12);
    EXPECT_LE(ta, 2.0 * (0.01 + 0.1) + 1e-12);
    if (ta > 0.01 + 0.1 + 1e-9) any_slower = true;
  }
  EXPECT_TRUE(any_slower);
}

TEST(LinkTest, FaultDecisionsAreStatelessInEventCoordinates) {
  LinkOptions opt;
  opt.drop_prob = 0.5;
  opt.dropout_prob = 0.5;
  LinkModel link(opt, 16, 7);
  LinkModel replay(opt, 16, 7);
  int lost = 0, out = 0;
  for (int32_t c = 0; c < 16; ++c) {
    for (int round = 1; round <= 8; ++round) {
      EXPECT_EQ(link.ClientDropsOut(c, round),
                replay.ClientDropsOut(c, round));
      EXPECT_EQ(link.MessageLost(c, round, 3, 1),
                replay.MessageLost(c, round, 3, 1));
      out += link.ClientDropsOut(c, round) ? 1 : 0;
      lost += link.MessageLost(c, round, 3, 1) ? 1 : 0;
    }
  }
  // p = 0.5 over 128 events: both outcomes must occur.
  EXPECT_GT(out, 0);
  EXPECT_LT(out, 128);
  EXPECT_GT(lost, 0);
  EXPECT_LT(lost, 128);
  // Different attempts of the same message are independent coins.
  bool differs = false;
  for (int32_t c = 0; c < 16 && !differs; ++c) {
    differs = link.MessageLost(c, 1, 0, 0) != link.MessageLost(c, 1, 0, 1);
  }
  EXPECT_TRUE(differs);
}

// The thread pool itself is covered by tests/par_test.cc (ctest -L par)
// since its promotion to adafgl::par; the channel tests below still use it
// the way the federated round loops do.

// -------------------------------------------------------------- channel ----

Options PerfectOptions() { return Options{}; }

TEST(ChannelTest, LosslessDeliversBitIdenticalTensors) {
  ParameterServer ps(PerfectOptions(), 2, 99);
  const std::vector<Matrix> weights = {RandomMatrix(6, 4, 10),
                                       RandomMatrix(4, 3, 11)};
  ps.BeginRound(1, {0, 1});
  auto down = ps.Downlink(0, MessageType::kWeights, weights);
  auto up = ps.Uplink(1, MessageType::kWeights, weights);
  ps.EndRound();
  ASSERT_TRUE(down.has_value());
  ASSERT_TRUE(up.has_value());
  ExpectBitIdentical(weights, *down);
  ExpectBitIdentical(weights, *up);

  const CommStats s = ps.stats();
  const int64_t payload = PayloadFloatBytes(weights);
  EXPECT_EQ(s.payload_float_bytes_down, payload);
  EXPECT_EQ(s.payload_float_bytes_up, payload);
  // Wire = frame header + envelope (count + 2 shape headers) + fp32 body.
  EXPECT_EQ(s.bytes_down, kFrameHeaderBytes + 4 + 2 * 16 + payload);
  EXPECT_EQ(s.bytes_up, s.bytes_down);
  EXPECT_EQ(s.messages_up, 1);
  EXPECT_EQ(s.messages_down, 1);
  EXPECT_EQ(s.drops, 0);
  EXPECT_EQ(s.sim_seconds, 0.0);
}

TEST(ChannelTest, CompressionAppliesToWeightsButNotControlMessages) {
  Options opt;
  opt.codec = "fp16";
  ParameterServer ps(opt, 1, 99);
  const std::vector<Matrix> weights = {RandomMatrix(8, 8, 12)};
  ps.BeginRound(1, {0});
  auto w = ps.Uplink(0, MessageType::kWeights, weights);
  auto labels = ps.Downlink(0, MessageType::kPseudoLabels, weights);
  ps.EndRound();
  ASSERT_TRUE(w.has_value());
  ASSERT_TRUE(labels.has_value());
  // Weights went through fp16 (lossy)...
  EXPECT_GT(MaxAbsDiff((*w)[0], weights[0]), 0.0f);
  // ...pseudo-labels ride the lossless control codec regardless.
  ExpectBitIdentical(weights, *labels);
  const CommStats s = ps.stats();
  EXPECT_LT(s.bytes_up, s.bytes_down);  // fp16 body is half the size.
  EXPECT_EQ(s.payload_float_bytes_up, s.payload_float_bytes_down);
}

TEST(ChannelTest, DropoutDeactivatesClientForWholeRound) {
  Options opt;
  opt.link.dropout_prob = 1.0;
  ParameterServer ps(opt, 3, 5);
  ps.BeginRound(1, {0, 1, 2});
  for (int32_t c = 0; c < 3; ++c) {
    EXPECT_FALSE(ps.ClientActive(c));
    EXPECT_FALSE(
        ps.Downlink(c, MessageType::kWeights, {Matrix(2, 2)}).has_value());
  }
  ps.EndRound();
  EXPECT_EQ(ps.stats().dropouts, 3);
  EXPECT_EQ(ps.stats().messages_down, 0);
  EXPECT_EQ(ps.stats().bytes_down, 0);
}

TEST(ChannelTest, BeginRoundReplaysIdenticalDropouts) {
  Options opt;
  opt.link.dropout_prob = 0.5;
  ParameterServer ps(opt, 16, 5);
  std::vector<bool> first;
  ps.BeginRound(3, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  for (int32_t c = 0; c < 16; ++c) first.push_back(ps.ClientActive(c));
  ps.EndRound();
  ps.BeginRound(3, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  for (int32_t c = 0; c < 16; ++c) {
    EXPECT_EQ(ps.ClientActive(c), first[static_cast<size_t>(c)]) << c;
  }
  ps.EndRound();
  EXPECT_GT(ps.stats().dropouts, 0);
  EXPECT_LT(ps.stats().dropouts, 32);
}

TEST(ChannelTest, RetryPolicySurvivesTransientLossSkipDoesNot) {
  // drop_prob below 1 with generous retries: delivery eventually succeeds
  // for most messages; with kSkip any first-attempt loss kills the client.
  Options retry_opt;
  retry_opt.link.drop_prob = 0.5;
  retry_opt.link.max_retries = 16;
  ParameterServer retry_ps(retry_opt, 8, 11);
  retry_ps.BeginRound(1, {0, 1, 2, 3, 4, 5, 6, 7});
  int delivered = 0;
  for (int32_t c = 0; c < 8; ++c) {
    if (retry_ps.Downlink(c, MessageType::kWeights, {Matrix(2, 2)})) {
      ++delivered;
    }
  }
  retry_ps.EndRound();
  EXPECT_EQ(delivered, 8);  // P(17 straight losses) ~ 1e-5 per client.
  EXPECT_GT(retry_ps.stats().drops, 0);  // But attempts were burnt...
  EXPECT_GT(retry_ps.stats().bytes_down,
            8 * (kFrameHeaderBytes + 4 + 16 + 16));  // ...and billed.

  Options skip_opt = retry_opt;
  skip_opt.link.policy = FaultPolicy::kSkip;
  skip_opt.link.drop_prob = 1.0;
  ParameterServer skip_ps(skip_opt, 2, 11);
  skip_ps.BeginRound(1, {0, 1});
  EXPECT_FALSE(
      skip_ps.Downlink(0, MessageType::kWeights, {Matrix(2, 2)}).has_value());
  EXPECT_FALSE(skip_ps.ClientActive(0));  // Deactivated for the round.
  skip_ps.EndRound();
  EXPECT_EQ(skip_ps.stats().drops, 1);  // Exactly one attempt under kSkip.
  EXPECT_EQ(skip_ps.stats().dropouts, 1);
}

TEST(ChannelTest, SimulatedClockTakesSlowestClientPerRound) {
  Options opt;
  opt.link.latency_s = 0.1;
  ParameterServer ps(opt, 3, 5);
  ps.BeginRound(1, {0, 1, 2});
  // Client 0 sends two messages (0.2s serial); clients 1-2 send one.
  ps.Downlink(0, MessageType::kWeights, {Matrix(2, 2)});
  ps.Uplink(0, MessageType::kWeights, {Matrix(2, 2)});
  ps.Downlink(1, MessageType::kWeights, {Matrix(2, 2)});
  ps.Downlink(2, MessageType::kWeights, {Matrix(2, 2)});
  ps.EndRound();
  EXPECT_NEAR(ps.stats().sim_seconds, 0.2, 1e-9);
  // A second round accumulates.
  ps.BeginRound(2, {1});
  ps.Downlink(1, MessageType::kWeights, {Matrix(2, 2)});
  ps.EndRound();
  EXPECT_NEAR(ps.stats().sim_seconds, 0.3, 1e-9);
}

TEST(ChannelTest, ConcurrentClientsProduceDeterministicStats) {
  // Same exchange driven serially and through 4 threads must land on the
  // exact same accounting (stats adds are commutative; fault decisions are
  // stateless in event coordinates).
  const std::vector<Matrix> weights = {RandomMatrix(16, 8, 21)};
  Options opt;
  opt.link.drop_prob = 0.2;
  opt.link.latency_s = 0.01;
  auto run = [&](int threads) {
    ParameterServer ps(opt, 8, 31);
    ThreadPool pool(threads);
    std::vector<int32_t> everyone = {0, 1, 2, 3, 4, 5, 6, 7};
    for (int round = 1; round <= 3; ++round) {
      ps.BeginRound(round, everyone);
      pool.ParallelFor(8, [&](size_t c) {
        const auto client = static_cast<int32_t>(c);
        if (!ps.ClientActive(client)) return;
        if (!ps.Downlink(client, MessageType::kWeights, weights)) return;
        ps.Uplink(client, MessageType::kWeights, weights);
      });
      ps.EndRound();
    }
    return ps.stats();
  };
  const CommStats serial = run(1);
  const CommStats parallel = run(4);
  EXPECT_EQ(serial.bytes_up, parallel.bytes_up);
  EXPECT_EQ(serial.bytes_down, parallel.bytes_down);
  EXPECT_EQ(serial.messages_up, parallel.messages_up);
  EXPECT_EQ(serial.drops, parallel.drops);
  EXPECT_EQ(serial.dropouts, parallel.dropouts);
  EXPECT_EQ(serial.sim_seconds, parallel.sim_seconds);
  EXPECT_GT(serial.drops, 0);  // The fault path was actually exercised.
}

}  // namespace
}  // namespace adafgl::comm
