#include "comm/wire.h"

#include <cstring>

namespace adafgl::comm {

namespace {

constexpr char kMagic[4] = {'A', 'F', 'G', 'C'};
constexpr uint16_t kVersion = 1;

template <typename T>
void AppendValue(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadValue(const std::string& in, size_t* offset, T* value) {
  if (*offset + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string EncodeFrame(MessageType type, CodecId codec,
                        std::string payload) {
  std::string out;
  out.reserve(static_cast<size_t>(kFrameHeaderBytes) + payload.size());
  out.append(kMagic, sizeof(kMagic));
  AppendValue(&out, kVersion);
  AppendValue(&out, static_cast<uint8_t>(type));
  AppendValue(&out, static_cast<uint8_t>(codec));
  AppendValue(&out, static_cast<uint64_t>(payload.size()));
  AppendValue(&out, Fnv1a64(payload.data(), payload.size()));
  out += payload;
  return out;
}

Result<Frame> DecodeFrame(const std::string& bytes) {
  if (bytes.size() < static_cast<size_t>(kFrameHeaderBytes) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad frame magic");
  }
  size_t offset = sizeof(kMagic);
  uint16_t version = 0;
  uint8_t type = 0, codec = 0;
  uint64_t payload_size = 0, checksum = 0;
  if (!ReadValue(bytes, &offset, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported frame version");
  }
  if (!ReadValue(bytes, &offset, &type) ||
      !ReadValue(bytes, &offset, &codec) ||
      !ReadValue(bytes, &offset, &payload_size) ||
      !ReadValue(bytes, &offset, &checksum)) {
    return Status::InvalidArgument("truncated frame header");
  }
  if (type < static_cast<uint8_t>(MessageType::kWeights) ||
      type > static_cast<uint8_t>(MessageType::kEmbedding)) {
    return Status::InvalidArgument("unknown message type");
  }
  if (codec > static_cast<uint8_t>(CodecId::kTopK)) {
    return Status::InvalidArgument("unknown codec id");
  }
  if (bytes.size() - offset != payload_size) {
    return Status::InvalidArgument("frame payload size mismatch");
  }
  Frame frame;
  frame.type = static_cast<MessageType>(type);
  frame.codec = static_cast<CodecId>(codec);
  frame.payload = bytes.substr(offset);
  if (Fnv1a64(frame.payload.data(), frame.payload.size()) != checksum) {
    return Status::InvalidArgument("frame checksum mismatch");
  }
  return frame;
}

}  // namespace adafgl::comm
