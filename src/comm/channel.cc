#include "comm/channel.h"

#include <algorithm>

#include "tensor/status.h"

namespace adafgl::comm {

ParameterServer::ParameterServer(const Options& options, int32_t num_clients,
                                 uint64_t seed)
    : options_(options),
      codec_config_{options.topk_ratio},
      codec_(MakeCodec(options.codec, codec_config_)),
      control_codec_(MakeCodec("lossless")),
      link_(options.link, num_clients, seed),
      endpoints_(static_cast<size_t>(num_clients)) {
  ADAFGL_CHECK(num_clients > 0);
}

void ParameterServer::BeginRound(int round,
                                 const std::vector<int32_t>& participants) {
  round_ = round;
  for (Endpoint& e : endpoints_) {
    e.active = false;
    e.round_seconds = 0.0;
    e.message_index = 0;
  }
  int64_t dropped = 0;
  for (int32_t c : participants) {
    ADAFGL_CHECK(c >= 0 && c < num_clients());
    Endpoint& e = endpoints_[static_cast<size_t>(c)];
    e.active = !link_.ClientDropsOut(c, round);
    if (!e.active) ++dropped;
  }
  if (dropped > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.dropouts += dropped;
  }
}

bool ParameterServer::ClientActive(int32_t client) const {
  ADAFGL_CHECK(client >= 0 && client < num_clients());
  return endpoints_[static_cast<size_t>(client)].active;
}

void ParameterServer::EndRound() {
  double slowest = 0.0;
  for (const Endpoint& e : endpoints_) {
    slowest = std::max(slowest, e.round_seconds);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.sim_seconds += slowest;
}

std::optional<std::vector<Matrix>> ParameterServer::Downlink(
    int32_t client, MessageType type, const std::vector<Matrix>& tensors) {
  return Transfer(client, type, tensors, /*uplink=*/false);
}

std::optional<std::vector<Matrix>> ParameterServer::Uplink(
    int32_t client, MessageType type, const std::vector<Matrix>& tensors) {
  return Transfer(client, type, tensors, /*uplink=*/true);
}

std::optional<std::vector<Matrix>> ParameterServer::Transfer(
    int32_t client, MessageType type, const std::vector<Matrix>& tensors,
    bool uplink) {
  ADAFGL_CHECK(client >= 0 && client < num_clients());
  Endpoint& endpoint = endpoints_[static_cast<size_t>(client)];
  if (!endpoint.active) return std::nullopt;

  // Control messages must survive compression bit-exactly.
  const Codec& codec =
      type == MessageType::kPseudoLabels ? *control_codec_ : *codec_;
  const std::string wire =
      EncodeFrame(type, codec.id(), codec.Encode(tensors));
  const auto wire_bytes = static_cast<int64_t>(wire.size());
  const int64_t message_index = endpoint.message_index++;

  const int attempts_allowed =
      link_.options().policy == FaultPolicy::kRetry
          ? 1 + std::max(0, link_.options().max_retries)
          : 1;
  bool delivered = false;
  int64_t attempts_used = 0, lost = 0;
  for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
    ++attempts_used;
    endpoint.round_seconds += link_.TransferSeconds(client, wire_bytes);
    if (!link_.MessageLost(client, round_, message_index, attempt)) {
      delivered = true;
      break;
    }
    ++lost;
  }
  if (!delivered) endpoint.active = false;

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    // Every attempt occupies the wire, delivered or not.
    if (uplink) {
      stats_.bytes_up += wire_bytes * attempts_used;
    } else {
      stats_.bytes_down += wire_bytes * attempts_used;
    }
    stats_.drops += lost;
    if (delivered) {
      if (uplink) {
        ++stats_.messages_up;
        stats_.payload_float_bytes_up += PayloadFloatBytes(tensors);
      } else {
        ++stats_.messages_down;
        stats_.payload_float_bytes_down += PayloadFloatBytes(tensors);
      }
    } else {
      ++stats_.dropouts;
    }
  }
  if (!delivered) return std::nullopt;

  // Receiver side: parse the frame (checksum validation) and decode with
  // the codec named in the header, not the local configuration.
  Result<Frame> frame = DecodeFrame(wire);
  ADAFGL_CHECK(frame.ok());
  Result<std::vector<Matrix>> decoded =
      MakeCodec(frame.value().codec, codec_config_)
          ->Decode(frame.value().payload);
  ADAFGL_CHECK(decoded.ok());
  return std::move(decoded).value();
}

CommStats ParameterServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

CommReport ParameterServer::Report() const {
  CommReport report;
  report.stats = stats();
  report.codec = codec_->name();
  report.num_threads = std::max(1, options_.num_threads);
  return report;
}

}  // namespace adafgl::comm
