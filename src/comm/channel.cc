#include "comm/channel.h"

#include <algorithm>

#include "obs/trace.h"
#include "tensor/status.h"

namespace adafgl::comm {

namespace {

/// Process-wide transport counters (ADAFGL_METRICS=1), shared by every
/// ParameterServer. Lock-free increments; resolved once.
struct CommCounters {
  obs::Counter* bytes_up;
  obs::Counter* bytes_down;
  obs::Counter* frames;
  obs::Counter* retransmits;
  obs::Counter* drops;
  obs::Counter* dropouts;

  static const CommCounters& Get() {
    static const CommCounters c = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return CommCounters{r.GetCounter("comm.bytes_up"),
                          r.GetCounter("comm.bytes_down"),
                          r.GetCounter("comm.frames"),
                          r.GetCounter("comm.retransmits"),
                          r.GetCounter("comm.drops"),
                          r.GetCounter("comm.dropouts")};
    }();
    return c;
  }
};

}  // namespace

ParameterServer::ParameterServer(const Options& options, int32_t num_clients,
                                 uint64_t seed)
    : options_(options),
      codec_config_{options.topk_ratio},
      codec_(MakeCodec(options.codec, codec_config_)),
      control_codec_(MakeCodec("lossless")),
      link_(options.link, num_clients, seed),
      endpoints_(static_cast<size_t>(num_clients)) {
  ADAFGL_CHECK(num_clients > 0);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  encode_ns_ =
      registry.GetHistogram("comm.encode_ns." + codec_->name());
  decode_ns_ =
      registry.GetHistogram("comm.decode_ns." + codec_->name());
}

void ParameterServer::BeginRound(int round,
                                 const std::vector<int32_t>& participants) {
  round_ = round;
  for (Endpoint& e : endpoints_) {
    e.active = false;
    e.round_seconds = 0.0;
    e.message_index = 0;
  }
  int64_t dropped = 0;
  for (int32_t c : participants) {
    ADAFGL_CHECK(c >= 0 && c < num_clients());
    Endpoint& e = endpoints_[static_cast<size_t>(c)];
    e.active = !link_.ClientDropsOut(c, round);
    if (!e.active) ++dropped;
  }
  if (dropped > 0) {
    stats_.dropouts.fetch_add(dropped, std::memory_order_relaxed);
    if (obs::MetricsEnabled()) CommCounters::Get().dropouts->Inc(dropped);
  }
}

bool ParameterServer::ClientActive(int32_t client) const {
  ADAFGL_CHECK(client >= 0 && client < num_clients());
  return endpoints_[static_cast<size_t>(client)].active;
}

void ParameterServer::EndRound() {
  double slowest = 0.0;
  for (const Endpoint& e : endpoints_) {
    slowest = std::max(slowest, e.round_seconds);
  }
  stats_.AddSimSeconds(slowest);
}

std::optional<std::vector<Matrix>> ParameterServer::Downlink(
    int32_t client, MessageType type, const std::vector<Matrix>& tensors) {
  return Transfer(client, type, tensors, /*uplink=*/false);
}

std::optional<std::vector<Matrix>> ParameterServer::Uplink(
    int32_t client, MessageType type, const std::vector<Matrix>& tensors) {
  return Transfer(client, type, tensors, /*uplink=*/true);
}

std::optional<std::vector<Matrix>> ParameterServer::Transfer(
    int32_t client, MessageType type, const std::vector<Matrix>& tensors,
    bool uplink) {
  ADAFGL_CHECK(client >= 0 && client < num_clients());
  Endpoint& endpoint = endpoints_[static_cast<size_t>(client)];
  if (!endpoint.active) return std::nullopt;
  obs::Span span(uplink ? "comm.uplink" : "comm.downlink");
  const bool metrics = obs::MetricsEnabled();

  // Control messages must survive compression bit-exactly.
  const Codec& codec =
      type == MessageType::kPseudoLabels ? *control_codec_ : *codec_;
  const int64_t encode_t0 = metrics ? obs::NowNs() : 0;
  const std::string wire =
      EncodeFrame(type, codec.id(), codec.Encode(tensors));
  if (metrics) {
    encode_ns_->Record(static_cast<double>(obs::NowNs() - encode_t0));
  }
  const auto wire_bytes = static_cast<int64_t>(wire.size());
  const int64_t message_index = endpoint.message_index++;

  const int attempts_allowed =
      link_.options().policy == FaultPolicy::kRetry
          ? 1 + std::max(0, link_.options().max_retries)
          : 1;
  bool delivered = false;
  int64_t attempts_used = 0, lost = 0;
  for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
    ++attempts_used;
    endpoint.round_seconds += link_.TransferSeconds(client, wire_bytes);
    if (!link_.MessageLost(client, round_, message_index, attempt)) {
      delivered = true;
      break;
    }
    ++lost;
  }
  if (!delivered) endpoint.active = false;

  // Lock-free accounting: every attempt occupies the wire, delivered or
  // not. Relaxed order is enough — readers only consume finished rounds.
  const int64_t burnt = wire_bytes * attempts_used;
  (uplink ? stats_.bytes_up : stats_.bytes_down)
      .fetch_add(burnt, std::memory_order_relaxed);
  if (lost > 0) stats_.drops.fetch_add(lost, std::memory_order_relaxed);
  if (delivered) {
    const int64_t payload = PayloadFloatBytes(tensors);
    if (uplink) {
      stats_.messages_up.fetch_add(1, std::memory_order_relaxed);
      stats_.payload_float_bytes_up.fetch_add(payload,
                                              std::memory_order_relaxed);
    } else {
      stats_.messages_down.fetch_add(1, std::memory_order_relaxed);
      stats_.payload_float_bytes_down.fetch_add(payload,
                                                std::memory_order_relaxed);
    }
  } else {
    stats_.dropouts.fetch_add(1, std::memory_order_relaxed);
  }
  if (metrics) {
    const CommCounters& c = CommCounters::Get();
    (uplink ? c.bytes_up : c.bytes_down)->Inc(burnt);
    c.frames->Inc(attempts_used);
    if (attempts_used > 1) c.retransmits->Inc(attempts_used - 1);
    if (lost > 0) c.drops->Inc(lost);
    if (!delivered) c.dropouts->Inc();
  }
  if (!delivered) return std::nullopt;

  // Receiver side: parse the frame (checksum validation) and decode with
  // the codec named in the header, not the local configuration.
  const int64_t decode_t0 = metrics ? obs::NowNs() : 0;
  Result<Frame> frame = DecodeFrame(wire);
  ADAFGL_CHECK(frame.ok());
  Result<std::vector<Matrix>> decoded =
      MakeCodec(frame.value().codec, codec_config_)
          ->Decode(frame.value().payload);
  ADAFGL_CHECK(decoded.ok());
  if (metrics) {
    decode_ns_->Record(static_cast<double>(obs::NowNs() - decode_t0));
  }
  return std::move(decoded).value();
}

CommStats ParameterServer::stats() const { return stats_.Snapshot(); }

CommReport ParameterServer::Report() const {
  CommReport report;
  report.stats = stats();
  report.codec = codec_->name();
  report.num_threads = std::max(1, options_.num_threads);
  return report;
}

}  // namespace adafgl::comm
