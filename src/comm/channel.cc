#include "comm/channel.h"

#include <algorithm>

#include "obs/trace.h"
#include "tensor/status.h"

namespace adafgl::comm {

namespace {

/// Process-wide transport counters (ADAFGL_METRICS=1), shared by every
/// ParameterServer. Lock-free increments; resolved once.
struct CommCounters {
  obs::Counter* bytes_up;
  obs::Counter* bytes_down;
  obs::Counter* frames;
  obs::Counter* retransmits;
  obs::Counter* drops;
  obs::Counter* dropouts;
  obs::Counter* corrupt;
  obs::Counter* nack;
  obs::Counter* retry;
  obs::Counter* deadline_cut;
  obs::Counter* crash;

  static const CommCounters& Get() {
    static const CommCounters c = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return CommCounters{r.GetCounter("comm.bytes_up"),
                          r.GetCounter("comm.bytes_down"),
                          r.GetCounter("comm.frames"),
                          r.GetCounter("comm.retransmits"),
                          r.GetCounter("comm.drops"),
                          r.GetCounter("comm.dropouts"),
                          r.GetCounter("fed.faults.corrupt"),
                          r.GetCounter("fed.faults.nack"),
                          r.GetCounter("fed.faults.retry"),
                          r.GetCounter("fed.faults.deadline_cut"),
                          r.GetCounter("fed.faults.crash")};
    }();
    return c;
  }
};

}  // namespace

ParameterServer::ParameterServer(const Options& options, int32_t num_clients,
                                 uint64_t seed)
    : options_(options),
      codec_config_{options.topk_ratio},
      codec_(MakeCodec(options.codec, codec_config_)),
      control_codec_(MakeCodec("lossless")),
      link_(options.link, num_clients, seed),
      endpoints_(static_cast<size_t>(num_clients)) {
  ADAFGL_CHECK(num_clients > 0);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  encode_ns_ =
      registry.GetHistogram("comm.encode_ns." + codec_->name());
  decode_ns_ =
      registry.GetHistogram("comm.decode_ns." + codec_->name());
}

void ParameterServer::BeginRound(int round,
                                 const std::vector<int32_t>& participants) {
  round_ = round;
  for (Endpoint& e : endpoints_) {
    e.active = false;
    e.crashed = false;
    e.round_seconds = 0.0;
    e.message_index = 0;
  }
  int64_t dropped = 0, crashed = 0;
  for (int32_t c : participants) {
    ADAFGL_CHECK(c >= 0 && c < num_clients());
    Endpoint& e = endpoints_[static_cast<size_t>(c)];
    // A crash dominates a same-round dropout: the client loses its state
    // and sits the round out regardless of link health.
    e.crashed = link_.ClientCrashes(c, round);
    if (e.crashed) {
      ++crashed;
      continue;
    }
    e.active = !link_.ClientDropsOut(c, round);
    if (!e.active) ++dropped;
  }
  if (dropped > 0) {
    stats_.dropouts.fetch_add(dropped, std::memory_order_relaxed);
    if (obs::MetricsEnabled()) CommCounters::Get().dropouts->Inc(dropped);
  }
  if (crashed > 0) {
    stats_.crashes.fetch_add(crashed, std::memory_order_relaxed);
    if (obs::MetricsEnabled()) CommCounters::Get().crash->Inc(crashed);
  }
}

bool ParameterServer::ClientActive(int32_t client) const {
  ADAFGL_CHECK(client >= 0 && client < num_clients());
  return endpoints_[static_cast<size_t>(client)].active;
}

bool ParameterServer::ClientCrashed(int32_t client) const {
  ADAFGL_CHECK(client >= 0 && client < num_clients());
  return endpoints_[static_cast<size_t>(client)].crashed;
}

void ParameterServer::EndRound() {
  double slowest = 0.0;
  for (const Endpoint& e : endpoints_) {
    slowest = std::max(slowest, e.round_seconds);
  }
  stats_.AddSimSeconds(slowest);
}

std::optional<std::vector<Matrix>> ParameterServer::Downlink(
    int32_t client, MessageType type, const std::vector<Matrix>& tensors) {
  return Transfer(client, type, tensors, /*uplink=*/false);
}

std::optional<std::vector<Matrix>> ParameterServer::Uplink(
    int32_t client, MessageType type, const std::vector<Matrix>& tensors) {
  return Transfer(client, type, tensors, /*uplink=*/true);
}

std::optional<std::vector<Matrix>> ParameterServer::Transfer(
    int32_t client, MessageType type, const std::vector<Matrix>& tensors,
    bool uplink) {
  ADAFGL_CHECK(client >= 0 && client < num_clients());
  Endpoint& endpoint = endpoints_[static_cast<size_t>(client)];
  if (!endpoint.active) return std::nullopt;
  obs::Span span(uplink ? "comm.uplink" : "comm.downlink");
  const bool metrics = obs::MetricsEnabled();

  // Control messages must survive compression bit-exactly.
  const Codec& codec =
      type == MessageType::kPseudoLabels ? *control_codec_ : *codec_;
  const int64_t encode_t0 = metrics ? obs::NowNs() : 0;
  const std::string wire =
      EncodeFrame(type, codec.id(), codec.Encode(tensors));
  if (metrics) {
    encode_ns_->Record(static_cast<double>(obs::NowNs() - encode_t0));
  }
  const auto wire_bytes = static_cast<int64_t>(wire.size());
  const int64_t message_index = endpoint.message_index++;

  // max_retries is validated non-negative at construction
  // (ValidateLinkOptions) — no clamping here.
  const LinkOptions& lopts = link_.options();
  const int attempts_allowed =
      lopts.policy == FaultPolicy::kRetry ? 1 + lopts.max_retries : 1;
  bool delivered = false;
  int64_t attempts_used = 0, lost = 0, corrupted = 0;
  for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
    ++attempts_used;
    if (attempt > 0 && lopts.backoff_base_s > 0.0) {
      // Exponential backoff before the k-th retransmission: base * 2^(k-1).
      endpoint.round_seconds +=
          lopts.backoff_base_s *
          static_cast<double>(1LL << std::min(attempt - 1, 62));
    }
    endpoint.round_seconds += link_.TransferSeconds(client, wire_bytes);
    if (link_.MessageLost(client, round_, message_index, attempt)) {
      ++lost;
      continue;
    }
    if (link_.MessageCorrupted(client, round_, message_index, attempt)) {
      // The frame arrives with a flipped bit. The receiver re-parses it,
      // the FNV-1a checksum fails, and the resulting NACK triggers a
      // retransmission on the next attempt (NACKs themselves are free
      // control messages).
      std::string damaged = wire;
      const uint64_t draw =
          link_.CorruptionDraw(client, round_, message_index, attempt);
      size_t lo = static_cast<size_t>(kFrameHeaderBytes);
      size_t span = damaged.size() - lo;
      if (span == 0) {
        // Empty payload: damage the checksum field instead (bytes 16-23).
        lo = 16;
        span = 8;
      }
      const size_t offset = lo + static_cast<size_t>(draw % span);
      damaged[offset] =
          static_cast<char>(damaged[offset] ^
                            static_cast<char>(1u << ((draw >> 32) % 8)));
      // The receive path must detect the damage — this is the invariant
      // the whole NACK mechanism rests on.
      ADAFGL_CHECK(!DecodeFrame(damaged).ok());
      ++corrupted;
      continue;
    }
    delivered = true;
    break;
  }
  // Deadline straggler cut: a client whose serial link time exceeded the
  // round budget is dropped for the round even if its last transfer
  // technically arrived.
  bool deadline_cut = false;
  if (delivered && lopts.round_deadline_s > 0.0 &&
      endpoint.round_seconds > lopts.round_deadline_s) {
    delivered = false;
    deadline_cut = true;
  }
  if (!delivered) endpoint.active = false;

  // Lock-free accounting: every attempt occupies the wire, delivered or
  // not. Relaxed order is enough — readers only consume finished rounds.
  const int64_t burnt = wire_bytes * attempts_used;
  (uplink ? stats_.bytes_up : stats_.bytes_down)
      .fetch_add(burnt, std::memory_order_relaxed);
  if (lost > 0) stats_.drops.fetch_add(lost, std::memory_order_relaxed);
  if (corrupted > 0) {
    stats_.corruptions.fetch_add(corrupted, std::memory_order_relaxed);
    stats_.nacks.fetch_add(corrupted, std::memory_order_relaxed);
  }
  if (deadline_cut) {
    stats_.deadline_cuts.fetch_add(1, std::memory_order_relaxed);
  }
  if (delivered) {
    const int64_t payload = PayloadFloatBytes(tensors);
    if (uplink) {
      stats_.messages_up.fetch_add(1, std::memory_order_relaxed);
      stats_.payload_float_bytes_up.fetch_add(payload,
                                              std::memory_order_relaxed);
    } else {
      stats_.messages_down.fetch_add(1, std::memory_order_relaxed);
      stats_.payload_float_bytes_down.fetch_add(payload,
                                                std::memory_order_relaxed);
    }
  } else {
    stats_.dropouts.fetch_add(1, std::memory_order_relaxed);
  }
  if (metrics) {
    const CommCounters& c = CommCounters::Get();
    (uplink ? c.bytes_up : c.bytes_down)->Inc(burnt);
    c.frames->Inc(attempts_used);
    if (attempts_used > 1) {
      c.retransmits->Inc(attempts_used - 1);
      c.retry->Inc(attempts_used - 1);
    }
    if (lost > 0) c.drops->Inc(lost);
    if (corrupted > 0) {
      c.corrupt->Inc(corrupted);
      c.nack->Inc(corrupted);
    }
    if (deadline_cut) c.deadline_cut->Inc();
    if (!delivered) c.dropouts->Inc();
  }
  if (!delivered) return std::nullopt;

  // Receiver side: parse the frame (checksum validation) and decode with
  // the codec named in the header, not the local configuration.
  const int64_t decode_t0 = metrics ? obs::NowNs() : 0;
  Result<Frame> frame = DecodeFrame(wire);
  ADAFGL_CHECK(frame.ok());
  // Type verification closes the checksum's one blind spot: the FNV-1a
  // covers only the payload, so a header type flipped to another valid
  // value would otherwise decode as the wrong message class.
  ADAFGL_CHECK(frame.value().type == type);
  Result<std::vector<Matrix>> decoded =
      MakeCodec(frame.value().codec, codec_config_)
          ->Decode(frame.value().payload);
  ADAFGL_CHECK(decoded.ok());
  if (metrics) {
    decode_ns_->Record(static_cast<double>(obs::NowNs() - decode_t0));
  }
  return std::move(decoded).value();
}

CommStats ParameterServer::stats() const { return stats_.Snapshot(); }

CommReport ParameterServer::Report() const {
  CommReport report;
  report.stats = stats();
  report.codec = codec_->name();
  report.num_threads = std::max(1, options_.num_threads);
  return report;
}

}  // namespace adafgl::comm
