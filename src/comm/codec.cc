#include "comm/codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "nn/serialize.h"

namespace adafgl::comm {

namespace {

// --------------------------------------------------------------------------
// Byte-buffer helpers shared by every codec body.

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

template <typename T>
void AppendValue(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

template <typename T>
bool ReadValue(const std::string& in, size_t* offset, T* value) {
  if (*offset + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

// IEEE 754 binary16 conversion lives in nn/serialize.h (Fp16FromFloat /
// Fp16ToFloat) — shared with the serve embedding store's fp16 storage.

// --------------------------------------------------------------------------
// Payload envelope: count u32, then per matrix (rows i64, cols i64, body).
// Codec subclasses implement only the body.

class EnvelopeCodec : public Codec {
 public:
  std::string Encode(const std::vector<Matrix>& weights) const final {
    std::string out;
    AppendValue(&out, static_cast<uint32_t>(weights.size()));
    for (const Matrix& w : weights) {
      AppendValue(&out, w.rows());
      AppendValue(&out, w.cols());
      EncodeBody(w, &out);
    }
    return out;
  }

  Result<std::vector<Matrix>> Decode(const std::string& payload) const final {
    size_t offset = 0;
    uint32_t count = 0;
    if (!ReadValue(payload, &offset, &count)) {
      return Status::InvalidArgument("truncated payload header");
    }
    std::vector<Matrix> weights;
    weights.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      int64_t rows = 0, cols = 0;
      if (!ReadValue(payload, &offset, &rows) ||
          !ReadValue(payload, &offset, &cols) || rows < 0 || cols < 0) {
        return Status::InvalidArgument("malformed matrix header");
      }
      Matrix m(rows, cols);
      Status st = DecodeBody(payload, &offset, &m);
      if (!st.ok()) return st;
      weights.push_back(std::move(m));
    }
    if (offset != payload.size()) {
      return Status::InvalidArgument("trailing bytes in payload");
    }
    return weights;
  }

 protected:
  virtual void EncodeBody(const Matrix& m, std::string* out) const = 0;
  virtual Status DecodeBody(const std::string& in, size_t* offset,
                            Matrix* m) const = 0;
};

class LosslessCodec final : public EnvelopeCodec {
 public:
  CodecId id() const override { return CodecId::kLossless; }
  std::string name() const override { return "lossless"; }

 protected:
  void EncodeBody(const Matrix& m, std::string* out) const override {
    AppendRaw(out, m.data(), static_cast<size_t>(m.size()) * sizeof(float));
  }
  Status DecodeBody(const std::string& in, size_t* offset,
                    Matrix* m) const override {
    const size_t bytes = static_cast<size_t>(m->size()) * sizeof(float);
    if (*offset + bytes > in.size()) {
      return Status::InvalidArgument("truncated fp32 body");
    }
    std::memcpy(m->data(), in.data() + *offset, bytes);
    *offset += bytes;
    return Status::Ok();
  }
};

class Fp16Codec final : public EnvelopeCodec {
 public:
  CodecId id() const override { return CodecId::kFp16; }
  std::string name() const override { return "fp16"; }

 protected:
  void EncodeBody(const Matrix& m, std::string* out) const override {
    out->reserve(out->size() + static_cast<size_t>(m.size()) * 2);
    const float* data = m.data();
    for (int64_t i = 0; i < m.size(); ++i) {
      AppendValue(out, Fp16FromFloat(data[i]));
    }
  }
  Status DecodeBody(const std::string& in, size_t* offset,
                    Matrix* m) const override {
    const size_t bytes = static_cast<size_t>(m->size()) * sizeof(uint16_t);
    if (*offset + bytes > in.size()) {
      return Status::InvalidArgument("truncated fp16 body");
    }
    float* data = m->data();
    for (int64_t i = 0; i < m->size(); ++i) {
      uint16_t h;
      std::memcpy(&h, in.data() + *offset + static_cast<size_t>(i) * 2,
                  sizeof(h));
      data[i] = Fp16ToFloat(h);
    }
    *offset += bytes;
    return Status::Ok();
  }
};

/// Per-matrix magnitude sparsification: k u64, then k (index u32, value
/// f32) pairs sorted by index. Entries below the cut decode to zero —
/// standard top-k gradient/weight sparsification.
class TopKCodec final : public EnvelopeCodec {
 public:
  explicit TopKCodec(double ratio) : ratio_(std::clamp(ratio, 0.0, 1.0)) {}

  CodecId id() const override { return CodecId::kTopK; }
  std::string name() const override { return "topk"; }

 protected:
  void EncodeBody(const Matrix& m, std::string* out) const override {
    const int64_t n = m.size();
    if (n == 0) {
      AppendValue(out, static_cast<uint64_t>(0));
      return;
    }
    const int64_t k = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(ratio_ * static_cast<double>(n))));
    std::vector<uint32_t> idx(static_cast<size_t>(n));
    std::iota(idx.begin(), idx.end(), 0u);
    const float* data = m.data();
    // Deterministic selection: magnitude desc, index asc on ties.
    auto by_magnitude = [data](uint32_t a, uint32_t b) {
      const float ma = std::fabs(data[a]), mb = std::fabs(data[b]);
      if (ma != mb) return ma > mb;
      return a < b;
    };
    std::nth_element(idx.begin(), idx.begin() + (k - 1), idx.end(),
                     by_magnitude);
    idx.resize(static_cast<size_t>(k));
    std::sort(idx.begin(), idx.end());  // Index order for the wire.
    AppendValue(out, static_cast<uint64_t>(k));
    for (uint32_t i : idx) {
      AppendValue(out, i);
      AppendValue(out, data[i]);
    }
  }

  Status DecodeBody(const std::string& in, size_t* offset,
                    Matrix* m) const override {
    uint64_t k = 0;
    if (!ReadValue(in, offset, &k)) {
      return Status::InvalidArgument("truncated topk header");
    }
    if (k > static_cast<uint64_t>(m->size())) {
      return Status::InvalidArgument("topk count exceeds matrix size");
    }
    m->Zero();
    float* data = m->data();
    for (uint64_t e = 0; e < k; ++e) {
      uint32_t index = 0;
      float value = 0.0f;
      if (!ReadValue(in, offset, &index) || !ReadValue(in, offset, &value)) {
        return Status::InvalidArgument("truncated topk body");
      }
      if (index >= static_cast<uint64_t>(m->size())) {
        return Status::InvalidArgument("topk index out of range");
      }
      data[index] = value;
    }
    return Status::Ok();
  }

 private:
  double ratio_;
};

}  // namespace

std::unique_ptr<Codec> MakeCodec(const std::string& name,
                                 const CodecConfig& config) {
  if (name == "lossless") return std::make_unique<LosslessCodec>();
  if (name == "fp16") return std::make_unique<Fp16Codec>();
  if (name == "topk") return std::make_unique<TopKCodec>(config.topk_ratio);
  ADAFGL_CHECK(false && "unknown codec name");
  return nullptr;
}

std::unique_ptr<Codec> MakeCodec(CodecId id, const CodecConfig& config) {
  switch (id) {
    case CodecId::kLossless: return MakeCodec("lossless", config);
    case CodecId::kFp16: return MakeCodec("fp16", config);
    case CodecId::kTopK: return MakeCodec("topk", config);
  }
  ADAFGL_CHECK(false && "unknown codec id");
  return nullptr;
}

std::vector<std::string> CodecNames() { return {"lossless", "fp16", "topk"}; }

int64_t PayloadFloatBytes(const std::vector<Matrix>& weights) {
  int64_t total = 0;
  for (const Matrix& w : weights) total += w.size();
  return total * static_cast<int64_t>(sizeof(float));
}

float Fp16RoundTrip(float value) { return Fp16ToFloat(Fp16FromFloat(value)); }

}  // namespace adafgl::comm
