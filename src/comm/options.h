#ifndef ADAFGL_COMM_OPTIONS_H_
#define ADAFGL_COMM_OPTIONS_H_

#include <string>

#include "comm/link.h"

namespace adafgl::comm {

/// \brief Transport configuration carried inside FedConfig.
///
/// Defaults reproduce the pre-transport behaviour exactly: lossless fp32
/// payloads, one worker thread, a perfect network.
struct Options {
  /// Payload codec for weight-bearing messages: "lossless", "fp16",
  /// "topk". Control messages (pseudo-labels) always go lossless.
  std::string codec = "lossless";
  /// Fraction of entries the topk codec keeps per matrix.
  double topk_ratio = 0.1;
  /// Worker threads for parallel local client training (1 = serial).
  int num_threads = 1;
  /// Simulated network between server and clients.
  LinkOptions link;
};

}  // namespace adafgl::comm

#endif  // ADAFGL_COMM_OPTIONS_H_
