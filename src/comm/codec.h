#ifndef ADAFGL_COMM_CODEC_H_
#define ADAFGL_COMM_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/status.h"

namespace adafgl::comm {

/// Wire identifier of a codec; stored in every frame header so a receiver
/// can decode without out-of-band configuration.
enum class CodecId : uint8_t {
  kLossless = 0,  ///< fp32, bit-identical round trip.
  kFp16 = 1,      ///< IEEE 754 half precision (~2x smaller, ~1e-3 rel err).
  kTopK = 2,      ///< Magnitude sparsification (k/n of the entries).
};

/// \brief Pluggable payload codec for `std::vector<Matrix>` messages.
///
/// A codec owns the *body* representation of a message — everything after
/// the frame header (wire.h). All codecs share the same payload envelope
/// (count + per-matrix shape headers) so `PayloadFloatBytes` and shape
/// validation are codec-independent; only the per-matrix body differs.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecId id() const = 0;
  virtual std::string name() const = 0;

  /// Encodes a weight list into a codec payload (no frame header).
  virtual std::string Encode(const std::vector<Matrix>& weights) const = 0;

  /// Decodes a payload produced by `Encode`. InvalidArgument on malformed
  /// or truncated input.
  virtual Result<std::vector<Matrix>> Decode(
      const std::string& payload) const = 0;
};

/// Parameters for codec construction (only TopK consumes any today).
struct CodecConfig {
  /// Fraction of entries TopK keeps per matrix, in (0, 1]; at least one
  /// entry always survives.
  double topk_ratio = 0.1;
};

/// Creates a codec by registry name: "lossless", "fp16", "topk". Aborts on
/// unknown names (programming error, mirrors CreateModel).
std::unique_ptr<Codec> MakeCodec(const std::string& name,
                                 const CodecConfig& config = {});

/// Creates the codec matching a wire id (used by receivers).
std::unique_ptr<Codec> MakeCodec(CodecId id, const CodecConfig& config = {});

/// Names accepted by MakeCodec, in canonical order.
std::vector<std::string> CodecNames();

/// Semantic fp32 volume of a weight list (`sum(size) * sizeof(float)`) —
/// the quantity the pre-transport code called `ParamBytes()`. Codec-
/// independent: the accounting baseline every compression factor is
/// measured against.
int64_t PayloadFloatBytes(const std::vector<Matrix>& weights);

/// Round-trips one float through IEEE 754 half precision (exposed for
/// error-bound tests).
float Fp16RoundTrip(float value);

}  // namespace adafgl::comm

#endif  // ADAFGL_COMM_CODEC_H_
