#ifndef ADAFGL_COMM_WIRE_H_
#define ADAFGL_COMM_WIRE_H_

#include <cstdint>
#include <string>

#include "comm/codec.h"
#include "tensor/status.h"

namespace adafgl::comm {

/// Protocol message kinds. Stored in the frame header so a transcript of
/// raw bytes is self-describing (and so accounting can be broken down by
/// message class later without re-parsing payloads).
enum class MessageType : uint8_t {
  kWeights = 1,       ///< Full model weights (broadcast or upload).
  kDelta = 2,         ///< Weight update / gradient signature (GCFL+).
  kPredictions = 3,   ///< Class-probability matrix (FedGL fusion).
  kPseudoLabels = 4,  ///< Fused pseudo-label vector (FedGL broadcast).
  kEmbedding = 5,     ///< Functional embedding / feature moments.
};

/// A decoded frame: header fields + the raw codec payload.
struct Frame {
  MessageType type = MessageType::kWeights;
  CodecId codec = CodecId::kLossless;
  std::string payload;
};

/// \brief Message framing for the parameter-server transport.
///
/// Layout (little-endian):
///   magic  "AFGC"            4 bytes
///   version u16              2 bytes
///   type    u8               1 byte
///   codec   u8               1 byte
///   payload_size u64         8 bytes
///   checksum u64 (FNV-1a)    8 bytes
///   payload                  payload_size bytes
/// The checksum covers the payload only; header corruption is caught by the
/// magic/version/size checks.

/// Fixed per-message framing overhead in bytes.
inline constexpr int64_t kFrameHeaderBytes = 4 + 2 + 1 + 1 + 8 + 8;

/// FNV-1a 64-bit checksum (simple, dependency-free, good enough to catch
/// link-level corruption in tests and simulation).
uint64_t Fnv1a64(const void* data, size_t size);

/// Wraps a codec payload in a frame.
std::string EncodeFrame(MessageType type, CodecId codec, std::string payload);

/// Parses and validates a frame; InvalidArgument on bad magic/version,
/// truncation, trailing bytes, or checksum mismatch.
Result<Frame> DecodeFrame(const std::string& bytes);

/// Exact wire size of a message carrying `payload_size` codec bytes.
inline int64_t WireSize(int64_t payload_size) {
  return kFrameHeaderBytes + payload_size;
}

}  // namespace adafgl::comm

#endif  // ADAFGL_COMM_WIRE_H_
