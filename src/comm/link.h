#ifndef ADAFGL_COMM_LINK_H_
#define ADAFGL_COMM_LINK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/rng.h"

namespace adafgl::comm {

/// What the transport does when a message is lost in flight.
enum class FaultPolicy {
  kRetry,  ///< Retransmit up to `max_retries`, then drop the client.
  kSkip,   ///< Drop the client for the round on first loss.
};

/// \brief Configuration of the simulated network between the parameter
/// server and one federation of clients.
///
/// Defaults model a perfect, instantaneous network: zero latency, infinite
/// bandwidth, no faults — under which the transport is a pure
/// serialization boundary and training results are bit-identical to the
/// pre-transport implementation.
struct LinkOptions {
  /// One-way per-message latency, seconds.
  double latency_s = 0.0;
  /// Link bandwidth in bytes/second; 0 means infinite.
  double bandwidth_bps = 0.0;
  /// Per-client heterogeneity: client links are slowed by a deterministic
  /// factor drawn uniformly from [1, 1 + heterogeneity].
  double heterogeneity = 0.0;
  /// Per-message loss probability (both directions).
  double drop_prob = 0.0;
  /// Per-round probability a sampled client drops out entirely
  /// (stragglers/battery/churn).
  double dropout_prob = 0.0;
  /// Retransmissions allowed per message under FaultPolicy::kRetry.
  int max_retries = 2;
  FaultPolicy policy = FaultPolicy::kRetry;

  bool faulty() const { return drop_prob > 0.0 || dropout_prob > 0.0; }
};

/// \brief Deterministic per-client link simulation.
///
/// Produces transfer times for messages and per-round client dropout /
/// per-message loss decisions. All randomness is derived from (seed, round,
/// client), never from call order, so simulations replay identically under
/// any thread schedule.
class LinkModel {
 public:
  LinkModel(const LinkOptions& options, int32_t num_clients, uint64_t seed);

  const LinkOptions& options() const { return options_; }

  /// Seconds one message of `wire_bytes` takes on `client`'s link,
  /// including latency. Zero under the default perfect network.
  double TransferSeconds(int32_t client, int64_t wire_bytes) const;

  /// Whether `client` drops out of `round` entirely.
  bool ClientDropsOut(int32_t client, int round) const;

  /// Whether the `attempt`-th transmission of message `message_index` from
  /// or to `client` in `round` is lost.
  bool MessageLost(int32_t client, int round, int64_t message_index,
                   int attempt) const;

 private:
  /// Stateless per-event coin flip: deterministic in the event coordinates.
  static bool EventBernoulli(uint64_t seed, double p);

  LinkOptions options_;
  uint64_t seed_;
  /// Per-client link slowdown factors in [1, 1 + heterogeneity].
  std::vector<double> client_slowdown_;
};

}  // namespace adafgl::comm

#endif  // ADAFGL_COMM_LINK_H_
