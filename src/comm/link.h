#ifndef ADAFGL_COMM_LINK_H_
#define ADAFGL_COMM_LINK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/status.h"

namespace adafgl::comm {

/// What the transport does when a message is lost in flight.
enum class FaultPolicy {
  kRetry,  ///< Retransmit up to `max_retries`, then drop the client.
  kSkip,   ///< Drop the client for the round on first loss.
};

/// \brief Configuration of the simulated network between the parameter
/// server and one federation of clients.
///
/// Defaults model a perfect, instantaneous network: zero latency, infinite
/// bandwidth, no faults — under which the transport is a pure
/// serialization boundary and training results are bit-identical to the
/// pre-transport implementation.
struct LinkOptions {
  /// One-way per-message latency, seconds.
  double latency_s = 0.0;
  /// Link bandwidth in bytes/second; 0 means infinite.
  double bandwidth_bps = 0.0;
  /// Per-client heterogeneity: client links are slowed by a deterministic
  /// factor drawn uniformly from [1, 1 + heterogeneity].
  double heterogeneity = 0.0;
  /// Per-message loss probability (both directions).
  double drop_prob = 0.0;
  /// Per-round probability a sampled client drops out entirely
  /// (stragglers/battery/churn).
  double dropout_prob = 0.0;
  /// Per-message probability the payload is bit-corrupted in flight. A
  /// corrupted frame fails its FNV-1a checksum at the receiver, which
  /// NACKs it; under FaultPolicy::kRetry the sender retransmits.
  double corrupt_prob = 0.0;
  /// Per-round probability a sampled client crashes, losing its in-memory
  /// state. A crashed client sits the round out and rejoins the next one
  /// from its last checkpoint (or from scratch if it never saved one).
  double crash_prob = 0.0;
  /// Retransmissions allowed per message under FaultPolicy::kRetry.
  int max_retries = 2;
  /// Exponential-backoff base for retransmissions: the k-th retry adds
  /// backoff_base_s * 2^(k-1) of simulated time. 0 disables backoff.
  double backoff_base_s = 0.0;
  /// Per-round simulated-time budget per client; a client whose round
  /// exceeds it is cut (deadline straggler mitigation). 0 disables.
  double round_deadline_s = 0.0;
  FaultPolicy policy = FaultPolicy::kRetry;

  bool faulty() const {
    return drop_prob > 0.0 || dropout_prob > 0.0 || corrupt_prob > 0.0 ||
           crash_prob > 0.0;
  }
};

/// Rejects unusable configurations with InvalidArgument naming the field:
/// probabilities outside [0, 1], negative max_retries, latency, bandwidth,
/// heterogeneity, backoff, or deadline. LinkModel and ParameterServer
/// CHECK this at construction; call it yourself to surface the error as a
/// Status instead of an abort.
Status ValidateLinkOptions(const LinkOptions& options);

/// \brief Deterministic per-client link simulation.
///
/// Produces transfer times for messages and per-round client dropout /
/// per-message loss decisions. All randomness is derived from (seed, round,
/// client), never from call order, so simulations replay identically under
/// any thread schedule.
class LinkModel {
 public:
  LinkModel(const LinkOptions& options, int32_t num_clients, uint64_t seed);

  const LinkOptions& options() const { return options_; }

  /// Seconds one message of `wire_bytes` takes on `client`'s link,
  /// including latency. Zero under the default perfect network.
  double TransferSeconds(int32_t client, int64_t wire_bytes) const;

  /// Whether `client` drops out of `round` entirely.
  bool ClientDropsOut(int32_t client, int round) const;

  /// Whether the `attempt`-th transmission of message `message_index` from
  /// or to `client` in `round` is lost.
  bool MessageLost(int32_t client, int round, int64_t message_index,
                   int attempt) const;

  /// Whether the `attempt`-th transmission of message `message_index` from
  /// or to `client` in `round` arrives bit-corrupted. Independent of
  /// MessageLost (a message can only be one of lost / corrupted / clean —
  /// the channel checks loss first).
  bool MessageCorrupted(int32_t client, int round, int64_t message_index,
                        int attempt) const;

  /// Deterministic corruption site for a corrupted transmission: a 64-bit
  /// draw the channel maps to (byte offset, bit mask) within the frame.
  uint64_t CorruptionDraw(int32_t client, int round, int64_t message_index,
                          int attempt) const;

  /// Whether `client` crashes in `round` (loses in-memory state; rejoins
  /// later from checkpoint).
  bool ClientCrashes(int32_t client, int round) const;

 private:
  /// Stateless per-event coin flip: deterministic in the event coordinates.
  static bool EventBernoulli(uint64_t seed, double p);

  LinkOptions options_;
  uint64_t seed_;
  /// Per-client link slowdown factors in [1, 1 + heterogeneity].
  std::vector<double> client_slowdown_;
};

}  // namespace adafgl::comm

#endif  // ADAFGL_COMM_LINK_H_
