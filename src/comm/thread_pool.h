#ifndef ADAFGL_COMM_THREAD_POOL_H_
#define ADAFGL_COMM_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adafgl::comm {

/// \brief Small fixed-size worker pool for parallel local client training.
///
/// One pool is created per federated run and reused across rounds so worker
/// threads are spawned once, not per round. `ParallelFor` distributes
/// indices dynamically (atomic counter), which load-balances the uneven
/// per-client training costs of size-skewed federations.
///
/// With `threads <= 1` every call runs inline on the caller's thread — the
/// default, and the configuration under which results must be bit-identical
/// to the historical serial implementation.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `fn(i)` for every i in [0, n), blocking until all complete. The
  /// caller's thread participates, so the pool adds `threads - 1` workers.
  /// `fn` must not call ParallelFor reentrantly.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // Workers wait for a job.
  std::condition_variable done_cv_;   // ParallelFor waits for completion.
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_size_ = 0;
  size_t next_index_ = 0;    // Next index to claim (guarded by mu_).
  size_t remaining_ = 0;     // Indices not yet finished.
  uint64_t generation_ = 0;  // Bumped per job so workers see new work.
  bool shutdown_ = false;
};

}  // namespace adafgl::comm

#endif  // ADAFGL_COMM_THREAD_POOL_H_
