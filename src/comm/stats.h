#ifndef ADAFGL_COMM_STATS_H_
#define ADAFGL_COMM_STATS_H_

#include <cstdint>
#include <string>

namespace adafgl::comm {

/// \brief Transport accounting, measured from actual serialized messages.
///
/// `bytes_*` are wire bytes (frame header + codec payload) of successfully
/// delivered messages, plus the bytes burnt by lost transmissions — what a
/// network interface counter would read. `payload_float_bytes_*` are the
/// fp32-equivalent semantic volume of the delivered tensors — the quantity
/// the pre-transport code approximated with `ParamBytes()`; the ratio of
/// the two is the measured compression factor.
struct CommStats {
  int64_t bytes_up = 0;
  int64_t bytes_down = 0;
  int64_t payload_float_bytes_up = 0;
  int64_t payload_float_bytes_down = 0;
  int64_t messages_up = 0;
  int64_t messages_down = 0;
  /// Transmissions lost in flight (each counted once per lost attempt).
  int64_t drops = 0;
  /// Client-rounds lost to dropout or exhausted retries.
  int64_t dropouts = 0;
  /// Simulated wall-clock of the whole run: per round, the slowest
  /// participating client's serial transfer time (links run in parallel
  /// across clients, serially per client).
  double sim_seconds = 0.0;

  void Add(const CommStats& o) {
    bytes_up += o.bytes_up;
    bytes_down += o.bytes_down;
    payload_float_bytes_up += o.payload_float_bytes_up;
    payload_float_bytes_down += o.payload_float_bytes_down;
    messages_up += o.messages_up;
    messages_down += o.messages_down;
    drops += o.drops;
    dropouts += o.dropouts;
    sim_seconds += o.sim_seconds;
  }
};

/// Transport summary attached to every federated run result.
struct CommReport {
  CommStats stats;
  std::string codec = "lossless";
  int num_threads = 1;
};

}  // namespace adafgl::comm

#endif  // ADAFGL_COMM_STATS_H_
