#ifndef ADAFGL_COMM_STATS_H_
#define ADAFGL_COMM_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/registry.h"

namespace adafgl::comm {

/// \brief Transport accounting, measured from actual serialized messages.
///
/// `bytes_*` are wire bytes (frame header + codec payload) of successfully
/// delivered messages, plus the bytes burnt by lost transmissions — what a
/// network interface counter would read. `payload_float_bytes_*` are the
/// fp32-equivalent semantic volume of the delivered tensors — the quantity
/// the pre-transport code approximated with `ParamBytes()`; the ratio of
/// the two is the measured compression factor.
struct CommStats {
  int64_t bytes_up = 0;
  int64_t bytes_down = 0;
  int64_t payload_float_bytes_up = 0;
  int64_t payload_float_bytes_down = 0;
  int64_t messages_up = 0;
  int64_t messages_down = 0;
  /// Transmissions lost in flight (each counted once per lost attempt).
  int64_t drops = 0;
  /// Client-rounds lost to dropout, exhausted retries, or deadline cuts.
  int64_t dropouts = 0;
  /// Transmissions that arrived bit-corrupted (failed the frame checksum).
  int64_t corruptions = 0;
  /// NACKs the receiver sent back for corrupted frames (one per corrupted
  /// arrival; the NACK itself is a free control message).
  int64_t nacks = 0;
  /// Client-rounds cut because the client exceeded round_deadline_s of
  /// simulated link time (also counted in `dropouts`).
  int64_t deadline_cuts = 0;
  /// Client-rounds lost to a client crash (LinkOptions::crash_prob).
  int64_t crashes = 0;
  /// Simulated wall-clock of the whole run: per round, the slowest
  /// participating client's serial transfer time (links run in parallel
  /// across clients, serially per client).
  double sim_seconds = 0.0;

  /// Single-threaded aggregation of finished snapshots (e.g. folding a
  /// mend phase into a run report). Concurrent accumulation happens in
  /// AtomicCommStats; this plain struct is the read-only façade.
  void Add(const CommStats& o) {
    bytes_up += o.bytes_up;
    bytes_down += o.bytes_down;
    payload_float_bytes_up += o.payload_float_bytes_up;
    payload_float_bytes_down += o.payload_float_bytes_down;
    messages_up += o.messages_up;
    messages_down += o.messages_down;
    drops += o.drops;
    dropouts += o.dropouts;
    corruptions += o.corruptions;
    nacks += o.nacks;
    deadline_cuts += o.deadline_cuts;
    crashes += o.crashes;
    sim_seconds += o.sim_seconds;
  }
};

/// \brief Lock-free accumulation cell behind CommStats.
///
/// The ParameterServer's worker threads (ADAFGL_THREADS>1) land here with
/// relaxed atomic adds — no mutex on the transfer hot path. `Snapshot()`
/// materialises the plain CommStats façade the rest of the system reports.
/// Field meanings are exactly those of CommStats.
struct AtomicCommStats {
  std::atomic<int64_t> bytes_up{0};
  std::atomic<int64_t> bytes_down{0};
  std::atomic<int64_t> payload_float_bytes_up{0};
  std::atomic<int64_t> payload_float_bytes_down{0};
  std::atomic<int64_t> messages_up{0};
  std::atomic<int64_t> messages_down{0};
  std::atomic<int64_t> drops{0};
  std::atomic<int64_t> dropouts{0};
  std::atomic<int64_t> corruptions{0};
  std::atomic<int64_t> nacks{0};
  std::atomic<int64_t> deadline_cuts{0};
  std::atomic<int64_t> crashes{0};
  std::atomic<double> sim_seconds{0.0};

  void AddSimSeconds(double s) {
    obs::internal::AtomicAddDouble(sim_seconds, s);
  }

  CommStats Snapshot() const {
    CommStats s;
    s.bytes_up = bytes_up.load(std::memory_order_relaxed);
    s.bytes_down = bytes_down.load(std::memory_order_relaxed);
    s.payload_float_bytes_up =
        payload_float_bytes_up.load(std::memory_order_relaxed);
    s.payload_float_bytes_down =
        payload_float_bytes_down.load(std::memory_order_relaxed);
    s.messages_up = messages_up.load(std::memory_order_relaxed);
    s.messages_down = messages_down.load(std::memory_order_relaxed);
    s.drops = drops.load(std::memory_order_relaxed);
    s.dropouts = dropouts.load(std::memory_order_relaxed);
    s.corruptions = corruptions.load(std::memory_order_relaxed);
    s.nacks = nacks.load(std::memory_order_relaxed);
    s.deadline_cuts = deadline_cuts.load(std::memory_order_relaxed);
    s.crashes = crashes.load(std::memory_order_relaxed);
    s.sim_seconds = sim_seconds.load(std::memory_order_relaxed);
    return s;
  }
};

/// Transport summary attached to every federated run result.
struct CommReport {
  CommStats stats;
  std::string codec = "lossless";
  int num_threads = 1;
};

}  // namespace adafgl::comm

#endif  // ADAFGL_COMM_STATS_H_
