#include "comm/link.h"

namespace adafgl::comm {

namespace {

/// SplitMix64 finalizer — mixes event coordinates into an independent
/// uniform draw without any shared generator state.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// True for a probability parameter outside [0, 1].
bool BadProb(double p) { return !(p >= 0.0 && p <= 1.0); }

}  // namespace

Status ValidateLinkOptions(const LinkOptions& options) {
  if (options.latency_s < 0.0)
    return Status::InvalidArgument("LinkOptions.latency_s must be >= 0");
  if (options.bandwidth_bps < 0.0)
    return Status::InvalidArgument("LinkOptions.bandwidth_bps must be >= 0");
  if (options.heterogeneity < 0.0)
    return Status::InvalidArgument("LinkOptions.heterogeneity must be >= 0");
  if (BadProb(options.drop_prob))
    return Status::InvalidArgument("LinkOptions.drop_prob must be in [0, 1]");
  if (BadProb(options.dropout_prob))
    return Status::InvalidArgument(
        "LinkOptions.dropout_prob must be in [0, 1]");
  if (BadProb(options.corrupt_prob))
    return Status::InvalidArgument(
        "LinkOptions.corrupt_prob must be in [0, 1]");
  if (BadProb(options.crash_prob))
    return Status::InvalidArgument("LinkOptions.crash_prob must be in [0, 1]");
  if (options.max_retries < 0)
    return Status::InvalidArgument("LinkOptions.max_retries must be >= 0");
  if (options.backoff_base_s < 0.0)
    return Status::InvalidArgument("LinkOptions.backoff_base_s must be >= 0");
  if (options.round_deadline_s < 0.0)
    return Status::InvalidArgument(
        "LinkOptions.round_deadline_s must be >= 0");
  return Status::Ok();
}

LinkModel::LinkModel(const LinkOptions& options, int32_t num_clients,
                     uint64_t seed)
    : options_(options), seed_(seed) {
  ADAFGL_CHECK(ValidateLinkOptions(options).ok());
  client_slowdown_.reserve(static_cast<size_t>(num_clients));
  Rng rng(seed ^ 0x11f7c0ffeeULL);
  for (int32_t c = 0; c < num_clients; ++c) {
    client_slowdown_.push_back(
        options_.heterogeneity > 0.0
            ? 1.0 + rng.Uniform(0.0, options_.heterogeneity)
            : 1.0);
  }
}

double LinkModel::TransferSeconds(int32_t client, int64_t wire_bytes) const {
  const double slow =
      client >= 0 &&
              static_cast<size_t>(client) < client_slowdown_.size()
          ? client_slowdown_[static_cast<size_t>(client)]
          : 1.0;
  double seconds = options_.latency_s * slow;
  if (options_.bandwidth_bps > 0.0) {
    seconds +=
        static_cast<double>(wire_bytes) / options_.bandwidth_bps * slow;
  }
  return seconds;
}

bool LinkModel::ClientDropsOut(int32_t client, int round) const {
  if (options_.dropout_prob <= 0.0) return false;
  const uint64_t event = Mix64(seed_ ^ Mix64(0xd407ULL ^
                                             static_cast<uint64_t>(round)) ^
                               Mix64(static_cast<uint64_t>(client) << 20));
  return EventBernoulli(event, options_.dropout_prob);
}

bool LinkModel::MessageLost(int32_t client, int round, int64_t message_index,
                            int attempt) const {
  if (options_.drop_prob <= 0.0) return false;
  uint64_t event = seed_ ^ 0x10557ULL;
  event = Mix64(event ^ static_cast<uint64_t>(round));
  event = Mix64(event ^ (static_cast<uint64_t>(client) << 16));
  event = Mix64(event ^ (static_cast<uint64_t>(message_index) << 8));
  event = Mix64(event ^ static_cast<uint64_t>(attempt));
  return EventBernoulli(event, options_.drop_prob);
}

bool LinkModel::MessageCorrupted(int32_t client, int round,
                                 int64_t message_index, int attempt) const {
  if (options_.corrupt_prob <= 0.0) return false;
  // Distinct salt from MessageLost so the loss and corruption coins of the
  // same transmission are independent.
  uint64_t event = seed_ ^ 0xc0bbfe17ULL;
  event = Mix64(event ^ static_cast<uint64_t>(round));
  event = Mix64(event ^ (static_cast<uint64_t>(client) << 16));
  event = Mix64(event ^ (static_cast<uint64_t>(message_index) << 8));
  event = Mix64(event ^ static_cast<uint64_t>(attempt));
  return EventBernoulli(event, options_.corrupt_prob);
}

uint64_t LinkModel::CorruptionDraw(int32_t client, int round,
                                   int64_t message_index, int attempt) const {
  uint64_t event = seed_ ^ 0x5e1bf11bULL;
  event = Mix64(event ^ static_cast<uint64_t>(round));
  event = Mix64(event ^ (static_cast<uint64_t>(client) << 16));
  event = Mix64(event ^ (static_cast<uint64_t>(message_index) << 8));
  event = Mix64(event ^ static_cast<uint64_t>(attempt));
  return Mix64(event);
}

bool LinkModel::ClientCrashes(int32_t client, int round) const {
  if (options_.crash_prob <= 0.0) return false;
  const uint64_t event =
      Mix64(seed_ ^ Mix64(0xc4a54ULL ^ static_cast<uint64_t>(round)) ^
            Mix64(static_cast<uint64_t>(client) << 24));
  return EventBernoulli(event, options_.crash_prob);
}

bool LinkModel::EventBernoulli(uint64_t seed, double p) {
  // One SplitMix64 output mapped to [0, 1).
  const double u =
      static_cast<double>(Mix64(seed) >> 11) * 0x1.0p-53;
  return u < p;
}

}  // namespace adafgl::comm
