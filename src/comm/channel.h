#ifndef ADAFGL_COMM_CHANNEL_H_
#define ADAFGL_COMM_CHANNEL_H_

#include <memory>
#include <optional>
#include <vector>

#include "comm/link.h"
#include "comm/options.h"
#include "comm/stats.h"
#include "comm/wire.h"

namespace adafgl::comm {

/// \brief In-process parameter-server transport.
///
/// The server and its clients exchange *only serialized bytes*: every
/// transfer encodes the tensors with the configured codec, wraps them in a
/// checksummed frame (wire.h), "sends" them through the simulated link
/// (latency/bandwidth/loss/corruption), then decodes on the receiving
/// side; a frame that arrives bit-corrupted fails its FNV-1a checksum and
/// is NACKed back to the sender, which retransmits it under the same retry
/// budget (with optional exponential backoff) as a lost message. What the
/// caller gets back is the receiver's view — bit-identical under the
/// lossless codec, degraded under fp16/topk — and all accounting
/// (CommStats) is measured from the actual wire bytes.
///
/// Concurrency contract: `BeginRound`/`EndRound` are single-threaded round
/// brackets; `Downlink`/`Uplink` may run concurrently from worker threads
/// as long as no two threads drive the *same* client. Fault and timing
/// decisions are pure functions of (seed, round, client, message index), so
/// simulations replay identically under any thread schedule. Accounting is
/// lock-free (AtomicCommStats + obs counters) — transfers never serialize
/// on a stats mutex.
class ParameterServer {
 public:
  ParameterServer(const Options& options, int32_t num_clients, uint64_t seed);

  const Options& options() const { return options_; }
  int32_t num_clients() const {
    return static_cast<int32_t>(endpoints_.size());
  }

  /// Opens a round: resets per-client link clocks and message counters and
  /// rolls client crashes and dropouts for `participants`. Calling it again
  /// with the same `round` re-derives identical decisions.
  void BeginRound(int round, const std::vector<int32_t>& participants);

  /// Whether `client` is still reachable this round (not crashed or
  /// dropped out, no exhausted retries or deadline cut yet).
  bool ClientActive(int32_t client) const;

  /// Whether `client` crashed this round (LinkOptions::crash_prob). A
  /// crashed client is inactive and must restore from checkpoint before
  /// training again.
  bool ClientCrashed(int32_t client) const;

  /// Closes the round: folds the slowest participating client's serial
  /// transfer time into `stats().sim_seconds`.
  void EndRound();

  /// Server -> client transfer. Returns the client-side decoded tensors,
  /// or nullopt if the client is unreachable (dropped out, or the message
  /// was lost beyond the retry budget — which also deactivates the client
  /// for the rest of the round).
  std::optional<std::vector<Matrix>> Downlink(
      int32_t client, MessageType type, const std::vector<Matrix>& tensors);

  /// Client -> server transfer; same semantics as Downlink.
  std::optional<std::vector<Matrix>> Uplink(
      int32_t client, MessageType type, const std::vector<Matrix>& tensors);

  /// Accounting over the whole lifetime of the server.
  CommStats stats() const;

  /// stats() plus the codec/threading configuration, for run results.
  CommReport Report() const;

 private:
  /// Per-client endpoint state (the "CommClient" side of the channel).
  struct Endpoint {
    bool active = false;
    bool crashed = false;        // Crashed at BeginRound; sits the round out.
    double round_seconds = 0.0;  // Serial link time this round.
    int64_t message_index = 0;   // Per-round message counter.
  };

  std::optional<std::vector<Matrix>> Transfer(
      int32_t client, MessageType type, const std::vector<Matrix>& tensors,
      bool uplink);

  Options options_;
  CodecConfig codec_config_;
  std::unique_ptr<Codec> codec_;          // Weight-bearing messages.
  std::unique_ptr<Codec> control_codec_;  // Always lossless.
  LinkModel link_;
  int round_ = 0;
  std::vector<Endpoint> endpoints_;

  AtomicCommStats stats_;
  /// Per-codec encode/decode latency (ns), recorded under ADAFGL_METRICS=1;
  /// resolved once per server so transfers never look up the registry.
  obs::Histogram* encode_ns_ = nullptr;
  obs::Histogram* decode_ns_ = nullptr;
};

}  // namespace adafgl::comm

#endif  // ADAFGL_COMM_CHANNEL_H_
