#include "comm/thread_pool.h"

#include <algorithm>

namespace adafgl::comm {

ThreadPool::ThreadPool(int threads) : num_threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_size_ = n;
    next_index_ = 0;
    remaining_ = n;
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller participates in the same dynamic claiming loop.
  std::unique_lock<std::mutex> lock(mu_);
  while (next_index_ < job_size_) {
    const size_t i = next_index_++;
    lock.unlock();
    fn(i);
    lock.lock();
    if (--remaining_ == 0) done_cv_.notify_all();
  }
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  job_size_ = 0;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return shutdown_ || (job_ != nullptr && next_index_ < job_size_);
    });
    if (shutdown_) return;
    const std::function<void(size_t)>* job = job_;
    while (job == job_ && next_index_ < job_size_) {
      const size_t i = next_index_++;
      lock.unlock();
      (*job)(i);
      lock.lock();
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace adafgl::comm
