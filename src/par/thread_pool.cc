#include "par/thread_pool.h"

#include <algorithm>

namespace adafgl::par {

ThreadPool::ThreadPool(int threads) : num_threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::ClaimTasks(const std::function<void(size_t)>* task,
                            size_t n) {
  for (;;) {
    const size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    (*task)(i);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunJob(size_t n, const std::function<void(size_t)>& task) {
  if (n == 0) return;
  if (num_threads_ <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) task(i);
    return;
  }
  // One dispatched job at a time: a second caller (another client-training
  // thread, or a task reentrantly parallelizing) runs inline instead of
  // waiting, which keeps the pool deadlock-free under nesting.
  std::unique_lock<std::mutex> submit(submit_mu_, std::try_to_lock);
  if (!submit.owns_lock()) {
    for (size_t i = 0; i < n; ++i) task(i);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // A worker of the *previous* job may still be between its last task
    // and its exit from ClaimTasks; resetting next_index_ under its feet
    // would hand it a task of the new job bound to the old function.
    done_cv_.wait(lock, [this] { return claimers_ == 0; });
    job_ = &task;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    remaining_.store(static_cast<int64_t>(n), std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller participates in the same dynamic claiming loop.
  ClaimTasks(&task, n);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return remaining_.load(std::memory_order_acquire) == 0;
  });
  job_ = nullptr;
  job_size_ = 0;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = generation_;
    const std::function<void(size_t)>* job = job_;
    const size_t n = job_size_;
    if (job == nullptr) continue;  // Job already drained before we woke.
    ++claimers_;
    lock.unlock();
    ClaimTasks(job, n);
    lock.lock();
    if (--claimers_ == 0) done_cv_.notify_all();
  }
}

size_t ThreadPool::AutoGrain(size_t n) const {
  // ~4 chunks per thread: enough slack for dynamic load balancing without
  // drowning small jobs in dispatch overhead.
  const size_t target_chunks =
      static_cast<size_t>(num_threads_) * 4;
  return std::max<size_t>(1, (n + target_chunks - 1) / target_chunks);
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  RunJob(n, fn);
}

void ThreadPool::ParallelForChunks(
    size_t n, size_t grain, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t g = grain == 0 ? AutoGrain(n) : grain;
  const size_t num_chunks = (n + g - 1) / g;
  RunJob(num_chunks, [&](size_t c) {
    const size_t begin = c * g;
    fn(begin, std::min(n, begin + g));
  });
}

void ThreadPool::ParallelFor2D(
    size_t rows, size_t cols, size_t row_grain, size_t col_grain,
    const std::function<void(size_t, size_t, size_t, size_t)>& fn) {
  if (rows == 0 || cols == 0) return;
  // Auto-size the row axis against the thread count and keep full column
  // strips by default — row-partitioned kernels want wide tiles.
  const size_t rg = row_grain == 0 ? AutoGrain(rows) : row_grain;
  const size_t cg = col_grain == 0 ? cols : col_grain;
  const size_t row_tiles = (rows + rg - 1) / rg;
  const size_t col_tiles = (cols + cg - 1) / cg;
  RunJob(row_tiles * col_tiles, [&](size_t t) {
    const size_t tr = t / col_tiles;
    const size_t tc = t % col_tiles;
    const size_t r0 = tr * rg;
    const size_t c0 = tc * cg;
    fn(r0, std::min(rows, r0 + rg), c0, std::min(cols, c0 + cg));
  });
}

}  // namespace adafgl::par
