#include "par/par.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace adafgl::par {

namespace {

std::mutex g_pool_mu;
std::atomic<ThreadPool*> g_pool{nullptr};

int ReadEnvThreads() {
  const char* v = std::getenv("ADAFGL_KERNEL_THREADS");
  if (v == nullptr || *v == '\0') return 1;
  const int n = std::atoi(v);
  return n < 1 ? 1 : n;
}

}  // namespace

int KernelThreads() {
  ThreadPool* p = g_pool.load(std::memory_order_acquire);
  return p != nullptr ? p->num_threads() : ReadEnvThreads();
}

ThreadPool& KernelPool() {
  ThreadPool* p = g_pool.load(std::memory_order_acquire);
  if (p != nullptr) return *p;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  p = g_pool.load(std::memory_order_relaxed);
  if (p == nullptr) {
    p = new ThreadPool(ReadEnvThreads());  // Leaked: usable during exit.
    g_pool.store(p, std::memory_order_release);
  }
  return *p;
}

void ResetKernelPoolForTest(int threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  ThreadPool* old = g_pool.exchange(nullptr, std::memory_order_acq_rel);
  delete old;  // Joins the previous workers.
  g_pool.store(new ThreadPool(threads <= 0 ? ReadEnvThreads() : threads),
               std::memory_order_release);
}

}  // namespace adafgl::par
