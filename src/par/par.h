#ifndef ADAFGL_PAR_PAR_H_
#define ADAFGL_PAR_PAR_H_

#include "par/thread_pool.h"

namespace adafgl::par {

/// \brief Process-wide kernel parallelism (`ADAFGL_KERNEL_THREADS`).
///
/// The dense/sparse tensor kernels (matmul flavours, SpMM) partition their
/// output rows over this shared pool. It is distinct from — and composes
/// with — the per-run client pools of the federated loops
/// (`ADAFGL_THREADS`): when both are > 1, concurrent kernel invocations
/// from different client-training threads fall back to inline execution
/// (one kernel job occupies the pool at a time; see ThreadPool), so the
/// two levels never oversubscribe multiplicatively.
///
/// Every kernel is written so its output is bit-identical for *any* thread
/// count, including the historical serial loops at 1 — the knob is purely
/// a throughput lever and defaults to 1 (serial).

/// Thread count the kernel pool was / will be built with:
/// ADAFGL_KERNEL_THREADS clamped to >= 1, default 1.
int KernelThreads();

/// The lazily-initialized process-wide pool (leaked; safe during exit).
ThreadPool& KernelPool();

/// Rebuilds the kernel pool with `threads` workers (<= 0 re-reads the
/// environment). Tests and benches only — callers must guarantee no kernel
/// is in flight.
void ResetKernelPoolForTest(int threads);

}  // namespace adafgl::par

#endif  // ADAFGL_PAR_PAR_H_
