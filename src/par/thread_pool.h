#ifndef ADAFGL_PAR_THREAD_POOL_H_
#define ADAFGL_PAR_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adafgl::par {

/// \brief Fixed-size worker pool shared by client-level parallelism
/// (fed round loops, ADAFGL_THREADS) and kernel-level parallelism
/// (matmul/SpMM row blocks, ADAFGL_KERNEL_THREADS via par::KernelPool()).
///
/// One pool is created per federated run and reused across rounds so
/// worker threads are spawned once, not per round; the kernel pool is a
/// single process-wide instance. Tasks are claimed dynamically through a
/// lock-free atomic counter (`fetch_add`), which load-balances uneven
/// per-task costs — size-skewed client federations and ragged sparse row
/// blocks alike — without a mutex on the claim path.
///
/// With `threads <= 1` every call runs inline on the caller's thread — the
/// default, and the configuration under which results must be bit-identical
/// to the historical serial implementation.
///
/// Concurrency contract: one job runs at a time per pool. A ParallelFor*
/// issued while another job is in flight on the same pool (from another
/// thread, or reentrantly from a worker) executes inline on the calling
/// thread instead of deadlocking — safe because every chunked kernel in
/// this codebase produces partition-independent (bit-identical) results.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `fn(i)` for every i in [0, n), blocking until all complete. The
  /// caller's thread participates, so the pool adds `threads - 1` workers.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs `fn(begin, end)` over a fixed decomposition of [0, n) into
  /// contiguous chunks of at most `grain` indices (`grain == 0` picks
  /// roughly 4 chunks per thread). Chunks are claimed dynamically but the
  /// decomposition itself — and therefore any per-chunk partial buffers
  /// reduced in chunk order — depends only on (n, grain, num_threads),
  /// never on scheduling.
  void ParallelForChunks(size_t n, size_t grain,
                         const std::function<void(size_t, size_t)>& fn);

  /// 2-D tiled variant: decomposes the [0, rows) x [0, cols) iteration
  /// space into a row-major grid of tiles of at most row_grain x col_grain
  /// and runs `fn(row_begin, row_end, col_begin, col_end)` per tile
  /// (grain == 0 auto-sizes that axis). Tile boundaries are a pure
  /// function of the shape and grains.
  void ParallelFor2D(
      size_t rows, size_t cols, size_t row_grain, size_t col_grain,
      const std::function<void(size_t, size_t, size_t, size_t)>& fn);

 private:
  void WorkerLoop();
  /// Dispatches `n` tasks to the pool (or runs them inline when the pool
  /// is busy/single-threaded) and blocks until all complete.
  void RunJob(size_t n, const std::function<void(size_t)>& task);
  /// Claims task indices from the atomic counter until none remain.
  void ClaimTasks(const std::function<void(size_t)>* task, size_t n);
  size_t AutoGrain(size_t n) const;

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex submit_mu_;  // Held for the duration of one dispatched job.
  std::mutex mu_;
  std::condition_variable work_cv_;   // Workers wait for a job.
  std::condition_variable done_cv_;   // RunJob waits for completion/drain.
  const std::function<void(size_t)>* job_ = nullptr;  // Guarded by mu_.
  size_t job_size_ = 0;               // Guarded by mu_.
  uint64_t generation_ = 0;           // Guarded by mu_; bumped per job.
  int claimers_ = 0;                  // Workers inside ClaimTasks (mu_).
  bool shutdown_ = false;             // Guarded by mu_.

  /// Next task index to claim — the lock-free dynamic distribution point.
  /// Monotonically overshoots job_size_ by at most the worker count, and
  /// is only reset once every claimer of the previous job has drained.
  std::atomic<size_t> next_index_{0};
  /// Tasks not yet finished; the final decrement wakes RunJob.
  std::atomic<int64_t> remaining_{0};
};

}  // namespace adafgl::par

#endif  // ADAFGL_PAR_THREAD_POOL_H_
