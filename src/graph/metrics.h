#ifndef ADAFGL_GRAPH_METRICS_H_
#define ADAFGL_GRAPH_METRICS_H_

#include <vector>

#include "graph/graph.h"

namespace adafgl {

/// Node homophily H_node (Eq. 2): mean over nodes of the fraction of
/// same-label one-hop neighbours. Isolated nodes are skipped.
double NodeHomophily(const CsrMatrix& adj, const std::vector<int32_t>& labels);

/// Edge homophily H_edge (Eq. 2): fraction of edges whose endpoints share a
/// label. Returns 0 for edgeless graphs.
double EdgeHomophily(const CsrMatrix& adj, const std::vector<int32_t>& labels);

/// Per-class node counts (length num_classes). Used for the Fig. 2(a)
/// label-distribution heatmap.
std::vector<int64_t> LabelHistogram(const std::vector<int32_t>& labels,
                                    int32_t num_classes);

/// Modularity of a partition (community assignment per node) under the
/// standard Newman-Girvan definition. Used to validate Louvain.
double Modularity(const CsrMatrix& adj, const std::vector<int32_t>& community);

/// Number of edges whose endpoints fall in different parts.
int64_t EdgeCut(const CsrMatrix& adj, const std::vector<int32_t>& part);

/// max_part_size * k / n — 1.0 means perfectly balanced.
double PartitionImbalance(const std::vector<int32_t>& part, int32_t k);

}  // namespace adafgl

#endif  // ADAFGL_GRAPH_METRICS_H_
