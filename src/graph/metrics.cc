#include "graph/metrics.h"

#include <algorithm>

#include "tensor/status.h"

namespace adafgl {

double NodeHomophily(const CsrMatrix& adj,
                     const std::vector<int32_t>& labels) {
  ADAFGL_CHECK(static_cast<int32_t>(labels.size()) == adj.rows());
  double total = 0.0;
  int64_t counted = 0;
  for (int32_t u = 0; u < adj.rows(); ++u) {
    int64_t deg = 0;
    int64_t same = 0;
    adj.ForEachInRow(u, [&](int32_t v, float) {
      if (v == u) return;  // Ignore self loops.
      ++deg;
      if (labels[static_cast<size_t>(v)] == labels[static_cast<size_t>(u)]) {
        ++same;
      }
    });
    if (deg == 0) continue;
    total += static_cast<double>(same) / static_cast<double>(deg);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double EdgeHomophily(const CsrMatrix& adj,
                     const std::vector<int32_t>& labels) {
  ADAFGL_CHECK(static_cast<int32_t>(labels.size()) == adj.rows());
  int64_t edges = 0;
  int64_t same = 0;
  for (int32_t u = 0; u < adj.rows(); ++u) {
    adj.ForEachInRow(u, [&](int32_t v, float) {
      if (v <= u) return;
      ++edges;
      if (labels[static_cast<size_t>(v)] == labels[static_cast<size_t>(u)]) {
        ++same;
      }
    });
  }
  return edges == 0 ? 0.0
                    : static_cast<double>(same) / static_cast<double>(edges);
}

std::vector<int64_t> LabelHistogram(const std::vector<int32_t>& labels,
                                    int32_t num_classes) {
  std::vector<int64_t> hist(static_cast<size_t>(num_classes), 0);
  for (int32_t y : labels) {
    ADAFGL_CHECK(y >= 0 && y < num_classes);
    ++hist[static_cast<size_t>(y)];
  }
  return hist;
}

double Modularity(const CsrMatrix& adj,
                  const std::vector<int32_t>& community) {
  ADAFGL_CHECK(static_cast<int32_t>(community.size()) == adj.rows());
  const double two_m = static_cast<double>(adj.nnz());
  if (two_m == 0.0) return 0.0;
  // Q = (1/2m) sum_ij [A_ij - k_i k_j / 2m] delta(c_i, c_j)
  //   = sum_c (in_c / 2m - (tot_c / 2m)^2)
  int32_t max_c = 0;
  for (int32_t c : community) max_c = std::max(max_c, c);
  std::vector<double> in(static_cast<size_t>(max_c) + 1, 0.0);
  std::vector<double> tot(static_cast<size_t>(max_c) + 1, 0.0);
  for (int32_t u = 0; u < adj.rows(); ++u) {
    const int32_t cu = community[static_cast<size_t>(u)];
    adj.ForEachInRow(u, [&](int32_t v, float w) {
      tot[static_cast<size_t>(cu)] += w;
      if (community[static_cast<size_t>(v)] == cu) {
        in[static_cast<size_t>(cu)] += w;
      }
    });
  }
  double q = 0.0;
  for (size_t c = 0; c < in.size(); ++c) {
    q += in[c] / two_m - (tot[c] / two_m) * (tot[c] / two_m);
  }
  return q;
}

int64_t EdgeCut(const CsrMatrix& adj, const std::vector<int32_t>& part) {
  ADAFGL_CHECK(static_cast<int32_t>(part.size()) == adj.rows());
  int64_t cut = 0;
  for (int32_t u = 0; u < adj.rows(); ++u) {
    adj.ForEachInRow(u, [&](int32_t v, float) {
      if (v > u && part[static_cast<size_t>(u)] != part[static_cast<size_t>(v)]) {
        ++cut;
      }
    });
  }
  return cut;
}

double PartitionImbalance(const std::vector<int32_t>& part, int32_t k) {
  ADAFGL_CHECK(k > 0);
  std::vector<int64_t> sizes(static_cast<size_t>(k), 0);
  for (int32_t p : part) {
    ADAFGL_CHECK(p >= 0 && p < k);
    ++sizes[static_cast<size_t>(p)];
  }
  const int64_t max_size = *std::max_element(sizes.begin(), sizes.end());
  return static_cast<double>(max_size) * k /
         std::max<double>(1.0, static_cast<double>(part.size()));
}

}  // namespace adafgl
