#ifndef ADAFGL_GRAPH_GRAPH_H_
#define ADAFGL_GRAPH_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/csr.h"
#include "tensor/matrix.h"

namespace adafgl {

/// \brief An attributed, labeled, undirected graph with train/val/test
/// splits — the unit of data every model and federated client operates on.
///
/// Invariants maintained by the builders in this module:
///  * `adj` is symmetric and binary (value 1.0 per stored edge), without
///    self loops;
///  * `features` has `num_nodes()` rows;
///  * `labels[i]` in [0, num_classes);
///  * the three split vectors hold disjoint node ids.
struct Graph {
  CsrMatrix adj;
  Matrix features;
  std::vector<int32_t> labels;
  int32_t num_classes = 0;

  std::vector<int32_t> train_nodes;
  std::vector<int32_t> val_nodes;
  std::vector<int32_t> test_nodes;

  int32_t num_nodes() const { return adj.rows(); }
  /// Number of undirected edges (each stored twice in `adj`).
  int64_t num_edges() const { return adj.nnz() / 2; }
  int64_t feature_dim() const { return features.cols(); }
};

/// Builds a graph from an undirected edge list plus attributes.
Graph MakeGraph(int32_t num_nodes,
                const std::vector<std::pair<int32_t, int32_t>>& edges,
                Matrix features, std::vector<int32_t> labels,
                int32_t num_classes);

/// Extracts the node-induced subgraph on `nodes` (local ids follow the order
/// of `nodes`); split membership is inherited from the parent graph.
/// `global_ids`, when non-null, receives the parent id of each local node.
Graph InducedSubgraph(const Graph& g, const std::vector<int32_t>& nodes,
                      std::vector<int32_t>* global_ids = nullptr);

/// Returns the undirected edge list (u < v) of a graph's adjacency.
std::vector<std::pair<int32_t, int32_t>> UndirectedEdges(const CsrMatrix& adj);

/// Symmetric-normalised adjacency with self loops: D^-1/2 (A + I) D^-1/2.
/// The canonical GCN operator (Eq. 1 with r = 1/2).
CsrMatrix GcnNormalized(const CsrMatrix& adj);

}  // namespace adafgl

#endif  // ADAFGL_GRAPH_GRAPH_H_
