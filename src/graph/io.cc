#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace adafgl {

namespace {

Status ParseError(int line, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " +
                                 message);
}

}  // namespace

Result<Graph> ParseGraph(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;

  int32_t num_nodes = -1;
  int64_t feature_dim = -1;
  int32_t num_classes = -1;
  Matrix features;
  std::vector<int32_t> labels;
  std::vector<uint8_t> node_seen;
  std::vector<std::pair<int32_t, int32_t>> edges;
  std::vector<int32_t> train, val, test;

  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;  // Blank line.

    if (tag == "header") {
      if (num_nodes != -1) return ParseError(line_no, "duplicate header");
      if (!(ls >> num_nodes >> feature_dim >> num_classes)) {
        return ParseError(line_no, "malformed header");
      }
      if (num_nodes <= 0 || feature_dim < 0 || num_classes <= 0) {
        return ParseError(line_no, "non-positive header fields");
      }
      features = Matrix(num_nodes, feature_dim);
      labels.assign(static_cast<size_t>(num_nodes), 0);
      node_seen.assign(static_cast<size_t>(num_nodes), 0);
      continue;
    }
    if (num_nodes == -1) {
      return ParseError(line_no, "'" + tag + "' before header");
    }

    if (tag == "node") {
      int32_t id, label;
      if (!(ls >> id >> label)) {
        return ParseError(line_no, "malformed node line");
      }
      if (id < 0 || id >= num_nodes) {
        return ParseError(line_no, "node id out of range");
      }
      if (label < 0 || label >= num_classes) {
        return ParseError(line_no, "label out of range");
      }
      if (node_seen[static_cast<size_t>(id)]) {
        return ParseError(line_no, "duplicate node id");
      }
      node_seen[static_cast<size_t>(id)] = 1;
      labels[static_cast<size_t>(id)] = label;
      for (int64_t j = 0; j < feature_dim; ++j) {
        float v;
        if (!(ls >> v)) return ParseError(line_no, "missing feature value");
        features(id, j) = v;
      }
    } else if (tag == "edge") {
      int32_t u, v;
      if (!(ls >> u >> v)) return ParseError(line_no, "malformed edge line");
      if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes) {
        return ParseError(line_no, "edge endpoint out of range");
      }
      edges.emplace_back(u, v);
    } else if (tag == "split") {
      std::string kind;
      if (!(ls >> kind)) return ParseError(line_no, "missing split kind");
      std::vector<int32_t>* target = kind == "train" ? &train
                                     : kind == "val" ? &val
                                     : kind == "test" ? &test
                                                      : nullptr;
      if (target == nullptr) {
        return ParseError(line_no, "unknown split kind '" + kind + "'");
      }
      int32_t id;
      while (ls >> id) {
        if (id < 0 || id >= num_nodes) {
          return ParseError(line_no, "split id out of range");
        }
        target->push_back(id);
      }
    } else {
      return ParseError(line_no, "unknown tag '" + tag + "'");
    }
  }
  if (num_nodes == -1) return Status::InvalidArgument("missing header");
  for (int32_t id = 0; id < num_nodes; ++id) {
    if (!node_seen[static_cast<size_t>(id)]) {
      return Status::InvalidArgument("node " + std::to_string(id) +
                                     " has no node line");
    }
  }

  Graph g = MakeGraph(num_nodes, edges, std::move(features),
                      std::move(labels), num_classes);
  g.train_nodes = std::move(train);
  g.val_nodes = std::move(val);
  g.test_nodes = std::move(test);
  return g;
}

Result<Graph> LoadGraphFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseGraph(buffer.str());
}

std::string SerializeGraph(const Graph& g) {
  std::ostringstream out;
  out << "header " << g.num_nodes() << " " << g.feature_dim() << " "
      << g.num_classes << "\n";
  for (int32_t v = 0; v < g.num_nodes(); ++v) {
    out << "node " << v << " " << g.labels[static_cast<size_t>(v)];
    for (int64_t j = 0; j < g.feature_dim(); ++j) {
      out << " " << g.features(v, j);
    }
    out << "\n";
  }
  for (const auto& [u, v] : UndirectedEdges(g.adj)) {
    out << "edge " << u << " " << v << "\n";
  }
  auto write_split = [&](const char* kind, const std::vector<int32_t>& ids) {
    if (ids.empty()) return;
    out << "split " << kind;
    for (int32_t id : ids) out << " " << id;
    out << "\n";
  };
  write_split("train", g.train_nodes);
  write_split("val", g.val_nodes);
  write_split("test", g.test_nodes);
  return out.str();
}

Status SaveGraphToFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write '" + path + "'");
  out << SerializeGraph(g);
  return out.good() ? Status::Ok()
                    : Status::Internal("write failed for '" + path + "'");
}

}  // namespace adafgl
