#ifndef ADAFGL_GRAPH_IO_H_
#define ADAFGL_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "tensor/status.h"

namespace adafgl {

/// \brief Plain-text graph serialization for bringing real datasets into
/// the pipeline (and for shipping synthetic ones out).
///
/// Format (single file, whitespace-separated, '#' comments allowed):
///
///   header  <num_nodes> <feature_dim> <num_classes>
///   node    <id> <label> <f_0> ... <f_{dim-1}>     (one per node)
///   edge    <u> <v>                                 (undirected)
///   split   <train|val|test> <id> [id ...]          (repeatable)
///
/// All ids must be in [0, num_nodes). Every node line must appear exactly
/// once. Malformed input returns InvalidArgument with a line number; no
/// exceptions are thrown.

/// Parses a graph from a file on disk.
Result<Graph> LoadGraphFromFile(const std::string& path);

/// Parses a graph from an in-memory string (exposed for tests).
Result<Graph> ParseGraph(const std::string& text);

/// Writes a graph in the same format. Returns an error if the file cannot
/// be opened for writing.
Status SaveGraphToFile(const Graph& g, const std::string& path);

/// Serializes a graph to the text format (exposed for tests).
std::string SerializeGraph(const Graph& g);

}  // namespace adafgl

#endif  // ADAFGL_GRAPH_IO_H_
