#include "graph/graph.h"

#include <algorithm>
#include <unordered_map>

#include "tensor/matrix_ops.h"
#include "tensor/status.h"

namespace adafgl {

Graph MakeGraph(int32_t num_nodes,
                const std::vector<std::pair<int32_t, int32_t>>& edges,
                Matrix features, std::vector<int32_t> labels,
                int32_t num_classes) {
  ADAFGL_CHECK(features.rows() == num_nodes);
  ADAFGL_CHECK(static_cast<int32_t>(labels.size()) == num_nodes);
  Graph g;
  g.adj = CsrFromUndirectedEdges(num_nodes, edges);
  g.features = std::move(features);
  g.labels = std::move(labels);
  g.num_classes = num_classes;
  for (int32_t y : g.labels) ADAFGL_CHECK(y >= 0 && y < num_classes);
  return g;
}

Graph InducedSubgraph(const Graph& g, const std::vector<int32_t>& nodes,
                      std::vector<int32_t>* global_ids) {
  const int32_t n = static_cast<int32_t>(nodes.size());
  std::unordered_map<int32_t, int32_t> local;
  local.reserve(nodes.size());
  for (int32_t i = 0; i < n; ++i) {
    ADAFGL_CHECK(nodes[static_cast<size_t>(i)] >= 0 &&
                 nodes[static_cast<size_t>(i)] < g.num_nodes());
    local[nodes[static_cast<size_t>(i)]] = i;
  }
  ADAFGL_CHECK(static_cast<int32_t>(local.size()) == n);  // Unique ids.

  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i < n; ++i) {
    const int32_t u = nodes[static_cast<size_t>(i)];
    g.adj.ForEachInRow(u, [&](int32_t v, float) {
      auto it = local.find(v);
      if (it != local.end() && u < v) edges.emplace_back(i, it->second);
    });
  }

  Graph sub;
  sub.adj = CsrFromUndirectedEdges(n, edges);
  sub.features = GatherRows(g.features, nodes);
  sub.labels.resize(static_cast<size_t>(n));
  sub.num_classes = g.num_classes;
  for (int32_t i = 0; i < n; ++i) {
    sub.labels[static_cast<size_t>(i)] =
        g.labels[static_cast<size_t>(nodes[static_cast<size_t>(i)])];
  }

  // Inherit split membership.
  std::vector<uint8_t> role(static_cast<size_t>(g.num_nodes()), 0);
  for (int32_t v : g.train_nodes) role[static_cast<size_t>(v)] = 1;
  for (int32_t v : g.val_nodes) role[static_cast<size_t>(v)] = 2;
  for (int32_t v : g.test_nodes) role[static_cast<size_t>(v)] = 3;
  for (int32_t i = 0; i < n; ++i) {
    switch (role[static_cast<size_t>(nodes[static_cast<size_t>(i)])]) {
      case 1: sub.train_nodes.push_back(i); break;
      case 2: sub.val_nodes.push_back(i); break;
      case 3: sub.test_nodes.push_back(i); break;
      default: break;
    }
  }

  if (global_ids != nullptr) *global_ids = nodes;
  return sub;
}

std::vector<std::pair<int32_t, int32_t>> UndirectedEdges(const CsrMatrix& adj) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  edges.reserve(static_cast<size_t>(adj.nnz() / 2));
  for (int32_t u = 0; u < adj.rows(); ++u) {
    adj.ForEachInRow(u, [&](int32_t v, float) {
      if (u < v) edges.emplace_back(u, v);
    });
  }
  return edges;
}

CsrMatrix GcnNormalized(const CsrMatrix& adj) {
  return adj.WithSelfLoops().Normalized(0.5f);
}

}  // namespace adafgl
