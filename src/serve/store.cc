#include "serve/store.h"

#include <cstring>
#include <utility>

#include "nn/serialize.h"

namespace adafgl::serve {

namespace {

constexpr float kStoreFormatVersion = 1.0f;

Matrix MetaMatrix(float a, float b, float c, float d) {
  Matrix m(1, 4);
  m(0, 0) = a;
  m(0, 1) = b;
  m(0, 2) = c;
  m(0, 3) = d;
  return m;
}

std::vector<Matrix> StoreToWeights(const FrozenStore& store) {
  std::vector<Matrix> weights;
  weights.reserve(1 + 2 * store.clients.size());
  weights.push_back(MetaMatrix(kStoreFormatVersion,
                               static_cast<float>(store.clients.size()),
                               0.0f, 0.0f));
  for (const FrozenClient& c : store.clients) {
    weights.push_back(MetaMatrix(static_cast<float>(c.num_nodes),
                                 static_cast<float>(c.num_classes),
                                 static_cast<float>(c.precision), c.hcs));
    if (c.precision == Precision::kF32) {
      weights.push_back(c.probs);
    } else {
      // fp16 payload persisted as its exactly-representable fp32 values;
      // load re-encodes bit-exactly.
      Matrix m(c.num_nodes, c.num_classes);
      float* dst = m.data();
      for (size_t i = 0; i < c.probs_f16.size(); ++i) {
        dst[i] = Fp16ToFloat(c.probs_f16[i]);
      }
      weights.push_back(std::move(m));
    }
  }
  return weights;
}

Result<FrozenStore> WeightsToStore(const std::vector<Matrix>& weights) {
  if (weights.empty() || weights[0].rows() != 1 || weights[0].cols() != 4) {
    return Status::InvalidArgument("frozen store: missing header matrix");
  }
  if (weights[0](0, 0) != kStoreFormatVersion) {
    return Status::InvalidArgument("frozen store: unsupported version");
  }
  const auto num_clients = static_cast<size_t>(weights[0](0, 1));
  if (weights.size() != 1 + 2 * num_clients) {
    return Status::InvalidArgument("frozen store: client count mismatch");
  }
  FrozenStore store;
  store.clients.reserve(num_clients);
  for (size_t c = 0; c < num_clients; ++c) {
    const Matrix& meta = weights[1 + 2 * c];
    const Matrix& payload = weights[2 + 2 * c];
    if (meta.rows() != 1 || meta.cols() != 4) {
      return Status::InvalidArgument("frozen store: malformed client meta");
    }
    const auto precision_raw = static_cast<int32_t>(meta(0, 2));
    if (precision_raw != static_cast<int32_t>(Precision::kF32) &&
        precision_raw != static_cast<int32_t>(Precision::kF16)) {
      return Status::InvalidArgument("frozen store: unknown precision");
    }
    const auto precision = static_cast<Precision>(precision_raw);
    if (payload.rows() != static_cast<int64_t>(meta(0, 0)) ||
        payload.cols() != static_cast<int64_t>(meta(0, 1))) {
      return Status::InvalidArgument(
          "frozen store: payload shape disagrees with client meta");
    }
    FrozenClient client = FreezeClient(payload, meta(0, 3), precision);
    store.clients.push_back(std::move(client));
  }
  return store;
}

}  // namespace

void FrozenClient::ReadRow(int32_t node, float* out) const {
  const auto k = static_cast<size_t>(num_classes);
  const size_t base = static_cast<size_t>(node) * k;
  if (precision == Precision::kF32) {
    std::memcpy(out, probs.row(node), k * sizeof(float));
    return;
  }
  for (size_t j = 0; j < k; ++j) {
    out[j] = Fp16ToFloat(probs_f16[base + j]);
  }
}

int64_t FrozenClient::payload_bytes() const {
  if (precision == Precision::kF32) {
    return probs.size() * static_cast<int64_t>(sizeof(float));
  }
  return static_cast<int64_t>(probs_f16.size() * sizeof(uint16_t));
}

int64_t FrozenStore::total_nodes() const {
  int64_t n = 0;
  for (const FrozenClient& c : clients) n += c.num_nodes;
  return n;
}

int64_t FrozenStore::payload_bytes() const {
  int64_t n = 0;
  for (const FrozenClient& c : clients) n += c.payload_bytes();
  return n;
}

FrozenClient FreezeClient(const Matrix& combined_probs, double hcs,
                          Precision precision) {
  FrozenClient out;
  out.num_nodes = static_cast<int32_t>(combined_probs.rows());
  out.num_classes = static_cast<int32_t>(combined_probs.cols());
  out.precision = precision;
  out.hcs = static_cast<float>(hcs);
  if (precision == Precision::kF32) {
    out.probs = combined_probs;
    return out;
  }
  out.probs_f16.resize(static_cast<size_t>(combined_probs.size()));
  const float* src = combined_probs.data();
  for (int64_t i = 0; i < combined_probs.size(); ++i) {
    out.probs_f16[static_cast<size_t>(i)] = Fp16FromFloat(src[i]);
  }
  return out;
}

Result<FrozenStore> FreezeAdaFgl(const AdaFglResult& result,
                                 Precision precision) {
  if (result.client_predictions.empty()) {
    return Status::InvalidArgument(
        "AdaFglResult carries no client_predictions; run with "
        "AdaFglOptions::export_predictions = true to freeze");
  }
  FrozenStore store;
  store.clients.reserve(result.client_predictions.size());
  for (size_t c = 0; c < result.client_predictions.size(); ++c) {
    const double hcs =
        c < result.client_hcs.size() ? result.client_hcs[c] : 0.5;
    store.clients.push_back(
        FreezeClient(result.client_predictions[c], hcs, precision));
  }
  return store;
}

std::string SerializeStore(const FrozenStore& store) {
  return SerializeWeights(StoreToWeights(store));
}

Result<FrozenStore> DeserializeStore(const std::string& bytes) {
  Result<std::vector<Matrix>> parsed = DeserializeWeights(bytes);
  if (!parsed.ok()) return parsed.status();
  return WeightsToStore(*parsed);
}

Status SaveStoreToFile(const FrozenStore& store, const std::string& path) {
  return SaveWeightsToFile(StoreToWeights(store), path);
}

Result<FrozenStore> LoadStoreFromFile(const std::string& path) {
  Result<std::vector<Matrix>> parsed = LoadWeightsFromFile(path);
  if (!parsed.ok()) return parsed.status();
  return WeightsToStore(*parsed);
}

}  // namespace adafgl::serve
