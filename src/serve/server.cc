#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace adafgl::serve {

namespace {

using obs::MetricsRegistry;

int EnvIntOr(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int>(v);
}

uint64_t CacheKey(const Query& q) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(q.client)) << 33) |
         (static_cast<uint64_t>(static_cast<uint32_t>(q.node)) << 1) |
         (q.smooth ? 1u : 0u);
}

int32_t Argmax(const std::vector<float>& probs) {
  int32_t best = 0;
  for (size_t j = 1; j < probs.size(); ++j) {
    if (probs[j] > probs[static_cast<size_t>(best)]) {
      best = static_cast<int32_t>(j);
    }
  }
  return best;
}

// Cached instrument pointers: registration is mutex-guarded, steady-state
// updates are relaxed atomics.
obs::Histogram* LatencyHistogram() {
  static obs::Histogram* const h =
      MetricsRegistry::Global().GetHistogram("serve.latency_ns");
  return h;
}
obs::Counter* RequestCounter() {
  static obs::Counter* const c =
      MetricsRegistry::Global().GetCounter("serve.requests");
  return c;
}
obs::Counter* RejectCounter() {
  static obs::Counter* const c =
      MetricsRegistry::Global().GetCounter("serve.rejected");
  return c;
}
obs::Counter* CacheHitCounter() {
  static obs::Counter* const c =
      MetricsRegistry::Global().GetCounter("serve.cache.hits");
  return c;
}
obs::Counter* CacheMissCounter() {
  static obs::Counter* const c =
      MetricsRegistry::Global().GetCounter("serve.cache.misses");
  return c;
}
obs::Counter* BatchCounter() {
  static obs::Counter* const c =
      MetricsRegistry::Global().GetCounter("serve.batches");
  return c;
}
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* const g =
      MetricsRegistry::Global().GetGauge("serve.queue.depth");
  return g;
}
obs::Gauge* CacheBytesGauge() {
  static obs::Gauge* const g =
      MetricsRegistry::Global().GetGauge("serve.cache.bytes");
  return g;
}

}  // namespace

ServeOptions ServeOptionsFromEnv() {
  ServeOptions opts;
  opts.threads = std::max(1, EnvIntOr("ADAFGL_SERVE_THREADS", opts.threads));
  opts.batch_size =
      std::max(1, EnvIntOr("ADAFGL_SERVE_BATCH", opts.batch_size));
  opts.cache_mb = std::max(0, EnvIntOr("ADAFGL_SERVE_CACHE_MB", opts.cache_mb));
  return opts;
}

Result<std::unique_ptr<Server>> Server::Create(
    FrozenStore store, std::vector<CsrMatrix> adjacency,
    const ServeOptions& options) {
  if (store.clients.empty()) {
    return Status::InvalidArgument("serve: empty frozen store");
  }
  if (!adjacency.empty() && adjacency.size() != store.clients.size()) {
    return Status::InvalidArgument(
        "serve: adjacency count must match store client count");
  }
  for (size_t c = 0; c < adjacency.size(); ++c) {
    if (adjacency[c].rows() != store.clients[c].num_nodes ||
        adjacency[c].cols() != store.clients[c].num_nodes) {
      return Status::InvalidArgument(
          "serve: adjacency shape disagrees with client store");
    }
  }
  if (options.batch_size < 1 || options.queue_capacity < 1 ||
      options.threads < 1 || options.batch_deadline_us < 0 ||
      options.smooth_gamma < 0.0 || options.smooth_gamma > 1.0) {
    return Status::InvalidArgument("serve: invalid options");
  }
  return std::unique_ptr<Server>(
      new Server(std::move(store), std::move(adjacency), options));
}

Server::Server(FrozenStore store, std::vector<CsrMatrix> adjacency,
               const ServeOptions& options)
    : store_(std::move(store)),
      adjacency_(std::move(adjacency)),
      options_(options),
      pool_(std::make_unique<par::ThreadPool>(options.threads)),
      paused_(options.start_paused),
      cache_budget_bytes_(static_cast<int64_t>(options.cache_mb) * (1 << 20)) {
  batcher_ = std::thread([this] { BatcherLoop(); });
}

Server::~Server() { Shutdown(); }

Status Server::ValidateQuery(const Query& query) const {
  if (query.client < 0 ||
      query.client >= static_cast<int32_t>(store_.clients.size())) {
    return Status::InvalidArgument("serve: client id out of range");
  }
  const FrozenClient& client = store_.clients[static_cast<size_t>(query.client)];
  if (query.node < 0 || query.node >= client.num_nodes) {
    return Status::InvalidArgument("serve: node id out of range");
  }
  if (query.smooth && adjacency_.empty()) {
    return Status::InvalidArgument(
        "serve: smooth query on a server built without adjacency");
  }
  return Status::Ok();
}

std::future<Result<Prediction>> Server::Submit(const Query& query) {
  std::promise<Result<Prediction>> promise;
  std::future<Result<Prediction>> future = promise.get_future();

  const Status valid = ValidateQuery(query);
  if (!valid.ok()) {
    promise.set_value(valid);
    return future;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      promise.set_value(Status::Internal("serve: server is shut down"));
      return future;
    }
    if (static_cast<int>(queue_.size()) >= options_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      RejectCounter()->Inc();
      promise.set_value(
          Status::OutOfRange("serve: admission queue full (load shed)"));
      return future;
    }
    Pending p;
    p.query = query;
    p.promise = std::move(promise);
    p.enqueue_ns = obs::NowNs();
    queue_.push_back(std::move(p));
    QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  RequestCounter()->Inc();
  queue_cv_.notify_all();
  return future;
}

Result<Prediction> Server::Predict(const Query& query) {
  return Submit(query).get();
}

void Server::BatcherLoop() {
  const auto deadline =
      std::chrono::microseconds(options_.batch_deadline_us);
  while (true) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty() && shutdown_) return;
      if (!shutdown_) {
        // Wait for a full batch until `deadline` after the oldest pending
        // query arrived; flush whatever is there when the clock runs out.
        const auto flush_at =
            std::chrono::steady_clock::now() +
            std::chrono::nanoseconds(std::max<int64_t>(
                0, queue_.front().enqueue_ns +
                       std::chrono::nanoseconds(deadline).count() -
                       obs::NowNs()));
        queue_cv_.wait_until(lock, flush_at, [this] {
          return shutdown_ ||
                 static_cast<int>(queue_.size()) >= options_.batch_size;
        });
      }
      const size_t take = std::min<size_t>(
          queue_.size(), static_cast<size_t>(options_.batch_size));
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
    }
    if (!batch.empty()) RunBatch(batch);
  }
}

void Server::RunBatch(std::vector<Pending>& batch) {
  obs::Span span("serve.batch");
  batches_.fetch_add(1, std::memory_order_relaxed);
  BatchCounter()->Inc();
  // Queries are independent; partitioning them over workers cannot change
  // any individual result, so any thread count is bitwise equivalent.
  pool_->ParallelFor(batch.size(), [&](size_t i) {
    Pending& p = batch[i];
    Result<Prediction> result = Execute(p.query);
    if (result.ok()) {
      result->latency_ns = obs::NowNs() - p.enqueue_ns;
      LatencyHistogram()->Record(static_cast<double>(result->latency_ns));
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    p.promise.set_value(std::move(result));
  });
}

Result<Prediction> Server::Execute(const Query& query) {
  const FrozenClient& client = store_.clients[static_cast<size_t>(query.client)];
  const auto k = static_cast<size_t>(client.num_classes);
  Prediction out;

  const uint64_t key = CacheKey(query);
  if (CacheLookup(key, &out.probs)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    CacheHitCounter()->Inc();
    out.cache_hit = true;
    out.label = Argmax(out.probs);
    return out;
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  CacheMissCounter()->Inc();

  out.probs.resize(k);
  client.ReadRow(query.node, out.probs.data());

  if (query.smooth) {
    const CsrMatrix& adj = adjacency_[static_cast<size_t>(query.client)];
    std::vector<float> neighbor_sum(k, 0.0f);
    std::vector<float> row(k);
    int64_t degree = 0;
    adj.ForEachInRow(query.node, [&](int32_t u, float /*w*/) {
      client.ReadRow(u, row.data());
      for (size_t j = 0; j < k; ++j) neighbor_sum[j] += row[j];
      ++degree;
    });
    if (degree > 0) {
      const float gamma = static_cast<float>(options_.smooth_gamma);
      const float inv_deg = 1.0f / static_cast<float>(degree);
      for (size_t j = 0; j < k; ++j) {
        out.probs[j] =
            (1.0f - gamma) * out.probs[j] + gamma * neighbor_sum[j] * inv_deg;
      }
    }
  }

  CacheInsert(key, out.probs);
  out.label = Argmax(out.probs);
  return out;
}

bool Server::CacheLookup(uint64_t key, std::vector<float>* probs) {
  if (cache_budget_bytes_ <= 0) return false;
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) return false;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  *probs = it->second->probs;
  return true;
}

void Server::CacheInsert(uint64_t key, const std::vector<float>& probs) {
  if (cache_budget_bytes_ <= 0) return;
  const auto entry_bytes = static_cast<int64_t>(
      sizeof(CacheEntry) + probs.size() * sizeof(float) +
      sizeof(uint64_t) + sizeof(void*) * 4);  // Entry + index overhead.
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (cache_index_.count(key) != 0) return;  // Raced with another worker.
  while (cache_bytes_ + entry_bytes > cache_budget_bytes_ &&
         !cache_lru_.empty()) {
    const CacheEntry& victim = cache_lru_.back();
    cache_bytes_ -= static_cast<int64_t>(
        sizeof(CacheEntry) + victim.probs.size() * sizeof(float) +
        sizeof(uint64_t) + sizeof(void*) * 4);
    cache_index_.erase(victim.key);
    cache_lru_.pop_back();
    cache_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  if (entry_bytes > cache_budget_bytes_) return;  // Oversized value.
  cache_lru_.push_front(CacheEntry{key, probs});
  cache_index_[key] = cache_lru_.begin();
  cache_bytes_ += entry_bytes;
  CacheBytesGauge()->Set(static_cast<double>(cache_bytes_));
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    paused_ = false;  // Drain even a paused server.
  }
  queue_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

void Server::ResumeForTest() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

ServeStats Server::Stats() const {
  ServeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.cache_evictions = cache_evictions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    s.cache_bytes = cache_bytes_;
  }
  const obs::Histogram* h = LatencyHistogram();
  s.p50_latency_ns = h->Quantile(0.50);
  s.p99_latency_ns = h->Quantile(0.99);
  s.mean_latency_ns = h->Mean();
  return s;
}

}  // namespace adafgl::serve
