#ifndef ADAFGL_SERVE_SERVER_H_
#define ADAFGL_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "par/thread_pool.h"
#include "serve/store.h"
#include "tensor/csr.h"
#include "tensor/status.h"

namespace adafgl::serve {

/// \brief Server tuning knobs. ServeOptionsFromEnv() overlays the
/// environment (ADAFGL_SERVE_THREADS / ADAFGL_SERVE_BATCH /
/// ADAFGL_SERVE_CACHE_MB) on these defaults.
struct ServeOptions {
  /// Worker threads executing micro-batches (par::ThreadPool). <= 1 runs
  /// every batch inline on the batcher thread. Predictions are bitwise
  /// identical for any value — parallelism only partitions independent
  /// per-query work.
  int threads = 1;
  /// Micro-batcher flush threshold: a batch is dispatched as soon as this
  /// many queries are pending...
  int batch_size = 16;
  /// ...or this many microseconds after the oldest pending query arrived,
  /// whichever comes first.
  int64_t batch_deadline_us = 200;
  /// Bounded admission queue. Submit() on a full queue fails fast with
  /// OutOfRange instead of buffering unboundedly (load shedding).
  int queue_capacity = 1024;
  /// LRU result-cache budget in MiB. 0 disables caching.
  int cache_mb = 8;
  /// Ego-graph smoothing weight for Query::smooth requests:
  ///   y = (1 - gamma) * E[v] + gamma * mean_{u in N(v)} E[u].
  double smooth_gamma = 0.5;
  /// Tests only: start with the batcher parked so Submit() can fill the
  /// admission queue deterministically; ResumeForTest() unparks it.
  bool start_paused = false;
};

/// Defaults overlaid with ADAFGL_SERVE_THREADS, ADAFGL_SERVE_BATCH and
/// ADAFGL_SERVE_CACHE_MB (invalid / unset values keep the default).
ServeOptions ServeOptionsFromEnv();

/// One classification request: a node of one federation client. `smooth`
/// asks for ego-graph smoothing over the client's adjacency (requires the
/// server to have been built with adjacency; see Server::Create).
struct Query {
  int32_t client = 0;
  int32_t node = 0;
  bool smooth = false;
};

/// One classification response.
struct Prediction {
  /// argmax of `probs` (lowest index wins ties — deterministic).
  int32_t label = 0;
  std::vector<float> probs;
  /// True when `probs` was served from the LRU result cache.
  bool cache_hit = false;
  /// Submit-to-completion latency (admission queue + batch + execute).
  int64_t latency_ns = 0;
};

/// Counter snapshot for one server instance (see Server::Stats). Latency
/// quantiles come from the process-global "serve.latency_ns" histogram via
/// obs::Histogram::Quantile.
struct ServeStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;   ///< Failed fast on a full admission queue.
  int64_t batches = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_bytes = 0;
  double p50_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  double mean_latency_ns = 0.0;
};

/// \brief Online node-classification server over a frozen embedding store.
///
/// Request path: Submit() admits a query into a bounded queue (fail-fast
/// when full); a dedicated batcher thread flushes micro-batches — on
/// batch_size or on the deadline measured from the oldest pending query —
/// onto a par::ThreadPool; each query resolves to a row lookup in the
/// FrozenStore (plus optional ego-graph smoothing), consults a byte-bounded
/// LRU result cache, and fulfils its future.
///
/// Determinism: a query's prediction depends only on the store (and
/// adjacency, for smooth queries) — never on batching boundaries, thread
/// count, or cache state — so results are bitwise reproducible under any
/// ServeOptions::threads.
///
/// Observability: the server publishes product telemetry to the global
/// obs::MetricsRegistry unconditionally (serve.* counters/gauges and the
/// serve.latency_ns histogram) — an intentional exception to the
/// ADAFGL_METRICS gating used by the training path, because Stats() and
/// the load bench need quantiles without env configuration. Spans
/// ("serve.batch") still respect the usual tracing gate.
class Server {
 public:
  /// Validates options and takes ownership of the store. `adjacency`, when
  /// non-empty, must hold one CSR (num_nodes x num_nodes of that client's
  /// subgraph) per store client and enables Query::smooth.
  static Result<std::unique_ptr<Server>> Create(
      FrozenStore store, std::vector<CsrMatrix> adjacency,
      const ServeOptions& options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits a query. The returned future resolves when the micro-batch
  /// containing it executes — immediately with OutOfRange when the
  /// admission queue is full, or InvalidArgument for an out-of-range
  /// client/node or a smooth query without adjacency.
  std::future<Result<Prediction>> Submit(const Query& query);

  /// Blocking convenience wrapper: Submit + wait.
  Result<Prediction> Predict(const Query& query);

  /// Rejects further Submits, drains every admitted query, stops the
  /// batcher and workers. Idempotent; the destructor calls it.
  void Shutdown();

  /// Snapshot of this server's counters plus global latency quantiles.
  ServeStats Stats() const;

  /// Unparks a server created with ServeOptions::start_paused.
  void ResumeForTest();

  int32_t num_clients() const {
    return static_cast<int32_t>(store_.clients.size());
  }
  const ServeOptions& options() const { return options_; }

 private:
  struct Pending {
    Query query;
    std::promise<Result<Prediction>> promise;
    int64_t enqueue_ns = 0;
  };

  /// LRU result cache: key packs (client, node, smooth); values are the
  /// final probability vectors. Guarded by cache_mu_.
  struct CacheEntry {
    uint64_t key = 0;
    std::vector<float> probs;
  };

  Server(FrozenStore store, std::vector<CsrMatrix> adjacency,
         const ServeOptions& options);

  void BatcherLoop();
  /// Executes one micro-batch on the pool and fulfils its promises.
  void RunBatch(std::vector<Pending>& batch);
  /// Computes one query (cache -> store row -> optional smoothing).
  Result<Prediction> Execute(const Query& query);
  Status ValidateQuery(const Query& query) const;

  bool CacheLookup(uint64_t key, std::vector<float>* probs);
  void CacheInsert(uint64_t key, const std::vector<float>& probs);

  FrozenStore store_;
  std::vector<CsrMatrix> adjacency_;
  ServeOptions options_;
  std::unique_ptr<par::ThreadPool> pool_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool paused_ = false;
  bool shutdown_ = false;
  std::thread batcher_;

  mutable std::mutex cache_mu_;
  std::list<CacheEntry> cache_lru_;  // Front = most recent.
  std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> cache_index_;
  int64_t cache_bytes_ = 0;
  int64_t cache_budget_bytes_ = 0;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> cache_evictions_{0};
};

}  // namespace adafgl::serve

#endif  // ADAFGL_SERVE_SERVER_H_
