#ifndef ADAFGL_SERVE_STORE_H_
#define ADAFGL_SERVE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/adafgl.h"
#include "tensor/matrix.h"
#include "tensor/status.h"

namespace adafgl::serve {

/// Storage precision of a frozen embedding store.
///
/// kF32 keeps the Step-2 probabilities bit-for-bit — serving a node is
/// then bitwise identical to direct Step 2 inference. kF16 halves the
/// resident bytes (~1e-3 relative error) for deployments where the store
/// dominates memory; rows are decoded to fp32 on access. fp16 stores
/// round-trip bit-exactly through the checkpoint format because every
/// fp16 value is exactly representable in fp32.
enum class Precision : int32_t {
  kF32 = 0,
  kF16 = 1,
};

/// \brief One client's frozen personalized predictions.
///
/// The freeze pass materializes AdaFGL Step 2's adaptive personalized
/// propagation: the final combined probability matrix Ŷ (Eq. 17) becomes
/// a per-node embedding table, so online classification of node v is a
/// row lookup instead of a propagation forward pass. The HCS rides along
/// for introspection (it is the adaptive weight Ŷ was combined with).
struct FrozenClient {
  int32_t num_nodes = 0;
  int32_t num_classes = 0;
  Precision precision = Precision::kF32;
  float hcs = 0.5f;

  /// kF32 payload: the probability matrix, bit-identical to Step 2.
  Matrix probs;
  /// kF16 payload: row-major fp16 bits (num_nodes * num_classes entries).
  std::vector<uint16_t> probs_f16;

  /// Decodes row `node` into `out` (`num_classes` floats). For kF32 this
  /// is a memcpy of the frozen fp32 row; for kF16 a per-entry fp16->fp32
  /// decode. Deterministic, thread-safe (read-only).
  void ReadRow(int32_t node, float* out) const;

  /// Resident bytes of the embedding payload.
  int64_t payload_bytes() const;
};

/// \brief A per-client node-embedding store: every client of a federation,
/// frozen. The unit the server (serve/server.h) loads and queries.
struct FrozenStore {
  std::vector<FrozenClient> clients;

  int32_t num_clients() const {
    return static_cast<int32_t>(clients.size());
  }
  int64_t total_nodes() const;
  int64_t payload_bytes() const;
};

/// Freezes one client's combined probability matrix (rows are per-node
/// class distributions). kF32 preserves `combined_probs` bit-for-bit.
FrozenClient FreezeClient(const Matrix& combined_probs, double hcs,
                          Precision precision);

/// \brief Freeze pass over a finished AdaFGL run: one FrozenClient per
/// federation client, from AdaFglResult::client_predictions (requires the
/// run to have set AdaFglOptions::export_predictions; InvalidArgument
/// otherwise).
Result<FrozenStore> FreezeAdaFgl(const AdaFglResult& result,
                                 Precision precision = Precision::kF32);

/// \brief Persistence through the existing checkpoint wire format
/// (nn/serialize.h).
///
/// The store serializes as one weight list:
///   [0]            1x4 header   (format version, num_clients, precision, 0)
///   [1 + 2c]       1x4 meta     (num_nodes, num_classes, precision, hcs)
///   [2 + 2c]       probs        (num_nodes x num_classes fp32; for kF16
///                                the fp16-rounded values, which re-encode
///                                bit-exactly on load)
/// so SaveStoreToFile/LoadStoreFromFile reuse SerializeWeights and its
/// validation. Round trips are bit-exact for both precisions.
std::string SerializeStore(const FrozenStore& store);
Result<FrozenStore> DeserializeStore(const std::string& bytes);
Status SaveStoreToFile(const FrozenStore& store, const std::string& path);
Result<FrozenStore> LoadStoreFromFile(const std::string& path);

}  // namespace adafgl::serve

#endif  // ADAFGL_SERVE_STORE_H_
