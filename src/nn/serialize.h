#ifndef ADAFGL_NN_SERIALIZE_H_
#define ADAFGL_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/status.h"

namespace adafgl {

/// \brief Binary checkpoint format for model weights.
///
/// Layout: magic "ADFG" (4 bytes), version u32, count u32, then per matrix
/// rows i64, cols i64, rows*cols f32 little-endian. Used to persist
/// federated global models between Step 1 and deployment, and to hand
/// weights between processes in real multi-host federations.

/// Serializes a weight list to bytes.
std::string SerializeWeights(const std::vector<Matrix>& weights);

/// Parses a weight list from bytes; InvalidArgument on malformed input.
Result<std::vector<Matrix>> DeserializeWeights(const std::string& bytes);

/// Writes a checkpoint file.
Status SaveWeightsToFile(const std::vector<Matrix>& weights,
                         const std::string& path);

/// Reads a checkpoint file.
Result<std::vector<Matrix>> LoadWeightsFromFile(const std::string& path);

/// IEEE 754 binary16 conversion (round-to-nearest-even), software-only so
/// persisted bytes are identical on every build. The half-precision
/// storage primitive shared by the comm fp16 codec and the serve
/// embedding store (serve/store.h). Fp16ToFloat(Fp16FromFloat(x)) is
/// idempotent: every fp16 value round-trips through fp32 bit-exactly.
uint16_t Fp16FromFloat(float value);
float Fp16ToFloat(uint16_t half);

}  // namespace adafgl

#endif  // ADAFGL_NN_SERIALIZE_H_
