#ifndef ADAFGL_NN_SERIALIZE_H_
#define ADAFGL_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/status.h"

namespace adafgl {

/// \brief Binary checkpoint format for model weights.
///
/// Layout: magic "ADFG" (4 bytes), version u32, count u32, then per matrix
/// rows i64, cols i64, rows*cols f32 little-endian. Used to persist
/// federated global models between Step 1 and deployment, and to hand
/// weights between processes in real multi-host federations.

/// Serializes a weight list to bytes.
std::string SerializeWeights(const std::vector<Matrix>& weights);

/// Parses a weight list from bytes; InvalidArgument on malformed input.
Result<std::vector<Matrix>> DeserializeWeights(const std::string& bytes);

/// Writes a checkpoint file.
Status SaveWeightsToFile(const std::vector<Matrix>& weights,
                         const std::string& path);

/// Reads a checkpoint file.
Result<std::vector<Matrix>> LoadWeightsFromFile(const std::string& path);

}  // namespace adafgl

#endif  // ADAFGL_NN_SERIALIZE_H_
