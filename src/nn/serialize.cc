#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace adafgl {

namespace {

constexpr char kMagic[4] = {'A', 'D', 'F', 'G'};
constexpr uint32_t kVersion = 1;

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

template <typename T>
void AppendValue(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

template <typename T>
bool ReadValue(const std::string& in, size_t* offset, T* value) {
  if (*offset + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

std::string SerializeWeights(const std::vector<Matrix>& weights) {
  std::string out;
  AppendRaw(&out, kMagic, sizeof(kMagic));
  AppendValue(&out, kVersion);
  AppendValue(&out, static_cast<uint32_t>(weights.size()));
  for (const Matrix& w : weights) {
    AppendValue(&out, w.rows());
    AppendValue(&out, w.cols());
    AppendRaw(&out, w.data(), static_cast<size_t>(w.size()) * sizeof(float));
  }
  return out;
}

Result<std::vector<Matrix>> DeserializeWeights(const std::string& bytes) {
  size_t offset = 0;
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  offset += sizeof(kMagic);
  uint32_t version = 0, count = 0;
  if (!ReadValue(bytes, &offset, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadValue(bytes, &offset, &count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  std::vector<Matrix> weights;
  weights.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int64_t rows = 0, cols = 0;
    if (!ReadValue(bytes, &offset, &rows) ||
        !ReadValue(bytes, &offset, &cols) || rows < 0 || cols < 0) {
      return Status::InvalidArgument("malformed matrix header");
    }
    const size_t payload = static_cast<size_t>(rows) *
                           static_cast<size_t>(cols) * sizeof(float);
    if (offset + payload > bytes.size()) {
      return Status::InvalidArgument("truncated matrix payload");
    }
    Matrix m(rows, cols);
    std::memcpy(m.data(), bytes.data() + offset, payload);
    offset += payload;
    weights.push_back(std::move(m));
  }
  if (offset != bytes.size()) {
    return Status::InvalidArgument("trailing bytes in checkpoint");
  }
  return weights;
}

Status SaveWeightsToFile(const std::vector<Matrix>& weights,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot write '" + path + "'");
  const std::string bytes = SerializeWeights(weights);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good() ? Status::Ok()
                    : Status::Internal("write failed for '" + path + "'");
}

Result<std::vector<Matrix>> LoadWeightsFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeWeights(buffer.str());
}

}  // namespace adafgl
