#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace adafgl {

namespace {

constexpr char kMagic[4] = {'A', 'D', 'F', 'G'};
constexpr uint32_t kVersion = 1;

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

template <typename T>
void AppendValue(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

template <typename T>
bool ReadValue(const std::string& in, size_t* offset, T* value) {
  if (*offset + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

std::string SerializeWeights(const std::vector<Matrix>& weights) {
  std::string out;
  AppendRaw(&out, kMagic, sizeof(kMagic));
  AppendValue(&out, kVersion);
  AppendValue(&out, static_cast<uint32_t>(weights.size()));
  for (const Matrix& w : weights) {
    AppendValue(&out, w.rows());
    AppendValue(&out, w.cols());
    AppendRaw(&out, w.data(), static_cast<size_t>(w.size()) * sizeof(float));
  }
  return out;
}

Result<std::vector<Matrix>> DeserializeWeights(const std::string& bytes) {
  size_t offset = 0;
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  offset += sizeof(kMagic);
  uint32_t version = 0, count = 0;
  if (!ReadValue(bytes, &offset, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadValue(bytes, &offset, &count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  std::vector<Matrix> weights;
  weights.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    int64_t rows = 0, cols = 0;
    if (!ReadValue(bytes, &offset, &rows) ||
        !ReadValue(bytes, &offset, &cols) || rows < 0 || cols < 0) {
      return Status::InvalidArgument("malformed matrix header");
    }
    const size_t payload = static_cast<size_t>(rows) *
                           static_cast<size_t>(cols) * sizeof(float);
    if (offset + payload > bytes.size()) {
      return Status::InvalidArgument("truncated matrix payload");
    }
    Matrix m(rows, cols);
    std::memcpy(m.data(), bytes.data() + offset, payload);
    offset += payload;
    weights.push_back(std::move(m));
  }
  if (offset != bytes.size()) {
    return Status::InvalidArgument("trailing bytes in checkpoint");
  }
  return weights;
}

Status SaveWeightsToFile(const std::vector<Matrix>& weights,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot write '" + path + "'");
  const std::string bytes = SerializeWeights(weights);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good() ? Status::Ok()
                    : Status::Internal("write failed for '" + path + "'");
}

Result<std::vector<Matrix>> LoadWeightsFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeWeights(buffer.str());
}

// --------------------------------------------------------------------------
// IEEE 754 binary16 conversion (round-to-nearest-even), no hardware
// intrinsics so persisted/wire bytes are identical on every build.

uint16_t Fp16FromFloat(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const int32_t exponent =
      static_cast<int32_t>((bits >> 23) & 0xffu) - 127 + 15;
  uint32_t mantissa = bits & 0x007fffffu;

  if (exponent >= 0x1f) {
    // Overflow -> inf; NaN keeps a payload bit.
    const uint32_t nan_bit = (((bits >> 23) & 0xffu) == 0xffu && mantissa)
                                 ? 0x0200u
                                 : 0u;
    return static_cast<uint16_t>(sign | 0x7c00u | nan_bit);
  }
  if (exponent <= 0) {
    if (exponent < -10) return static_cast<uint16_t>(sign);  // Underflow.
    // Subnormal half: shift in the implicit leading 1.
    mantissa |= 0x00800000u;
    const int shift = 14 - exponent;
    uint32_t half_mant = mantissa >> shift;
    // Round to nearest even.
    const uint32_t rem = mantissa & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    return static_cast<uint16_t>(sign | half_mant);
  }
  uint32_t half = sign | (static_cast<uint32_t>(exponent) << 10) |
                  (mantissa >> 13);
  const uint32_t rem = mantissa & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;  // RNE.
  return static_cast<uint16_t>(half);
}

float Fp16ToFloat(uint16_t half) {
  const uint32_t sign = static_cast<uint32_t>(half & 0x8000u) << 16;
  const uint32_t exponent = (half >> 10) & 0x1fu;
  uint32_t mantissa = half & 0x03ffu;
  uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // Signed zero.
    } else {
      // Subnormal half -> normalised float.
      int e = -1;
      do {
        ++e;
        mantissa <<= 1;
      } while ((mantissa & 0x0400u) == 0);
      mantissa &= 0x03ffu;
      bits = sign | static_cast<uint32_t>(127 - 15 - e) << 23 |
             (mantissa << 13);
    }
  } else if (exponent == 0x1f) {
    bits = sign | 0x7f800000u | (mantissa << 13);  // Inf/NaN.
  } else {
    bits = sign | (exponent - 15 + 127) << 23 | (mantissa << 13);
  }
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

}  // namespace adafgl
