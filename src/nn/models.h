#ifndef ADAFGL_NN_MODELS_H_
#define ADAFGL_NN_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/model.h"

namespace adafgl {

/// \brief Plain MLP on node features (topology-free baseline; also the
/// topology-independent embedding of AdaFGL's heterophilous branch).
class MlpModel : public Model {
 public:
  MlpModel(const ModelConfig& config, Rng& rng);
  Tensor Forward(const GraphContext& ctx, bool training, Rng& rng) override;
  std::vector<Tensor> Params() override;
  std::string name() const override { return "MLP"; }

 private:
  Mlp mlp_;
};

/// \brief Two-layer GCN (Kipf & Welling), Eq. 1 with r = 1/2. The paper's
/// homophilous reference model and AdaFGL's federated knowledge extractor.
class GcnModel : public Model {
 public:
  GcnModel(const ModelConfig& config, Rng& rng, bool with_mask = false);
  Tensor Forward(const GraphContext& ctx, bool training, Rng& rng) override;
  std::vector<Tensor> Params() override;
  std::string name() const override { return "GCN"; }

 private:
  Linear l1_;
  Linear l2_;
  float dropout_;
};

/// \brief SGC (Wu et al.): linear model on K-step propagated features
/// X^(K) = Â^K X.
class SgcModel : public Model {
 public:
  SgcModel(const ModelConfig& config, Rng& rng);
  Tensor Forward(const GraphContext& ctx, bool training, Rng& rng) override;
  std::vector<Tensor> Params() override;
  std::string name() const override { return "SGC"; }

 private:
  Linear out_;
  int hops_;
  float dropout_;
};

/// \brief GCNII (Chen et al.): deep GCN with initial residual and identity
/// mapping, H^(l+1) = sigma(((1-a)ÂH + aH0)((1-b_l)I + b_l W_l)).
class GcniiModel : public Model {
 public:
  GcniiModel(const ModelConfig& config, Rng& rng);
  Tensor Forward(const GraphContext& ctx, bool training, Rng& rng) override;
  std::vector<Tensor> Params() override;
  std::string name() const override { return "GCNII"; }

 private:
  Linear in_;
  std::vector<Linear> layers_;
  Linear out_;
  float dropout_;
  float alpha_ = 0.1f;
  float lambda_ = 0.5f;
};

/// \brief GAMLP (Zhang et al.), JK-attention variant: per-node attention
/// over the list of pre-propagated features [X^(0), ..., X^(K)].
class GamlpModel : public Model {
 public:
  GamlpModel(const ModelConfig& config, Rng& rng);
  Tensor Forward(const GraphContext& ctx, bool training, Rng& rng) override;
  std::vector<Tensor> Params() override;
  std::string name() const override { return "GAMLP"; }

 private:
  std::vector<Linear> hop_scores_;  // One n x 1 scorer per hop.
  Mlp classifier_;
  int hops_;
};

/// \brief GPR-GNN (Chien et al.): MLP followed by generalized-PageRank
/// propagation Z = sum_k gamma_k H^(k) with learnable gamma (PPR init).
class GprGnnModel : public Model {
 public:
  GprGnnModel(const ModelConfig& config, Rng& rng);
  Tensor Forward(const GraphContext& ctx, bool training, Rng& rng) override;
  std::vector<Tensor> Params() override;
  std::string name() const override { return "GPRGNN"; }

 private:
  Mlp mlp_;
  std::vector<Tensor> gammas_;  // 1x1 scalars, K+1 of them.
  int hops_;
};

/// \brief GGCN (Yan et al.) in simplified form: signed, degree-normalised
/// message passing. Edge signs come from the cosine similarity of current
/// embeddings (treated as constants per layer, as in the paper's
/// "structure-based edge correction"); positive and negative messages are
/// combined with learnable scalar coefficients.
class GgcnModel : public Model {
 public:
  GgcnModel(const ModelConfig& config, Rng& rng);
  Tensor Forward(const GraphContext& ctx, bool training, Rng& rng) override;
  std::vector<Tensor> Params() override;
  std::string name() const override { return "GGCN"; }

 private:
  Linear in_;
  std::vector<Linear> layers_;
  std::vector<Tensor> alpha_;  // 3 scalars per layer: self, pos, neg.
  Linear out_;
  float dropout_;
};

/// \brief GloGNN (Li et al.) in simplified form: each layer mixes a global
/// low-rank affinity aggregation T Z (T = QK^T / r from learned factors)
/// with the initial embedding, Z^(l+1) = (1-g) T Z^(l) + g Z^(0), capturing
/// "global homophily" beyond the one-hop neighbourhood.
class GloGnnModel : public Model {
 public:
  GloGnnModel(const ModelConfig& config, Rng& rng);
  Tensor Forward(const GraphContext& ctx, bool training, Rng& rng) override;
  std::vector<Tensor> Params() override;
  std::string name() const override { return "GloGNN"; }

 private:
  Mlp embed_;
  Linear q_;
  Linear k_;
  Tensor gamma_;  // 1x1.
  int num_layers_;
  int64_t low_rank_;
};

}  // namespace adafgl

#endif  // ADAFGL_NN_MODELS_H_
