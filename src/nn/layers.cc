#include "nn/layers.h"

#include "tensor/status.h"

namespace adafgl {

Mlp::Mlp(const std::vector<int64_t>& dims, float dropout, Rng& rng)
    : dropout_(dropout) {
  ADAFGL_CHECK(dims.size() >= 2);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Tensor Mlp::Forward(const Tensor& x, bool training, Rng& rng) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = ops::Dropout(h, dropout_, training, rng);
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = ops::Relu(h);
  }
  return h;
}

std::vector<Tensor> Mlp::Params() const {
  std::vector<Tensor> out;
  for (const Linear& l : layers_) {
    for (const Tensor& p : l.Params()) out.push_back(p);
  }
  return out;
}

}  // namespace adafgl
