#include "nn/models.h"

#include <cmath>

#include "tensor/matrix_ops.h"
#include "tensor/status.h"

namespace adafgl {

namespace {

Tensor ScalarParam(float v) {
  Matrix m(1, 1);
  m(0, 0) = v;
  return MakeParam(std::move(m));
}

}  // namespace

// ---------------------------------------------------------------- MlpModel

MlpModel::MlpModel(const ModelConfig& config, Rng& rng)
    : mlp_({config.in_dim, config.hidden, config.num_classes},
           config.dropout, rng) {}

Tensor MlpModel::Forward(const GraphContext& ctx, bool training, Rng& rng) {
  return mlp_.Forward(ctx.x, training, rng);
}

std::vector<Tensor> MlpModel::Params() { return mlp_.Params(); }

// ---------------------------------------------------------------- GcnModel

GcnModel::GcnModel(const ModelConfig& config, Rng& rng, bool with_mask)
    : l1_(config.in_dim, config.hidden, rng, with_mask),
      l2_(config.hidden, config.num_classes, rng, with_mask),
      dropout_(config.dropout) {}

Tensor GcnModel::Forward(const GraphContext& ctx, bool training, Rng& rng) {
  Tensor h = ops::Dropout(ctx.x, dropout_, training, rng);
  h = ops::SpMM(ctx.norm_adj, h);
  h = ops::Relu(l1_.Forward(h));
  h = ops::Dropout(h, dropout_, training, rng);
  h = ops::SpMM(ctx.norm_adj, h);
  return l2_.Forward(h);
}

std::vector<Tensor> GcnModel::Params() {
  std::vector<Tensor> p = l1_.Params();
  for (const Tensor& t : l2_.Params()) p.push_back(t);
  return p;
}

// ---------------------------------------------------------------- SgcModel

SgcModel::SgcModel(const ModelConfig& config, Rng& rng)
    : out_(config.in_dim, config.num_classes, rng),
      hops_(config.num_hops), dropout_(config.dropout) {}

Tensor SgcModel::Forward(const GraphContext& ctx, bool training, Rng& rng) {
  Tensor h = ctx.x;
  for (int k = 0; k < hops_; ++k) h = ops::SpMM(ctx.norm_adj, h);
  h = ops::Dropout(h, dropout_, training, rng);
  return out_.Forward(h);
}

std::vector<Tensor> SgcModel::Params() { return out_.Params(); }

// -------------------------------------------------------------- GcniiModel

GcniiModel::GcniiModel(const ModelConfig& config, Rng& rng)
    : in_(config.in_dim, config.hidden, rng),
      out_(config.hidden, config.num_classes, rng),
      dropout_(config.dropout) {
  const int depth = std::max(config.num_layers, 2);
  layers_.reserve(static_cast<size_t>(depth));
  for (int l = 0; l < depth; ++l) {
    layers_.emplace_back(config.hidden, config.hidden, rng);
  }
}

Tensor GcniiModel::Forward(const GraphContext& ctx, bool training, Rng& rng) {
  Tensor h0 = ops::Relu(
      in_.Forward(ops::Dropout(ctx.x, dropout_, training, rng)));
  Tensor h = h0;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const float beta =
        std::log(lambda_ / static_cast<float>(l + 1) + 1.0f);
    Tensor prop = ops::SpMM(ctx.norm_adj, h);
    Tensor support = ops::Add(ops::Scale(prop, 1.0f - alpha_),
                              ops::Scale(h0, alpha_));
    Tensor transformed = layers_[l].Forward(support);
    h = ops::Relu(ops::Add(ops::Scale(support, 1.0f - beta),
                           ops::Scale(transformed, beta)));
    h = ops::Dropout(h, dropout_, training, rng);
  }
  return out_.Forward(h);
}

std::vector<Tensor> GcniiModel::Params() {
  std::vector<Tensor> p = in_.Params();
  for (const Linear& l : layers_) {
    for (const Tensor& t : l.Params()) p.push_back(t);
  }
  for (const Tensor& t : out_.Params()) p.push_back(t);
  return p;
}

// -------------------------------------------------------------- GamlpModel

GamlpModel::GamlpModel(const ModelConfig& config, Rng& rng)
    : classifier_({config.in_dim, config.hidden, config.num_classes},
                  config.dropout, rng),
      hops_(config.num_hops) {
  hop_scores_.reserve(static_cast<size_t>(hops_ + 1));
  for (int k = 0; k <= hops_; ++k) {
    hop_scores_.emplace_back(config.in_dim, 1, rng);
  }
}

Tensor GamlpModel::Forward(const GraphContext& ctx, bool training, Rng& rng) {
  // Pre-propagated feature list X^(0..K).
  std::vector<Tensor> hops = {ctx.x};
  for (int k = 1; k <= hops_; ++k) {
    hops.push_back(ops::SpMM(ctx.norm_adj, hops.back()));
  }
  // Per-node attention over hops: scores (n x K+1) -> row softmax.
  std::vector<Tensor> scores;
  scores.reserve(hops.size());
  for (size_t k = 0; k < hops.size(); ++k) {
    scores.push_back(hop_scores_[k].Forward(hops[k]));
  }
  Tensor att = ops::Softmax(ops::ConcatCols(scores));
  Tensor combined;
  for (size_t k = 0; k < hops.size(); ++k) {
    Tensor w_k = ops::SliceCols(att, static_cast<int64_t>(k), 1);
    Tensor term = ops::ScaleRows(hops[k], w_k);
    combined = (k == 0) ? term : ops::Add(combined, term);
  }
  return classifier_.Forward(combined, training, rng);
}

std::vector<Tensor> GamlpModel::Params() {
  std::vector<Tensor> p;
  for (const Linear& l : hop_scores_) {
    for (const Tensor& t : l.Params()) p.push_back(t);
  }
  for (const Tensor& t : classifier_.Params()) p.push_back(t);
  return p;
}

// ------------------------------------------------------------- GprGnnModel

GprGnnModel::GprGnnModel(const ModelConfig& config, Rng& rng)
    : mlp_({config.in_dim, config.hidden, config.num_classes},
           config.dropout, rng),
      hops_(config.num_hops + 1) {
  // PPR initialisation gamma_k = a (1-a)^k with a = 0.1.
  const float a = 0.1f;
  gammas_.reserve(static_cast<size_t>(hops_ + 1));
  for (int k = 0; k <= hops_; ++k) {
    const float g = (k == hops_)
                        ? std::pow(1.0f - a, static_cast<float>(k))
                        : a * std::pow(1.0f - a, static_cast<float>(k));
    gammas_.push_back(ScalarParam(g));
  }
}

Tensor GprGnnModel::Forward(const GraphContext& ctx, bool training,
                            Rng& rng) {
  Tensor h = mlp_.Forward(ctx.x, training, rng);
  Tensor z = ops::ScaleByScalar(h, gammas_[0]);
  Tensor cur = h;
  for (int k = 1; k <= hops_; ++k) {
    cur = ops::SpMM(ctx.norm_adj, cur);
    z = ops::Add(z, ops::ScaleByScalar(cur, gammas_[static_cast<size_t>(k)]));
  }
  return z;
}

std::vector<Tensor> GprGnnModel::Params() {
  std::vector<Tensor> p = mlp_.Params();
  for (const Tensor& g : gammas_) p.push_back(g);
  return p;
}

// --------------------------------------------------------------- GgcnModel

GgcnModel::GgcnModel(const ModelConfig& config, Rng& rng)
    : in_(config.in_dim, config.hidden, rng),
      out_(config.hidden, config.num_classes, rng),
      dropout_(config.dropout) {
  const int depth = 2;
  layers_.reserve(static_cast<size_t>(depth));
  for (int l = 0; l < depth; ++l) {
    layers_.emplace_back(config.hidden, config.hidden, rng);
    alpha_.push_back(ScalarParam(1.0f));  // self
    alpha_.push_back(ScalarParam(1.0f));  // positive messages
    alpha_.push_back(ScalarParam(1.0f));  // negative messages
  }
}

namespace {

/// Splits the normalised adjacency into positive- and negative-similarity
/// operators using cosine similarity of the rows of `h`.
std::pair<std::shared_ptr<CsrMatrix>, std::shared_ptr<CsrMatrix>>
SignedOperators(const CsrMatrix& norm_adj, const Matrix& h) {
  Matrix unit = h;
  RowL2NormalizeInPlace(&unit);
  std::vector<Triplet> pos;
  std::vector<Triplet> neg;
  for (int32_t u = 0; u < norm_adj.rows(); ++u) {
    const float* hu = unit.row(u);
    norm_adj.ForEachInRow(u, [&](int32_t v, float w) {
      const float* hv = unit.row(v);
      float cos = 0.0f;
      for (int64_t j = 0; j < unit.cols(); ++j) cos += hu[j] * hv[j];
      if (cos >= 0.0f) {
        pos.push_back({u, v, w * cos});
      } else {
        neg.push_back({u, v, -w * cos});
      }
    });
  }
  auto p = std::make_shared<CsrMatrix>(CsrMatrix::FromTriplets(
      norm_adj.rows(), norm_adj.cols(), std::move(pos)));
  auto q = std::make_shared<CsrMatrix>(CsrMatrix::FromTriplets(
      norm_adj.rows(), norm_adj.cols(), std::move(neg)));
  return {std::move(p), std::move(q)};
}

}  // namespace

Tensor GgcnModel::Forward(const GraphContext& ctx, bool training, Rng& rng) {
  Tensor h = ops::Relu(
      in_.Forward(ops::Dropout(ctx.x, dropout_, training, rng)));
  for (size_t l = 0; l < layers_.size(); ++l) {
    auto [pos_op, neg_op] = SignedOperators(*ctx.norm_adj, h->value());
    Tensor t = layers_[l].Forward(h);
    Tensor self = ops::ScaleByScalar(t, alpha_[3 * l]);
    Tensor positive =
        ops::ScaleByScalar(ops::SpMM(pos_op, t), alpha_[3 * l + 1]);
    Tensor negative =
        ops::ScaleByScalar(ops::SpMM(neg_op, t), alpha_[3 * l + 2]);
    h = ops::Relu(ops::Sub(ops::Add(self, positive), negative));
    h = ops::Dropout(h, dropout_, training, rng);
  }
  return out_.Forward(h);
}

std::vector<Tensor> GgcnModel::Params() {
  std::vector<Tensor> p = in_.Params();
  for (const Linear& l : layers_) {
    for (const Tensor& t : l.Params()) p.push_back(t);
  }
  for (const Tensor& a : alpha_) p.push_back(a);
  for (const Tensor& t : out_.Params()) p.push_back(t);
  return p;
}

// ------------------------------------------------------------- GloGnnModel

GloGnnModel::GloGnnModel(const ModelConfig& config, Rng& rng)
    : embed_({config.in_dim, config.hidden, config.num_classes},
             config.dropout, rng),
      q_(config.num_classes, config.low_rank, rng),
      k_(config.num_classes, config.low_rank, rng),
      gamma_(ScalarParam(0.5f)),
      num_layers_(2),
      low_rank_(config.low_rank) {}

Tensor GloGnnModel::Forward(const GraphContext& ctx, bool training,
                            Rng& rng) {
  Tensor z0 = embed_.Forward(ctx.x, training, rng);
  // Low-rank global affinity T = Q K^T / r over all node pairs.
  Tensor q = q_.Forward(z0);
  Tensor k = k_.Forward(z0);
  Tensor t = ops::Scale(ops::MatMulTransB(q, k),
                        1.0f / static_cast<float>(low_rank_));
  Tensor z = z0;
  for (int l = 0; l < num_layers_; ++l) {
    // z <- (1-g) T z + g z0, with a one-hop term to keep local structure.
    Tensor global = ops::Scale(ops::MatMul(t, z),
                               1.0f / static_cast<float>(ctx.x->rows()));
    Tensor local = ops::SpMM(ctx.norm_adj, z);
    Tensor mixed = ops::Add(global, local);
    z = ops::Lerp(z0, mixed, gamma_);
  }
  return z;
}

std::vector<Tensor> GloGnnModel::Params() {
  std::vector<Tensor> p = embed_.Params();
  for (const Tensor& t : q_.Params()) p.push_back(t);
  for (const Tensor& t : k_.Params()) p.push_back(t);
  p.push_back(gamma_);
  return p;
}

// ------------------------------------------------------------ Factory etc.

std::unique_ptr<Model> CreateModel(const std::string& name,
                                   const ModelConfig& config, Rng& rng) {
  ADAFGL_CHECK(config.in_dim > 0 && config.num_classes > 0);
  if (name == "MLP") return std::make_unique<MlpModel>(config, rng);
  if (name == "GCN") return std::make_unique<GcnModel>(config, rng);
  if (name == "SGC") return std::make_unique<SgcModel>(config, rng);
  if (name == "GCNII") return std::make_unique<GcniiModel>(config, rng);
  if (name == "GAMLP") return std::make_unique<GamlpModel>(config, rng);
  if (name == "GPRGNN") return std::make_unique<GprGnnModel>(config, rng);
  if (name == "GGCN") return std::make_unique<GgcnModel>(config, rng);
  if (name == "GloGNN") return std::make_unique<GloGnnModel>(config, rng);
  ADAFGL_CHECK(false && "unknown model name");
  return nullptr;
}

std::vector<std::string> ModelZooNames() {
  return {"MLP", "GCN", "SGC", "GCNII", "GAMLP", "GPRGNN", "GGCN", "GloGNN"};
}

std::vector<Matrix> GetWeights(Model& model) {
  std::vector<Matrix> out;
  for (const Tensor& p : model.Params()) out.push_back(p->value());
  return out;
}

void SetWeights(Model& model, const std::vector<Matrix>& weights) {
  std::vector<Tensor> params = model.Params();
  ADAFGL_CHECK(params.size() == weights.size());
  for (size_t i = 0; i < params.size(); ++i) {
    ADAFGL_CHECK(params[i]->value().SameShape(weights[i]));
    params[i]->mutable_value() = weights[i];
  }
}

int64_t ParameterCount(Model& model) {
  int64_t count = 0;
  for (const Tensor& p : model.Params()) count += p->value().size();
  return count;
}

}  // namespace adafgl
