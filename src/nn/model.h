#ifndef ADAFGL_NN_MODEL_H_
#define ADAFGL_NN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace adafgl {

/// \brief Immutable view of one graph prepared for model forward passes:
/// the graph plus its cached normalised operator and feature tensor.
///
/// Built once per client (and once more for the train-induced subgraph in
/// inductive mode) so repeated epochs don't re-normalise the adjacency.
struct GraphContext {
  const Graph* graph = nullptr;
  /// D^-1/2 (A+I) D^-1/2 — shared so SpMM nodes keep it alive.
  std::shared_ptr<CsrMatrix> norm_adj;
  /// Features as a constant leaf tensor.
  Tensor x;

  static GraphContext Create(const Graph& g) {
    GraphContext ctx;
    ctx.graph = &g;
    ctx.norm_adj = std::make_shared<CsrMatrix>(GcnNormalized(g.adj));
    ctx.x = MakeConst(g.features);
    return ctx;
  }
};

/// \brief Common interface of every node-classification model in the zoo.
///
/// A model owns its parameters (trainable leaf tensors). `Forward` builds a
/// fresh autograd graph and returns raw class logits (n x num_classes).
/// Models are architecture-identical across federated clients, so FedAvg
/// can average `Params()` value-for-value.
class Model {
 public:
  virtual ~Model() = default;

  /// Logits for every node of `ctx`. `training` enables dropout; `rng`
  /// drives it.
  virtual Tensor Forward(const GraphContext& ctx, bool training,
                         Rng& rng) = 0;

  /// All trainable parameter tensors, in a stable order.
  virtual std::vector<Tensor> Params() = 0;

  /// Human-readable architecture name ("GCN", "GloGNN", ...).
  virtual std::string name() const = 0;
};

/// Shared hyperparameters for the zoo (paper Sec. IV-A defaults).
struct ModelConfig {
  int64_t in_dim = 0;
  int32_t num_classes = 0;
  int64_t hidden = 64;
  float dropout = 0.5f;
  int num_layers = 2;     ///< Depth for deep models (GCNII).
  int num_hops = 3;       ///< Propagation steps (SGC/GAMLP/GPR-GNN).
  int64_t low_rank = 8;   ///< Rank of GloGNN's global affinity factors.
};

/// Creates a model by registry name: MLP, GCN, SGC, GCNII, GAMLP, GPRGNN,
/// GGCN, GloGNN. Aborts on unknown names (programming error).
std::unique_ptr<Model> CreateModel(const std::string& name,
                                   const ModelConfig& config, Rng& rng);

/// Names accepted by CreateModel, in canonical order.
std::vector<std::string> ModelZooNames();

/// Copies of all parameter values (for FedAvg upload).
std::vector<Matrix> GetWeights(Model& model);

/// Overwrites parameter values (for FedAvg broadcast). Shapes must match.
void SetWeights(Model& model, const std::vector<Matrix>& weights);

/// Total number of scalar parameters (communication accounting).
int64_t ParameterCount(Model& model);

}  // namespace adafgl

#endif  // ADAFGL_NN_MODEL_H_
