#ifndef ADAFGL_NN_LAYERS_H_
#define ADAFGL_NN_LAYERS_H_

#include <vector>

#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace adafgl {

/// \brief Fully-connected layer y = x W + b with Glorot initialisation.
///
/// Optionally carries a FED-PUB-style sparse mask: when enabled, the
/// effective weight is W ⊙ sigmoid(M) and M is a trainable parameter.
class Linear {
 public:
  Linear(int64_t in_dim, int64_t out_dim, Rng& rng, bool with_mask = false)
      : weight_(MakeParam(Matrix::Glorot(in_dim, out_dim, rng))),
        bias_(MakeParam(Matrix(1, out_dim))) {
    if (with_mask) {
      // Start near-open gates (sigmoid(3) ~ 0.95).
      mask_ = MakeParam(Matrix::Constant(in_dim, out_dim, 3.0f));
    }
  }

  Tensor Forward(const Tensor& x) const {
    Tensor w = weight_;
    if (mask_ != nullptr) w = ops::Mul(weight_, ops::Sigmoid(mask_));
    return ops::AddBias(ops::MatMul(x, w), bias_);
  }

  /// Trainable tensors (weight, bias, and mask when present).
  std::vector<Tensor> Params() const {
    std::vector<Tensor> p = {weight_, bias_};
    if (mask_ != nullptr) p.push_back(mask_);
    return p;
  }

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }
  const Tensor& mask() const { return mask_; }

 private:
  Tensor weight_;
  Tensor bias_;
  Tensor mask_;  // Null unless with_mask.
};

/// \brief Multi-layer perceptron with ReLU + dropout between layers.
class Mlp {
 public:
  /// dims = {in, h1, ..., out}; at least two entries.
  Mlp(const std::vector<int64_t>& dims, float dropout, Rng& rng);

  Tensor Forward(const Tensor& x, bool training, Rng& rng) const;

  std::vector<Tensor> Params() const;

 private:
  std::vector<Linear> layers_;
  float dropout_;
};

}  // namespace adafgl

#endif  // ADAFGL_NN_LAYERS_H_
