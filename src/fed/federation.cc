#include "fed/federation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "fed/transport.h"
#include "nn/models.h"
#include "nn/serialize.h"
#include "tensor/matrix_ops.h"
#include "tensor/status.h"

namespace adafgl {

namespace {

ModelConfig MakeModelConfig(const Graph& g, const FedConfig& config) {
  ModelConfig mc;
  mc.in_dim = g.feature_dim();
  mc.num_classes = g.num_classes;
  mc.hidden = config.hidden;
  mc.dropout = config.dropout;
  return mc;
}

}  // namespace

FedClient::FedClient(const Graph& graph, const FedConfig& config,
                     uint64_t client_seed)
    : graph_(&graph), rng_(client_seed) {
  eval_ctx_ = GraphContext::Create(*graph_);
  if (config.inductive && !graph.train_nodes.empty()) {
    // Inductive task: the model may only see the train-induced subgraph
    // during training.
    train_subgraph_ = std::make_unique<Graph>(
        InducedSubgraph(graph, graph.train_nodes));
    train_ctx_ = GraphContext::Create(*train_subgraph_);
    local_train_nodes_.resize(train_subgraph_->num_nodes());
    std::iota(local_train_nodes_.begin(), local_train_nodes_.end(), 0);
    train_nodes_in_train_ctx_ = &local_train_nodes_;
  } else {
    train_ctx_ = eval_ctx_;
    train_nodes_in_train_ctx_ = &graph_->train_nodes;
  }

  ModelConfig mc = MakeModelConfig(graph, config);
  Rng model_rng = rng_.Fork(0);
  if (config.model == "GCN+mask") {
    model_ = std::make_unique<GcnModel>(mc, model_rng, /*with_mask=*/true);
  } else {
    model_ = CreateModel(config.model, mc, model_rng);
  }
  optimizer_ = std::make_unique<Adam>(model_->Params(), config.lr,
                                      config.weight_decay);
}

Tensor FedClient::BuildLoss(const GraphContext& ctx,
                            const std::vector<int32_t>& train, bool training) {
  Tensor logits = model_->Forward(ctx, training, rng_);
  std::vector<Tensor> losses;
  if (!train.empty()) {
    losses.push_back(ops::CrossEntropyWithLogits(
        logits, ctx.graph->labels, train));
  }
  if (pseudo_weight_ > 0.0f && !pseudo_nodes_.empty() &&
      ctx.graph == graph_) {
    // Pseudo-label ids refer to the full local graph, so only apply them
    // when training on it (always true in transductive mode).
    losses.push_back(ops::Scale(
        ops::CrossEntropyWithLogits(logits, pseudo_labels_, pseudo_nodes_),
        pseudo_weight_));
  }
  if (mask_penalty_ > 0.0f) {
    std::vector<Tensor> params = model_->Params();
    for (size_t i = 0; i < params.size(); ++i) {
      if (i < is_mask_.size() && is_mask_[i]) {
        losses.push_back(
            ops::Scale(ops::L1Penalty(params[i]), mask_penalty_));
      }
    }
  }
  ADAFGL_CHECK(!losses.empty());
  return ops::AddScalars(losses);
}

double FedClient::TrainEpochs(int epochs) {
  if (train_nodes_in_train_ctx_->empty()) {
    last_delta_.clear();
    return 0.0;
  }
  const std::vector<Matrix> before = Weights();
  double total_loss = 0.0;
  for (int e = 0; e < epochs; ++e) {
    optimizer_->ZeroGrad();
    Tensor loss =
        BuildLoss(train_ctx_, *train_nodes_in_train_ctx_, /*training=*/true);
    Backward(loss);
    optimizer_->Step();
    total_loss += loss->value()(0, 0);
  }
  const std::vector<Matrix> after = Weights();
  last_delta_.clear();
  last_delta_.reserve(after.size());
  for (size_t i = 0; i < after.size(); ++i) {
    last_delta_.push_back(adafgl::Sub(after[i], before[i]));
  }
  return total_loss / std::max(epochs, 1);
}

void FedClient::SetGlobalWeights(const std::vector<Matrix>& weights) {
  std::vector<Tensor> params = model_->Params();
  ADAFGL_CHECK(params.size() == weights.size());
  for (size_t i = 0; i < params.size(); ++i) {
    if (i < is_mask_.size() && is_mask_[i]) continue;  // Masks stay local.
    ADAFGL_CHECK(params[i]->value().SameShape(weights[i]));
    params[i]->mutable_value() = weights[i];
  }
}

double FedClient::EvalTest() { return EvalOn(graph_->test_nodes); }

double FedClient::EvalOn(const std::vector<int32_t>& nodes) {
  if (nodes.empty()) return 0.0;
  Tensor logits = model_->Forward(eval_ctx_, /*training=*/false, rng_);
  return Accuracy(logits->value(), graph_->labels, nodes);
}

void FedClient::SetPseudoLabels(std::vector<int32_t> pseudo_labels,
                                std::vector<int32_t> nodes, float weight) {
  pseudo_labels_ = std::move(pseudo_labels);
  pseudo_nodes_ = std::move(nodes);
  pseudo_weight_ = weight;
}

int64_t FedClient::ParamBytes() {
  return ParameterCount(*model_) * static_cast<int64_t>(sizeof(float));
}

std::string FedClient::Checkpoint() {
  std::vector<Matrix> state = GetWeights(*model_);
  const size_t num_params = state.size();
  std::vector<Matrix> moments = optimizer_->ExportState();
  ADAFGL_CHECK(moments.size() == 2 * num_params);
  for (Matrix& m : moments) state.push_back(std::move(m));
  // The Adam step counter rides along as a 1x1 matrix; exact as a float
  // for any realistic count (< 2^24 steps).
  Matrix t(1, 1);
  t(0, 0) = static_cast<float>(optimizer_->step_count());
  state.push_back(std::move(t));
  return SerializeWeights(state);
}

Status FedClient::Restore(const std::string& bytes) {
  Result<std::vector<Matrix>> parsed = DeserializeWeights(bytes);
  if (!parsed.ok()) return parsed.status();
  const std::vector<Matrix>& state = *parsed;
  std::vector<Tensor> params = model_->Params();
  const size_t num_params = params.size();
  if (state.size() != 3 * num_params + 1) {
    return Status::InvalidArgument(
        "checkpoint matrix count does not match model");
  }
  for (size_t i = 0; i < num_params; ++i) {
    if (!params[i]->value().SameShape(state[i])) {
      return Status::InvalidArgument("checkpoint weight shape mismatch");
    }
  }
  if (state.back().rows() != 1 || state.back().cols() != 1 ||
      state.back()(0, 0) < 0.0f) {
    return Status::InvalidArgument("checkpoint step counter malformed");
  }
  // Unlike SetGlobalWeights this restores *all* parameters, including
  // personalized masks — a checkpoint is the client's own state.
  for (size_t i = 0; i < num_params; ++i) {
    params[i]->mutable_value() = state[i];
  }
  optimizer_->ImportState(
      std::vector<Matrix>(state.begin() + static_cast<int64_t>(num_params),
                          state.end() - 1),
      static_cast<int64_t>(state.back()(0, 0)));
  return Status::Ok();
}

void FedClient::CrashAndRestore() {
  for (const Tensor& p : model_->Params()) p->mutable_value().Zero();
  optimizer_->ResetState();
  last_delta_.clear();
  if (has_checkpoint()) {
    ADAFGL_CHECK(Restore(checkpoint_).ok());
  }
}

std::vector<Matrix> AverageWeights(
    const std::vector<std::vector<Matrix>>& client_weights,
    const std::vector<double>& weights) {
  ADAFGL_CHECK(!client_weights.empty());
  ADAFGL_CHECK(client_weights.size() == weights.size());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  ADAFGL_CHECK(total > 0.0);
  std::vector<Matrix> out;
  out.reserve(client_weights[0].size());
  for (size_t p = 0; p < client_weights[0].size(); ++p) {
    Matrix acc(client_weights[0][p].rows(), client_weights[0][p].cols());
    for (size_t c = 0; c < client_weights.size(); ++c) {
      ADAFGL_CHECK(client_weights[c][p].SameShape(acc));
      Axpy(static_cast<float>(weights[c] / total), client_weights[c][p],
           &acc);
    }
    out.push_back(std::move(acc));
  }
  return out;
}

std::vector<std::unique_ptr<FedClient>> MakeClients(
    const FederatedDataset& data, const FedConfig& config) {
  std::vector<std::unique_ptr<FedClient>> clients;
  clients.reserve(data.clients.size());
  Rng seeder(config.seed);
  for (size_t c = 0; c < data.clients.size(); ++c) {
    clients.push_back(std::make_unique<FedClient>(
        data.clients[c], config, seeder.NextU64()));
  }
  // Identical initial weights across clients (standard FL assumption).
  if (!clients.empty()) {
    const std::vector<Matrix> init = clients[0]->Weights();
    for (size_t c = 1; c < clients.size(); ++c) {
      clients[c]->SetGlobalWeights(init);
    }
  }
  return clients;
}

double WeightedTestAccuracy(
    std::vector<std::unique_ptr<FedClient>>& clients) {
  double weighted = 0.0;
  int64_t total = 0;
  for (auto& c : clients) {
    const auto n_test =
        static_cast<int64_t>(c->graph().test_nodes.size());
    if (n_test == 0) continue;
    weighted += c->EvalTest() * static_cast<double>(n_test);
    total += n_test;
  }
  return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

FedRunResult RunFedAvg(const FederatedDataset& data, const FedConfig& config) {
  std::vector<std::unique_ptr<FedClient>> clients =
      MakeClients(data, config);
  const auto n = static_cast<int32_t>(clients.size());
  ADAFGL_CHECK(n > 0);
  Rng round_rng(config.seed ^ 0x5eedf00dULL);

  FedRunResult result;
  std::vector<Matrix> global = clients[0]->Weights();
  comm::ParameterServer ps(config.comm, n, config.seed ^ 0xc0117abULL);
  par::ThreadPool pool(config.comm.num_threads);

  const int32_t per_round = std::max<int32_t>(
      1, static_cast<int32_t>(std::lround(config.participation * n)));
  ADAFGL_CHECK(config.resilience.Validate().ok());

  for (int round = 1; round <= config.rounds; ++round) {
    // Sample participants, over-selecting when straggler mitigation is on.
    const int32_t take = OverSelectedCount(config.resilience, per_round, n);
    std::vector<int32_t> order = SampleParticipants(round_rng, n, take);

    TrainRoundSpec spec;
    spec.epochs = config.local_epochs;
    spec.resilience = &config.resilience;
    spec.chaos_seed = config.seed ^ 0xc4a05ULL;
    std::vector<RoundClientResult> outcomes = RunTrainingRound(
        ps, pool, clients, order, round,
        [&](int32_t) -> const std::vector<Matrix>& { return global; }, spec);
    result.resilience.Add(TallyRoundResilience(outcomes));

    std::vector<std::vector<Matrix>> uploads;
    std::vector<double> sizes;
    for (RoundClientResult& r : outcomes) {
      if (!r.participated) continue;
      uploads.push_back(std::move(r.upload));
      sizes.push_back(static_cast<double>(std::max<int64_t>(
          1, clients[static_cast<size_t>(r.client)]->num_train())));
    }
    // A round below quorum (including fully lost) keeps the previous
    // global model instead of aborting.
    if (QuorumMet(config.resilience, static_cast<int>(uploads.size()),
                  static_cast<int>(order.size()))) {
      global = AggregateRobust(config.resilience.aggregator,
                               config.resilience.trim_ratio, uploads, sizes);
    } else {
      ++result.resilience.rounds_skipped;
      EmitRoundSkipped("FedAvg", round, static_cast<int>(uploads.size()),
                       static_cast<int>(order.size()));
    }

    if (round % config.eval_every == 0 || round == config.rounds) {
      for (auto& c : clients) c->SetGlobalWeights(global);
      result.history.push_back(MakeRoundRecord(
          "FedAvg", round, ps, outcomes, WeightedTestAccuracy(clients)));
    }
  }

  // Local correction: every client fine-tunes the final global model —
  // embarrassingly parallel, so it shares the round worker pool.
  pool.ParallelFor(clients.size(), [&](size_t c) {
    clients[c]->SetGlobalWeights(global);
    if (config.post_local_epochs > 0) {
      clients[c]->TrainEpochs(config.post_local_epochs);
    }
  });
  result.comm = ps.Report();
  result.bytes_up = result.comm.stats.bytes_up;
  result.bytes_down = result.comm.stats.bytes_down;
  result.global_weights = std::move(global);
  result.client_test_acc.reserve(clients.size());
  for (auto& c : clients) result.client_test_acc.push_back(c->EvalTest());
  result.final_test_acc = WeightedTestAccuracy(clients);
  return result;
}

}  // namespace adafgl
