#ifndef ADAFGL_FED_TRANSPORT_H_
#define ADAFGL_FED_TRANSPORT_H_

#include <functional>
#include <memory>
#include <vector>

#include "comm/channel.h"
#include "par/thread_pool.h"
#include "fed/federation.h"

namespace adafgl {

/// Server-side view of one client's contribution to a training round.
struct RoundClientResult {
  int32_t client = -1;
  /// True iff both the broadcast and the upload survived the link and the
  /// upload passed server-side validation. Only participating clients may
  /// enter the aggregation.
  bool participated = false;
  /// The client crashed at round start (lost its in-memory state and was
  /// restored from checkpoint; it sits this round out).
  bool crashed = false;
  /// The upload arrived but was rejected for NaN/Inf content.
  bool rejected = false;
  /// The upload's delta exceeded max_update_norm and was scaled down.
  bool clipped = false;
  double loss = 0.0;
  /// Decoded upload (the server's copy of the client weights).
  std::vector<Matrix> upload;
  /// Decoded weight-delta upload; filled only when `upload_delta` is set.
  std::vector<Matrix> delta_upload;
};

/// Per-round hooks and knobs for RunTrainingRound.
struct TrainRoundSpec {
  int epochs = 1;
  /// Also uplink TrainEpochs' weight delta (GCFL+'s gradient signature).
  bool upload_delta = false;
  /// Server-side update validation/clipping policy; null disables (the
  /// pointed-to options must outlive the round). At defaults behavior is
  /// unchanged apart from the finite-ness scan.
  const ResilienceOptions* resilience = nullptr;
  /// Seed of the chaos fault-injection schedule (nan_upload_prob draws).
  uint64_t chaos_seed = 0;
  /// Optional extra work on the worker thread after a successful upload —
  /// e.g. FED-PUB's functional-embedding computation + uplink. Runs only
  /// for participating clients.
  std::function<void(int32_t client, FedClient& fed_client)> post_upload;
};

/// \brief One synchronous parameter-server round over `order`.
///
/// For every sampled client, concurrently on `pool`: downlink that
/// client's weights through `ps`, install them, run local training, uplink
/// the result. All weight movement crosses the serialized transport; link
/// faults surface as `participated = false` (the round proceeds with the
/// survivors). Results are indexed like `order` and deterministic for a
/// fixed seed regardless of the pool's thread count.
std::vector<RoundClientResult> RunTrainingRound(
    comm::ParameterServer& ps, par::ThreadPool& pool,
    std::vector<std::unique_ptr<FedClient>>& clients,
    const std::vector<int32_t>& order, int round,
    const std::function<const std::vector<Matrix>&(int32_t)>& weights_for,
    const TrainRoundSpec& spec);

/// Sum of participant losses / number of participants (0 when none).
double MeanParticipantLoss(const std::vector<RoundClientResult>& results);

/// Tallies the per-client recovery flags of one round's outcomes into a
/// ResilienceStats increment (rejected/clipped counts; round skips are the
/// round loop's own decision).
ResilienceStats TallyRoundResilience(
    const std::vector<RoundClientResult>& outcomes);

/// Telemetry for a round abandoned below quorum: "fed.rounds_skipped"
/// counter, structured "fed.round_skipped" event, warn-level log line. The
/// round loop reuses the previous global model instead of aggregating.
void EmitRoundSkipped(const char* algorithm, int round, int participants,
                      int sampled);

/// Builds the per-round history record every federated round loop appends:
/// loss/accuracy from the outcomes, participant count, and the server's
/// cumulative transport accounting. Also emits the structured "fed.round"
/// telemetry event (obs JSONL sink) and an info-level progress line —
/// the per-round observability contract of the training stack.
RoundRecord MakeRoundRecord(const char* algorithm, int round,
                            const comm::ParameterServer& ps,
                            const std::vector<RoundClientResult>& outcomes,
                            double test_acc);

}  // namespace adafgl

#endif  // ADAFGL_FED_TRANSPORT_H_
