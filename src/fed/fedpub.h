#ifndef ADAFGL_FED_FEDPUB_H_
#define ADAFGL_FED_FEDPUB_H_

#include "fed/federation.h"

namespace adafgl {

/// FED-PUB personalization knobs.
struct FedPubOptions {
  /// Softmax temperature over client functional similarities.
  float tau = 5.0f;
  /// L1 weight on the personalized sparse masks.
  float mask_l1 = 0.01f;
  /// Size of the server-side random proxy graph used for functional
  /// embeddings.
  int32_t proxy_nodes = 100;
};

/// \brief FED-PUB (Baek et al., 2023), mechanism-level reimplementation.
///
/// Keeps both distinguishing mechanisms: (1) *functional-similarity
/// personalized aggregation* — the server embeds every client model on a
/// shared random proxy graph, measures pairwise cosine similarity of the
/// outputs, and computes a per-client similarity-weighted average of the
/// uploaded weights; (2) *personalized sparse masks* — each client holds
/// local sigmoid gates over its GCN weights, trained with an L1 penalty and
/// never aggregated.
FedRunResult RunFedPub(const FederatedDataset& data, const FedConfig& config,
                       const FedPubOptions& options = {});

}  // namespace adafgl

#endif  // ADAFGL_FED_FEDPUB_H_
