#ifndef ADAFGL_FED_RESILIENCE_H_
#define ADAFGL_FED_RESILIENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/rng.h"
#include "tensor/status.h"

namespace adafgl {

/// Server-side aggregation rule applied to the surviving client uploads.
///
/// `kMean` is the historical size-weighted FedAvg average (bit-identical to
/// AverageWeights). The robust variants defend the global model against
/// corrupted or adversarial uploads at the cost of statistical efficiency:
/// both drop non-finite values per coordinate before combining, so a NaN
/// client can never poison the aggregate.
enum class Aggregator {
  kMean,              ///< Weighted mean (FedAvg, Eq. 3-4).
  kTrimmedMean,       ///< Per-coordinate trimmed mean (trim_ratio per end).
  kCoordinateMedian,  ///< Per-coordinate median.
};

/// Parses an ADAFGL_AGGREGATOR value: "mean", "trimmed_mean",
/// "coordinate_median". InvalidArgument on anything else.
Result<Aggregator> ParseAggregator(const std::string& name);

/// Canonical name of an aggregator (inverse of ParseAggregator).
const char* AggregatorName(Aggregator aggregator);

/// \brief Fault-tolerance policy of one federated run.
///
/// Defaults are chosen so a fault-free run is bit-identical to the
/// pre-resilience implementation: mean aggregation, no over-selection, no
/// quorum, no clipping. `reject_nonfinite` defaults on because scanning a
/// finite upload has no effect on it — only actually-poisoned updates are
/// dropped.
struct ResilienceOptions {
  Aggregator aggregator = Aggregator::kMean;
  /// Fraction of participants trimmed from EACH end per coordinate under
  /// kTrimmedMean, in [0, 0.5).
  double trim_ratio = 0.2;
  /// Minimum fraction of the sampled clients that must complete the round
  /// for aggregation to proceed; below it the round is skipped and the
  /// previous global model is reused. A round with zero participants is
  /// always skipped.
  double min_participation = 0.0;
  /// Straggler over-selection: sample ceil(base * (1 + over_select)) extra
  /// clients so deadline cuts and dropouts still leave a quorum.
  double over_select = 0.0;
  /// L2-norm clip of (upload - broadcast) applied server-side; 0 disables.
  double max_update_norm = 0.0;
  /// Reject uploads containing NaN/Inf before they reach the aggregator.
  bool reject_nonfinite = true;
  /// Chaos injection (harness/tests only): per-(round, client) probability
  /// that the client uploads NaN-poisoned weights.
  double nan_upload_prob = 0.0;

  /// InvalidArgument naming the offending field; Ok when usable.
  Status Validate() const;
};

/// Applies ADAFGL_AGGREGATOR / ADAFGL_TRIM_RATIO / ADAFGL_MIN_PARTICIPATION
/// / ADAFGL_OVER_SELECT / ADAFGL_MAX_UPDATE_NORM overrides to `base`.
/// Aborts on an unparsable aggregator name (mirrors CreateModel).
ResilienceOptions ResilienceFromEnv(ResilienceOptions base = {});

/// Per-run tallies of the recovery paths, reported next to CommStats.
struct ResilienceStats {
  /// Uploads rejected for NaN/Inf content.
  int64_t rejected_updates = 0;
  /// Uploads whose delta exceeded max_update_norm and was scaled down.
  int64_t clipped_updates = 0;
  /// Rounds skipped for missing quorum (previous global reused).
  int64_t rounds_skipped = 0;

  void Add(const ResilienceStats& o) {
    rejected_updates += o.rejected_updates;
    clipped_updates += o.clipped_updates;
    rounds_skipped += o.rounds_skipped;
  }
};

/// Robust weighted aggregation of client weight lists. Under kMean this is
/// exactly AverageWeights (bit-identical); the robust rules ignore the
/// weights' relative sizes beyond participation and drop non-finite
/// entries per coordinate (falling back to 0 for a coordinate with no
/// finite value at all). All lists must be shape-compatible.
std::vector<Matrix> AggregateRobust(
    Aggregator aggregator, double trim_ratio,
    const std::vector<std::vector<Matrix>>& client_weights,
    const std::vector<double>& weights);

/// True when every entry of every matrix is finite.
bool AllFinite(const std::vector<Matrix>& weights);

/// Scales (upload - reference) down to L2 norm `max_norm` when it exceeds
/// it; returns true iff clipping fired. Shapes must match.
bool ClipUpdateNorm(const std::vector<Matrix>& reference, double max_norm,
                    std::vector<Matrix>* upload);

/// Whether a round with `participants` of `sampled` clients may aggregate.
/// Zero participants never meet quorum.
bool QuorumMet(const ResilienceOptions& options, int participants,
               int sampled);

/// Sample size after over-selection, capped at `n`.
int32_t OverSelectedCount(const ResilienceOptions& options, int32_t base,
                          int32_t n);

/// Fisher-Yates participant sampling, bit-identical to the historical
/// inline loops: shuffles [0, n) with `rng` and keeps the first `take`.
std::vector<int32_t> SampleParticipants(Rng& rng, int32_t n, int32_t take);

/// \brief Deterministic chaos schedule for client-side fault injection.
///
/// Every decision is a pure function of (seed, round, client) — never of
/// call order or thread schedule — so a chaos run replays the identical
/// fault sequence under any worker-thread count.
class ChaosSchedule {
 public:
  ChaosSchedule(uint64_t seed, double nan_upload_prob)
      : seed_(seed), nan_upload_prob_(nan_upload_prob) {}

  /// Whether `client` uploads NaN-poisoned weights in `round`.
  bool PoisonUpload(int round, int32_t client) const;

  double nan_upload_prob() const { return nan_upload_prob_; }

 private:
  uint64_t seed_;
  double nan_upload_prob_;
};

}  // namespace adafgl

#endif  // ADAFGL_FED_RESILIENCE_H_
