#ifndef ADAFGL_FED_FEDERATION_H_
#define ADAFGL_FED_FEDERATION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/options.h"
#include "comm/stats.h"
#include "fed/resilience.h"
#include "fed/splits.h"
#include "nn/model.h"
#include "tensor/optim.h"

namespace adafgl {

/// \brief Run configuration shared by every federated algorithm.
struct FedConfig {
  std::string model = "GCN";   ///< Backbone architecture (ModelZooNames()).
  int rounds = 30;             ///< Communication rounds T.
  int local_epochs = 3;        ///< Local epochs E per round.
  float lr = 0.01f;
  float weight_decay = 5e-4f;
  float dropout = 0.5f;
  int64_t hidden = 64;
  /// Fraction of clients sampled each round (Sec. IV-E).
  double participation = 1.0;
  /// Inductive task: train on the subgraph induced by each client's train
  /// nodes, evaluate on the full local subgraph (Reddit/Flickr).
  bool inductive = false;
  /// "Local correction" fine-tuning epochs after federated training
  /// (Sec. IV-A: applied to all federated GNN implementations).
  int post_local_epochs = 10;
  /// Evaluate the aggregated model every this many rounds.
  int eval_every = 1;
  uint64_t seed = 42;
  /// Transport: codec, worker threads, simulated link (comm/options.h).
  /// The defaults (lossless, 1 thread, perfect network) reproduce the
  /// historical in-process weight exchange bit-for-bit.
  comm::Options comm;
  /// Fault tolerance: aggregation rule, quorum, over-selection, update
  /// validation (fed/resilience.h). Defaults are bit-identical to the
  /// pre-resilience runtime.
  ResilienceOptions resilience;
};

/// One per-round measurement of the aggregated global model, plus the
/// cumulative transport accounting at that point — the per-round
/// trajectory bench.json and the obs event log report.
struct RoundRecord {
  int round = 0;
  double test_acc = 0.0;
  double train_loss = 0.0;
  /// Clients that completed the round (downlink + training + uplink).
  int participants = 0;
  /// Fraction of the sampled clients that completed the round.
  double quorum = 0.0;
  /// Cumulative wire bytes / simulated wall-clock up to and including this
  /// round (monotone across the history).
  int64_t bytes_up = 0;
  int64_t bytes_down = 0;
  double sim_seconds = 0.0;
};

/// Compute/memory cost of one algorithm run, measured by
/// eval::RunAlgorithm around the whole run: wall-clock always, flops and
/// peak tensor bytes when ADAFGL_METRICS=1 (zero otherwise). The numbers
/// bench.json and the BENCH_<seq>.json perf trajectory report per method.
struct RunPerf {
  double wall_seconds = 0.0;
  /// MatMul + SpMM multiply-adds counted during the run.
  int64_t flops = 0;
  /// High-water mark of live tensor buffer bytes during the run.
  int64_t peak_tensor_bytes = 0;
};

/// Outcome of a federated run.
struct FedRunResult {
  std::vector<RoundRecord> history;
  /// Test accuracy after any personalization / local correction, weighted
  /// by client test-set sizes.
  double final_test_acc = 0.0;
  /// Per-client final test accuracy (Fig. 2(d)).
  std::vector<double> client_test_acc;
  /// Communication volume actually exchanged (bytes), both directions —
  /// measured from the serialized wire messages (mirrors
  /// comm.stats.bytes_up/bytes_down).
  int64_t bytes_up = 0;
  int64_t bytes_down = 0;
  /// Full transport accounting: message/byte counts, simulated wall-clock,
  /// fault tallies, codec.
  comm::CommReport comm;
  /// Recovery-path tallies: rejected/clipped uploads, skipped rounds.
  ResilienceStats resilience;
  /// Final server-side aggregated weights (AdaFGL Step 1 consumes these).
  std::vector<Matrix> global_weights;
  /// Wall-clock / flop / peak-memory cost (filled by eval::RunAlgorithm).
  RunPerf perf;
};

/// \brief One federated participant: local subgraph, local model, local
/// optimizer. The substrate shared by FedAvg and all FGL baselines.
class FedClient {
 public:
  FedClient(const Graph& graph, const FedConfig& config, uint64_t client_seed);

  /// Number of local training nodes (FedAvg aggregation weight).
  int64_t num_train() const {
    return static_cast<int64_t>(graph_->train_nodes.size());
  }
  const Graph& graph() const { return *graph_; }
  Model& model() { return *model_; }
  const GraphContext& eval_context() const { return eval_ctx_; }

  /// Runs `epochs` local epochs of supervised training; returns mean loss.
  double TrainEpochs(int epochs);

  /// Overwrites local weights with the broadcast global weights.
  void SetGlobalWeights(const std::vector<Matrix>& weights);

  /// Copies of the current local weights (upload).
  std::vector<Matrix> Weights() { return GetWeights(*model_); }

  /// Weight delta of the last TrainEpochs call (post - pre), used by
  /// GCFL+'s gradient clustering.
  const std::vector<Matrix>& last_delta() const { return last_delta_; }

  /// Test accuracy of the local model on local test nodes.
  double EvalTest();
  /// Accuracy on an arbitrary node set of the full local graph.
  double EvalOn(const std::vector<int32_t>& nodes);

  /// Installs soft supervision on extra nodes (FedGL's global
  /// pseudo-labels): adds `weight` * CE(logits[nodes], pseudo) to the loss.
  void SetPseudoLabels(std::vector<int32_t> pseudo_labels,
                       std::vector<int32_t> nodes, float weight);

  /// Adds `weight` * mean|mask| sparsity penalty for masked models
  /// (FED-PUB).
  void SetMaskPenalty(float weight) { mask_penalty_ = weight; }

  /// Marks which Params() entries are personalized masks that must never be
  /// aggregated/broadcast (FED-PUB).
  void SetMaskFlags(std::vector<bool> is_mask) {
    is_mask_ = std::move(is_mask);
  }
  const std::vector<bool>& mask_flags() const { return is_mask_; }

  /// Raw fp32 size of one weight set. Communication is accounted from the
  /// serialized wire messages (comm/stats.h); this remains the independent
  /// oracle the payload accounting is regression-tested against.
  int64_t ParamBytes();

  // --- Crash recovery ----------------------------------------------------

  /// Serializes the client's complete training state — all P parameter
  /// matrices (including personalized masks), the 2P Adam moments, and the
  /// step counter — through the weight checkpoint wire format
  /// (nn/serialize.h): [P weights, P first moments, P second moments,
  /// 1x1 step-count matrix].
  std::string Checkpoint();

  /// Inverse of Checkpoint; bit-exact round trip. InvalidArgument on
  /// malformed bytes or a shape/count mismatch with this client's model.
  Status Restore(const std::string& bytes);

  /// Saves the current state as the rejoin point for a future crash.
  void SaveCheckpoint() { checkpoint_ = Checkpoint(); }
  bool has_checkpoint() const { return !checkpoint_.empty(); }

  /// Simulates a crash: wipes weights, optimizer moments, and the last
  /// delta, then rejoins from the saved checkpoint if one exists. Without
  /// a checkpoint the client restarts cold — non-mask weights are
  /// re-seeded by the next broadcast, personalized masks are lost.
  void CrashAndRestore();

 private:
  Tensor BuildLoss(const GraphContext& ctx, const std::vector<int32_t>& train,
                   bool training);

  std::unique_ptr<Graph> train_subgraph_;  // Inductive mode only.
  const Graph* graph_;
  GraphContext eval_ctx_;
  GraphContext train_ctx_;
  const std::vector<int32_t>* train_nodes_in_train_ctx_;
  std::vector<int32_t> local_train_nodes_;  // Inductive: all ids of subgraph.

  std::unique_ptr<Model> model_;
  std::unique_ptr<Adam> optimizer_;
  Rng rng_;

  std::vector<Matrix> last_delta_;
  std::string checkpoint_;

  std::vector<int32_t> pseudo_labels_;
  std::vector<int32_t> pseudo_nodes_;
  float pseudo_weight_ = 0.0f;
  float mask_penalty_ = 0.0f;
  std::vector<bool> is_mask_;
};

/// Weighted element-wise average of client weight lists; weights are
/// normalised internally. All lists must be shape-compatible.
std::vector<Matrix> AverageWeights(
    const std::vector<std::vector<Matrix>>& client_weights,
    const std::vector<double>& weights);

/// Builds one FedClient per subgraph, all starting from identical weights.
std::vector<std::unique_ptr<FedClient>> MakeClients(
    const FederatedDataset& data, const FedConfig& config);

/// Test accuracy over all clients, weighted by local test-set size, using
/// each client's current local model.
double WeightedTestAccuracy(std::vector<std::unique_ptr<FedClient>>& clients);

/// \brief Plain FedAvg over any zoo model (Eq. 3-4): the "federated
/// implementation of GNNs" family of baselines (FedGCN, FedGloGNN, ...).
///
/// Runs T rounds of broadcast -> E local epochs -> size-weighted
/// aggregation, then `post_local_epochs` of local correction per client.
FedRunResult RunFedAvg(const FederatedDataset& data, const FedConfig& config);

}  // namespace adafgl

#endif  // ADAFGL_FED_FEDERATION_H_
