#ifndef ADAFGL_FED_SPLITS_H_
#define ADAFGL_FED_SPLITS_H_

#include <vector>

#include "data/injection.h"
#include "graph/graph.h"
#include "tensor/rng.h"

namespace adafgl {

/// How structure Non-iid split perturbs each subgraph (Sec. IV-A).
enum class InjectionMode {
  kNone,    ///< Plain Metis-like partition, no injection.
  kRandom,  ///< random-injection (default in the paper's experiments).
  kMeta,    ///< meta-injection (Metattack-style surrogate attack).
};

/// \brief A simulated federated dataset: the global graph carved into
/// per-client subgraphs.
struct FederatedDataset {
  /// Per-client local subgraphs (features/labels/splits included).
  std::vector<Graph> clients;
  /// Per-client mapping local node id -> global node id.
  std::vector<std::vector<int32_t>> global_ids;
  /// Per-client injection applied (structure Non-iid only; empty for
  /// community split). Used by Fig. 2/7 diagnostics.
  std::vector<InjectionType> injections;

  int32_t num_clients() const { return static_cast<int32_t>(clients.size()); }
  /// Total training nodes across clients (FedAvg weighting).
  int64_t TotalTrainNodes() const;
};

/// \brief Community split (the prior-work default): Louvain communities are
/// assigned to clients following the node-average principle — each community
/// goes to the currently smallest client — so client sizes stay roughly
/// uniform while topology remains consistent with the global graph.
FederatedDataset CommunitySplit(const Graph& g, int32_t num_clients,
                                Rng& rng);

/// \brief Structure Non-iid split (Definition 1): a Metis-like k-way
/// partition followed by per-subgraph binary selection (p_s = 0.5) between
/// homophilous and heterophilous edge injection.
///
/// * mode == kRandom: the selected regime is enforced with random-injection
///   at `ratio` (paper default 0.5) of the subgraph's edges.
/// * mode == kMeta: heterophilous enhancement uses the surrogate-guided
///   meta-injection with budget 0.2 |E| (homophilous enhancement still uses
///   random-injection, mirroring the paper's restriction).
/// * mode == kNone: partition only.
FederatedDataset StructureNonIidSplit(const Graph& g, int32_t num_clients,
                                      InjectionMode mode, double ratio,
                                      Rng& rng);

}  // namespace adafgl

#endif  // ADAFGL_FED_SPLITS_H_
