#include "fed/splits.h"

#include <algorithm>
#include <numeric>

#include "partition/louvain.h"
#include "partition/metis_like.h"
#include "tensor/status.h"

namespace adafgl {

int64_t FederatedDataset::TotalTrainNodes() const {
  int64_t total = 0;
  for (const Graph& c : clients) {
    total += static_cast<int64_t>(c.train_nodes.size());
  }
  return total;
}

namespace {

FederatedDataset BuildFromAssignment(const Graph& g,
                                     const std::vector<int32_t>& assignment,
                                     int32_t num_clients) {
  std::vector<std::vector<int32_t>> members(
      static_cast<size_t>(num_clients));
  for (int32_t v = 0; v < g.num_nodes(); ++v) {
    const int32_t c = assignment[static_cast<size_t>(v)];
    ADAFGL_CHECK(c >= 0 && c < num_clients);
    members[static_cast<size_t>(c)].push_back(v);
  }
  FederatedDataset fd;
  fd.clients.reserve(static_cast<size_t>(num_clients));
  fd.global_ids.reserve(static_cast<size_t>(num_clients));
  for (int32_t c = 0; c < num_clients; ++c) {
    ADAFGL_CHECK(!members[static_cast<size_t>(c)].empty());
    std::vector<int32_t> ids;
    fd.clients.push_back(
        InducedSubgraph(g, members[static_cast<size_t>(c)], &ids));
    fd.global_ids.push_back(std::move(ids));
  }
  return fd;
}

}  // namespace

FederatedDataset CommunitySplit(const Graph& g, int32_t num_clients,
                                Rng& rng) {
  ADAFGL_CHECK(num_clients > 0 && g.num_nodes() >= num_clients);
  const std::vector<int32_t> community = Louvain(g.adj, rng);
  const int32_t num_comm =
      1 + *std::max_element(community.begin(), community.end());

  // Community sizes, largest first.
  std::vector<int64_t> size(static_cast<size_t>(num_comm), 0);
  for (int32_t c : community) ++size[static_cast<size_t>(c)];
  std::vector<int32_t> order(static_cast<size_t>(num_comm));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return size[static_cast<size_t>(a)] > size[static_cast<size_t>(b)];
  });

  // Node-average principle: each community joins the lightest client.
  std::vector<int32_t> comm_to_client(static_cast<size_t>(num_comm), 0);
  std::vector<int64_t> load(static_cast<size_t>(num_clients), 0);
  for (int32_t c : order) {
    int32_t lightest = 0;
    for (int32_t i = 1; i < num_clients; ++i) {
      if (load[static_cast<size_t>(i)] < load[static_cast<size_t>(lightest)]) {
        lightest = i;
      }
    }
    comm_to_client[static_cast<size_t>(c)] = lightest;
    load[static_cast<size_t>(lightest)] += size[static_cast<size_t>(c)];
  }

  std::vector<int32_t> assignment(community.size());
  for (size_t v = 0; v < community.size(); ++v) {
    assignment[v] = comm_to_client[static_cast<size_t>(community[v])];
  }
  // Guard against empty clients (fewer communities than clients): move
  // single nodes from the largest client.
  std::vector<int64_t> counts(static_cast<size_t>(num_clients), 0);
  for (int32_t a : assignment) ++counts[static_cast<size_t>(a)];
  for (int32_t c = 0; c < num_clients; ++c) {
    while (counts[static_cast<size_t>(c)] == 0) {
      int32_t donor = static_cast<int32_t>(
          std::max_element(counts.begin(), counts.end()) - counts.begin());
      for (size_t v = 0; v < assignment.size(); ++v) {
        if (assignment[v] == donor) {
          assignment[v] = c;
          --counts[static_cast<size_t>(donor)];
          ++counts[static_cast<size_t>(c)];
          break;
        }
      }
    }
  }
  return BuildFromAssignment(g, assignment, num_clients);
}

FederatedDataset StructureNonIidSplit(const Graph& g, int32_t num_clients,
                                      InjectionMode mode, double ratio,
                                      Rng& rng) {
  ADAFGL_CHECK(num_clients > 0 && g.num_nodes() >= num_clients);
  const std::vector<int32_t> part = MetisLikePartition(g.adj, num_clients, rng);
  FederatedDataset fd = BuildFromAssignment(g, part, num_clients);
  if (mode == InjectionMode::kNone) return fd;

  fd.injections.reserve(fd.clients.size());
  for (size_t c = 0; c < fd.clients.size(); ++c) {
    // Binary selection with p_s = 0.5 (Definition 1).
    const InjectionType type = rng.Bernoulli(0.5)
                                   ? InjectionType::kHomophilous
                                   : InjectionType::kHeterophilous;
    fd.injections.push_back(type);
    Rng client_rng = rng.Fork(c);
    if (type == InjectionType::kHomophilous) {
      fd.clients[c] = RandomInjection(fd.clients[c],
                                      InjectionType::kHomophilous, ratio,
                                      client_rng);
    } else if (mode == InjectionMode::kRandom) {
      fd.clients[c] = RandomInjection(fd.clients[c],
                                      InjectionType::kHeterophilous, ratio,
                                      client_rng);
    } else {
      fd.clients[c] = MetaInjection(fd.clients[c], /*budget_ratio=*/0.2,
                                    client_rng);
    }
  }
  return fd;
}

}  // namespace adafgl
