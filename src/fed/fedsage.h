#ifndef ADAFGL_FED_FEDSAGE_H_
#define ADAFGL_FED_FEDSAGE_H_

#include "fed/federation.h"

namespace adafgl {

/// Knobs of the NeighGen missing-neighbour generator.
struct FedSageOptions {
  /// Fraction of local edges hidden to form the impaired training graph.
  double hide_ratio = 0.25;
  /// NeighGen training epochs.
  int neighgen_epochs = 40;
  /// Maximum generated neighbours per node.
  int max_generated = 2;
  float neighgen_lr = 0.01f;
};

/// \brief FedSage+ (Zhang et al., 2021), mechanism-level reimplementation.
///
/// Each client trains a *NeighGen* — an encoder over an edge-impaired copy
/// of its subgraph with two heads predicting (a) the number of missing
/// neighbours per node and (b) their mean feature — then mends its local
/// graph with generated nodes before standard federated training of the
/// classifier. The original's cross-client NeighGen gradient exchange is
/// replaced by server-shared feature moments used to regularise generated
/// features (documented in DESIGN.md §4); communication counts NeighGen
/// parameters and the shared moments.
FedRunResult RunFedSagePlus(const FederatedDataset& data,
                            const FedConfig& config,
                            const FedSageOptions& options = {});

/// Exposed for tests: mends one graph with NeighGen. `feature_mean` is the
/// server-shared cross-client feature mean (may be empty to skip the
/// regulariser); returns the augmented graph. When `neighgen_params` is
/// non-null it receives the trained NeighGen parameter values (empty if the
/// graph was too small to train on) — the tensors FedSage+ uplinks for
/// communication accounting.
Graph MendGraphWithNeighGen(const Graph& g, const FedSageOptions& options,
                            const Matrix& feature_mean, Rng& rng,
                            std::vector<Matrix>* neighgen_params = nullptr);

}  // namespace adafgl

#endif  // ADAFGL_FED_FEDSAGE_H_
