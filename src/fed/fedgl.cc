#include "fed/fedgl.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "fed/transport.h"
#include "tensor/matrix_ops.h"
#include "tensor/status.h"

namespace adafgl {

namespace {

/// Confidence threshold above which an unlabeled node receives its pseudo
/// label (FedGL uses a fixed high-confidence cut).
constexpr float kConfidence = 0.80f;
constexpr float kPseudoWeight = 0.5f;

}  // namespace

FedRunResult RunFedGL(const FederatedDataset& data, const FedConfig& config) {
  std::vector<std::unique_ptr<FedClient>> clients =
      MakeClients(data, config);
  const auto n = static_cast<int32_t>(clients.size());
  ADAFGL_CHECK(n > 0);
  Rng round_rng(config.seed ^ 0xfed91ULL);

  FedRunResult result;
  std::vector<Matrix> global = clients[0]->Weights();
  comm::ParameterServer ps(config.comm, n, config.seed ^ 0xc0117abULL);
  par::ThreadPool pool(config.comm.num_threads);
  const int32_t per_round = std::max<int32_t>(
      1, static_cast<int32_t>(std::lround(config.participation * n)));
  const int warmup = std::max(1, config.rounds / 3);

  for (int round = 1; round <= config.rounds; ++round) {
    const int32_t take = OverSelectedCount(config.resilience, per_round, n);
    std::vector<int32_t> order = SampleParticipants(round_rng, n, take);

    TrainRoundSpec spec;
    spec.epochs = config.local_epochs;
    spec.resilience = &config.resilience;
    spec.chaos_seed = config.seed ^ 0xc4a05ULL;
    std::vector<RoundClientResult> outcomes = RunTrainingRound(
        ps, pool, clients, order, round,
        [&](int32_t) -> const std::vector<Matrix>& { return global; }, spec);
    result.resilience.Add(TallyRoundResilience(outcomes));

    std::vector<std::vector<Matrix>> uploads;
    std::vector<double> sizes;
    for (RoundClientResult& r : outcomes) {
      if (!r.participated) continue;
      uploads.push_back(std::move(r.upload));
      sizes.push_back(static_cast<double>(std::max<int64_t>(
          1, clients[static_cast<size_t>(r.client)]->num_train())));
    }
    if (QuorumMet(config.resilience, static_cast<int>(uploads.size()),
                  static_cast<int>(order.size()))) {
      global = AggregateRobust(config.resilience.aggregator,
                               config.resilience.trim_ratio, uploads, sizes);
    } else {
      ++result.resilience.rounds_skipped;
      EmitRoundSkipped("FedGL", round, static_cast<int>(uploads.size()),
                       static_cast<int>(order.size()));
    }

    // Global self-supervision: after warmup, refresh every client's pseudo
    // labels from the aggregated model's confident predictions. The
    // prediction matrix travels up to the server and the fused label
    // vector travels back down — both as real serialized messages. Re-
    // opening the same round index replays identical dropout decisions.
    if (round >= warmup) {
      std::vector<int32_t> everyone(static_cast<size_t>(n));
      std::iota(everyone.begin(), everyone.end(), 0);
      ps.BeginRound(round, everyone);
      for (int32_t c = 0; c < n; ++c) {
        FedClient& client = *clients[static_cast<size_t>(c)];
        if (!ps.ClientActive(c)) continue;
        client.SetGlobalWeights(global);
        Rng eval_rng(config.seed ^ static_cast<uint64_t>(round));
        Tensor logits = client.model().Forward(client.eval_context(),
                                               /*training=*/false, eval_rng);
        // Prediction upload for server-side fusion.
        std::optional<std::vector<Matrix>> fused = ps.Uplink(
            c, comm::MessageType::kPredictions, {Softmax(logits->value())});
        if (!fused.has_value()) continue;  // Lost: keep stale pseudo labels.
        const Matrix& probs = (*fused)[0];
        std::vector<uint8_t> is_train(
            static_cast<size_t>(client.graph().num_nodes()), 0);
        for (int32_t v : client.graph().train_nodes) {
          is_train[static_cast<size_t>(v)] = 1;
        }
        // Server-side label fusion: confident argmax per unlabeled node,
        // encoded as one n x 1 float vector for the downlink.
        Matrix label_vec(client.graph().num_nodes(), 1);
        label_vec.Fill(-1.0f);
        for (int32_t v = 0; v < client.graph().num_nodes(); ++v) {
          if (is_train[static_cast<size_t>(v)]) continue;
          const float* p = probs.row(v);
          int32_t best = 0;
          for (int64_t j = 1; j < probs.cols(); ++j) {
            if (p[j] > p[best]) best = static_cast<int32_t>(j);
          }
          if (p[best] >= kConfidence) {
            label_vec(v, 0) = static_cast<float>(best);
          }
        }
        std::optional<std::vector<Matrix>> delivered = ps.Downlink(
            c, comm::MessageType::kPseudoLabels, {std::move(label_vec)});
        if (!delivered.has_value()) continue;
        const Matrix& fused_labels = (*delivered)[0];
        std::vector<int32_t> pseudo_nodes;
        std::vector<int32_t> pseudo_labels(
            static_cast<size_t>(client.graph().num_nodes()), 0);
        for (int64_t v = 0; v < fused_labels.rows(); ++v) {
          const float label = fused_labels(v, 0);
          if (label < 0.0f) continue;
          pseudo_nodes.push_back(static_cast<int32_t>(v));
          pseudo_labels[static_cast<size_t>(v)] =
              static_cast<int32_t>(label);
        }
        client.SetPseudoLabels(std::move(pseudo_labels),
                               std::move(pseudo_nodes), kPseudoWeight);
      }
      ps.EndRound();
    }

    if (round % config.eval_every == 0 || round == config.rounds) {
      for (auto& c : clients) c->SetGlobalWeights(global);
      result.history.push_back(MakeRoundRecord(
          "FedGL", round, ps, outcomes, WeightedTestAccuracy(clients)));
    }
  }

  pool.ParallelFor(clients.size(), [&](size_t c) {
    clients[c]->SetGlobalWeights(global);
    if (config.post_local_epochs > 0) {
      clients[c]->TrainEpochs(config.post_local_epochs);
    }
  });
  result.comm = ps.Report();
  result.bytes_up = result.comm.stats.bytes_up;
  result.bytes_down = result.comm.stats.bytes_down;
  result.global_weights = std::move(global);
  for (auto& c : clients) result.client_test_acc.push_back(c->EvalTest());
  result.final_test_acc = WeightedTestAccuracy(clients);
  return result;
}

}  // namespace adafgl
