#include "fed/fedgl.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/matrix_ops.h"
#include "tensor/status.h"

namespace adafgl {

namespace {

/// Confidence threshold above which an unlabeled node receives its pseudo
/// label (FedGL uses a fixed high-confidence cut).
constexpr float kConfidence = 0.80f;
constexpr float kPseudoWeight = 0.5f;

}  // namespace

FedRunResult RunFedGL(const FederatedDataset& data, const FedConfig& config) {
  std::vector<std::unique_ptr<FedClient>> clients =
      MakeClients(data, config);
  const auto n = static_cast<int32_t>(clients.size());
  ADAFGL_CHECK(n > 0);
  Rng round_rng(config.seed ^ 0xfed91ULL);

  FedRunResult result;
  std::vector<Matrix> global = clients[0]->Weights();
  const int64_t param_bytes = clients[0]->ParamBytes();
  const int32_t per_round = std::max<int32_t>(
      1, static_cast<int32_t>(std::lround(config.participation * n)));
  const int warmup = std::max(1, config.rounds / 3);

  for (int round = 1; round <= config.rounds; ++round) {
    std::vector<int32_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    for (int32_t i = n - 1; i > 0; --i) {
      std::swap(order[static_cast<size_t>(i)],
                order[static_cast<size_t>(round_rng.UniformInt(i + 1))]);
    }
    order.resize(static_cast<size_t>(per_round));

    std::vector<std::vector<Matrix>> uploads;
    std::vector<double> sizes;
    double loss_sum = 0.0;
    for (int32_t c : order) {
      FedClient& client = *clients[static_cast<size_t>(c)];
      client.SetGlobalWeights(global);
      loss_sum += client.TrainEpochs(config.local_epochs);
      uploads.push_back(client.Weights());
      sizes.push_back(static_cast<double>(
          std::max<int64_t>(1, client.num_train())));
      result.bytes_up += param_bytes;
      result.bytes_down += param_bytes;
    }
    global = AverageWeights(uploads, sizes);

    // Global self-supervision: after warmup, refresh every client's pseudo
    // labels from the aggregated model's confident predictions.
    if (round >= warmup) {
      for (auto& client : clients) {
        client->SetGlobalWeights(global);
        Rng eval_rng(config.seed ^ static_cast<uint64_t>(round));
        Tensor logits = client->model().Forward(client->eval_context(),
                                                /*training=*/false, eval_rng);
        const Matrix probs = Softmax(logits->value());
        // Prediction upload (server-side fusion) counted as communication.
        result.bytes_up +=
            probs.size() * static_cast<int64_t>(sizeof(float));
        std::vector<uint8_t> is_train(
            static_cast<size_t>(client->graph().num_nodes()), 0);
        for (int32_t v : client->graph().train_nodes) {
          is_train[static_cast<size_t>(v)] = 1;
        }
        std::vector<int32_t> pseudo_nodes;
        std::vector<int32_t> pseudo_labels(
            static_cast<size_t>(client->graph().num_nodes()), 0);
        for (int32_t v = 0; v < client->graph().num_nodes(); ++v) {
          if (is_train[static_cast<size_t>(v)]) continue;
          const float* p = probs.row(v);
          int32_t best = 0;
          for (int64_t j = 1; j < probs.cols(); ++j) {
            if (p[j] > p[best]) best = static_cast<int32_t>(j);
          }
          if (p[best] >= kConfidence) {
            pseudo_nodes.push_back(v);
            pseudo_labels[static_cast<size_t>(v)] = best;
          }
        }
        client->SetPseudoLabels(std::move(pseudo_labels),
                                std::move(pseudo_nodes), kPseudoWeight);
        result.bytes_down +=
            client->graph().num_nodes() * static_cast<int64_t>(sizeof(int32_t));
      }
    }

    if (round % config.eval_every == 0 || round == config.rounds) {
      for (auto& c : clients) c->SetGlobalWeights(global);
      RoundRecord rec;
      rec.round = round;
      rec.test_acc = WeightedTestAccuracy(clients);
      rec.train_loss = loss_sum / std::max<double>(1.0, per_round);
      result.history.push_back(rec);
    }
  }

  for (auto& c : clients) {
    c->SetGlobalWeights(global);
    if (config.post_local_epochs > 0) c->TrainEpochs(config.post_local_epochs);
  }
  result.global_weights = std::move(global);
  for (auto& c : clients) result.client_test_acc.push_back(c->EvalTest());
  result.final_test_acc = WeightedTestAccuracy(clients);
  return result;
}

}  // namespace adafgl
