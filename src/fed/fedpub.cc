#include "fed/fedpub.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/synthetic.h"
#include "fed/transport.h"
#include "tensor/matrix_ops.h"
#include "tensor/status.h"

namespace adafgl {

namespace {

std::vector<float> FlattenMatrix(const Matrix& m) {
  return std::vector<float>(m.data(), m.data() + m.size());
}

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  ADAFGL_CHECK(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace

FedRunResult RunFedPub(const FederatedDataset& data, const FedConfig& config,
                       const FedPubOptions& options) {
  // Masked GCN backbone regardless of config.model (the FED-PUB design).
  FedConfig cfg = config;
  cfg.model = "GCN+mask";
  std::vector<std::unique_ptr<FedClient>> clients = MakeClients(data, cfg);
  const auto n = static_cast<int32_t>(clients.size());
  ADAFGL_CHECK(n > 0);

  // Masked GcnModel parameter order: [w1, b1, m1, w2, b2, m2].
  const std::vector<bool> mask_flags = {false, false, true,
                                        false, false, true};
  for (auto& c : clients) {
    c->SetMaskFlags(mask_flags);
    c->SetMaskPenalty(options.mask_l1);
  }

  // Server-side random proxy graph for functional embeddings.
  SbmParams proxy_params;
  proxy_params.num_classes = data.clients[0].num_classes;
  proxy_params.num_nodes =
      std::max(options.proxy_nodes, 4 * proxy_params.num_classes + 8);
  proxy_params.num_edges = proxy_params.num_nodes * 3;
  proxy_params.edge_homophily = 0.5;
  proxy_params.feature_dim =
      static_cast<int32_t>(data.clients[0].feature_dim());
  Rng proxy_rng(cfg.seed ^ 0xb0bULL);
  Graph proxy = GenerateSbmGraph(proxy_params, proxy_rng);
  GraphContext proxy_ctx = GraphContext::Create(proxy);

  FedRunResult result;
  comm::ParameterServer ps(cfg.comm, n, cfg.seed ^ 0xc0117abULL);
  par::ThreadPool pool(cfg.comm.num_threads);
  // Per-client personalized weights; start identical.
  std::vector<std::vector<Matrix>> personalized(
      static_cast<size_t>(n), clients[0]->Weights());

  Rng round_rng(cfg.seed ^ 0xfedb0bULL);
  const int32_t per_round = std::max<int32_t>(
      1, static_cast<int32_t>(std::lround(cfg.participation * n)));

  for (int round = 1; round <= cfg.rounds; ++round) {
    const int32_t take = OverSelectedCount(cfg.resilience, per_round, n);
    std::vector<int32_t> order = SampleParticipants(round_rng, n, take);

    std::vector<std::vector<Matrix>> uploads(static_cast<size_t>(n));
    std::vector<std::vector<float>> embeddings(static_cast<size_t>(n));

    // Functional embedding on the shared (read-only) proxy graph, uplinked
    // as its own message right after the weight upload. The server-side
    // copy drives the similarity aggregation, so compression noise in the
    // embedding affects the aggregation exactly as it would in deployment.
    TrainRoundSpec spec;
    spec.epochs = cfg.local_epochs;
    spec.resilience = &cfg.resilience;
    spec.chaos_seed = cfg.seed ^ 0xc4a05ULL;
    spec.post_upload = [&](int32_t c, FedClient& client) {
      Rng fwd_rng(cfg.seed + static_cast<uint64_t>(round));
      Tensor out = client.model().Forward(proxy_ctx, /*training=*/false,
                                          fwd_rng);
      std::optional<std::vector<Matrix>> delivered =
          ps.Uplink(c, comm::MessageType::kEmbedding, {out->value()});
      if (delivered.has_value()) {
        embeddings[static_cast<size_t>(c)] = FlattenMatrix((*delivered)[0]);
      }
    };
    std::vector<RoundClientResult> outcomes = RunTrainingRound(
        ps, pool, clients, order, round,
        [&](int32_t c) -> const std::vector<Matrix>& {
          return personalized[static_cast<size_t>(c)];
        },
        spec);

    result.resilience.Add(TallyRoundResilience(outcomes));

    std::vector<int32_t> survivors;
    for (RoundClientResult& r : outcomes) {
      const auto c = static_cast<size_t>(r.client);
      // The similarity aggregation needs both uploads to have landed.
      if (!r.participated || embeddings[c].empty()) continue;
      uploads[c] = std::move(r.upload);
      survivors.push_back(r.client);
    }

    // Round-level quorum over the survivors; below it every client keeps
    // its previous personalized weights.
    if (!QuorumMet(cfg.resilience, static_cast<int>(survivors.size()),
                   static_cast<int>(order.size()))) {
      ++result.resilience.rounds_skipped;
      EmitRoundSkipped("FED-PUB", round,
                       static_cast<int>(survivors.size()),
                       static_cast<int>(order.size()));
      survivors.clear();
    }

    // Similarity-weighted personalized aggregation per surviving
    // participant; clients lost this round keep their previous weights.
    for (int32_t c : survivors) {
      std::vector<std::vector<Matrix>> sources;
      std::vector<double> weights;
      for (int32_t j : survivors) {
        const double sim = Cosine(embeddings[static_cast<size_t>(c)],
                                  embeddings[static_cast<size_t>(j)]);
        sources.push_back(uploads[static_cast<size_t>(j)]);
        weights.push_back(std::exp(options.tau * sim));
      }
      personalized[static_cast<size_t>(c)] =
          AggregateRobust(cfg.resilience.aggregator,
                          cfg.resilience.trim_ratio, sources, weights);
    }

    if (round % cfg.eval_every == 0 || round == cfg.rounds) {
      for (int32_t c = 0; c < n; ++c) {
        clients[static_cast<size_t>(c)]->SetGlobalWeights(
            personalized[static_cast<size_t>(c)]);
      }
      result.history.push_back(MakeRoundRecord(
          "FED-PUB", round, ps, outcomes, WeightedTestAccuracy(clients)));
    }
  }

  pool.ParallelFor(static_cast<size_t>(n), [&](size_t c) {
    FedClient& client = *clients[c];
    client.SetGlobalWeights(personalized[c]);
    if (cfg.post_local_epochs > 0) client.TrainEpochs(cfg.post_local_epochs);
  });
  result.comm = ps.Report();
  result.bytes_up = result.comm.stats.bytes_up;
  result.bytes_down = result.comm.stats.bytes_down;
  result.global_weights = personalized[0];
  for (auto& c : clients) result.client_test_acc.push_back(c->EvalTest());
  result.final_test_acc = WeightedTestAccuracy(clients);
  return result;
}

}  // namespace adafgl
