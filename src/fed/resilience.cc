#include "fed/resilience.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "fed/federation.h"
#include "tensor/matrix_ops.h"

namespace adafgl {

namespace {

/// SplitMix64 finalizer (same construction as comm::LinkModel's event
/// coins, independent salt space).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double EnvDoubleOr(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || !std::isfinite(parsed)) return fallback;
  return parsed;
}

/// Mean of the `vals[k, n-k)` slice of an already-sorted buffer.
float TrimmedMeanOf(std::vector<float>* vals, double trim_ratio) {
  const auto n = static_cast<int64_t>(vals->size());
  if (n == 0) return 0.0f;
  std::sort(vals->begin(), vals->end());
  auto k = static_cast<int64_t>(
      std::floor(trim_ratio * static_cast<double>(n)));
  if (2 * k >= n) k = (n - 1) / 2;  // Always keep at least one value.
  double sum = 0.0;
  for (int64_t i = k; i < n - k; ++i) sum += (*vals)[static_cast<size_t>(i)];
  return static_cast<float>(sum / static_cast<double>(n - 2 * k));
}

float MedianOf(std::vector<float>* vals) {
  const auto n = static_cast<int64_t>(vals->size());
  if (n == 0) return 0.0f;
  std::sort(vals->begin(), vals->end());
  const auto mid = static_cast<size_t>(n / 2);
  if (n % 2 == 1) return (*vals)[mid];
  return 0.5f * ((*vals)[mid - 1] + (*vals)[mid]);
}

}  // namespace

Result<Aggregator> ParseAggregator(const std::string& name) {
  if (name == "mean") return Aggregator::kMean;
  if (name == "trimmed_mean") return Aggregator::kTrimmedMean;
  if (name == "coordinate_median") return Aggregator::kCoordinateMedian;
  return Status::InvalidArgument(
      "unknown aggregator '" + name +
      "' (expected mean | trimmed_mean | coordinate_median)");
}

const char* AggregatorName(Aggregator aggregator) {
  switch (aggregator) {
    case Aggregator::kMean: return "mean";
    case Aggregator::kTrimmedMean: return "trimmed_mean";
    case Aggregator::kCoordinateMedian: return "coordinate_median";
  }
  return "mean";
}

Status ResilienceOptions::Validate() const {
  if (!(trim_ratio >= 0.0 && trim_ratio < 0.5))
    return Status::InvalidArgument(
        "ResilienceOptions.trim_ratio must be in [0, 0.5)");
  if (!(min_participation >= 0.0 && min_participation <= 1.0))
    return Status::InvalidArgument(
        "ResilienceOptions.min_participation must be in [0, 1]");
  if (over_select < 0.0)
    return Status::InvalidArgument(
        "ResilienceOptions.over_select must be >= 0");
  if (max_update_norm < 0.0)
    return Status::InvalidArgument(
        "ResilienceOptions.max_update_norm must be >= 0");
  if (!(nan_upload_prob >= 0.0 && nan_upload_prob <= 1.0))
    return Status::InvalidArgument(
        "ResilienceOptions.nan_upload_prob must be in [0, 1]");
  return Status::Ok();
}

ResilienceOptions ResilienceFromEnv(ResilienceOptions base) {
  const char* agg = std::getenv("ADAFGL_AGGREGATOR");
  if (agg != nullptr && agg[0] != '\0') {
    Result<Aggregator> parsed = ParseAggregator(agg);
    if (!parsed.ok()) {
      std::fprintf(stderr, "ADAFGL_AGGREGATOR: %s\n",
                   parsed.status().ToString().c_str());
      std::abort();
    }
    base.aggregator = *parsed;
  }
  base.trim_ratio = EnvDoubleOr("ADAFGL_TRIM_RATIO", base.trim_ratio);
  base.min_participation =
      EnvDoubleOr("ADAFGL_MIN_PARTICIPATION", base.min_participation);
  base.over_select = EnvDoubleOr("ADAFGL_OVER_SELECT", base.over_select);
  base.max_update_norm =
      EnvDoubleOr("ADAFGL_MAX_UPDATE_NORM", base.max_update_norm);
  ADAFGL_CHECK(base.Validate().ok());
  return base;
}

std::vector<Matrix> AggregateRobust(
    Aggregator aggregator, double trim_ratio,
    const std::vector<std::vector<Matrix>>& client_weights,
    const std::vector<double>& weights) {
  if (aggregator == Aggregator::kMean) {
    // Delegation, not reimplementation: the default path must stay
    // bit-identical to historical FedAvg aggregation.
    return AverageWeights(client_weights, weights);
  }
  ADAFGL_CHECK(!client_weights.empty());
  ADAFGL_CHECK(client_weights.size() == weights.size());
  std::vector<Matrix> out;
  out.reserve(client_weights[0].size());
  std::vector<float> vals;
  vals.reserve(client_weights.size());
  for (size_t p = 0; p < client_weights[0].size(); ++p) {
    Matrix acc(client_weights[0][p].rows(), client_weights[0][p].cols());
    const int64_t size = acc.size();
    for (size_t c = 0; c < client_weights.size(); ++c) {
      ADAFGL_CHECK(client_weights[c][p].SameShape(acc));
    }
    float* dst = acc.data();
    for (int64_t i = 0; i < size; ++i) {
      vals.clear();
      for (size_t c = 0; c < client_weights.size(); ++c) {
        const float v = client_weights[c][p].data()[i];
        if (std::isfinite(v)) vals.push_back(v);
      }
      dst[i] = aggregator == Aggregator::kTrimmedMean
                   ? TrimmedMeanOf(&vals, trim_ratio)
                   : MedianOf(&vals);
    }
    out.push_back(std::move(acc));
  }
  return out;
}

bool AllFinite(const std::vector<Matrix>& weights) {
  for (const Matrix& m : weights) {
    const float* d = m.data();
    const int64_t n = m.size();
    for (int64_t i = 0; i < n; ++i) {
      if (!std::isfinite(d[i])) return false;
    }
  }
  return true;
}

bool ClipUpdateNorm(const std::vector<Matrix>& reference, double max_norm,
                    std::vector<Matrix>* upload) {
  if (max_norm <= 0.0) return false;
  ADAFGL_CHECK(upload != nullptr && upload->size() == reference.size());
  double sq = 0.0;
  for (size_t p = 0; p < upload->size(); ++p) {
    ADAFGL_CHECK((*upload)[p].SameShape(reference[p]));
    const float* u = (*upload)[p].data();
    const float* r = reference[p].data();
    const int64_t n = (*upload)[p].size();
    for (int64_t i = 0; i < n; ++i) {
      const double d = static_cast<double>(u[i]) - static_cast<double>(r[i]);
      sq += d * d;
    }
  }
  const double norm = std::sqrt(sq);
  if (!(norm > max_norm)) return false;  // Also covers NaN norms (rejected
                                         // separately by AllFinite).
  const double scale = max_norm / norm;
  for (size_t p = 0; p < upload->size(); ++p) {
    float* u = (*upload)[p].data();
    const float* r = reference[p].data();
    const int64_t n = (*upload)[p].size();
    for (int64_t i = 0; i < n; ++i) {
      u[i] = static_cast<float>(
          static_cast<double>(r[i]) +
          scale * (static_cast<double>(u[i]) - static_cast<double>(r[i])));
    }
  }
  return true;
}

bool QuorumMet(const ResilienceOptions& options, int participants,
               int sampled) {
  if (participants <= 0) return false;
  return static_cast<double>(participants) >=
         options.min_participation * static_cast<double>(sampled);
}

int32_t OverSelectedCount(const ResilienceOptions& options, int32_t base,
                          int32_t n) {
  if (options.over_select <= 0.0) return std::min(base, n);
  const auto selected = static_cast<int32_t>(std::ceil(
      static_cast<double>(base) * (1.0 + options.over_select)));
  return std::min(std::max(selected, base), n);
}

std::vector<int32_t> SampleParticipants(Rng& rng, int32_t n, int32_t take) {
  ADAFGL_CHECK(n > 0 && take > 0 && take <= n);
  std::vector<int32_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (int32_t i = n - 1; i > 0; --i) {
    std::swap(order[static_cast<size_t>(i)],
              order[static_cast<size_t>(rng.UniformInt(i + 1))]);
  }
  order.resize(static_cast<size_t>(take));
  return order;
}

bool ChaosSchedule::PoisonUpload(int round, int32_t client) const {
  if (nan_upload_prob_ <= 0.0) return false;
  uint64_t event = seed_ ^ 0x9a11ab1eULL;
  event = Mix64(event ^ static_cast<uint64_t>(round));
  event = Mix64(event ^ (static_cast<uint64_t>(client) << 16));
  const double u =
      static_cast<double>(Mix64(event) >> 11) * 0x1.0p-53;
  return u < nan_upload_prob_;
}

}  // namespace adafgl
