#ifndef ADAFGL_FED_GCFL_H_
#define ADAFGL_FED_GCFL_H_

#include "fed/federation.h"

namespace adafgl {

/// Tuning knobs of the GCFL+ clustering criterion.
struct GcflOptions {
  /// Split a cluster when its mean update norm drops below eps1 ...
  float eps1 = 0.05f;
  /// ... while its max update norm still exceeds eps2 (clients disagree).
  float eps2 = 0.1f;
  /// Window of recent per-client updates whose mean forms the gradient
  /// signature (the "+" sequence variant; stands in for DTW over series).
  int window = 5;
};

/// \brief GCFL+ (Xie et al., 2021), mechanism-level reimplementation.
///
/// Server-side *gradient clustering*: clients are dynamically bipartitioned
/// by the cosine similarity of their recent weight-update signatures when
/// the GCFL criterion fires (small mean update, large max update), and
/// FedAvg aggregation is performed per cluster.
FedRunResult RunGcflPlus(const FederatedDataset& data, const FedConfig& config,
                         const GcflOptions& options = {});

}  // namespace adafgl

#endif  // ADAFGL_FED_GCFL_H_
