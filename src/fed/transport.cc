#include "fed/transport.h"

#include <algorithm>
#include <limits>

#include "obs/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace adafgl {

std::vector<RoundClientResult> RunTrainingRound(
    comm::ParameterServer& ps, par::ThreadPool& pool,
    std::vector<std::unique_ptr<FedClient>>& clients,
    const std::vector<int32_t>& order, int round,
    const std::function<const std::vector<Matrix>&(int32_t)>& weights_for,
    const TrainRoundSpec& spec) {
  std::vector<RoundClientResult> results(order.size());
  obs::Span round_span("fed.round");
  ps.BeginRound(round, order);
  const bool checkpointing = ps.options().link.crash_prob > 0.0;
  const ResilienceOptions* res = spec.resilience;
  const ChaosSchedule chaos(spec.chaos_seed,
                            res != nullptr ? res->nan_upload_prob : 0.0);
  pool.ParallelFor(order.size(), [&](size_t i) {
    const int32_t c = order[i];
    RoundClientResult& out = results[i];
    out.client = c;
    FedClient& client = *clients[static_cast<size_t>(c)];
    if (ps.ClientCrashed(c)) {
      // The crash wiped the client's in-memory state; it rejoins from its
      // last checkpoint (or cold) and sits this round out.
      client.CrashAndRestore();
      out.crashed = true;
      return;
    }
    if (!ps.ClientActive(c)) return;  // Dropped out this round.
    obs::Span client_span("fed.client_round");

    std::optional<std::vector<Matrix>> broadcast =
        ps.Downlink(c, comm::MessageType::kWeights, weights_for(c));
    if (!broadcast.has_value()) return;
    client.SetGlobalWeights(*broadcast);

    out.loss = client.TrainEpochs(spec.epochs);

    std::vector<Matrix> to_send = client.Weights();
    if (chaos.nan_upload_prob() > 0.0 && chaos.PoisonUpload(round, c)) {
      // Chaos injection: this client's upload is garbage end to end, the
      // worst case server-side validation must absorb.
      for (Matrix& m : to_send) {
        m.Fill(std::numeric_limits<float>::quiet_NaN());
      }
    }
    std::optional<std::vector<Matrix>> upload =
        ps.Uplink(c, comm::MessageType::kWeights, std::move(to_send));
    if (!upload.has_value()) return;  // Upload lost: can't aggregate.
    out.upload = std::move(*upload);

    if (spec.upload_delta) {
      std::optional<std::vector<Matrix>> delta =
          ps.Uplink(c, comm::MessageType::kDelta, client.last_delta());
      if (!delta.has_value()) return;
      out.delta_upload = std::move(*delta);
    }

    if (res != nullptr) {
      if (res->reject_nonfinite &&
          (!AllFinite(out.upload) ||
           (spec.upload_delta && !AllFinite(out.delta_upload)))) {
        out.rejected = true;
        if (obs::MetricsEnabled()) {
          static obs::Counter* const rejected =
              obs::MetricsRegistry::Global().GetCounter(
                  "fed.faults.rejected_update");
          rejected->Inc();
        }
        return;  // A rejected upload never enters the aggregation.
      }
      if (res->max_update_norm > 0.0) {
        out.clipped =
            ClipUpdateNorm(weights_for(c), res->max_update_norm,
                           &out.upload);
      }
    }
    out.participated = true;
    // Persist the rejoin point while crashes are possible; the serialized
    // state travels through the same wire format as checkpoint files.
    if (checkpointing) client.SaveCheckpoint();
    if (spec.post_upload) spec.post_upload(c, client);
  });
  ps.EndRound();
  return results;
}

double MeanParticipantLoss(const std::vector<RoundClientResult>& results) {
  double sum = 0.0;
  int64_t n = 0;
  for (const RoundClientResult& r : results) {
    if (!r.participated) continue;
    sum += r.loss;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

ResilienceStats TallyRoundResilience(
    const std::vector<RoundClientResult>& outcomes) {
  ResilienceStats stats;
  for (const RoundClientResult& r : outcomes) {
    if (r.rejected) ++stats.rejected_updates;
    if (r.clipped) ++stats.clipped_updates;
  }
  return stats;
}

void EmitRoundSkipped(const char* algorithm, int round, int participants,
                      int sampled) {
  if (obs::MetricsEnabled()) {
    static obs::Counter* const skipped =
        obs::MetricsRegistry::Global().GetCounter("fed.rounds_skipped");
    skipped->Inc();
  }
  if (obs::EventsEnabled()) {
    obs::Event("fed.round_skipped")
        .Str("algorithm", algorithm)
        .I64("round", round)
        .I64("participants", participants)
        .I64("sampled", sampled)
        .Emit();
  }
  obs::Logf(obs::LogLevel::kWarn,
            "%s round %d: skipped below quorum (%d/%d participants), "
            "reusing previous global model",
            algorithm, round, participants, sampled);
}

RoundRecord MakeRoundRecord(const char* algorithm, int round,
                            const comm::ParameterServer& ps,
                            const std::vector<RoundClientResult>& outcomes,
                            double test_acc) {
  RoundRecord rec;
  rec.round = round;
  rec.test_acc = test_acc;
  rec.train_loss = MeanParticipantLoss(outcomes);
  for (const RoundClientResult& r : outcomes) {
    if (r.participated) ++rec.participants;
  }
  rec.quorum = outcomes.empty()
                   ? 0.0
                   : static_cast<double>(rec.participants) /
                         static_cast<double>(outcomes.size());
  const comm::CommStats snap = ps.stats();
  rec.bytes_up = snap.bytes_up;
  rec.bytes_down = snap.bytes_down;
  rec.sim_seconds = snap.sim_seconds;

  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    static obs::Counter* const rounds = reg.GetCounter("fed.rounds");
    static obs::Gauge* const quorum = reg.GetGauge("fed.round.quorum");
    rounds->Inc();
    quorum->Set(rec.quorum);
  }
  // An all-lost round gets no "fed.round" event or progress line — the
  // round loop announces it through EmitRoundSkipped instead; the record
  // itself still enters the history so trajectories keep full length.
  if (rec.participants == 0) return rec;
  if (obs::EventsEnabled()) {
    obs::Event("fed.round")
        .Str("algorithm", algorithm)
        .I64("round", rec.round)
        .F64("train_loss", rec.train_loss)
        .F64("test_acc", rec.test_acc)
        .I64("participants", rec.participants)
        .F64("quorum", rec.quorum)
        .I64("bytes_up", rec.bytes_up)
        .I64("bytes_down", rec.bytes_down)
        .F64("sim_seconds", rec.sim_seconds)
        .Emit();
  }
  obs::Logf(obs::LogLevel::kInfo,
            "%s round %d: loss=%.4f acc=%.4f participants=%d up=%lld "
            "down=%lld sim=%.3fs",
            algorithm, rec.round, rec.train_loss, rec.test_acc,
            rec.participants, static_cast<long long>(rec.bytes_up),
            static_cast<long long>(rec.bytes_down), rec.sim_seconds);
  return rec;
}

}  // namespace adafgl
