#include "fed/transport.h"

#include <algorithm>

#include "obs/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace adafgl {

std::vector<RoundClientResult> RunTrainingRound(
    comm::ParameterServer& ps, comm::ThreadPool& pool,
    std::vector<std::unique_ptr<FedClient>>& clients,
    const std::vector<int32_t>& order, int round,
    const std::function<const std::vector<Matrix>&(int32_t)>& weights_for,
    const TrainRoundSpec& spec) {
  std::vector<RoundClientResult> results(order.size());
  obs::Span round_span("fed.round");
  ps.BeginRound(round, order);
  pool.ParallelFor(order.size(), [&](size_t i) {
    const int32_t c = order[i];
    RoundClientResult& out = results[i];
    out.client = c;
    if (!ps.ClientActive(c)) return;  // Dropped out this round.
    obs::Span client_span("fed.client_round");
    FedClient& client = *clients[static_cast<size_t>(c)];

    std::optional<std::vector<Matrix>> broadcast =
        ps.Downlink(c, comm::MessageType::kWeights, weights_for(c));
    if (!broadcast.has_value()) return;
    client.SetGlobalWeights(*broadcast);

    out.loss = client.TrainEpochs(spec.epochs);

    std::optional<std::vector<Matrix>> upload =
        ps.Uplink(c, comm::MessageType::kWeights, client.Weights());
    if (!upload.has_value()) return;  // Upload lost: can't aggregate.
    out.upload = std::move(*upload);

    if (spec.upload_delta) {
      std::optional<std::vector<Matrix>> delta =
          ps.Uplink(c, comm::MessageType::kDelta, client.last_delta());
      if (!delta.has_value()) return;
      out.delta_upload = std::move(*delta);
    }
    out.participated = true;
    if (spec.post_upload) spec.post_upload(c, client);
  });
  ps.EndRound();
  return results;
}

double MeanParticipantLoss(const std::vector<RoundClientResult>& results) {
  double sum = 0.0;
  int64_t n = 0;
  for (const RoundClientResult& r : results) {
    if (!r.participated) continue;
    sum += r.loss;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

RoundRecord MakeRoundRecord(const char* algorithm, int round,
                            const comm::ParameterServer& ps,
                            const std::vector<RoundClientResult>& outcomes,
                            double test_acc) {
  RoundRecord rec;
  rec.round = round;
  rec.test_acc = test_acc;
  rec.train_loss = MeanParticipantLoss(outcomes);
  for (const RoundClientResult& r : outcomes) {
    if (r.participated) ++rec.participants;
  }
  const comm::CommStats snap = ps.stats();
  rec.bytes_up = snap.bytes_up;
  rec.bytes_down = snap.bytes_down;
  rec.sim_seconds = snap.sim_seconds;

  if (obs::MetricsEnabled()) {
    static obs::Counter* const rounds =
        obs::MetricsRegistry::Global().GetCounter("fed.rounds");
    rounds->Inc();
  }
  if (obs::EventsEnabled()) {
    obs::Event("fed.round")
        .Str("algorithm", algorithm)
        .I64("round", rec.round)
        .F64("train_loss", rec.train_loss)
        .F64("test_acc", rec.test_acc)
        .I64("participants", rec.participants)
        .I64("bytes_up", rec.bytes_up)
        .I64("bytes_down", rec.bytes_down)
        .F64("sim_seconds", rec.sim_seconds)
        .Emit();
  }
  obs::Logf(obs::LogLevel::kInfo,
            "%s round %d: loss=%.4f acc=%.4f participants=%d up=%lld "
            "down=%lld sim=%.3fs",
            algorithm, rec.round, rec.train_loss, rec.test_acc,
            rec.participants, static_cast<long long>(rec.bytes_up),
            static_cast<long long>(rec.bytes_down), rec.sim_seconds);
  return rec;
}

}  // namespace adafgl
