#include "fed/transport.h"

#include <algorithm>

namespace adafgl {

std::vector<RoundClientResult> RunTrainingRound(
    comm::ParameterServer& ps, comm::ThreadPool& pool,
    std::vector<std::unique_ptr<FedClient>>& clients,
    const std::vector<int32_t>& order, int round,
    const std::function<const std::vector<Matrix>&(int32_t)>& weights_for,
    const TrainRoundSpec& spec) {
  std::vector<RoundClientResult> results(order.size());
  ps.BeginRound(round, order);
  pool.ParallelFor(order.size(), [&](size_t i) {
    const int32_t c = order[i];
    RoundClientResult& out = results[i];
    out.client = c;
    if (!ps.ClientActive(c)) return;  // Dropped out this round.
    FedClient& client = *clients[static_cast<size_t>(c)];

    std::optional<std::vector<Matrix>> broadcast =
        ps.Downlink(c, comm::MessageType::kWeights, weights_for(c));
    if (!broadcast.has_value()) return;
    client.SetGlobalWeights(*broadcast);

    out.loss = client.TrainEpochs(spec.epochs);

    std::optional<std::vector<Matrix>> upload =
        ps.Uplink(c, comm::MessageType::kWeights, client.Weights());
    if (!upload.has_value()) return;  // Upload lost: can't aggregate.
    out.upload = std::move(*upload);

    if (spec.upload_delta) {
      std::optional<std::vector<Matrix>> delta =
          ps.Uplink(c, comm::MessageType::kDelta, client.last_delta());
      if (!delta.has_value()) return;
      out.delta_upload = std::move(*delta);
    }
    out.participated = true;
    if (spec.post_upload) spec.post_upload(c, client);
  });
  ps.EndRound();
  return results;
}

double MeanParticipantLoss(const std::vector<RoundClientResult>& results) {
  double sum = 0.0;
  int64_t n = 0;
  for (const RoundClientResult& r : results) {
    if (!r.participated) continue;
    sum += r.loss;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace adafgl
