#ifndef ADAFGL_FED_FEDGL_H_
#define ADAFGL_FED_FEDGL_H_

#include "fed/federation.h"

namespace adafgl {

/// \brief FedGL (Chen et al., 2021), mechanism-level reimplementation.
///
/// Keeps FedGL's distinguishing idea — *global self-supervision*: clients
/// upload local soft predictions, the server fuses them into global
/// supervised information, and clients train against server-provided pseudo
/// labels on confident unlabeled nodes. Because subgraphs here are disjoint
/// (no shared node ids), the fused information is per-class prediction
/// prototypes rather than the original overlapping-node graph completion;
/// DESIGN.md §4 documents the substitution. Communication counts the extra
/// prediction uploads.
FedRunResult RunFedGL(const FederatedDataset& data, const FedConfig& config);

}  // namespace adafgl

#endif  // ADAFGL_FED_FEDGL_H_
