#include "fed/gcfl.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "fed/transport.h"
#include "tensor/matrix_ops.h"
#include "tensor/status.h"

namespace adafgl {

namespace {

/// Flattens a weight-delta list into one vector for similarity computation.
std::vector<float> Flatten(const std::vector<Matrix>& mats) {
  std::vector<float> out;
  int64_t total = 0;
  for (const Matrix& m : mats) total += m.size();
  out.reserve(static_cast<size_t>(total));
  for (const Matrix& m : mats) {
    out.insert(out.end(), m.data(), m.data() + m.size());
  }
  return out;
}

double Norm(const std::vector<float>& v) {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  ADAFGL_CHECK(a.size() == b.size());
  double dot = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
  }
  const double na = Norm(a), nb = Norm(b);
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return dot / (na * nb);
}

/// Mean of the recent update window (the per-client gradient signature).
std::vector<float> Signature(const std::deque<std::vector<float>>& window) {
  ADAFGL_CHECK(!window.empty());
  std::vector<float> sig(window.front().size(), 0.0f);
  for (const auto& u : window) {
    for (size_t i = 0; i < sig.size(); ++i) sig[i] += u[i];
  }
  const float inv = 1.0f / static_cast<float>(window.size());
  for (float& x : sig) x *= inv;
  return sig;
}

}  // namespace

FedRunResult RunGcflPlus(const FederatedDataset& data, const FedConfig& config,
                         const GcflOptions& options) {
  std::vector<std::unique_ptr<FedClient>> clients =
      MakeClients(data, config);
  const auto n = static_cast<int32_t>(clients.size());
  ADAFGL_CHECK(n > 0);

  FedRunResult result;
  comm::ParameterServer ps(config.comm, n, config.seed ^ 0xc0117abULL);
  par::ThreadPool pool(config.comm.num_threads);
  // Cluster id per client; one cluster initially.
  std::vector<int32_t> cluster(static_cast<size_t>(n), 0);
  int32_t num_clusters = 1;
  // Per-cluster aggregated weights.
  std::vector<std::vector<Matrix>> cluster_weights = {clients[0]->Weights()};
  std::vector<std::deque<std::vector<float>>> windows(
      static_cast<size_t>(n));
  std::vector<int32_t> everyone(static_cast<size_t>(n));
  std::iota(everyone.begin(), everyone.end(), 0);

  for (int round = 1; round <= config.rounds; ++round) {
    // Broadcast per-cluster weights, train everyone, collect each client's
    // weights and weight-delta (the gradient signature) as two uploads.
    TrainRoundSpec spec;
    spec.epochs = config.local_epochs;
    spec.upload_delta = true;
    spec.resilience = &config.resilience;
    spec.chaos_seed = config.seed ^ 0xc4a05ULL;
    std::vector<RoundClientResult> outcomes = RunTrainingRound(
        ps, pool, clients, everyone, round,
        [&](int32_t c) -> const std::vector<Matrix>& {
          return cluster_weights[static_cast<size_t>(
              cluster[static_cast<size_t>(c)])];
        },
        spec);
    result.resilience.Add(TallyRoundResilience(outcomes));

    std::vector<std::vector<Matrix>> uploads(static_cast<size_t>(n));
    std::vector<std::vector<float>> updates(static_cast<size_t>(n));
    std::vector<bool> participated(static_cast<size_t>(n), false);
    int num_participants = 0;
    for (RoundClientResult& r : outcomes) {
      if (!r.participated) continue;
      const auto c = static_cast<size_t>(r.client);
      participated[c] = true;
      ++num_participants;
      uploads[c] = std::move(r.upload);
      updates[c] = Flatten(r.delta_upload);
      auto& w = windows[c];
      w.push_back(updates[c]);
      while (static_cast<int>(w.size()) > options.window) w.pop_front();
    }

    // Round-level quorum: below it, every cluster keeps its previous
    // weights and the split criterion is not evaluated this round.
    const bool quorum = QuorumMet(config.resilience, num_participants, n);
    if (!quorum) {
      ++result.resilience.rounds_skipped;
      EmitRoundSkipped("GCFL+", round, num_participants, n);
    }

    // Per-cluster aggregation over this round's survivors; a cluster whose
    // members all dropped keeps its previous weights.
    if (quorum) {
      std::vector<std::vector<Matrix>> prev_weights =
          std::move(cluster_weights);
      cluster_weights.assign(static_cast<size_t>(num_clusters), {});
      for (int32_t k = 0; k < num_clusters; ++k) {
        std::vector<std::vector<Matrix>> members;
        std::vector<double> sizes;
        for (int32_t c = 0; c < n; ++c) {
          if (cluster[static_cast<size_t>(c)] != k) continue;
          if (!participated[static_cast<size_t>(c)]) continue;
          members.push_back(uploads[static_cast<size_t>(c)]);
          sizes.push_back(static_cast<double>(std::max<int64_t>(
              1, clients[static_cast<size_t>(c)]->num_train())));
        }
        cluster_weights[static_cast<size_t>(k)] =
            members.empty()
                ? prev_weights[static_cast<size_t>(k)]
                : AggregateRobust(config.resilience.aggregator,
                                  config.resilience.trim_ratio, members,
                                  sizes);
      }
    }

    // GCFL split criterion per cluster, over members whose signature
    // window has data (a client lost to faults before its first round
    // contributes nothing).
    for (int32_t k = 0; quorum && k < num_clusters; ++k) {
      std::vector<int32_t> members;
      for (int32_t c = 0; c < n; ++c) {
        if (cluster[static_cast<size_t>(c)] != k) continue;
        if (!participated[static_cast<size_t>(c)]) continue;
        if (windows[static_cast<size_t>(c)].empty()) continue;
        members.push_back(c);
      }
      if (members.size() < 3) continue;
      double mean_norm = 0.0, max_norm = 0.0;
      for (int32_t c : members) {
        const double nn = Norm(updates[static_cast<size_t>(c)]);
        mean_norm += nn;
        max_norm = std::max(max_norm, nn);
      }
      mean_norm /= static_cast<double>(members.size());
      if (!(mean_norm < options.eps1 && max_norm > options.eps2)) continue;

      // Bipartition by signature cosine: seeds = most dissimilar pair.
      std::vector<std::vector<float>> sigs;
      sigs.reserve(members.size());
      for (int32_t c : members) {
        sigs.push_back(Signature(windows[static_cast<size_t>(c)]));
      }
      size_t seed_a = 0, seed_b = 1;
      double worst = 2.0;
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          const double s = Cosine(sigs[i], sigs[j]);
          if (s < worst) {
            worst = s;
            seed_a = i;
            seed_b = j;
          }
        }
      }
      if (worst > 0.5) continue;  // Cluster is still coherent.
      const int32_t new_cluster = num_clusters++;
      cluster_weights.push_back(cluster_weights[static_cast<size_t>(k)]);
      for (size_t i = 0; i < members.size(); ++i) {
        const double sa = Cosine(sigs[i], sigs[seed_a]);
        const double sb = Cosine(sigs[i], sigs[seed_b]);
        if (sb > sa) {
          cluster[static_cast<size_t>(members[i])] = new_cluster;
        }
      }
    }

    if (round % config.eval_every == 0 || round == config.rounds) {
      for (int32_t c = 0; c < n; ++c) {
        clients[static_cast<size_t>(c)]->SetGlobalWeights(
            cluster_weights[static_cast<size_t>(
                cluster[static_cast<size_t>(c)])]);
      }
      result.history.push_back(MakeRoundRecord(
          "GCFL+", round, ps, outcomes, WeightedTestAccuracy(clients)));
    }
  }

  pool.ParallelFor(static_cast<size_t>(n), [&](size_t c) {
    FedClient& client = *clients[c];
    client.SetGlobalWeights(
        cluster_weights[static_cast<size_t>(cluster[c])]);
    if (config.post_local_epochs > 0) {
      client.TrainEpochs(config.post_local_epochs);
    }
  });
  result.comm = ps.Report();
  result.bytes_up = result.comm.stats.bytes_up;
  result.bytes_down = result.comm.stats.bytes_down;
  result.global_weights = cluster_weights[0];
  for (auto& c : clients) result.client_test_acc.push_back(c->EvalTest());
  result.final_test_acc = WeightedTestAccuracy(clients);
  return result;
}

}  // namespace adafgl
