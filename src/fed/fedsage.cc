#include "fed/fedsage.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "comm/channel.h"
#include "par/thread_pool.h"
#include "nn/layers.h"
#include "obs/trace.h"
#include "tensor/matrix_ops.h"
#include "tensor/status.h"

namespace adafgl {

Graph MendGraphWithNeighGen(const Graph& g, const FedSageOptions& options,
                            const Matrix& feature_mean, Rng& rng,
                            std::vector<Matrix>* neighgen_params) {
  if (neighgen_params != nullptr) neighgen_params->clear();
  const int32_t n = g.num_nodes();
  const int64_t f = g.feature_dim();
  std::vector<std::pair<int32_t, int32_t>> edges = UndirectedEdges(g.adj);
  if (edges.size() < 4 || n < 8) return g;

  // --- Impair: hide a fraction of local edges. ---
  for (int64_t i = static_cast<int64_t>(edges.size()) - 1; i > 0; --i) {
    std::swap(edges[static_cast<size_t>(i)],
              edges[static_cast<size_t>(rng.UniformInt(i + 1))]);
  }
  const auto n_hidden = static_cast<size_t>(
      static_cast<double>(edges.size()) * options.hide_ratio);
  std::vector<std::pair<int32_t, int32_t>> hidden(
      edges.begin(), edges.begin() + static_cast<int64_t>(n_hidden));
  std::vector<std::pair<int32_t, int32_t>> kept(
      edges.begin() + static_cast<int64_t>(n_hidden), edges.end());

  // --- Regression targets. ---
  Matrix count_target(n, 1);
  Matrix feat_sum(n, f);
  for (const auto& [u, v] : hidden) {
    count_target(u, 0) += 1.0f;
    count_target(v, 0) += 1.0f;
    for (int64_t j = 0; j < f; ++j) {
      feat_sum(u, j) += g.features(v, j);
      feat_sum(v, j) += g.features(u, j);
    }
  }
  std::vector<int32_t> has_hidden;
  for (int32_t u = 0; u < n; ++u) {
    if (count_target(u, 0) > 0.0f) {
      has_hidden.push_back(u);
      const float inv = 1.0f / count_target(u, 0);
      for (int64_t j = 0; j < f; ++j) feat_sum(u, j) *= inv;
    }
  }
  if (has_hidden.empty()) return g;
  const Matrix feat_target = GatherRows(feat_sum, has_hidden);
  const Matrix count_target_sub = [&] {
    Matrix m(static_cast<int64_t>(has_hidden.size()), 1);
    for (size_t i = 0; i < has_hidden.size(); ++i) {
      m(static_cast<int64_t>(i), 0) = count_target(has_hidden[i], 0);
    }
    return m;
  }();

  // --- NeighGen: GCN encoder on the impaired graph + two heads. ---
  Graph impaired;
  impaired.adj = CsrFromUndirectedEdges(n, kept);
  impaired.features = g.features;
  impaired.labels = g.labels;
  impaired.num_classes = g.num_classes;
  auto norm_adj = std::make_shared<CsrMatrix>(GcnNormalized(impaired.adj));
  Tensor x = MakeConst(g.features);

  Rng init_rng = rng.Fork(7);
  const int64_t hidden_dim = 64;
  Linear enc(f, hidden_dim, init_rng);
  Linear count_head(hidden_dim, 1, init_rng);
  Linear feat_head(hidden_dim, f, init_rng);
  std::vector<Tensor> params;
  for (const Tensor& p : enc.Params()) params.push_back(p);
  for (const Tensor& p : count_head.Params()) params.push_back(p);
  for (const Tensor& p : feat_head.Params()) params.push_back(p);
  Adam opt(params, options.neighgen_lr);

  for (int epoch = 0; epoch < options.neighgen_epochs; ++epoch) {
    opt.ZeroGrad();
    Tensor h = ops::Relu(enc.Forward(ops::SpMM(norm_adj, x)));
    Tensor counts = ops::Relu(count_head.Forward(h));
    Tensor feats = feat_head.Forward(ops::GatherRows(h, has_hidden));
    Tensor loss = ops::Add(
        ops::MseLoss(ops::GatherRows(counts, has_hidden), count_target_sub),
        ops::MseLoss(feats, feat_target));
    if (!feature_mean.empty()) {
      // Cross-client regulariser: generated features should stay near the
      // federation-wide feature moments the server shares.
      Matrix broadcast(feats->rows(), f);
      for (int64_t i = 0; i < broadcast.rows(); ++i) {
        std::copy(feature_mean.data(), feature_mean.data() + f,
                  broadcast.row(i));
      }
      loss = ops::Add(loss, ops::Scale(ops::MseLoss(feats, broadcast), 0.1f));
    }
    Backward(loss);
    opt.Step();
  }
  if (neighgen_params != nullptr) {
    neighgen_params->reserve(params.size());
    for (const Tensor& p : params) neighgen_params->push_back(p->value());
  }

  // --- Mend: generate neighbours on the full local graph. ---
  auto full_norm = std::make_shared<CsrMatrix>(GcnNormalized(g.adj));
  Tensor h = ops::Relu(enc.Forward(ops::SpMM(full_norm, x)));
  const Matrix counts = Relu(count_head.Forward(h)->value());
  const Matrix gen_feats = feat_head.Forward(h)->value();

  std::vector<std::pair<int32_t, int32_t>> new_edges = UndirectedEdges(g.adj);
  std::vector<std::vector<float>> extra_rows;
  std::vector<int32_t> extra_labels;
  int32_t next_id = n;
  for (int32_t u = 0; u < n; ++u) {
    const int k = std::min<int>(options.max_generated,
                                static_cast<int>(std::lround(counts(u, 0))));
    for (int i = 0; i < k; ++i) {
      std::vector<float> row(static_cast<size_t>(f));
      for (int64_t j = 0; j < f; ++j) {
        row[static_cast<size_t>(j)] =
            gen_feats(u, j) + 0.1f * static_cast<float>(rng.Normal());
      }
      extra_rows.push_back(std::move(row));
      extra_labels.push_back(0);  // Unlabeled; never enters a split.
      new_edges.emplace_back(u, next_id++);
    }
  }
  if (extra_rows.empty()) return g;

  Graph mended;
  mended.adj = CsrFromUndirectedEdges(next_id, new_edges);
  mended.features = Matrix(next_id, f);
  for (int32_t u = 0; u < n; ++u) {
    std::copy(g.features.row(u), g.features.row(u) + f,
              mended.features.row(u));
  }
  for (size_t i = 0; i < extra_rows.size(); ++i) {
    std::copy(extra_rows[i].begin(), extra_rows[i].end(),
              mended.features.row(n + static_cast<int64_t>(i)));
  }
  mended.labels = g.labels;
  mended.labels.insert(mended.labels.end(), extra_labels.begin(),
                       extra_labels.end());
  mended.num_classes = g.num_classes;
  mended.train_nodes = g.train_nodes;
  mended.val_nodes = g.val_nodes;
  mended.test_nodes = g.test_nodes;
  return mended;
}

FedRunResult RunFedSagePlus(const FederatedDataset& data,
                            const FedConfig& config,
                            const FedSageOptions& options) {
  // Server-shared feature moments (the cross-client signal NeighGen uses).
  int64_t f = 0;
  for (const Graph& c : data.clients) f = std::max(f, c.feature_dim());
  Matrix feature_mean(1, f);
  int64_t total_nodes = 0;
  for (const Graph& c : data.clients) {
    for (int32_t u = 0; u < c.num_nodes(); ++u) {
      for (int64_t j = 0; j < f; ++j) feature_mean(0, j) += c.features(u, j);
    }
    total_nodes += c.num_nodes();
  }
  for (int64_t j = 0; j < f; ++j) {
    feature_mean(0, j) /= static_cast<float>(std::max<int64_t>(1, total_nodes));
  }

  // Mend every client's graph (in parallel — NeighGen training is
  // client-local), then run plain FedAvg on the mended copies. The mend
  // phase's exchange is real traffic: the server downlinks the shared
  // feature moments, each client uplinks its trained NeighGen parameters.
  FederatedDataset mended = data;
  const auto n_clients = static_cast<int32_t>(mended.clients.size());
  comm::ParameterServer mend_ps(config.comm, std::max(1, n_clients),
                                config.seed ^ 0x5a9ec033ULL);
  par::ThreadPool pool(config.comm.num_threads);
  Rng rng(config.seed ^ 0x5a9eULL);
  std::vector<Rng> client_rngs;
  client_rngs.reserve(mended.clients.size());
  for (size_t c = 0; c < mended.clients.size(); ++c) {
    client_rngs.push_back(rng.Fork(c));
  }
  std::vector<int32_t> everyone(static_cast<size_t>(n_clients));
  std::iota(everyone.begin(), everyone.end(), 0);
  auto mend_span = std::make_unique<obs::Span>("fedsage.mend");
  mend_ps.BeginRound(0, everyone);
  pool.ParallelFor(mended.clients.size(), [&](size_t c) {
    const auto client = static_cast<int32_t>(c);
    if (!mend_ps.ClientActive(client)) return;  // Unmended, still trains.
    std::optional<std::vector<Matrix>> moments = mend_ps.Downlink(
        client, comm::MessageType::kEmbedding, {feature_mean});
    if (!moments.has_value()) return;
    std::vector<Matrix> neighgen_params;
    mended.clients[c] =
        MendGraphWithNeighGen(data.clients[c], options, (*moments)[0],
                              client_rngs[c], &neighgen_params);
    if (!neighgen_params.empty()) {
      mend_ps.Uplink(client, comm::MessageType::kWeights, neighgen_params);
    }
  });
  mend_ps.EndRound();
  mend_span.reset();

  FedRunResult result = RunFedAvg(mended, config);
  result.comm.stats.Add(mend_ps.stats());
  result.bytes_up = result.comm.stats.bytes_up;
  result.bytes_down = result.comm.stats.bytes_down;
  return result;
}

}  // namespace adafgl
