#include "obs/prof.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/log.h"

namespace adafgl::obs::prof {

namespace {

/// Registry of live thread stacks plus the sampler's state. The tick
/// tables are written only by the sampler thread while it runs and read
/// only after the join in StopSamplerAndWrite, so they need no lock of
/// their own.
struct ProfStore {
  std::mutex mu;  // Guards `stacks` / `next_tid`.
  std::vector<internal::ThreadStack*> stacks;
  int next_tid = 1;

  std::mutex control_mu;  // Serialises Start/Stop.
  std::thread sampler;
  std::atomic<bool> running{false};
  std::atomic<int> hz{97};

  std::unordered_map<std::string, int64_t> folded;
  std::atomic<int64_t> sampled_ticks{0};
  std::atomic<int64_t> idle_ticks{0};
};

ProfStore& Store() {
  static ProfStore* store = new ProfStore;  // Leaked: see obs.cc.
  return *store;
}

/// Process-lifetime intern table for dynamic span names.
struct InternTable {
  std::mutex mu;
  std::unordered_set<std::string> names;
};

InternTable& Interns() {
  static InternTable* table = new InternTable;  // Leaked: see obs.cc.
  return *table;
}

/// Takes one sample of every registered stack.
void SampleOnce(ProfStore& s) {
  std::string key;
  bool any = false;
  std::lock_guard<std::mutex> lock(s.mu);
  for (internal::ThreadStack* stack : s.stacks) {
    int d = stack->depth.load(std::memory_order_acquire);
    if (d <= 0) continue;
    d = std::min(d, kMaxStackDepth);
    key.clear();
    for (int i = 0; i < d; ++i) {
      const char* frame = stack->frames[i].load(std::memory_order_relaxed);
      if (frame == nullptr) continue;  // Torn sample; skip the slot.
      if (!key.empty()) key += ';';
      key += frame;
    }
    if (key.empty()) continue;
    ++s.folded[key];
    s.sampled_ticks.fetch_add(1, std::memory_order_relaxed);
    any = true;
  }
  if (!any) s.idle_ticks.fetch_add(1, std::memory_order_relaxed);
}

void SamplerLoop() {
  ProfStore& s = Store();
  while (s.running.load(std::memory_order_acquire)) {
    const int hz = std::max(1, s.hz.load(std::memory_order_relaxed));
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(1'000'000'000LL / hz));
    if (!s.running.load(std::memory_order_acquire)) break;
    SampleOnce(s);
  }
}

/// Splits a folded key into frames.
std::vector<std::string> SplitFrames(const std::string& key) {
  std::vector<std::string> frames;
  size_t start = 0;
  while (start <= key.size()) {
    const size_t sep = key.find(';', start);
    if (sep == std::string::npos) {
      frames.push_back(key.substr(start));
      break;
    }
    frames.push_back(key.substr(start, sep - start));
    start = sep + 1;
  }
  return frames;
}

}  // namespace

namespace internal {

ThreadStack::ThreadStack() {
  for (auto& f : frames) f.store(nullptr, std::memory_order_relaxed);
  ProfStore& s = Store();
  std::lock_guard<std::mutex> lock(s.mu);
  tid = s.next_tid++;
  s.stacks.push_back(this);
}

ThreadStack::~ThreadStack() {
  ProfStore& s = Store();
  std::lock_guard<std::mutex> lock(s.mu);
  s.stacks.erase(std::remove(s.stacks.begin(), s.stacks.end(), this),
                 s.stacks.end());
}

ThreadStack& LocalStack() {
  thread_local ThreadStack stack;
  return stack;
}

}  // namespace internal

const char* InternName(const std::string& name) {
  // One-entry per-thread cache: dynamic span names at a given call site
  // rarely change between consecutive spans (e.g. "run.FedGCN" across
  // seeds), so most interns are a string compare.
  thread_local std::string cached_name;
  thread_local const char* cached_ptr = nullptr;
  if (cached_ptr != nullptr && cached_name == name) return cached_ptr;
  InternTable& t = Interns();
  const char* interned;
  {
    std::lock_guard<std::mutex> lock(t.mu);
    interned = t.names.insert(name).first->c_str();
  }
  cached_name = name;
  cached_ptr = interned;
  return interned;
}

void SetProfileHz(int hz) {
  Store().hz.store(hz > 0 ? hz : 97, std::memory_order_relaxed);
}

int ProfileHz() { return Store().hz.load(std::memory_order_relaxed); }

void StartSampler() {
  ProfStore& s = Store();
  std::lock_guard<std::mutex> lock(s.control_mu);
  if (s.running.load(std::memory_order_relaxed)) return;
  s.running.store(true, std::memory_order_release);
  s.sampler = std::thread(SamplerLoop);
}

int64_t SampledTicks() {
  return Store().sampled_ticks.load(std::memory_order_relaxed);
}

int64_t IdleTicks() {
  return Store().idle_ticks.load(std::memory_order_relaxed);
}

std::map<std::string, int64_t> FoldedTicksForTest() {
  ProfStore& s = Store();
  std::lock_guard<std::mutex> lock(s.control_mu);
  return {s.folded.begin(), s.folded.end()};
}

std::string FoldedText() {
  ProfStore& s = Store();
  // Name-sorted for deterministic output.
  std::map<std::string, int64_t> sorted(s.folded.begin(), s.folded.end());
  std::string out;
  char line[512];
  for (const auto& [key, ticks] : sorted) {
    std::snprintf(line, sizeof(line), "%s %lld\n", key.c_str(),
                  static_cast<long long>(ticks));
    out += line;
  }
  return out;
}

std::string ReportText(int n) {
  ProfStore& s = Store();
  const int64_t total = s.sampled_ticks.load(std::memory_order_relaxed);
  if (total == 0) return "";
  // self = ticks where the frame is innermost; total = ticks where it is
  // anywhere on the stack (deduplicated per sample).
  std::unordered_map<std::string, int64_t> self_ticks, total_ticks;
  for (const auto& [key, ticks] : s.folded) {
    const std::vector<std::string> frames = SplitFrames(key);
    if (frames.empty()) continue;
    self_ticks[frames.back()] += ticks;
    std::unordered_set<std::string> seen;
    for (const std::string& f : frames) {
      if (seen.insert(f).second) total_ticks[f] += ticks;
    }
  }
  std::vector<std::pair<std::string, int64_t>> rows(self_ticks.begin(),
                                                    self_ticks.end());
  for (const auto& [frame, t] : total_ticks) {
    if (self_ticks.find(frame) == self_ticks.end()) rows.emplace_back(frame, 0);
  }
  std::sort(rows.begin(), rows.end(), [&](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "  %6s %6s  %s\n", "self%", "total%",
                "frame");
  out += line;
  const int limit = std::min<int>(n, static_cast<int>(rows.size()));
  for (int i = 0; i < limit; ++i) {
    const auto& [frame, self] = rows[i];
    std::snprintf(line, sizeof(line), "  %6.1f %6.1f  %s\n",
                  100.0 * static_cast<double>(self) /
                      static_cast<double>(total),
                  100.0 * static_cast<double>(total_ticks[frame]) /
                      static_cast<double>(total),
                  frame.c_str());
    out += line;
  }
  return out;
}

void StopSamplerAndWrite() {
  ProfStore& s = Store();
  std::lock_guard<std::mutex> lock(s.control_mu);
  if (s.running.load(std::memory_order_relaxed)) {
    s.running.store(false, std::memory_order_release);
    if (s.sampler.joinable()) s.sampler.join();
  }
  const int64_t total = s.sampled_ticks.load(std::memory_order_relaxed);
  const int64_t idle = s.idle_ticks.load(std::memory_order_relaxed);
  const std::string path = ProfilePath();
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      Logf(LogLevel::kError, "cannot write profile to %s", path.c_str());
    } else {
      const std::string folded = FoldedText();
      std::fwrite(folded.data(), 1, folded.size(), f);
      std::fclose(f);
    }
  }
  if (total + idle > 0) {
    std::fprintf(stderr,
                 "[adafgl] profile: %lld in-span samples, %lld idle @%d Hz"
                 "%s%s\n",
                 static_cast<long long>(total), static_cast<long long>(idle),
                 ProfileHz(), path.empty() ? "" : ", folded stacks -> ",
                 path.c_str());
    const std::string report = ReportText(15);
    if (!report.empty()) std::fprintf(stderr, "%s", report.c_str());
  }
}

void ResetProfilerForTest() {
  ProfStore& s = Store();
  std::lock_guard<std::mutex> lock(s.control_mu);
  s.folded.clear();
  s.sampled_ticks.store(0, std::memory_order_relaxed);
  s.idle_ticks.store(0, std::memory_order_relaxed);
}

}  // namespace adafgl::obs::prof
