#include "obs/log.h"

#include <cstdarg>
#include <cstdio>
#include <mutex>

#include "obs/json.h"

namespace adafgl::obs {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
    default:
      return "off";
  }
}

/// JSONL sink: one append-mode FILE*, lazily (re)opened to follow the
/// configured path. Events are rare (per round / per client), so a mutex
/// is fine here — only counters and spans have lock-free hot paths.
struct JsonlSink {
  std::mutex mu;
  std::FILE* file = nullptr;
  std::string open_path;

  void WriteLine(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    const std::string path = JsonlPath();
    if (path != open_path) {
      if (file != nullptr) std::fclose(file);
      file = path.empty() ? nullptr : std::fopen(path.c_str(), "a");
      open_path = file == nullptr ? std::string() : path;
    }
    if (file == nullptr) return;
    std::fwrite(line.data(), 1, line.size(), file);
    std::fputc('\n', file);
  }

  void Flush() {
    std::lock_guard<std::mutex> lock(mu);
    if (file != nullptr) std::fflush(file);
  }
};

JsonlSink& Sink() {
  static JsonlSink* sink = new JsonlSink;  // Leaked: see obs.cc.
  return *sink;
}

}  // namespace

namespace internal {

void FlushJsonlSink() { Sink().Flush(); }

}  // namespace internal

void Logf(LogLevel level, const char* fmt, ...) {
  if (!LogEnabled(level)) return;
  char msg[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[adafgl][%s] %s\n", LevelName(level), msg);
}

bool EventsEnabled() {
  return !JsonlPath().empty() || LogEnabled(LogLevel::kDebug);
}

Event::Event(std::string name) : name_(std::move(name)) {}

Event& Event::I64(const char* key, int64_t v) {
  fields_.push_back('"' + JsonEscape(key) + "\":" + std::to_string(v));
  return *this;
}

Event& Event::F64(const char* key, double v) {
  fields_.push_back('"' + JsonEscape(key) + "\":" + JsonDouble(v));
  return *this;
}

Event& Event::Str(const char* key, const std::string& v) {
  fields_.push_back('"' + JsonEscape(key) + "\":\"" + JsonEscape(v) + '"');
  return *this;
}

Event& Event::Bool(const char* key, bool v) {
  fields_.push_back('"' + JsonEscape(key) + (v ? "\":true" : "\":false"));
  return *this;
}

std::string Event::Render() const {
  std::string line = "{\"event\":\"" + JsonEscape(name_) +
                     "\",\"ts_ns\":" + std::to_string(NowNs());
  for (const std::string& f : fields_) {
    line += ',';
    line += f;
  }
  line += '}';
  return line;
}

void Event::Emit() {
  if (!EventsEnabled()) return;
  const std::string line = Render();
  if (!JsonlPath().empty()) Sink().WriteLine(line);
  if (LogEnabled(LogLevel::kDebug)) {
    std::fprintf(stderr, "[adafgl][debug] %s\n", line.c_str());
  }
}

}  // namespace adafgl::obs
