#include "obs/mem.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "obs/prof.h"
#include "obs/registry.h"

namespace adafgl::obs::mem {

namespace {

internal::Stat& TotalStat() {
  static internal::Stat* stat = new internal::Stat;  // Leaked: see obs.cc.
  return *stat;
}

/// Span-name (interned pointer) -> bucket. Buckets are leaked so handles
/// can release against them during static destruction.
struct SpanBuckets {
  std::mutex mu;
  std::unordered_map<const char*, internal::Stat*> by_frame;
};

SpanBuckets& Buckets() {
  static SpanBuckets* b = new SpanBuckets;  // Leaked: see obs.cc.
  return *b;
}

internal::Stat* BucketFor(const char* frame) {
  if (frame == nullptr) return nullptr;
  // Per-thread memo of the last bucket: consecutive allocations almost
  // always happen under the same innermost span.
  thread_local const char* cached_frame = nullptr;
  thread_local internal::Stat* cached_stat = nullptr;
  if (frame == cached_frame) return cached_stat;
  SpanBuckets& b = Buckets();
  internal::Stat* stat;
  {
    std::lock_guard<std::mutex> lock(b.mu);
    auto it = b.by_frame.find(frame);
    if (it == b.by_frame.end()) {
      it = b.by_frame.emplace(frame, new internal::Stat).first;
    }
    stat = it->second;
  }
  cached_frame = frame;
  cached_stat = stat;
  return stat;
}

}  // namespace

namespace internal {

Stat* OnAlloc(int64_t bytes) {
  TotalStat().Add(bytes);
  Stat* span_stat = BucketFor(prof::CurrentFrame());
  if (span_stat != nullptr) span_stat->Add(bytes);
  return span_stat;
}

void OnFree(Stat* span_stat, int64_t bytes) {
  TotalStat().Sub(bytes);
  if (span_stat != nullptr) span_stat->Sub(bytes);
}

}  // namespace internal

Snapshot Total() {
  const internal::Stat& s = TotalStat();
  Snapshot out;
  out.live_bytes = s.live.load(std::memory_order_relaxed);
  out.peak_bytes = s.peak.load(std::memory_order_relaxed);
  out.allocs = s.allocs.load(std::memory_order_relaxed);
  return out;
}

int64_t LiveBytes() { return Total().live_bytes; }
int64_t PeakBytes() { return Total().peak_bytes; }
int64_t AllocCount() { return Total().allocs; }

void ResetPeakToLive() {
  internal::Stat& s = TotalStat();
  s.peak.store(s.live.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

std::map<std::string, Snapshot> PerSpanSnapshot() {
  SpanBuckets& b = Buckets();
  std::map<std::string, Snapshot> out;
  std::lock_guard<std::mutex> lock(b.mu);
  for (const auto& [frame, stat] : b.by_frame) {
    Snapshot s;
    s.live_bytes = stat->live.load(std::memory_order_relaxed);
    s.peak_bytes = stat->peak.load(std::memory_order_relaxed);
    s.allocs = stat->allocs.load(std::memory_order_relaxed);
    out[frame] = s;
  }
  return out;
}

int64_t ReadPeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtoll(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

void PublishGauges() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const Snapshot total = Total();
  reg.GetGauge("tensor.mem.live_bytes")
      ->Set(static_cast<double>(total.live_bytes));
  reg.GetGauge("tensor.mem.peak_bytes")
      ->Set(static_cast<double>(total.peak_bytes));
  reg.GetGauge("tensor.mem.allocs")->Set(static_cast<double>(total.allocs));
  const int64_t rss = ReadPeakRssBytes();
  if (rss > 0) {
    reg.GetGauge("process.peak_rss_bytes")->Set(static_cast<double>(rss));
  }
}

void ResetForTest() {
  internal::Stat& s = TotalStat();
  s.live.store(0, std::memory_order_relaxed);
  s.peak.store(0, std::memory_order_relaxed);
  s.allocs.store(0, std::memory_order_relaxed);
  SpanBuckets& b = Buckets();
  std::lock_guard<std::mutex> lock(b.mu);
  for (auto& [frame, stat] : b.by_frame) {
    stat->live.store(0, std::memory_order_relaxed);
    stat->peak.store(0, std::memory_order_relaxed);
    stat->allocs.store(0, std::memory_order_relaxed);
  }
}

}  // namespace adafgl::obs::mem
