#include "obs/obs.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace adafgl::obs {

namespace {

/// Paths and the one-shot atexit hook, guarded by a mutex (cold path only).
struct PathState {
  std::mutex mu;
  std::string trace_path;
  std::string jsonl_path;
  bool atexit_registered = false;
};

PathState& Paths() {
  static PathState* s = new PathState;  // Leaked: usable during exit.
  return *s;
}

int ParseLogLevel(const char* raw) {
  if (raw == nullptr || raw[0] == '\0') {
    return static_cast<int>(LogLevel::kWarn);
  }
  if (std::strcmp(raw, "off") == 0) return static_cast<int>(LogLevel::kOff);
  if (std::strcmp(raw, "error") == 0) {
    return static_cast<int>(LogLevel::kError);
  }
  if (std::strcmp(raw, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(raw, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(raw, "debug") == 0) {
    return static_cast<int>(LogLevel::kDebug);
  }
  return static_cast<int>(LogLevel::kWarn);
}

void RegisterAtexitFlush() {
  PathState& p = Paths();
  std::lock_guard<std::mutex> lock(p.mu);
  if (!p.atexit_registered) {
    p.atexit_registered = true;
    std::atexit([] { Flush(); });
  }
}

}  // namespace

namespace internal {

RuntimeState& State() {
  // Leaked so flag reads stay valid in atexit handlers and late TLS dtors.
  static RuntimeState* state = [] {
    auto* s = new RuntimeState;
    const char* metrics = std::getenv("ADAFGL_METRICS");
    s->metrics.store(metrics != nullptr && metrics[0] == '1',
                     std::memory_order_relaxed);
    const char* trace = std::getenv("ADAFGL_TRACE");
    const bool trace_on = trace != nullptr && trace[0] != '\0';
    s->trace.store(trace_on, std::memory_order_relaxed);
    s->log_level.store(ParseLogLevel(std::getenv("ADAFGL_LOG_LEVEL")),
                       std::memory_order_relaxed);
    if (trace_on) {
      std::lock_guard<std::mutex> lock(Paths().mu);
      Paths().trace_path = trace;
    }
    const char* jsonl = std::getenv("ADAFGL_LOG_JSONL");
    const bool jsonl_on = jsonl != nullptr && jsonl[0] != '\0';
    if (jsonl_on) {
      std::lock_guard<std::mutex> lock(Paths().mu);
      Paths().jsonl_path = jsonl;
    }
    // Knobs turned on by the environment need the exit flush too (the
    // runtime setters register it themselves). No Paths() lock is held
    // here.
    if (s->metrics.load(std::memory_order_relaxed) || trace_on || jsonl_on) {
      RegisterAtexitFlush();
    }
    return s;
  }();
  return *state;
}

}  // namespace internal

void SetMetricsEnabled(bool on) {
  internal::State().metrics.store(on, std::memory_order_relaxed);
  if (on) RegisterAtexitFlush();
}

void SetTraceEnabled(bool on) {
  internal::State().trace.store(on, std::memory_order_relaxed);
  if (on) RegisterAtexitFlush();
}

void SetLogLevel(LogLevel level) {
  internal::State().log_level.store(static_cast<int>(level),
                                    std::memory_order_relaxed);
}

void SetTracePath(std::string path) {
  internal::State();  // Environment first, then the override.
  std::lock_guard<std::mutex> lock(Paths().mu);
  Paths().trace_path = std::move(path);
}

std::string TracePath() {
  internal::State();
  std::lock_guard<std::mutex> lock(Paths().mu);
  return Paths().trace_path;
}

std::string JsonlPath() {
  internal::State();
  std::lock_guard<std::mutex> lock(Paths().mu);
  return Paths().jsonl_path;
}

void SetJsonlPath(std::string path) {
  internal::State();
  const bool enabled = !path.empty();
  {
    std::lock_guard<std::mutex> lock(Paths().mu);
    Paths().jsonl_path = std::move(path);
  }
  if (enabled) RegisterAtexitFlush();
}

int64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

void Flush() {
  const std::string trace_path = TracePath();
  if (TraceEnabled() && !trace_path.empty()) {
    WriteChromeTrace(trace_path);
    const std::string summary = PhaseSummaryText();
    if (!summary.empty()) {
      std::fprintf(stderr, "[adafgl] phase summary (span count total_ms):\n%s",
                   summary.c_str());
    }
  }
  if (MetricsEnabled()) {
    MetricsRegistry::Global().WriteSummary(stderr);
  }
  internal::FlushJsonlSink();
}

}  // namespace adafgl::obs
