#include "obs/obs.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/log.h"
#include "obs/mem.h"
#include "obs/prof.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace adafgl::obs {

namespace {

/// Paths and the one-shot atexit hook, guarded by a mutex (cold path only).
struct PathState {
  std::mutex mu;
  std::string trace_path;
  std::string jsonl_path;
  std::string profile_path;
  bool atexit_registered = false;
};

PathState& Paths() {
  static PathState* s = new PathState;  // Leaked: usable during exit.
  return *s;
}

int ParseLogLevel(const char* raw) {
  if (raw == nullptr || raw[0] == '\0') {
    return static_cast<int>(LogLevel::kWarn);
  }
  if (std::strcmp(raw, "off") == 0) return static_cast<int>(LogLevel::kOff);
  if (std::strcmp(raw, "error") == 0) {
    return static_cast<int>(LogLevel::kError);
  }
  if (std::strcmp(raw, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(raw, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(raw, "debug") == 0) {
    return static_cast<int>(LogLevel::kDebug);
  }
  return static_cast<int>(LogLevel::kWarn);
}

void RegisterAtexitFlush() {
  PathState& p = Paths();
  std::lock_guard<std::mutex> lock(p.mu);
  if (!p.atexit_registered) {
    p.atexit_registered = true;
    std::atexit([] { Flush(); });
  }
}

/// Keeps the derived span-stack switch in sync with the three knobs that
/// need frame stacks (see obs.h).
void RecomputeSpanStack(internal::RuntimeState& s) {
  s.span_stack.store(s.metrics.load(std::memory_order_relaxed) ||
                         s.trace.load(std::memory_order_relaxed) ||
                         s.profile.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

}  // namespace

namespace internal {

RuntimeState& State() {
  // Leaked so flag reads stay valid in atexit handlers and late TLS dtors.
  static RuntimeState* state = [] {
    auto* s = new RuntimeState;
    const char* metrics = std::getenv("ADAFGL_METRICS");
    s->metrics.store(metrics != nullptr && metrics[0] == '1',
                     std::memory_order_relaxed);
    const char* trace = std::getenv("ADAFGL_TRACE");
    const bool trace_on = trace != nullptr && trace[0] != '\0';
    s->trace.store(trace_on, std::memory_order_relaxed);
    s->log_level.store(ParseLogLevel(std::getenv("ADAFGL_LOG_LEVEL")),
                       std::memory_order_relaxed);
    if (trace_on) {
      std::lock_guard<std::mutex> lock(Paths().mu);
      Paths().trace_path = trace;
    }
    const char* jsonl = std::getenv("ADAFGL_LOG_JSONL");
    const bool jsonl_on = jsonl != nullptr && jsonl[0] != '\0';
    if (jsonl_on) {
      std::lock_guard<std::mutex> lock(Paths().mu);
      Paths().jsonl_path = jsonl;
    }
    const char* profile = std::getenv("ADAFGL_PROFILE");
    const bool profile_on = profile != nullptr && profile[0] != '\0';
    s->profile.store(profile_on, std::memory_order_relaxed);
    if (profile_on) {
      std::lock_guard<std::mutex> lock(Paths().mu);
      Paths().profile_path = profile;
    }
    const char* hz = std::getenv("ADAFGL_PROFILE_HZ");
    if (hz != nullptr && hz[0] != '\0') {
      prof::SetProfileHz(std::atoi(hz));
    }
    RecomputeSpanStack(*s);
    // Knobs turned on by the environment need the exit flush too (the
    // runtime setters register it themselves). No Paths() lock is held
    // here.
    if (s->metrics.load(std::memory_order_relaxed) || trace_on || jsonl_on ||
        profile_on) {
      RegisterAtexitFlush();
    }
    if (profile_on) prof::StartSampler();
    return s;
  }();
  return *state;
}

}  // namespace internal

void SetMetricsEnabled(bool on) {
  internal::RuntimeState& s = internal::State();
  s.metrics.store(on, std::memory_order_relaxed);
  RecomputeSpanStack(s);
  if (on) RegisterAtexitFlush();
}

void SetTraceEnabled(bool on) {
  internal::RuntimeState& s = internal::State();
  s.trace.store(on, std::memory_order_relaxed);
  RecomputeSpanStack(s);
  if (on) RegisterAtexitFlush();
}

void SetProfileEnabled(bool on) {
  internal::RuntimeState& s = internal::State();
  s.profile.store(on, std::memory_order_relaxed);
  RecomputeSpanStack(s);
  if (on) RegisterAtexitFlush();
}

void SetLogLevel(LogLevel level) {
  internal::State().log_level.store(static_cast<int>(level),
                                    std::memory_order_relaxed);
}

void SetTracePath(std::string path) {
  internal::State();  // Environment first, then the override.
  std::lock_guard<std::mutex> lock(Paths().mu);
  Paths().trace_path = std::move(path);
}

std::string TracePath() {
  internal::State();
  std::lock_guard<std::mutex> lock(Paths().mu);
  return Paths().trace_path;
}

std::string JsonlPath() {
  internal::State();
  std::lock_guard<std::mutex> lock(Paths().mu);
  return Paths().jsonl_path;
}

void SetJsonlPath(std::string path) {
  internal::State();
  const bool enabled = !path.empty();
  {
    std::lock_guard<std::mutex> lock(Paths().mu);
    Paths().jsonl_path = std::move(path);
  }
  if (enabled) RegisterAtexitFlush();
}

void SetProfilePath(std::string path) {
  internal::State();
  std::lock_guard<std::mutex> lock(Paths().mu);
  Paths().profile_path = std::move(path);
}

std::string ProfilePath() {
  internal::State();
  std::lock_guard<std::mutex> lock(Paths().mu);
  return Paths().profile_path;
}

int64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

void Flush() {
  if (ProfileEnabled()) {
    prof::StopSamplerAndWrite();
  }
  const std::string trace_path = TracePath();
  if (TraceEnabled() && !trace_path.empty()) {
    WriteChromeTrace(trace_path);
    const std::string summary = PhaseSummaryText();
    if (!summary.empty()) {
      std::fprintf(stderr,
                   "[adafgl] phase summary (span count total_ms peak_mem):\n%s",
                   summary.c_str());
    }
  }
  if (MetricsEnabled()) {
    mem::PublishGauges();
    MetricsRegistry::Global().WriteSummary(stderr);
  }
  internal::FlushJsonlSink();
}

}  // namespace adafgl::obs
