#ifndef ADAFGL_OBS_OBS_H_
#define ADAFGL_OBS_OBS_H_

#include <atomic>
#include <string>

namespace adafgl::obs {

/// \brief Runtime knobs of the observability layer.
///
/// Everything is off by default and initialised once from the environment:
///
///   ADAFGL_METRICS=1           enable counters/gauges/histograms and the
///                              metric summary dump at exit
///   ADAFGL_TRACE=trace.json    enable span tracing; the Chrome
///                              `chrome://tracing` JSON is written to the
///                              given path at exit
///   ADAFGL_LOG_LEVEL=warn      stderr log threshold:
///                              off|error|warn|info|debug (default warn)
///   ADAFGL_LOG_JSONL=ev.jsonl  append structured events as JSON lines
///   ADAFGL_PROFILE=out.folded  enable the sampling profiler; folded
///                              stacks (flamegraph.pl input) are written
///                              to the given path at exit
///   ADAFGL_PROFILE_HZ=97       sampler frequency (default 97 Hz)
///
/// The disabled path is a single relaxed atomic load behind a function
/// call — bench/micro_obs.cc pins it below 5 ns/op. All setters may be
/// called at runtime (tests and tools use them to override the
/// environment); collection primitives are safe from any thread.

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

namespace internal {

/// Global on/off switches, hot-path readable. Pointer-stable for the whole
/// program; initialised from the environment on first access.
struct RuntimeState {
  std::atomic<bool> metrics{false};
  std::atomic<bool> trace{false};
  std::atomic<bool> profile{false};
  /// Derived: metrics || trace || profile. The single load obs::Span and
  /// prof::KernelFrame gate on, so the all-off hot path stays one relaxed
  /// read. Recomputed by every setter.
  std::atomic<bool> span_stack{false};
  std::atomic<int> log_level{static_cast<int>(LogLevel::kWarn)};
};

RuntimeState& State();

}  // namespace internal

inline bool MetricsEnabled() {
  return internal::State().metrics.load(std::memory_order_relaxed);
}

inline bool TraceEnabled() {
  return internal::State().trace.load(std::memory_order_relaxed);
}

inline bool ProfileEnabled() {
  return internal::State().profile.load(std::memory_order_relaxed);
}

/// True when spans must maintain the per-thread frame stack (profiler
/// samples and memory attribution read it): any of metrics, trace, or
/// profile on.
inline bool SpanStackEnabled() {
  return internal::State().span_stack.load(std::memory_order_relaxed);
}

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <=
         internal::State().log_level.load(std::memory_order_relaxed);
}

/// Runtime overrides of the environment knobs.
void SetMetricsEnabled(bool on);
void SetTraceEnabled(bool on);
/// Flips the sampler switch; StartSampler/StopSamplerAndWrite (obs/prof.h)
/// control the background thread itself.
void SetProfileEnabled(bool on);
void SetLogLevel(LogLevel level);
/// Where the Chrome trace goes at Flush; empty keeps tracing in memory.
void SetTracePath(std::string path);
std::string TracePath();
/// Path of the JSONL event sink; empty string closes/disables it.
void SetJsonlPath(std::string path);
std::string JsonlPath();
/// Where the folded-stack profile goes at Flush.
void SetProfilePath(std::string path);
std::string ProfilePath();

/// Nanoseconds since the (lazily pinned) process trace epoch; monotonic.
int64_t NowNs();

/// Flushes every enabled sink: writes the Chrome trace to TracePath(),
/// dumps the metric summary to stderr when metrics are on, and fsyncs the
/// JSONL log. Registered atexit as soon as any knob turns on; safe to call
/// repeatedly.
void Flush();

}  // namespace adafgl::obs

#endif  // ADAFGL_OBS_OBS_H_
