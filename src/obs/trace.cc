#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

#include "obs/json.h"
#include "obs/log.h"

namespace adafgl::obs {

namespace {

/// One finished span. `name` points into the caller's literal when
/// `owned_name` is empty.
struct TraceEvent {
  const char* name = nullptr;
  std::string owned_name;
  int64_t start_ns = 0;
  int64_t end_ns = 0;

  const char* Name() const {
    return owned_name.empty() ? name : owned_name.c_str();
  }
};

/// Cap per thread so a span-happy loop cannot eat unbounded memory (the
/// drop tally makes the truncation visible).
constexpr size_t kMaxEventsPerThread = 1 << 20;

std::atomic<int64_t> g_dropped{0};

struct ThreadBuffer;

/// Registry of every thread's buffer plus events from exited threads.
struct TraceStore {
  std::mutex mu;
  std::vector<ThreadBuffer*> live;
  /// Events of exited threads, tagged with their original tid so per-track
  /// nesting survives thread teardown.
  std::vector<std::pair<int, TraceEvent>> retired;
  int next_tid = 1;
};

TraceStore& Store() {
  static TraceStore* store = new TraceStore;  // Leaked: see obs.cc.
  return *store;
}

struct ThreadBuffer {
  std::vector<TraceEvent> events;
  int tid = 0;

  ThreadBuffer() {
    TraceStore& s = Store();
    std::lock_guard<std::mutex> lock(s.mu);
    tid = s.next_tid++;
    s.live.push_back(this);
  }

  ~ThreadBuffer() {
    TraceStore& s = Store();
    std::lock_guard<std::mutex> lock(s.mu);
    s.live.erase(std::remove(s.live.begin(), s.live.end(), this),
                 s.live.end());
    for (TraceEvent& e : events) {
      s.retired.emplace_back(tid, std::move(e));
    }
  }
};

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

/// Snapshot of all recorded events with their thread ids.
std::vector<std::pair<int, TraceEvent>> SnapshotEvents() {
  TraceStore& s = Store();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<std::pair<int, TraceEvent>> out;
  out.reserve(s.retired.size());
  for (const auto& [tid, e] : s.retired) out.emplace_back(tid, e);
  for (const ThreadBuffer* b : s.live) {
    for (const TraceEvent& e : b->events) out.emplace_back(b->tid, e);
  }
  return out;
}

}  // namespace

void Span::Finish() {
  ThreadBuffer& buf = LocalBuffer();
  if (buf.events.size() >= kMaxEventsPerThread) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e;
  if (lit_ != nullptr) {
    e.name = lit_;
  } else {
    e.owned_name = std::move(name_);
  }
  e.start_ns = start_ns_;
  e.end_ns = NowNs();
  buf.events.push_back(std::move(e));
}

std::map<std::string, PhaseStat> PhaseSummary() {
  std::map<std::string, PhaseStat> out;
  for (const auto& [tid, e] : SnapshotEvents()) {
    PhaseStat& stat = out[e.Name()];
    ++stat.count;
    stat.total_ns += e.end_ns - e.start_ns;
  }
  return out;
}

std::string PhaseSummaryText() {
  std::string out;
  char line[256];
  for (const auto& [name, stat] : PhaseSummary()) {
    std::snprintf(line, sizeof(line), "  %-32s %8lld %12.3f\n", name.c_str(),
                  static_cast<long long>(stat.count),
                  static_cast<double>(stat.total_ns) / 1e6);
    out += line;
  }
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  std::vector<std::pair<int, TraceEvent>> events = SnapshotEvents();
  // chrome://tracing requires duration ("B"/"E") events sorted by
  // timestamp within the file to nest correctly.
  struct Entry {
    char phase;
    int tid;
    const TraceEvent* event;
    int64_t ts_ns;
  };
  std::vector<Entry> entries;
  entries.reserve(events.size() * 2);
  for (const auto& [tid, e] : events) {
    entries.push_back({'B', tid, &e, e.start_ns});
    entries.push_back({'E', tid, &e, e.end_ns});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     // Ends before begins on ties keeps nesting balanced.
                     return a.phase == 'E' && b.phase == 'B';
                   });

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const Entry& entry : entries) {
    w.BeginObject();
    w.Key("name");
    w.String(entry.event->Name());
    w.Key("ph");
    w.String(std::string(1, entry.phase));
    w.Key("ts");
    w.Double(static_cast<double>(entry.ts_ns) / 1e3);  // Microseconds.
    w.Key("pid");
    w.Int(1);
    w.Key("tid");
    w.Int(entry.tid);
    w.Key("cat");
    w.String("adafgl");
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.EndObject();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    Logf(LogLevel::kError, "cannot write trace to %s", path.c_str());
    return false;
  }
  const std::string& json = w.str();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

int64_t DroppedSpanCount() {
  return g_dropped.load(std::memory_order_relaxed);
}

void ResetTraceForTest() {
  TraceStore& s = Store();
  std::lock_guard<std::mutex> lock(s.mu);
  s.retired.clear();
  for (ThreadBuffer* b : s.live) b->events.clear();
  g_dropped.store(0, std::memory_order_relaxed);
}

}  // namespace adafgl::obs
