#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/mem.h"
#include "obs/registry.h"

namespace adafgl::obs {

namespace {

/// One finished span. `name` is a string literal or a pointer interned by
/// prof::InternName, so it outlives every buffer.
struct TraceEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
};

/// Cap per thread so a span-happy loop cannot eat unbounded memory (the
/// drop tally makes the truncation visible). Test-overridable.
std::atomic<int64_t> g_max_events{1 << 20};

std::atomic<int64_t> g_dropped{0};

/// Mirrors g_dropped into the registry so truncation shows up in
/// SummaryText() next to everything else.
void CountDroppedSpan() {
  static Counter* const dropped =
      MetricsRegistry::Global().GetCounter("obs.trace.dropped_spans");
  dropped->Inc();
}

struct ThreadBuffer;

/// Registry of every thread's buffer plus events from exited threads.
struct TraceStore {
  std::mutex mu;
  std::vector<ThreadBuffer*> live;
  /// Events of exited threads, tagged with their original tid so per-track
  /// nesting survives thread teardown.
  std::vector<std::pair<int, TraceEvent>> retired;
  int next_tid = 1;
};

TraceStore& Store() {
  static TraceStore* store = new TraceStore;  // Leaked: see obs.cc.
  return *store;
}

struct ThreadBuffer {
  std::vector<TraceEvent> events;
  int tid = 0;

  ThreadBuffer() {
    TraceStore& s = Store();
    std::lock_guard<std::mutex> lock(s.mu);
    tid = s.next_tid++;
    s.live.push_back(this);
  }

  ~ThreadBuffer() {
    TraceStore& s = Store();
    std::lock_guard<std::mutex> lock(s.mu);
    s.live.erase(std::remove(s.live.begin(), s.live.end(), this),
                 s.live.end());
    for (TraceEvent& e : events) {
      s.retired.emplace_back(tid, std::move(e));
    }
  }
};

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

/// Snapshot of all recorded events with their thread ids.
std::vector<std::pair<int, TraceEvent>> SnapshotEvents() {
  TraceStore& s = Store();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<std::pair<int, TraceEvent>> out;
  out.reserve(s.retired.size());
  for (const auto& [tid, e] : s.retired) out.emplace_back(tid, e);
  for (const ThreadBuffer* b : s.live) {
    for (const TraceEvent& e : b->events) out.emplace_back(b->tid, e);
  }
  return out;
}

}  // namespace

void Span::BeginLiteral(const char* literal_name) {
  name_ = literal_name;
  prof::PushFrame(name_);
  pushed_ = true;
  if (TraceEnabled()) {
    record_ = true;
    start_ns_ = NowNs();
  }
  active_ = true;
}

void Span::BeginDynamic(const std::string& name) {
  BeginLiteral(prof::InternName(name));
}

void Span::Finish() {
  if (record_) {
    ThreadBuffer& buf = LocalBuffer();
    if (static_cast<int64_t>(buf.events.size()) >=
        g_max_events.load(std::memory_order_relaxed)) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      CountDroppedSpan();
    } else {
      TraceEvent e;
      e.name = name_;
      e.start_ns = start_ns_;
      e.end_ns = NowNs();
      buf.events.push_back(e);
    }
  }
  if (pushed_) prof::PopFrame();
}

std::map<std::string, PhaseStat> PhaseSummary() {
  std::map<std::string, PhaseStat> out;
  for (const auto& [tid, e] : SnapshotEvents()) {
    PhaseStat& stat = out[e.name];
    ++stat.count;
    stat.total_ns += e.end_ns - e.start_ns;
  }
  // Join the memory accountant's per-span peaks (metrics on); spans that
  // allocated but never produced a trace event (e.g. prof::KernelFrame
  // regions) appear with count 0.
  for (const auto& [name, snap] : mem::PerSpanSnapshot()) {
    if (snap.peak_bytes == 0) continue;
    out[name].peak_bytes = snap.peak_bytes;
  }
  return out;
}

std::string PhaseSummaryText() {
  std::string out;
  char line[256];
  for (const auto& [name, stat] : PhaseSummary()) {
    std::snprintf(line, sizeof(line), "  %-32s %8lld %12.3f %10.2fMiB\n",
                  name.c_str(), static_cast<long long>(stat.count),
                  static_cast<double>(stat.total_ns) / 1e6,
                  static_cast<double>(stat.peak_bytes) / (1024.0 * 1024.0));
    out += line;
  }
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  std::vector<std::pair<int, TraceEvent>> events = SnapshotEvents();
  const int64_t dropped = DroppedSpanCount();
  if (dropped > 0) {
    Logf(LogLevel::kWarn,
         "trace is truncated: %lld spans dropped at the per-thread buffer "
         "cap (see otherData.dropped_spans in %s)",
         static_cast<long long>(dropped), path.c_str());
  }
  // chrome://tracing requires duration ("B"/"E") events sorted by
  // timestamp within the file to nest correctly.
  struct Entry {
    char phase;
    int tid;
    const TraceEvent* event;
    int64_t ts_ns;
  };
  std::vector<Entry> entries;
  entries.reserve(events.size() * 2);
  for (const auto& [tid, e] : events) {
    entries.push_back({'B', tid, &e, e.start_ns});
    entries.push_back({'E', tid, &e, e.end_ns});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     // Ends before begins on ties keeps nesting balanced.
                     return a.phase == 'E' && b.phase == 'B';
                   });

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const Entry& entry : entries) {
    w.BeginObject();
    w.Key("name");
    w.String(entry.event->name);
    w.Key("ph");
    w.String(std::string(1, entry.phase));
    w.Key("ts");
    w.Double(static_cast<double>(entry.ts_ns) / 1e3);  // Microseconds.
    w.Key("pid");
    w.Int(1);
    w.Key("tid");
    w.Int(entry.tid);
    w.Key("cat");
    w.String("adafgl");
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  if (dropped > 0) {
    w.Key("otherData");
    w.BeginObject();
    w.Key("dropped_spans");
    w.Int(dropped);
    w.EndObject();
  }
  w.EndObject();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    Logf(LogLevel::kError, "cannot write trace to %s", path.c_str());
    return false;
  }
  const std::string& json = w.str();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

int64_t DroppedSpanCount() {
  return g_dropped.load(std::memory_order_relaxed);
}

namespace internal {

void SetTraceCapForTest(int64_t cap) {
  g_max_events.store(cap > 0 ? cap : (1 << 20), std::memory_order_relaxed);
}

}  // namespace internal

void ResetTraceForTest() {
  TraceStore& s = Store();
  std::lock_guard<std::mutex> lock(s.mu);
  s.retired.clear();
  for (ThreadBuffer* b : s.live) b->events.clear();
  g_dropped.store(0, std::memory_order_relaxed);
}

}  // namespace adafgl::obs
