#ifndef ADAFGL_OBS_REGISTRY_H_
#define ADAFGL_OBS_REGISTRY_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace adafgl::obs {

namespace internal {

/// fetch_add for atomic<double> via CAS (portable pre-C++20-library).
inline void AtomicAddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// Monotonic 64-bit counter. Increments are relaxed atomics — safe from the
/// comm worker pool, no locks, no fences on the hot path.
class Counter {
 public:
  void Inc(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<int64_t> v_{0};
};

/// Last-write-wins double value (e.g. a score, a queue depth).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket boundaries are pinned at registration, so
/// recording is a binary search plus three relaxed atomic adds — no locks,
/// safe from any thread. It sits on the profiler's timer-histogram hot path
/// (per-message codec timings), hence O(log buckets), not a linear scan.
class Histogram {
 public:
  /// Records one observation into the first bucket whose upper bound is
  /// >= v (the last, unbounded bucket when v exceeds every bound).
  void Record(double v) {
    const size_t b = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    internal::AtomicAddDouble(sum_, v);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const int64_t c = count();
    return c == 0 ? 0.0 : sum() / static_cast<double>(c);
  }

  /// Estimates the q-quantile (q in [0, 1]; clamped) from the bucket
  /// counts, linearly interpolating inside the bucket that crosses the
  /// rank — the standard fixed-bucket estimator (Prometheus
  /// histogram_quantile), so p50/p99 can be reported without raw samples.
  /// Conventions: an empty histogram returns 0; the first bucket
  /// interpolates from lower edge min(0, bounds[0]); any rank landing in
  /// the unbounded overflow bucket returns bounds.back(). Reads are
  /// relaxed-atomic snapshots — concurrent recording can skew the estimate
  /// by the in-flight observations, never corrupt it.
  double Quantile(double q) const;
  /// Upper bucket bounds (ascending); the implicit last bucket is +inf.
  const std::vector<double>& bounds() const { return bounds_; }
  size_t num_buckets() const { return bounds_.size() + 1; }
  int64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds)
      : name_(std::move(name)),
        bounds_(std::move(bounds)),
        buckets_(std::make_unique<std::atomic<int64_t>[]>(bounds_.size() +
                                                          1)) {}
  std::string name_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Decade boundaries for nanosecond timings: 100 ns .. 10 s.
std::vector<double> DefaultTimeBoundsNs();
/// Uniform [0, 1] boundaries in steps of 0.1 (scores, ratios, the HCS).
std::vector<double> UnitIntervalBounds();

/// \brief Process-global, thread-safe metric registry.
///
/// Registration (Get*) takes a mutex and returns a pointer that stays valid
/// for the life of the process — call sites cache it in a function-local
/// static so steady-state increments never touch the lock:
///
///   static Counter* const c =
///       MetricsRegistry::Global().GetCounter("tensor.matmul.calls");
///   c->Inc();
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the named instrument, creating it on first use. The same name
  /// always yields the same pointer.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies on first registration only (DefaultTimeBoundsNs()
  /// when empty); later callers get the existing histogram.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// One text line per non-zero instrument, name-sorted ("counter
  /// tensor.matmul.calls 812"), for the exit dump and tests.
  std::string SummaryText() const;
  void WriteSummary(std::FILE* out) const;

  /// Zeroes every counter/gauge/histogram (pointers stay valid). Tests only.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace adafgl::obs

#endif  // ADAFGL_OBS_REGISTRY_H_
