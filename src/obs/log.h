#ifndef ADAFGL_OBS_LOG_H_
#define ADAFGL_OBS_LOG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace adafgl::obs {

namespace internal {
/// Flushes (and keeps open) the JSONL sink file; called from obs::Flush.
void FlushJsonlSink();
}  // namespace internal

/// printf-style stderr line, gated on ADAFGL_LOG_LEVEL:
///   [adafgl][info] round 3/15 loss=0.4210 acc=0.8120
void Logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// True when Event::Emit would reach any sink — lets callers skip building
/// events entirely on hot paths.
bool EventsEnabled();

/// \brief One structured telemetry record, emitted as a JSON line.
///
///   obs::Event("fed.round")
///       .I64("round", r).F64("train_loss", l).Emit();
///
/// Sinks, in order: the JSONL log (ADAFGL_LOG_JSONL / SetJsonlPath) and,
/// at debug log level, stderr. Every line carries "event" and "ts_ns"
/// before the caller's fields; field order is insertion order.
class Event {
 public:
  explicit Event(std::string name);

  Event& I64(const char* key, int64_t v);
  Event& F64(const char* key, double v);
  Event& Str(const char* key, const std::string& v);
  Event& Bool(const char* key, bool v);

  /// Renders the JSON object line (exposed for tests).
  std::string Render() const;

  /// Writes the record to the enabled sinks; no-op when none are on.
  void Emit();

 private:
  std::string name_;
  /// Pre-rendered "\"key\":value" pairs.
  std::vector<std::string> fields_;
};

}  // namespace adafgl::obs

#endif  // ADAFGL_OBS_LOG_H_
