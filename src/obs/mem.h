#ifndef ADAFGL_OBS_MEM_H_
#define ADAFGL_OBS_MEM_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "obs/obs.h"

namespace adafgl::obs::mem {

/// \brief Tensor memory accounting.
///
/// Matrix and CsrMatrix own an AllocHandle that reports the byte size of
/// their heap buffers here. Accounting is on whenever metrics are on
/// (ADAFGL_METRICS=1) and tracks three quantities, globally and per
/// innermost active span (see obs/prof.h):
///
///   live bytes   — currently allocated tensor buffer bytes
///   peak bytes   — high-water mark of live bytes
///   alloc count  — number of buffer registrations
///
/// The global numbers surface as registry gauges/counters
/// (tensor.mem.live_bytes, tensor.mem.peak_bytes, tensor.mem.allocs,
/// process.peak_rss_bytes) via PublishGauges(); per-span peaks join
/// PhaseSummary() and bench.json. Everything is relaxed atomics — safe
/// from the comm worker pool, clean under tsan.

/// True when allocations are being accounted (metrics knob).
inline bool Enabled() { return MetricsEnabled(); }

/// Point-in-time reading of one accounting bucket.
struct Snapshot {
  int64_t live_bytes = 0;
  int64_t peak_bytes = 0;
  int64_t allocs = 0;
};

namespace internal {

/// One accounting bucket (the global total, or one span's attribution).
struct Stat {
  std::atomic<int64_t> live{0};
  std::atomic<int64_t> peak{0};
  std::atomic<int64_t> allocs{0};

  void Add(int64_t bytes) {
    const int64_t now = live.fetch_add(bytes, std::memory_order_relaxed) +
                        bytes;
    allocs.fetch_add(1, std::memory_order_relaxed);
    int64_t old_peak = peak.load(std::memory_order_relaxed);
    while (now > old_peak &&
           !peak.compare_exchange_weak(old_peak, now,
                                       std::memory_order_relaxed)) {
    }
  }
  void Sub(int64_t bytes) {
    live.fetch_sub(bytes, std::memory_order_relaxed);
  }
};

/// Accounts `bytes` to the global total and the calling thread's
/// innermost span; returns the span bucket (or nullptr) so the matching
/// free can be attributed to the same bucket.
Stat* OnAlloc(int64_t bytes);
void OnFree(Stat* span_stat, int64_t bytes);

}  // namespace internal

/// \brief Per-container accounting handle; owned by Matrix / CsrMatrix.
///
/// The owner calls Track(bytes) after any operation that (re)allocates
/// its buffers; the handle remembers what it registered (and to which
/// span bucket) so destruction and re-tracking stay balanced even when
/// the metrics knob flips mid-lifetime. Copies start unaccounted — the
/// owning container re-Tracks after copying its buffers. Moves transfer
/// the registration with the buffer.
class AllocHandle {
 public:
  AllocHandle() = default;
  AllocHandle(const AllocHandle&) {}
  AllocHandle& operator=(const AllocHandle&) { return *this; }
  AllocHandle(AllocHandle&& o) noexcept : bytes_(o.bytes_), site_(o.site_) {
    o.bytes_ = 0;
    o.site_ = nullptr;
  }
  AllocHandle& operator=(AllocHandle&& o) noexcept {
    if (this != &o) {
      Release();
      bytes_ = o.bytes_;
      site_ = o.site_;
      o.bytes_ = 0;
      o.site_ = nullptr;
    }
    return *this;
  }
  ~AllocHandle() { Release(); }

  /// Registers the owner's current buffer footprint. Disabled path (no
  /// prior registration, metrics off): one relaxed load and a branch.
  void Track(int64_t bytes) {
    if (bytes_ == bytes) return;
    Release();
    if (bytes <= 0 || !Enabled()) return;
    site_ = internal::OnAlloc(bytes);
    bytes_ = bytes;
  }

 private:
  void Release() {
    if (bytes_ != 0) {
      internal::OnFree(site_, bytes_);
      bytes_ = 0;
      site_ = nullptr;
    }
  }

  int64_t bytes_ = 0;
  internal::Stat* site_ = nullptr;
};

/// Global tensor-buffer accounting.
Snapshot Total();
int64_t LiveBytes();
int64_t PeakBytes();
int64_t AllocCount();

/// Collapses the peak back to the current live bytes — benches call this
/// before a method run so PeakBytes() afterwards is that run's peak.
void ResetPeakToLive();

/// Peak live bytes attributed to each span name (the innermost active
/// span at allocation time).
std::map<std::string, Snapshot> PerSpanSnapshot();

/// VmHWM of this process in bytes, read from /proc/self/status; 0 when
/// unavailable (non-Linux).
int64_t ReadPeakRssBytes();

/// Copies the accounting state into registry instruments
/// (tensor.mem.live_bytes / peak_bytes / allocs, process.peak_rss_bytes)
/// so it appears in SummaryText(); called by obs::Flush.
void PublishGauges();

/// Zeroes all buckets (live containers keep their registrations balanced
/// via their handles, so only call between runs). Tests only.
void ResetForTest();

}  // namespace adafgl::obs::mem

#endif  // ADAFGL_OBS_MEM_H_
