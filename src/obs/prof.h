#ifndef ADAFGL_OBS_PROF_H_
#define ADAFGL_OBS_PROF_H_

#include <atomic>
#include <map>
#include <string>

#include "obs/obs.h"

namespace adafgl::obs::prof {

/// \brief Live span stacks + sampling profiler.
///
/// Every obs::Span (and every prof::KernelFrame) pushes its name onto a
/// per-thread stack of interned `const char*` frames while the span-stack
/// switch is on (tracing, metrics, or profiling enabled — see
/// obs::SpanStackEnabled()). Two consumers read the stacks:
///
///  * the memory accountant (obs/mem.h) attributes allocations to the
///    innermost active frame;
///  * the sampling profiler — a background thread woken ADAFGL_PROFILE_HZ
///    times per second (default 97, a prime so it cannot lock onto
///    periodic work) that snapshots every registered thread's stack.
///
/// At exit (obs::Flush) the profiler writes flamegraph.pl-compatible
/// folded stacks ("frame;frame;frame <ticks>" lines) to the
/// ADAFGL_PROFILE=<path> file and prints a top-N self/total-time report
/// to stderr.
///
/// Thread safety: stack slots and depths are relaxed/acquire-release
/// atomics; frame pointers are string literals or pointers interned for
/// the life of the process, so the sampler can read them at any time. A
/// sample racing a push/pop may see a stack that is one frame stale —
/// acceptable for a statistical profiler, and clean under tsan.

/// Deepest stack the sampler can see; pushes beyond it still balance
/// their pops but are invisible to samples.
inline constexpr int kMaxStackDepth = 64;

namespace internal {

/// One thread's active-span stack, registered with the sampler for the
/// life of the thread.
struct ThreadStack {
  std::atomic<const char*> frames[kMaxStackDepth];
  /// Logical depth; may exceed kMaxStackDepth (overflow frames are not
  /// stored). release-stored so a sampler's acquire load of `depth` also
  /// sees the frames below it.
  std::atomic<int> depth{0};
  int tid = 0;

  ThreadStack();
  ~ThreadStack();
};

ThreadStack& LocalStack();

}  // namespace internal

/// Interns `name` into a process-lifetime string table and returns a
/// stable pointer. Literals can be pushed directly; only dynamic names
/// need interning. Lookups are cached per thread.
const char* InternName(const std::string& name);

/// Pushes an interned/static frame name onto this thread's stack.
inline void PushFrame(const char* interned_name) {
  internal::ThreadStack& s = internal::LocalStack();
  const int d = s.depth.load(std::memory_order_relaxed);
  if (d < kMaxStackDepth) {
    s.frames[d].store(interned_name, std::memory_order_relaxed);
  }
  s.depth.store(d + 1, std::memory_order_release);
}

/// Pops the innermost frame (push/pop always balance, even on overflow).
inline void PopFrame() {
  internal::ThreadStack& s = internal::LocalStack();
  const int d = s.depth.load(std::memory_order_relaxed);
  if (d > 0) s.depth.store(d - 1, std::memory_order_release);
}

/// Innermost active frame of the calling thread, or nullptr outside any
/// span — the attribution key of the memory accountant.
inline const char* CurrentFrame() {
  internal::ThreadStack& s = internal::LocalStack();
  const int d = s.depth.load(std::memory_order_relaxed);
  if (d <= 0) return nullptr;
  const int top = d <= kMaxStackDepth ? d - 1 : kMaxStackDepth - 1;
  return s.frames[top].load(std::memory_order_relaxed);
}

/// \brief Stack-only RAII frame for hot kernels (SpMM, MatMul).
///
/// Unlike obs::Span it never records a trace event, so a million kernel
/// calls cost nothing in the trace buffer yet still show up in profiles
/// and memory attribution. Disabled path: one relaxed load.
class KernelFrame {
 public:
  /// `dedup_top` skips the push when the innermost frame already carries
  /// this exact name — the shape of a parallel kernel whose chunk bodies
  /// re-announce the kernel on worker threads: workers gain the frame, the
  /// caller (which pushed it before dispatch) does not stack it twice.
  explicit KernelFrame(const char* literal_name, bool dedup_top = false) {
    if (SpanStackEnabled()) {
      if (dedup_top && CurrentFrame() == literal_name) return;
      PushFrame(literal_name);
      pushed_ = true;
    }
  }
  ~KernelFrame() {
    if (pushed_) PopFrame();
  }
  KernelFrame(const KernelFrame&) = delete;
  KernelFrame& operator=(const KernelFrame&) = delete;

 private:
  bool pushed_ = false;
};

/// Starts the background sampler (idempotent). Normally driven by
/// ADAFGL_PROFILE; tests call it directly after SetProfilePath.
void StartSampler();

/// Stops the sampler, writes the folded-stack file to ProfilePath() and
/// the top-N report to stderr. Safe to call repeatedly; obs::Flush calls
/// it when profiling is on.
void StopSamplerAndWrite();

/// Sampling frequency (ADAFGL_PROFILE_HZ, default 97). Takes effect at
/// the next StartSampler.
void SetProfileHz(int hz);
int ProfileHz();

/// Snapshot of the folded tick table: "a;b;c" -> ticks. Tests only
/// (requires the sampler to be stopped).
std::map<std::string, int64_t> FoldedTicksForTest();

/// Total samples taken that landed inside at least one span.
int64_t SampledTicks();
/// Samples taken while no registered thread had an open span.
int64_t IdleTicks();

/// Renders the folded-stack document ("frame;frame <ticks>\n" per stack).
std::string FoldedText();

/// Renders the top-`n` self/total report printed to stderr at exit.
std::string ReportText(int n);

/// Clears tick tables and counters (sampler must be stopped). Tests only.
void ResetProfilerForTest();

}  // namespace adafgl::obs::prof

#endif  // ADAFGL_OBS_PROF_H_
