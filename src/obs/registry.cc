#include "obs/registry.h"

#include <algorithm>

namespace adafgl::obs {

std::vector<double> DefaultTimeBoundsNs() {
  // Decades from 100 ns to 10 s — coarse but enough to separate "cheap
  // kernel" from "whole round" without per-record arithmetic.
  return {1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10};
}

std::vector<double> UnitIntervalBounds() {
  std::vector<double> bounds;
  bounds.reserve(10);
  for (int i = 1; i <= 10; ++i) bounds.push_back(0.1 * i);
  return bounds;
}

double Histogram::Quantile(double q) const {
  const int64_t total = count();
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (bounds_.empty()) return Mean();  // Single unbounded bucket.
  // Rank of the target observation, 1-based; q=0 maps to the first one.
  const double target = std::max(1.0, q * static_cast<double>(total));
  double cum = 0.0;
  const size_t n = bounds_.size();
  for (size_t i = 0; i <= n; ++i) {
    const auto in_bucket = static_cast<double>(
        buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket <= 0.0 || cum + in_bucket < target) {
      cum += in_bucket;
      continue;
    }
    if (i == n) break;  // Overflow bucket: no finite upper edge.
    const double upper = bounds_[i];
    const double lower = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
    return lower + (upper - lower) * (target - cum) / in_bucket;
  }
  // Rank fell in (or races pushed it into) the unbounded overflow bucket.
  return bounds_.back();
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so cached instrument pointers outlive static destructors.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name))).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = DefaultTimeBoundsNs();
    std::sort(bounds.begin(), bounds.end());
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(name, std::move(bounds))))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::SummaryText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, c] : counters_) {
    if (c->value() == 0) continue;
    std::snprintf(line, sizeof(line), "counter %s %lld\n", name.c_str(),
                  static_cast<long long>(c->value()));
    out += line;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof(line), "gauge %s %.6g\n", name.c_str(),
                  g->value());
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    if (h->count() == 0) continue;
    std::snprintf(line, sizeof(line), "histogram %s count=%lld mean=%.6g\n",
                  name.c_str(), static_cast<long long>(h->count()),
                  h->Mean());
    out += line;
  }
  return out;
}

void MetricsRegistry::WriteSummary(std::FILE* out) const {
  const std::string text = SummaryText();
  if (text.empty()) return;
  std::fprintf(out, "[adafgl] metric summary:\n%s", text.c_str());
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Set(0.0);
  for (auto& [name, h] : histograms_) {
    for (size_t b = 0; b < h->num_buckets(); ++b) {
      h->buckets_[b].store(0, std::memory_order_relaxed);
    }
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0.0, std::memory_order_relaxed);
  }
}

}  // namespace adafgl::obs
