#ifndef ADAFGL_OBS_TRACE_H_
#define ADAFGL_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <utility>

#include "obs/obs.h"
#include "obs/prof.h"

namespace adafgl::obs {

/// \brief RAII traced region.
///
/// When tracing is enabled (ADAFGL_TRACE=<path> or SetTraceEnabled), the
/// constructor stamps a start time and the destructor appends one event to
/// a per-thread buffer — no locks, no allocation beyond the buffer's
/// amortised growth, and nested spans nest naturally in the export. When
/// the profiler or metrics are on, the span also pushes its name onto the
/// per-thread frame stack (obs/prof.h) so the sampler and the memory
/// accountant can attribute work to it. When every knob is off the
/// constructor is a single relaxed load and the destructor a branch.
///
///   { obs::Span span("fed.round"); ... }   // literal, zero-copy
///   { obs::Span span([&] { return "run." + algo; }); ... }  // lazy name
///
/// Prefer the lazy (callable) form for dynamic names: the string is only
/// built when a knob is on, so disabled runs allocate nothing.
class Span {
 public:
  explicit Span(const char* literal_name) {
    if (SpanStackEnabled()) BeginLiteral(literal_name);
  }
  explicit Span(const std::string& name) {
    if (SpanStackEnabled()) BeginDynamic(name);
  }
  /// Lazy-name overload: `name_fn` runs only when a knob is on.
  template <typename Fn,
            std::enable_if_t<std::is_invocable_v<Fn&> &&
                                 !std::is_convertible_v<Fn, const char*> &&
                                 !std::is_convertible_v<Fn, std::string>,
                             int> = 0>
  explicit Span(Fn&& name_fn) {
    if (SpanStackEnabled()) BeginDynamic(name_fn());
  }
  ~Span() {
    if (active_) Finish();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void BeginLiteral(const char* literal_name);
  void BeginDynamic(const std::string& name);
  void Finish();

  bool active_ = false;   // Anything to undo in the destructor.
  bool record_ = false;   // A trace event is pending.
  bool pushed_ = false;   // A stack frame is pending.
  int64_t start_ns_ = 0;
  /// Interned/static span name — stack frame and trace-event label.
  const char* name_ = nullptr;
};

/// Span under its historical name — some call sites read better as timers.
using ScopedTimer = Span;

/// Aggregated time (and attributed peak tensor memory, when metrics are
/// on — see obs/mem.h) per span name across every thread so far.
struct PhaseStat {
  int64_t count = 0;
  int64_t total_ns = 0;
  /// Peak live bytes of tensor buffers allocated while this span was the
  /// innermost active frame; 0 when metrics are off.
  int64_t peak_bytes = 0;
};
std::map<std::string, PhaseStat> PhaseSummary();

/// Flat text rendering of PhaseSummary() — one
/// "<name> <count> <total_ms> <peak_mib>" line per phase, name-sorted.
std::string PhaseSummaryText();

/// Writes every recorded span as Chrome `trace_event` JSON ("B"/"E" pairs,
/// microsecond timestamps) loadable in chrome://tracing / Perfetto. When
/// spans were dropped (buffer cap), logs a warning and records the count
/// in the document's "otherData". Returns false (and logs) when the file
/// cannot be written.
bool WriteChromeTrace(const std::string& path);

/// Number of spans discarded because a thread exceeded its buffer cap
/// (kMaxEventsPerThread); non-zero means the trace is truncated. Also
/// mirrored in the obs.trace.dropped_spans counter.
int64_t DroppedSpanCount();

namespace internal {
/// Overrides the per-thread event-buffer cap (default 1 << 20) so tests
/// can exercise the overflow path without recording a million spans.
void SetTraceCapForTest(int64_t cap);
}  // namespace internal

/// Discards all recorded spans and the drop tally. Tests only.
void ResetTraceForTest();

}  // namespace adafgl::obs

#endif  // ADAFGL_OBS_TRACE_H_
