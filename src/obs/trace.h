#ifndef ADAFGL_OBS_TRACE_H_
#define ADAFGL_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/obs.h"

namespace adafgl::obs {

/// \brief RAII traced region.
///
/// When tracing is enabled (ADAFGL_TRACE=<path> or SetTraceEnabled), the
/// constructor stamps a start time and the destructor appends one event to
/// a per-thread buffer — no locks, no allocation beyond the buffer's
/// amortised growth, and nested spans nest naturally in the export. When
/// tracing is disabled the constructor is a single relaxed load and the
/// destructor a branch.
///
///   { obs::Span span("fed.round"); ... }   // literal, zero-copy
///   { obs::Span span(std::string("run.") + algo); ... }
class Span {
 public:
  explicit Span(const char* literal_name) {
    if (TraceEnabled()) {
      lit_ = literal_name;
      start_ns_ = NowNs();
      active_ = true;
    }
  }
  explicit Span(const std::string& name) {
    if (TraceEnabled()) {
      name_ = name;
      start_ns_ = NowNs();
      active_ = true;
    }
  }
  ~Span() { if (active_) Finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Finish();

  bool active_ = false;
  int64_t start_ns_ = 0;
  const char* lit_ = nullptr;  // Static-literal fast path.
  std::string name_;           // Dynamic names (copied).
};

/// Span under its historical name — some call sites read better as timers.
using ScopedTimer = Span;

/// Aggregated time per span name across every thread so far.
struct PhaseStat {
  int64_t count = 0;
  int64_t total_ns = 0;
};
std::map<std::string, PhaseStat> PhaseSummary();

/// Flat text rendering of PhaseSummary() — one "<name> <count> <total_ms>"
/// line per phase, name-sorted.
std::string PhaseSummaryText();

/// Writes every recorded span as Chrome `trace_event` JSON ("B"/"E" pairs,
/// microsecond timestamps) loadable in chrome://tracing / Perfetto.
/// Returns false (and logs) when the file cannot be written.
bool WriteChromeTrace(const std::string& path);

/// Number of spans discarded because a thread exceeded its buffer cap
/// (kMaxEventsPerThread); non-zero means the trace is truncated.
int64_t DroppedSpanCount();

/// Discards all recorded spans and the drop tally. Tests only.
void ResetTraceForTest();

}  // namespace adafgl::obs

#endif  // ADAFGL_OBS_TRACE_H_
