#ifndef ADAFGL_OBS_JSON_H_
#define ADAFGL_OBS_JSON_H_

#include <cstdint>
#include <string>

namespace adafgl::obs {

/// JSON string escaping (quotes, backslashes, control characters); returns
/// the body without surrounding quotes.
std::string JsonEscape(const std::string& s);

/// Shortest-round-trip double literal that is always valid JSON (never
/// "nan"/"inf" — those map to null).
std::string JsonDouble(double v);

/// \brief Minimal streaming JSON writer — enough structure for the trace
/// exporter, the JSONL events, and bench.json, without a dependency.
///
/// The writer tracks whether a separating comma is due; the caller is
/// responsible for well-formed nesting (tests validate the output with a
/// real parser).
class JsonWriter {
 public:
  void BeginObject() { Sep(); buf_ += '{'; first_ = true; }
  void EndObject() { buf_ += '}'; first_ = false; }
  void BeginArray() { Sep(); buf_ += '['; first_ = true; }
  void EndArray() { buf_ += ']'; first_ = false; }

  /// Emits "key": and leaves the writer expecting a value.
  void Key(const std::string& k) {
    Sep();
    buf_ += '"';
    buf_ += JsonEscape(k);
    buf_ += "\":";
    first_ = true;  // The upcoming value needs no comma.
  }

  void String(const std::string& v) {
    Sep();
    buf_ += '"';
    buf_ += JsonEscape(v);
    buf_ += '"';
  }
  void Int(int64_t v) { Sep(); buf_ += std::to_string(v); }
  void Double(double v) { Sep(); buf_ += JsonDouble(v); }
  void Bool(bool v) { Sep(); buf_ += v ? "true" : "false"; }
  void Raw(const std::string& fragment) { Sep(); buf_ += fragment; }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void Sep() {
    if (!first_) buf_ += ',';
    first_ = false;
  }
  std::string buf_;
  bool first_ = true;
};

}  // namespace adafgl::obs

#endif  // ADAFGL_OBS_JSON_H_
