#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace adafgl::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) {
      return probe;
    }
  }
  return buf;
}

}  // namespace adafgl::obs
