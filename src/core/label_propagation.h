#ifndef ADAFGL_CORE_LABEL_PROPAGATION_H_
#define ADAFGL_CORE_LABEL_PROPAGATION_H_

#include <vector>

#include "graph/graph.h"
#include "tensor/rng.h"

namespace adafgl {

/// Options for the K-step non-parametric label propagation of Eq. 15.
struct LabelPropOptions {
  int steps = 5;        ///< K (paper default 5).
  float kappa = 0.5f;   ///< Residual weight (paper default 0.5).
};

/// \brief K-step Non-param LP (Eq. 15):
///   Y^k = kappa * Y^0 + (1 - kappa) * D^-1/2 A D^-1/2 Y^{k-1}.
///
/// `labeled` nodes start as one-hot rows of their label; all other nodes
/// start uniform 1/|Y|. Returns the final n x num_classes distribution.
/// Involves no learning — pure sparse matrix iteration.
Matrix LabelPropagation(const Graph& g, const std::vector<int32_t>& labeled,
                        const LabelPropOptions& options = {});

/// \brief Homophily Confidence Score (Definition 2, Eq. 16).
///
/// Masks `mask_prob` of the training nodes, runs LP seeded by the remaining
/// training labels, and returns the LP accuracy on the masked nodes — a
/// label-free estimate of how homophilous the local topology is. Falls back
/// to 0.5 when the train set is too small to mask.
double HomophilyConfidenceScore(const Graph& g, double mask_prob, Rng& rng,
                                const LabelPropOptions& options = {});

}  // namespace adafgl

#endif  // ADAFGL_CORE_LABEL_PROPAGATION_H_
