#include "core/propagation_matrix.h"

#include <cmath>

#include "tensor/matrix_ops.h"
#include "tensor/status.h"

namespace adafgl {

Matrix ScalePropagationMatrix(const Matrix& p) {
  ADAFGL_CHECK(p.rows() == p.cols());
  const int64_t n = p.rows();
  Matrix out = p;
  for (int64_t i = 0; i < n; ++i) out(i, i) = 0.0f;
  // Symmetric degree normalisation (identity-distance scaling).
  std::vector<float> inv_sqrt_deg(static_cast<size_t>(n), 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    double deg = 0.0;
    const float* row = out.row(i);
    for (int64_t j = 0; j < n; ++j) deg += std::max(row[j], 0.0f);
    inv_sqrt_deg[static_cast<size_t>(i)] =
        deg > 1e-12 ? static_cast<float>(1.0 / std::sqrt(deg)) : 0.0f;
  }
  for (int64_t i = 0; i < n; ++i) {
    float* row = out.row(i);
    const float di = inv_sqrt_deg[static_cast<size_t>(i)];
    for (int64_t j = 0; j < n; ++j) {
      row[j] = std::max(row[j], 0.0f) * di *
               inv_sqrt_deg[static_cast<size_t>(j)];
    }
  }
  return out;
}

Matrix BuildPropagationMatrix(const Graph& g, const Matrix& probs,
                              float alpha) {
  ADAFGL_CHECK(probs.rows() == g.num_nodes());
  ADAFGL_CHECK(alpha >= 0.0f && alpha <= 1.0f);
  const Matrix adj_dense = GcnNormalized(g.adj).ToDense();
  // P_hat P_hat^T: probability that two nodes share a class.
  Matrix affinity = MatMulTransB(probs, probs);
  Matrix p = Add(Scale(adj_dense, alpha), Scale(affinity, 1.0f - alpha));
  return ScalePropagationMatrix(p);
}

}  // namespace adafgl
