#include "core/label_propagation.h"

#include <algorithm>

#include "tensor/matrix_ops.h"
#include "tensor/status.h"

namespace adafgl {

Matrix LabelPropagation(const Graph& g, const std::vector<int32_t>& labeled,
                        const LabelPropOptions& options) {
  const int32_t n = g.num_nodes();
  const int32_t c = g.num_classes;
  ADAFGL_CHECK(c > 0);
  Matrix y0 = Matrix::Constant(n, c, 1.0f / static_cast<float>(c));
  for (int32_t v : labeled) {
    ADAFGL_CHECK(v >= 0 && v < n);
    float* row = y0.row(v);
    std::fill(row, row + c, 0.0f);
    row[g.labels[static_cast<size_t>(v)]] = 1.0f;
  }
  const CsrMatrix op = GcnNormalized(g.adj);
  Matrix y = y0;
  for (int k = 0; k < options.steps; ++k) {
    Matrix prop = op.Multiply(y);
    y = Add(Scale(y0, options.kappa), Scale(prop, 1.0f - options.kappa));
  }
  return y;
}

double HomophilyConfidenceScore(const Graph& g, double mask_prob, Rng& rng,
                                const LabelPropOptions& options) {
  if (g.train_nodes.size() < 4) return 0.5;
  std::vector<int32_t> kept;
  std::vector<int32_t> masked;
  for (int32_t v : g.train_nodes) {
    if (rng.Bernoulli(mask_prob)) {
      masked.push_back(v);
    } else {
      kept.push_back(v);
    }
  }
  if (masked.empty() || kept.empty()) return 0.5;
  const Matrix y = LabelPropagation(g, kept, options);
  return Accuracy(y, g.labels, masked);
}

}  // namespace adafgl
