#ifndef ADAFGL_CORE_PROPAGATION_MATRIX_H_
#define ADAFGL_CORE_PROPAGATION_MATRIX_H_

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace adafgl {

/// \brief Builds the federated knowledge-guided probability propagation
/// matrix of AdaFGL Step 1 (Eq. 5 + Eq. 6).
///
///   P  = alpha * Â + (1 - alpha) * P_hat P_hat^T
///   P̃  = D^-1/2 (P - diag(P)) D^-1/2
///
/// where `probs` (n x |Y|) are the federated knowledge extractor's softmax
/// predictions P_hat, Â is the GCN-normalised local adjacency, and the
/// Eq. 6 scaling uses the paper's identity-distance degree normalisation:
/// the diagonal is removed and the remaining mass symmetrically normalised.
/// Returned dense (clients are small after a k-way split).
Matrix BuildPropagationMatrix(const Graph& g, const Matrix& probs,
                              float alpha);

/// Eq. 6 in isolation (exposed for tests): removes the diagonal of `p` and
/// symmetrically degree-normalises the result. Rows whose off-diagonal mass
/// is zero are left zero.
Matrix ScalePropagationMatrix(const Matrix& p);

}  // namespace adafgl

#endif  // ADAFGL_CORE_PROPAGATION_MATRIX_H_
