#include "core/adafgl.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/propagation_matrix.h"
#include "nn/layers.h"
#include "nn/models.h"
#include "obs/log.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/matrix_ops.h"
#include "tensor/status.h"

namespace adafgl {

namespace {

/// Per-client Step-2 state: the personalized propagation modules.
class PersonalizedClient {
 public:
  PersonalizedClient(const Graph& g, const FedConfig& config,
                     const AdaFglOptions& options,
                     const std::vector<Matrix>& extractor_weights,
                     uint64_t seed)
      : graph_(&g), options_(options), rng_(seed) {
    ctx_ = GraphContext::Create(g);

    // --- Federated knowledge extractor predictions P_hat. ---
    ModelConfig mc;
    mc.in_dim = g.feature_dim();
    mc.num_classes = g.num_classes;
    mc.hidden = config.hidden;
    mc.dropout = config.dropout;
    Rng extractor_rng = rng_.Fork(0);
    std::unique_ptr<Model> extractor =
        CreateModel(config.model, mc, extractor_rng);
    SetWeights(*extractor, extractor_weights);
    // Local correction of the broadcast extractor (Sec. IV-A applies the
    // same correction to every federated GNN; AdaFGL's Step 2 consumes the
    // locally-corrected predictions).
    if (config.post_local_epochs > 0 && !g.train_nodes.empty()) {
      Adam extractor_opt(extractor->Params(), config.lr,
                         config.weight_decay);
      Rng train_rng = rng_.Fork(4);
      for (int e = 0; e < config.post_local_epochs; ++e) {
        extractor_opt.ZeroGrad();
        Tensor logits = extractor->Forward(ctx_, /*training=*/true,
                                           train_rng);
        Tensor loss = ops::CrossEntropyWithLogits(logits, g.labels,
                                                  g.train_nodes);
        Backward(loss);
        extractor_opt.Step();
      }
    }
    Rng fwd_rng = rng_.Fork(1);
    extractor_probs_ =
        Softmax(extractor->Forward(ctx_, /*training=*/false, fwd_rng)
                    ->value());
    // Training labels are locally known: pin their probability rows to the
    // ground truth so the optimised topology (Eq. 5) and the knowledge
    // target (Eq. 8) are exact wherever supervision exists.
    for (int32_t v : g.train_nodes) {
      float* row = extractor_probs_.row(v);
      std::fill(row, row + extractor_probs_.cols(), 0.0f);
      row[g.labels[static_cast<size_t>(v)]] = 1.0f;
    }

    // --- HCS (Def. 2), averaged over several mask draws. ---
    if (options_.use_hcs) {
      Rng hcs_rng = rng_.Fork(2);
      double acc = 0.0;
      const int repeats = std::max(1, options_.hcs_repeats);
      for (int r = 0; r < repeats; ++r) {
        acc += HomophilyConfidenceScore(g, options_.hcs_mask_prob, hcs_rng,
                                        options_.lp);
      }
      hcs_ = acc / repeats;
    } else {
      hcs_ = 0.5;
    }

    // --- Optimised propagation matrix P̃ (Eq. 5-6) — or the plain
    // normalised adjacency under the w/o L.T. ablation. ---
    const float alpha =
        options_.adaptive_coefficients
            ? std::clamp(static_cast<float>(hcs_), 0.1f, 0.9f)
            : options_.alpha;
    beta_ = options_.adaptive_coefficients
                ? std::clamp(static_cast<float>(hcs_), 0.1f, 0.9f)
                : options_.beta;
    if (options_.use_local_topology) {
      prop_matrix_ = BuildPropagationMatrix(g, extractor_probs_, alpha);
    } else {
      prop_matrix_ = GcnNormalized(g.adj).ToDense();
    }

    // --- Topology-aware label distribution (Alg. 2 line 2), cross-fitted.
    // Two LPs are run from complementary halves of the train set; every
    // train node reads the posterior of the LP that did NOT see its label,
    // so the channels carry honest (leakage-free) LP quality and the
    // MessageUpdater can weight them per client. ---
    Matrix lp_posterior(g.num_nodes(), g.num_classes);
    {
      Rng lp_rng = rng_.Fork(5);
      std::vector<int32_t> half_a, half_b;
      for (int32_t v : g.train_nodes) {
        (lp_rng.Bernoulli(0.5) ? half_a : half_b).push_back(v);
      }
      const Matrix lp_a = LabelPropagation(g, half_a, options_.lp);
      const Matrix lp_b = LabelPropagation(g, half_b, options_.lp);
      std::vector<uint8_t> in_a(static_cast<size_t>(g.num_nodes()), 0);
      std::vector<uint8_t> in_b(static_cast<size_t>(g.num_nodes()), 0);
      for (int32_t v : half_a) in_a[static_cast<size_t>(v)] = 1;
      for (int32_t v : half_b) in_b[static_cast<size_t>(v)] = 1;
      for (int32_t v = 0; v < g.num_nodes(); ++v) {
        const Matrix& src = in_a[static_cast<size_t>(v)]
                                ? lp_b
                                : (in_b[static_cast<size_t>(v)]
                                       ? lp_a
                                       : lp_a);  // Placeholder; fixed below.
        float* dst = lp_posterior.row(v);
        if (!in_a[static_cast<size_t>(v)] && !in_b[static_cast<size_t>(v)]) {
          for (int32_t j = 0; j < g.num_classes; ++j) {
            dst[j] = 0.5f * (lp_a(v, j) + lp_b(v, j));
          }
        } else {
          for (int32_t j = 0; j < g.num_classes; ++j) dst[j] = src(v, j);
        }
      }
    }

    // --- Knowledge smoothing inputs (Eq. 7): X̃^(k) = P̃^k [X || Y_lp]. ---
    std::vector<Matrix> smoothed;
    Matrix cur = ConcatCols(g.features, lp_posterior);
    for (int k = 0; k < options_.smoothing_steps; ++k) {
      cur = MatMul(prop_matrix_, cur);
      smoothed.push_back(cur);
    }
    smoothed_concat_ = MakeConst(ConcatColsAll(smoothed));

    // The heterophilous branch additionally sees even-hop (Â²) smoothed
    // features: on heterophilous (bipartite-like) topology two-hop
    // neighbourhoods are homophilous, the high-order signal Sec. III-C2
    // motivates via [58], [69], [70] (EvenNet et al.).
    const CsrMatrix norm = GcnNormalized(g.adj);
    const Matrix base = ConcatCols(g.features, lp_posterior);
    Matrix two_hop = norm.Multiply(norm.Multiply(base));
    smoothed.push_back(std::move(two_hop));
    smoothed_concat_he_ = MakeConst(ConcatColsAll(smoothed));

    // --- Trainable modules. The knowledge MLP exists twice: the
    // homophilous branch's copy is anchored by the knowledge-preserving
    // loss (Eq. 8), while the heterophilous branch re-learns its own
    // global-dependent embedding WITHOUT knowledge preserving, exactly as
    // Sec. III-C2 prescribes ("we omit the Knowledge Preserving step"). ---
    Rng init = rng_.Fork(3);
    const int64_t hidden = config.hidden;
    knowledge_mlp_ = std::make_unique<Mlp>(
        std::vector<int64_t>{smoothed_concat_->cols(), hidden,
                             static_cast<int64_t>(g.num_classes)},
        config.dropout, init);
    knowledge_mlp_he_ = std::make_unique<Mlp>(
        std::vector<int64_t>{smoothed_concat_he_->cols(), hidden,
                             static_cast<int64_t>(g.num_classes)},
        config.dropout, init);
    if (options_.use_topology_independent) {
      feature_mlp_ = std::make_unique<Mlp>(
          std::vector<int64_t>{g.feature_dim(), hidden,
                               static_cast<int64_t>(g.num_classes)},
          config.dropout, init);
    }
    if (options_.use_learnable_message) {
      for (int l = 0; l < options_.message_layers; ++l) {
        message_layers_.push_back(std::make_unique<Linear>(
            g.num_classes, g.num_classes, init));
        // Label-wise neighbour-message weights (LW-GCN-style [54]): a
        // linear map over the aggregated neighbour class distribution
        // learns per-class-pair positive/negative message strengths — the
        // signal structured heterophily carries.
        neighbor_layers_.push_back(std::make_unique<Linear>(
            g.num_classes, g.num_classes, init));
      }
    }
    std::vector<Tensor> params = knowledge_mlp_->Params();
    for (const Tensor& p : knowledge_mlp_he_->Params()) params.push_back(p);
    if (feature_mlp_ != nullptr) {
      for (const Tensor& p : feature_mlp_->Params()) params.push_back(p);
    }
    for (const auto& l : message_layers_) {
      for (const Tensor& p : l->Params()) params.push_back(p);
    }
    for (const auto& l : neighbor_layers_) {
      for (const Tensor& p : l->Params()) params.push_back(p);
    }
    optimizer_ = std::make_unique<Adam>(std::move(params),
                                        options_.personalized_lr,
                                        config.weight_decay);
  }

  double hcs() const { return hcs_; }
  const Graph& graph() const { return *graph_; }

  /// All prediction heads of one forward pass (probability tensors except
  /// the raw logits kept for the per-module CE terms).
  struct Heads {
    Tensor h_tilde_logits;     // Homophilous-branch H̃ (anchored by K.P.).
    Tensor h_tilde_he_logits;  // Heterophilous-branch H̃ (no K.P.).
    Tensor h_f_logits;         // Null when T.F. disabled.
    Tensor h_m_logits;         // Null when L.M. disabled.
    Tensor y_ho;
    Tensor y_he;
    Tensor combined;
  };

  Heads BuildHeads(bool training) {
    Heads heads;
    // Homophilous-branch knowledge embeddings H̃ (Eq. 7).
    heads.h_tilde_logits =
        knowledge_mlp_->Forward(smoothed_concat_, training, rng_);
    Tensor h_tilde_probs = ops::Softmax(heads.h_tilde_logits);
    last_h_tilde_probs_ = h_tilde_probs;

    // Homophilous branch (Eq. 9): (softmax(H̃) + P_hat) / 2.
    heads.y_ho = ops::Scale(
        ops::AddConst(h_tilde_probs, extractor_probs_), 0.5f);

    // Heterophilous branch (Eq. 10-13): its own global-dependent H̃,
    // learned free of the knowledge-preserving anchor.
    heads.h_tilde_he_logits =
        knowledge_mlp_he_->Forward(smoothed_concat_he_, training, rng_);
    std::vector<Tensor> he_parts = {ops::Softmax(heads.h_tilde_he_logits)};
    if (feature_mlp_ != nullptr) {
      heads.h_f_logits = feature_mlp_->Forward(ctx_.x, training, rng_);
      he_parts.push_back(ops::Softmax(heads.h_f_logits));
    }
    if (!message_layers_.empty()) {
      heads.h_m_logits = MessagePassing(heads.h_tilde_he_logits);
      he_parts.push_back(ops::Softmax(heads.h_m_logits));
    }
    heads.y_he = ops::MeanOf(he_parts);

    const auto w = static_cast<float>(hcs_);
    heads.combined =
        ops::Add(ops::Scale(heads.y_ho, w), ops::Scale(heads.y_he, 1.0f - w));
    return heads;
  }

  /// Builds the combined prediction Ŷ (Eq. 17) as a probability tensor.
  Tensor Predict(bool training) { return BuildHeads(training).combined; }

  /// Per-head test accuracies for diagnostics.
  AdaFglHeadDiagnostics Diagnostics() {
    AdaFglHeadDiagnostics d;
    if (graph_->test_nodes.empty()) return d;
    Heads heads = BuildHeads(/*training=*/false);
    const std::vector<int32_t>& test = graph_->test_nodes;
    const std::vector<int32_t>& labels = graph_->labels;
    d.extractor = Accuracy(extractor_probs_, labels, test);
    d.h_tilde = Accuracy(heads.h_tilde_logits->value(), labels, test);
    if (heads.h_f_logits != nullptr) {
      d.h_feature = Accuracy(heads.h_f_logits->value(), labels, test);
    }
    if (heads.h_m_logits != nullptr) {
      d.h_message = Accuracy(heads.h_m_logits->value(), labels, test);
    }
    d.y_ho = Accuracy(heads.y_ho->value(), labels, test);
    d.y_he = Accuracy(heads.y_he->value(), labels, test);
    d.combined = Accuracy(heads.combined->value(), labels, test);
    return d;
  }

  /// One personalized epoch (loss Eq. 14); returns the loss value.
  /// The CE term applies to the combined prediction and, with a smaller
  /// weight, to every module's own softmax output — each propagation module
  /// is trained end-to-end as Alg. 2 prescribes.
  double TrainEpoch() {
    if (graph_->train_nodes.empty()) return 0.0;
    optimizer_->ZeroGrad();
    Heads heads = BuildHeads(/*training=*/true);
    Tensor y = heads.combined;
    Tensor loss = ops::ProbNllLoss(y, graph_->labels, graph_->train_nodes);
    std::vector<Tensor> head_logits = {heads.h_tilde_logits,
                                       heads.h_tilde_he_logits};
    if (heads.h_f_logits != nullptr) head_logits.push_back(heads.h_f_logits);
    if (heads.h_m_logits != nullptr) head_logits.push_back(heads.h_m_logits);
    for (const Tensor& h : head_logits) {
      loss = ops::Add(
          loss, ops::Scale(ops::CrossEntropyWithLogits(
                               h, graph_->labels, graph_->train_nodes),
                           0.5f));
    }
    if (options_.use_knowledge_preserving) {
      // Knowledge preserving (Eq. 8), weighted by the extractor's local
      // reliability (the HCS).
      Tensor l_know =
          ops::FrobeniusLoss(last_h_tilde_probs_, extractor_probs_);
      loss = ops::Add(loss, ops::Scale(l_know, static_cast<float>(hcs_)));
    }
    Backward(loss);
    optimizer_->Step();
    return loss->value()(0, 0);
  }

  double EvalTest() {
    if (graph_->test_nodes.empty()) return 0.0;
    Tensor y = Predict(/*training=*/false);
    return Accuracy(y->value(), graph_->labels, graph_->test_nodes);
  }

 private:
  /// Learnable message-passing embedding (Eq. 11-12). PoSign/NeSign are
  /// ReLUs centered on the mean propagation weight, so affinities above the
  /// baseline act as positive messages and below as negative.
  Tensor MessagePassing(const Tensor& h_tilde) {
    const int64_t n = graph_->num_nodes();
    Tensor h_m = h_tilde;
    Tensor p = MakeConst(prop_matrix_);
    const float beta = beta_;
    for (size_t l = 0; l < message_layers_.size(); ++l) {
      const auto& layer = message_layers_[l];
      h_m = layer->Forward(h_m);
      // Label-wise neighbour messages: aggregate the one-hop class
      // distribution and learn signed per-class-pair weights.
      Tensor neighbor_dist = ops::SpMM(ctx_.norm_adj, ops::Softmax(h_m));
      Tensor lw = neighbor_layers_[l]->Forward(neighbor_dist);
      // P̃^(l) = beta P̃^(l-1) + (1-beta) softmax(H_m) softmax(H_m)^T.
      Tensor probs = ops::Softmax(h_m);
      Tensor gram = ops::MatMulTransB(probs, probs);
      p = ops::Add(ops::Scale(p, beta), ops::Scale(gram, 1.0f - beta));
      // Center at the mean entry so both signs carry mass.
      const float mean = SumAll(p->value()) /
                         static_cast<float>(std::max<int64_t>(1, n * n));
      Tensor centered = ops::AddConst(
          p, Matrix::Constant(n, n, -mean));
      Tensor pos = ops::Relu(centered);
      Tensor neg = ops::Relu(ops::Scale(centered, -1.0f));
      Tensor h_pos = ops::Scale(ops::MatMul(pos, h_m),
                                1.0f / static_cast<float>(n));
      Tensor h_neg = ops::Scale(ops::MatMul(neg, h_m),
                                1.0f / static_cast<float>(n));
      h_m = ops::Add(ops::Add(h_m, lw),
                     ops::Sub(h_pos, h_neg));  // Eq. 12 + label-wise term.
    }
    return h_m;
  }

  const Graph* graph_;
  AdaFglOptions options_;
  Rng rng_;
  GraphContext ctx_;

  Matrix extractor_probs_;   // P_hat.
  Matrix prop_matrix_;       // P̃.
  Tensor smoothed_concat_;     // [X̃^(1) || ... || X̃^(k)].
  Tensor smoothed_concat_he_;  // Same + even-hop Â² features.
  double hcs_ = 0.5;
  float beta_ = 0.7f;        // Effective beta (adaptive or fixed).

  std::unique_ptr<Mlp> knowledge_mlp_;                    // Theta_knowledge.
  std::unique_ptr<Mlp> knowledge_mlp_he_;                 // Hete-branch copy.
  std::unique_ptr<Mlp> feature_mlp_;                      // Theta_feature.
  std::vector<std::unique_ptr<Linear>> message_layers_;   // Theta_message.
  std::vector<std::unique_ptr<Linear>> neighbor_layers_;  // Label-wise maps.
  std::unique_ptr<Adam> optimizer_;
  Tensor last_h_tilde_probs_;
};

}  // namespace

AdaFglResult RunAdaFgl(const FederatedDataset& data, const FedConfig& config,
                       const AdaFglOptions& options) {
  AdaFglResult result;

  // ------------------------- Step 1: federated knowledge extractor.
  {
    obs::Span step1_span("adafgl.step1");
    FedConfig step1 = config;
    step1.post_local_epochs = 0;  // Personalization happens in Step 2.
    result.step1 = RunFedAvg(data, step1);
  }
  result.comm = result.step1.comm;
  result.bytes_up = result.step1.bytes_up;
  result.bytes_down = result.step1.bytes_down;
  if (obs::MetricsEnabled()) {
    static obs::Counter* const extractor_rounds =
        obs::MetricsRegistry::Global().GetCounter(
            "adafgl.extractor_rounds");
    extractor_rounds->Inc(config.rounds);
  }

  // ------------------------- Step 2: adaptive personalized propagation.
  obs::Span step2_span("adafgl.step2");
  std::vector<std::unique_ptr<PersonalizedClient>> clients;
  clients.reserve(data.clients.size());
  Rng seeder(config.seed ^ 0xadaf9fULL);
  {
    obs::Span setup_span("adafgl.step2.setup");
    for (size_t c = 0; c < data.clients.size(); ++c) {
      clients.push_back(std::make_unique<PersonalizedClient>(
          data.clients[c], config, options, result.step1.global_weights,
          seeder.NextU64()));
      result.client_hcs.push_back(clients.back()->hcs());
    }
  }
  // Per-client Homophily Confidence Score distribution (Fig. 7) — the
  // signal Step 2's adaptive mechanism keys off.
  if (obs::MetricsEnabled()) {
    static obs::Histogram* const hcs_hist =
        obs::MetricsRegistry::Global().GetHistogram("adafgl.hcs",
                                                    obs::UnitIntervalBounds());
    for (double h : result.client_hcs) hcs_hist->Record(h);
  }
  if (obs::EventsEnabled()) {
    for (size_t c = 0; c < result.client_hcs.size(); ++c) {
      obs::Event("adafgl.hcs")
          .I64("client", static_cast<int64_t>(c))
          .F64("hcs", result.client_hcs[c])
          .Emit();
    }
  }

  result.step2_epoch_acc.reserve(
      static_cast<size_t>(options.personalized_epochs));
  for (int epoch = 0; epoch < options.personalized_epochs; ++epoch) {
    for (auto& client : clients) client->TrainEpoch();
    if ((epoch + 1) % 5 == 0 || epoch + 1 == options.personalized_epochs) {
      double weighted = 0.0;
      int64_t total = 0;
      for (auto& client : clients) {
        const auto n_test =
            static_cast<int64_t>(client->graph().test_nodes.size());
        weighted += client->EvalTest() * static_cast<double>(n_test);
        total += n_test;
      }
      const double acc =
          total == 0 ? 0.0 : weighted / static_cast<double>(total);
      result.step2_epoch_acc.push_back(acc);
      if (obs::EventsEnabled()) {
        obs::Event("adafgl.step2_epoch")
            .I64("epoch", epoch + 1)
            .F64("test_acc", acc)
            .Emit();
      }
      obs::Logf(obs::LogLevel::kInfo, "AdaFGL step2 epoch %d: acc=%.4f",
                epoch + 1, acc);
    }
  }

  double weighted = 0.0;
  int64_t total = 0;
  for (auto& client : clients) {
    const double acc = client->EvalTest();
    result.client_test_acc.push_back(acc);
    result.client_heads.push_back(client->Diagnostics());
    if (options.export_predictions) {
      // Eval-mode forward is deterministic (no dropout, no rng draws), so
      // this is exactly the prediction EvalTest scored above.
      result.client_predictions.push_back(
          client->Predict(/*training=*/false)->value());
    }
    const auto n_test =
        static_cast<int64_t>(client->graph().test_nodes.size());
    weighted += acc * static_cast<double>(n_test);
    total += n_test;
  }
  result.final_test_acc =
      total == 0 ? 0.0 : weighted / static_cast<double>(total);
  return result;
}

FedRunResult RunAdaFglAsFed(const FederatedDataset& data,
                            const FedConfig& config,
                            const AdaFglOptions& options) {
  AdaFglResult r = RunAdaFgl(data, config, options);
  FedRunResult out = std::move(r.step1);
  out.final_test_acc = r.final_test_acc;
  out.client_test_acc = std::move(r.client_test_acc);
  out.bytes_up = r.bytes_up;
  out.bytes_down = r.bytes_down;
  return out;
}

}  // namespace adafgl
