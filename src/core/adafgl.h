#ifndef ADAFGL_CORE_ADAFGL_H_
#define ADAFGL_CORE_ADAFGL_H_

#include <vector>

#include "core/label_propagation.h"
#include "fed/federation.h"

namespace adafgl {

/// \brief Options of the AdaFGL paradigm (Sec. III). The boolean switches
/// implement the ablations of Tables VI-VII.
struct AdaFglOptions {
  /// Topology-optimisation coefficient alpha of Eq. 5 (used when
  /// `adaptive_coefficients` is false; Fig. 6 sweeps it).
  float alpha = 0.5f;
  /// Learnable-propagation coefficient beta of Eq. 11 (same caveat).
  float beta = 0.7f;
  /// When true (default), alpha and beta are set per client from its HCS —
  /// the paper's Fig. 6 finding ("larger alpha/beta preserve the original
  /// topology in homophilous settings, smaller optimise propagation rules
  /// in heterophilous settings") automated through the label-free homophily
  /// estimate, in line with AdaFGL's goal of avoiding manual tuning.
  bool adaptive_coefficients = true;
  /// Number of independent mask draws averaged into the HCS estimate
  /// (variance reduction on small train sets).
  int hcs_repeats = 5;
  /// Steps k of federated knowledge-guided smoothing (Eq. 7).
  int smoothing_steps = 2;
  /// Layers l of the learnable message-passing module (Eq. 11-12).
  int message_layers = 2;
  /// Local personalized-training epochs (Step 2).
  int personalized_epochs = 30;
  float personalized_lr = 0.01f;
  /// Probability of masking a training node when estimating the HCS.
  double hcs_mask_prob = 0.5;
  LabelPropOptions lp;

  // --- Ablation switches (Tables VI-VII). ---
  bool use_knowledge_preserving = true;   ///< K.P. (Eq. 8).
  bool use_topology_independent = true;   ///< T.F. (Eq. 10).
  bool use_learnable_message = true;      ///< L.M. (Eq. 11-12).
  bool use_local_topology = true;         ///< L.T. (Eq. 5-6).
  bool use_hcs = true;                    ///< HCS (Eq. 16-17).

  /// When true, AdaFglResult::client_predictions receives each client's
  /// final combined probability matrix Ŷ (Eq. 17, eval mode) — the frozen
  /// per-node predictions the serving path (serve/store.h) materializes
  /// into an embedding store. Off by default: the matrices are
  /// num_nodes x num_classes per client and training-only runs should not
  /// pay for them.
  bool export_predictions = false;
};

/// Per-client accuracy of each AdaFGL prediction head on the local test
/// set (instrumentation for the ablation analysis).
struct AdaFglHeadDiagnostics {
  double extractor = 0.0;   ///< P_hat (locally corrected extractor).
  double h_tilde = 0.0;     ///< Knowledge embeddings head (Eq. 7).
  double h_feature = 0.0;   ///< Topology-independent head (Eq. 10).
  double h_message = 0.0;   ///< Learnable message-passing head (Eq. 11-12).
  double y_ho = 0.0;        ///< Homophilous prediction (Eq. 9).
  double y_he = 0.0;        ///< Heterophilous prediction (Eq. 13).
  double combined = 0.0;    ///< Final adaptive prediction (Eq. 17).
};

/// \brief Result of an AdaFGL run: the federated Step-1 history plus the
/// personalized Step-2 trajectory and per-client diagnostics.
struct AdaFglResult {
  /// Step 1 (federated knowledge extractor) round history.
  FedRunResult step1;
  /// Mean test accuracy per Step-2 personalized epoch (Fig. 9).
  std::vector<double> step2_epoch_acc;
  /// Final test accuracy (client-size weighted).
  double final_test_acc = 0.0;
  /// Per-client final test accuracy.
  std::vector<double> client_test_acc;
  /// Per-client homophily confidence scores (Fig. 7).
  std::vector<double> client_hcs;
  /// Per-client head accuracies (ablation instrumentation).
  std::vector<AdaFglHeadDiagnostics> client_heads;
  /// Per-client final combined probability matrices Ŷ (Eq. 17), one
  /// num_nodes x num_classes row-stochastic matrix per client — populated
  /// only when AdaFglOptions::export_predictions is set. The freeze pass
  /// (serve::FreezeAdaFgl) turns these into the online embedding store;
  /// serving a node is then a row lookup, bitwise identical to direct
  /// Step 2 inference.
  std::vector<Matrix> client_predictions;
  /// Step-1 transport report (codec, thread count, measured wire bytes,
  /// simulated wall-clock). Step 2 is communication-free, so this is the
  /// whole paradigm's communication footprint.
  comm::CommReport comm;
  int64_t bytes_up = 0;
  int64_t bytes_down = 0;
};

/// \brief Runs the full AdaFGL paradigm on a federated dataset.
///
/// Step 1 (Alg. 1): standard FedAvg over `config.model` (a GCN by default)
/// for `config.rounds` rounds; the final aggregation is the federated
/// knowledge extractor, which every client uses to compute its optimised
/// probability propagation matrix (Eq. 5-6).
///
/// Step 2 (Alg. 2): per-client personalized propagation — homophilous
/// branch (Eq. 7-9), heterophilous branch (Eq. 10-13), adaptively combined
/// via the HCS (Eq. 15-17) — trained with loss Eq. 14. No further
/// communication happens in Step 2.
AdaFglResult RunAdaFgl(const FederatedDataset& data, const FedConfig& config,
                       const AdaFglOptions& options = {});

/// Adapter returning the common FedRunResult shape (history = Step 1
/// rounds) so AdaFGL slots into the shared experiment harness.
FedRunResult RunAdaFglAsFed(const FederatedDataset& data,
                            const FedConfig& config,
                            const AdaFglOptions& options = {});

}  // namespace adafgl

#endif  // ADAFGL_CORE_ADAFGL_H_
