#ifndef ADAFGL_EVAL_TUNER_H_
#define ADAFGL_EVAL_TUNER_H_

#include <functional>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/status.h"

namespace adafgl {

/// \brief Minimal hyperparameter search standing in for the paper's Optuna
/// usage (Sec. IV-A): random search with a coarse successive-halving-style
/// refinement around the incumbent.
///
/// A search space is a set of named parameters, each either a continuous
/// range or a discrete choice list (the paper grid-searches e.g.
/// {0.01, 0.05, 0.1, 0.5} and explores alpha/beta in [0, 1]).
class HyperTuner {
 public:
  /// One sampled configuration: name -> value.
  struct Trial {
    std::vector<std::pair<std::string, double>> params;
    double objective = 0.0;

    /// Value of a named parameter; aborts if absent (programming error).
    double Get(const std::string& name) const;
  };

  /// Objective: maps a trial's parameters to a score (higher is better),
  /// e.g. federated validation accuracy.
  using Objective = std::function<double(const Trial&)>;

  explicit HyperTuner(uint64_t seed) : rng_(seed) {}

  /// Adds a continuous parameter sampled uniformly in [lo, hi].
  void AddUniform(const std::string& name, double lo, double hi);

  /// Adds a discrete parameter sampled from the given choices.
  void AddChoice(const std::string& name, std::vector<double> choices);

  /// Runs `num_trials` evaluations: the first 2/3 are uniform random, the
  /// remainder perturb the incumbent (local refinement). Returns the best
  /// trial. Requires at least one parameter and num_trials >= 1.
  Trial Optimize(const Objective& objective, int num_trials);

  /// All evaluated trials of the last Optimize call, in order.
  const std::vector<Trial>& history() const { return history_; }

 private:
  struct ParamSpec {
    std::string name;
    bool is_choice = false;
    double lo = 0.0;
    double hi = 1.0;
    std::vector<double> choices;
  };

  Trial Sample();
  Trial Perturb(const Trial& base);

  std::vector<ParamSpec> space_;
  std::vector<Trial> history_;
  Rng rng_;
};

}  // namespace adafgl

#endif  // ADAFGL_EVAL_TUNER_H_
