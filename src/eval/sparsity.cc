#include "eval/sparsity.h"

#include <algorithm>

#include "tensor/status.h"

namespace adafgl {

Graph ApplyFeatureSparsity(const Graph& g, double missing_frac, Rng& rng) {
  ADAFGL_CHECK(missing_frac >= 0.0 && missing_frac <= 1.0);
  Graph out = g;
  std::vector<uint8_t> is_train(static_cast<size_t>(g.num_nodes()), 0);
  for (int32_t v : g.train_nodes) is_train[static_cast<size_t>(v)] = 1;
  for (int32_t v = 0; v < g.num_nodes(); ++v) {
    if (is_train[static_cast<size_t>(v)]) continue;
    if (rng.Bernoulli(missing_frac)) {
      float* row = out.features.row(v);
      std::fill(row, row + out.features.cols(), 0.0f);
    }
  }
  return out;
}

Graph ApplyEdgeSparsity(const Graph& g, double remove_frac, Rng& rng) {
  ADAFGL_CHECK(remove_frac >= 0.0 && remove_frac <= 1.0);
  std::vector<std::pair<int32_t, int32_t>> edges = UndirectedEdges(g.adj);
  std::vector<std::pair<int32_t, int32_t>> kept;
  kept.reserve(edges.size());
  for (const auto& e : edges) {
    if (!rng.Bernoulli(remove_frac)) kept.push_back(e);
  }
  Graph out = g;
  out.adj = CsrFromUndirectedEdges(g.num_nodes(), kept);
  return out;
}

Graph ApplyLabelSparsity(const Graph& g, double keep_frac, Rng& rng) {
  ADAFGL_CHECK(keep_frac > 0.0 && keep_frac <= 1.0);
  Graph out = g;
  // Group training nodes by class so every class keeps at least one.
  std::vector<std::vector<int32_t>> by_class(
      static_cast<size_t>(g.num_classes));
  for (int32_t v : g.train_nodes) {
    by_class[static_cast<size_t>(g.labels[static_cast<size_t>(v)])]
        .push_back(v);
  }
  out.train_nodes.clear();
  for (auto& nodes : by_class) {
    if (nodes.empty()) continue;
    for (int64_t i = static_cast<int64_t>(nodes.size()) - 1; i > 0; --i) {
      std::swap(nodes[static_cast<size_t>(i)],
                nodes[static_cast<size_t>(rng.UniformInt(i + 1))]);
    }
    const auto keep = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(nodes.size()) * keep_frac));
    for (size_t i = 0; i < keep; ++i) out.train_nodes.push_back(nodes[i]);
  }
  std::sort(out.train_nodes.begin(), out.train_nodes.end());
  return out;
}

FederatedDataset ApplySparsity(const FederatedDataset& data,
                               SparsityKind kind, double level, Rng& rng) {
  FederatedDataset out = data;
  for (size_t c = 0; c < out.clients.size(); ++c) {
    Rng client_rng = rng.Fork(c);
    switch (kind) {
      case SparsityKind::kFeature:
        out.clients[c] = ApplyFeatureSparsity(data.clients[c], level,
                                              client_rng);
        break;
      case SparsityKind::kEdge:
        out.clients[c] = ApplyEdgeSparsity(data.clients[c], level,
                                           client_rng);
        break;
      case SparsityKind::kLabel:
        out.clients[c] = ApplyLabelSparsity(data.clients[c], 1.0 - level,
                                            client_rng);
        break;
    }
  }
  return out;
}

}  // namespace adafgl
