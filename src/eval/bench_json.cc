#include "eval/bench_json.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/mem.h"
#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace adafgl {

namespace {

std::mutex& Mu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

}  // namespace

BenchReport::BenchReport() {
  ReadEnv();
  start_ns_ = obs::NowNs();
}

void BenchReport::ReadEnv() {
  const char* path = std::getenv("ADAFGL_BENCH_JSON");
  if (path != nullptr && path[0] != '\0') {
    enabled_ = true;
    path_ = path;
    return;
  }
  if (obs::MetricsEnabled()) {
    enabled_ = true;
    path_ = "bench.json";
    return;
  }
  enabled_ = false;
  path_.clear();
}

BenchReport& BenchReport::Global() {
  static BenchReport* instance = new BenchReport;
  return *instance;
}

void BenchReport::SetExperiment(const std::string& experiment,
                                const std::string& description) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(Mu());
  experiment_ = experiment;
  description_ = description;
  if (!atexit_registered_) {
    atexit_registered_ = true;
    std::atexit([] { BenchReport::Global().Write(); });
  }
}

void BenchReport::AddCell(const std::string& method,
                          const std::string& dataset,
                          const std::string& split, const MeanStd& acc) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(Mu());
  cells_.push_back({method, dataset, split, acc.mean, acc.std});
}

void BenchReport::AddRun(const std::string& method,
                         const std::string& dataset, const std::string& split,
                         const FedRunResult& result) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(Mu());
  Run run;
  run.method = method;
  run.dataset = dataset;
  run.split = split;
  run.final_acc = result.final_test_acc;
  run.codec = result.comm.codec;
  run.threads = result.comm.num_threads;
  run.stats = result.comm.stats;
  run.resilience = result.resilience;
  run.rounds = result.history;
  run.perf = result.perf;
  runs_.push_back(std::move(run));
}

void BenchReport::SetServe(const ServeSummary& serve) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(Mu());
  serve_ = serve;
}

std::string BenchReport::ToJson() {
  std::lock_guard<std::mutex> lock(Mu());
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(4);
  w.Key("experiment");
  w.String(experiment_);
  w.Key("description");
  w.String(description_);
  w.Key("knobs");
  w.BeginObject();
  w.Key("seeds");
  w.Int(EnvInt("ADAFGL_SEEDS", 1));
  w.Key("rounds");
  w.Int(EnvInt("ADAFGL_ROUNDS", 15));
  w.Key("epochs");
  w.Int(EnvInt("ADAFGL_EPOCHS", 3));
  w.Key("post_epochs");
  w.Int(EnvInt("ADAFGL_POST_EPOCHS", 10));
  w.Key("codec");
  w.String(EnvStr("ADAFGL_CODEC", "lossless"));
  w.Key("threads");
  w.Int(EnvInt("ADAFGL_THREADS", 1));
  w.EndObject();
  w.Key("cells");
  w.BeginArray();
  for (const Cell& c : cells_) {
    w.BeginObject();
    w.Key("method");
    w.String(c.method);
    w.Key("dataset");
    w.String(c.dataset);
    w.Key("split");
    w.String(c.split);
    w.Key("acc_mean");
    w.Double(c.acc_mean);
    w.Key("acc_std");
    w.Double(c.acc_std);
    w.EndObject();
  }
  w.EndArray();
  w.Key("runs");
  w.BeginArray();
  for (const Run& r : runs_) {
    w.BeginObject();
    w.Key("method");
    w.String(r.method);
    w.Key("dataset");
    w.String(r.dataset);
    w.Key("split");
    w.String(r.split);
    w.Key("final_acc");
    w.Double(r.final_acc);
    w.Key("codec");
    w.String(r.codec);
    w.Key("threads");
    w.Int(r.threads);
    w.Key("bytes_up");
    w.Int(r.stats.bytes_up);
    w.Key("bytes_down");
    w.Int(r.stats.bytes_down);
    w.Key("messages_up");
    w.Int(r.stats.messages_up);
    w.Key("messages_down");
    w.Int(r.stats.messages_down);
    w.Key("drops");
    w.Int(r.stats.drops);
    w.Key("dropouts");
    w.Int(r.stats.dropouts);
    w.Key("corruptions");
    w.Int(r.stats.corruptions);
    w.Key("nacks");
    w.Int(r.stats.nacks);
    w.Key("deadline_cuts");
    w.Int(r.stats.deadline_cuts);
    w.Key("crashes");
    w.Int(r.stats.crashes);
    w.Key("rejected_updates");
    w.Int(r.resilience.rejected_updates);
    w.Key("clipped_updates");
    w.Int(r.resilience.clipped_updates);
    w.Key("rounds_skipped");
    w.Int(r.resilience.rounds_skipped);
    w.Key("sim_seconds");
    w.Double(r.stats.sim_seconds);
    w.Key("wall_seconds");
    w.Double(r.perf.wall_seconds);
    w.Key("flops");
    w.Int(r.perf.flops);
    w.Key("peak_tensor_bytes");
    w.Int(r.perf.peak_tensor_bytes);
    w.Key("rounds");
    w.BeginArray();
    for (const RoundRecord& rec : r.rounds) {
      w.BeginObject();
      w.Key("round");
      w.Int(rec.round);
      w.Key("train_loss");
      w.Double(rec.train_loss);
      w.Key("test_acc");
      w.Double(rec.test_acc);
      w.Key("participants");
      w.Int(rec.participants);
      w.Key("quorum");
      w.Double(rec.quorum);
      w.Key("bytes_up");
      w.Int(rec.bytes_up);
      w.Key("bytes_down");
      w.Int(rec.bytes_down);
      w.Key("sim_seconds");
      w.Double(rec.sim_seconds);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  // Whole-process cost profile: wall-clock since the report was created,
  // kernel flops / peak tensor bytes (non-zero with ADAFGL_METRICS=1),
  // and the OS-reported peak RSS.
  w.Key("perf");
  w.BeginObject();
  w.Key("wall_seconds");
  w.Double(static_cast<double>(obs::NowNs() - start_ns_) / 1e9);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  w.Key("flops");
  w.Int(reg.GetCounter("tensor.matmul.flops")->value() +
        reg.GetCounter("tensor.spmm.flops")->value());
  w.Key("peak_tensor_bytes");
  w.Int(obs::mem::PeakBytes());
  w.Key("peak_rss_bytes");
  w.Int(obs::mem::ReadPeakRssBytes());
  w.Key("allocs");
  w.Int(obs::mem::AllocCount());
  w.EndObject();
  // Per-phase span aggregation (populated when tracing was on).
  w.Key("phases");
  w.BeginArray();
  for (const auto& [name, stat] : obs::PhaseSummary()) {
    w.BeginObject();
    w.Key("name");
    w.String(name);
    w.Key("count");
    w.Int(stat.count);
    w.Key("total_ms");
    w.Double(static_cast<double>(stat.total_ns) / 1e6);
    w.Key("peak_bytes");
    w.Int(stat.peak_bytes);
    w.EndObject();
  }
  w.EndArray();
  // Online-serving load-bench summary (schema v4). Always emitted —
  // all-zero unless SetServe ran — so the key-set check in
  // tools/bench_to_json.sh sees one schema for every bench.
  w.Key("serve");
  w.BeginObject();
  w.Key("requests");
  w.Int(serve_.requests);
  w.Key("completed");
  w.Int(serve_.completed);
  w.Key("rejected");
  w.Int(serve_.rejected);
  w.Key("batches");
  w.Int(serve_.batches);
  w.Key("cache_hits");
  w.Int(serve_.cache_hits);
  w.Key("cache_misses");
  w.Int(serve_.cache_misses);
  w.Key("qps");
  w.Double(serve_.qps);
  w.Key("p50_latency_us");
  w.Double(serve_.p50_latency_us);
  w.Key("p99_latency_us");
  w.Double(serve_.p99_latency_us);
  w.Key("mean_latency_us");
  w.Double(serve_.mean_latency_us);
  w.Key("store_bytes");
  w.Int(serve_.store_bytes);
  w.Key("threads");
  w.Int(serve_.threads);
  w.Key("batch_size");
  w.Int(serve_.batch_size);
  w.EndObject();
  w.EndObject();
  return w.Take();
}

void BenchReport::Write() {
  {
    std::lock_guard<std::mutex> lock(Mu());
    if (!enabled_) return;
    if (experiment_.empty() && cells_.empty() && runs_.empty()) return;
  }
  const std::string doc = ToJson();
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    obs::Logf(obs::LogLevel::kError, "bench.json: cannot open %s",
              path_.c_str());
    return;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "[adafgl] bench summary written to %s\n",
               path_.c_str());
}

void BenchReport::ResetForTest() {
  std::lock_guard<std::mutex> lock(Mu());
  experiment_.clear();
  description_.clear();
  cells_.clear();
  runs_.clear();
  serve_ = ServeSummary();
  ReadEnv();
}

}  // namespace adafgl
