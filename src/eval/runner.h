#ifndef ADAFGL_EVAL_RUNNER_H_
#define ADAFGL_EVAL_RUNNER_H_

#include <string>
#include <vector>

#include "core/adafgl.h"
#include "fed/splits.h"

namespace adafgl {

/// \brief One fully-specified experiment: dataset + split + federation
/// settings. The unit every bench binary sweeps over.
struct ExperimentSpec {
  std::string dataset = "Cora";
  /// "community" or "noniid".
  std::string split = "community";
  InjectionMode injection = InjectionMode::kRandom;
  double injection_ratio = 0.5;
  int32_t num_clients = 10;
  FedConfig fed;
};

/// Generates the dataset, applies the split, and returns the federated
/// dataset for a given seed. Sets fed.inductive from the registry entry.
FederatedDataset PrepareFederatedDataset(const ExperimentSpec& spec,
                                         uint64_t seed);

/// Runs one algorithm by name on a prepared federated dataset:
///  * "Fed<Zoo>" (FedGCN, FedGCNII, FedGAMLP, FedGPRGNN, FedGGCN,
///    FedGloGNN, FedSGC, FedMLP) — FedAvg over that backbone;
///  * "FedGL", "GCFL+", "FedSage+", "FED-PUB" — the FGL baselines;
///  * "AdaFGL" — the full paradigm (default options).
FedRunResult RunAlgorithm(const std::string& algorithm,
                          const FederatedDataset& data,
                          const FedConfig& config);

/// End-to-end convenience: prepare + run; returns final test accuracy.
double RunExperimentOnce(const ExperimentSpec& spec,
                         const std::string& algorithm, uint64_t seed);

/// Repeats RunExperimentOnce over `seeds` deterministic seeds.
std::vector<double> RunExperiment(const ExperimentSpec& spec,
                                  const std::string& algorithm, int seeds);

/// The transductive method list of Table II, in row order.
std::vector<std::string> Table2Methods();

/// The inductive method list of Table III, in row order.
std::vector<std::string> Table3Methods();

/// A FedConfig scaled for bench runs on one CPU core: rounds and epochs
/// come from ADAFGL_ROUNDS / ADAFGL_EPOCHS env overrides when present.
FedConfig BenchFedConfig();

}  // namespace adafgl

#endif  // ADAFGL_EVAL_RUNNER_H_
