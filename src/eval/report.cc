#include "eval/report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace adafgl {

MeanStd Aggregate(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - out.mean) * (v - out.mean);
    out.std = std::sqrt(ss / static_cast<double>(values.size()));
  }
  return out;
}

std::string FormatAccPct(const MeanStd& value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f±%.1f", value.mean * 100.0,
                value.std * 100.0);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> header, int col_width)
    : header_(std::move(header)), col_width_(col_width) {}

void TablePrinter::PrintHeader() const {
  PrintRow(header_);
  std::string sep;
  for (size_t i = 0; i < header_.size(); ++i) {
    sep += std::string(static_cast<size_t>(col_width_), '-');
    if (i + 1 < header_.size()) sep += "-+-";
  }
  std::printf("%s\n", sep.c_str());
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  std::string line;
  for (size_t i = 0; i < header_.size(); ++i) {
    std::string cell = i < cells.size() ? cells[i] : "";
    // Account for UTF-8 plus-minus (3 bytes, 1 display column).
    size_t display = cell.size();
    size_t pm = 0;
    for (size_t p = 0; (p = cell.find("±", p)) != std::string::npos;
         p += 2) {
      ++pm;
    }
    display -= pm * 1;  // "±" is 2 bytes, displays as 1 char.
    if (display < static_cast<size_t>(col_width_)) {
      cell += std::string(static_cast<size_t>(col_width_) - display, ' ');
    }
    line += cell;
    if (i + 1 < header_.size()) line += " | ";
  }
  std::printf("%s\n", line.c_str());
}

int EnvInt(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const int v = std::atoi(raw);
  return v > 0 ? v : fallback;
}

std::string EnvStr(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || raw[0] == '\0') ? fallback : std::string(raw);
}

double EnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const double v = std::atof(raw);
  return v > 0.0 ? v : fallback;
}

std::string FormatBytes(int64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  } else if (b < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / 1024.0);
  } else if (b < 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", b / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  b / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

std::string FormatSimSeconds(double seconds) {
  char buf[64];
  if (seconds <= 0.0) {
    return "0 s";
  }
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f ms", seconds * 1000.0);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

}  // namespace adafgl
