#ifndef ADAFGL_EVAL_REPORT_H_
#define ADAFGL_EVAL_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace adafgl {

/// Mean and standard deviation of a sample.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};

/// Sample statistics (population std when n > 1, else 0).
MeanStd Aggregate(const std::vector<double>& values);

/// "81.3±0.9"-style accuracy formatting (inputs in [0,1], printed as %).
std::string FormatAccPct(const MeanStd& value);

/// \brief Minimal fixed-width table printer for bench output — prints the
/// same row/column structure the paper's tables use.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header,
                        int col_width = 12);

  /// Prints the header row and separator.
  void PrintHeader() const;

  /// Prints one row; cells beyond the header width are ignored.
  void PrintRow(const std::vector<std::string>& cells) const;

 private:
  std::vector<std::string> header_;
  int col_width_;
};

/// Reads a positive integer environment override, or `fallback` when the
/// variable is unset/invalid. Benches use this for seed/round counts
/// (ADAFGL_SEEDS, ADAFGL_ROUNDS, ...).
int EnvInt(const char* name, int fallback);

/// Reads a non-empty string environment override, or `fallback` when the
/// variable is unset/empty (ADAFGL_CODEC, ...).
std::string EnvStr(const char* name, const std::string& fallback);

/// Reads a positive double environment override, or `fallback` when the
/// variable is unset/invalid (ADAFGL_TOPK_RATIO, ...).
double EnvDouble(const char* name, double fallback);

/// Human-readable byte count: "512 B", "3.2 KiB", "1.8 MiB", "2.1 GiB".
std::string FormatBytes(int64_t bytes);

/// Human-readable simulated duration: "0 s" / "850 ms" / "12.4 s" /
/// "3.1 min".
std::string FormatSimSeconds(double seconds);

}  // namespace adafgl

#endif  // ADAFGL_EVAL_REPORT_H_
