#include "eval/tuner.h"

#include <algorithm>
#include <cmath>

namespace adafgl {

double HyperTuner::Trial::Get(const std::string& name) const {
  for (const auto& [key, value] : params) {
    if (key == name) return value;
  }
  ADAFGL_CHECK(false && "unknown hyperparameter name");
  return 0.0;
}

void HyperTuner::AddUniform(const std::string& name, double lo, double hi) {
  ADAFGL_CHECK(lo <= hi);
  ParamSpec spec;
  spec.name = name;
  spec.lo = lo;
  spec.hi = hi;
  space_.push_back(std::move(spec));
}

void HyperTuner::AddChoice(const std::string& name,
                           std::vector<double> choices) {
  ADAFGL_CHECK(!choices.empty());
  ParamSpec spec;
  spec.name = name;
  spec.is_choice = true;
  spec.choices = std::move(choices);
  space_.push_back(std::move(spec));
}

HyperTuner::Trial HyperTuner::Sample() {
  Trial t;
  for (const ParamSpec& spec : space_) {
    const double v =
        spec.is_choice
            ? spec.choices[static_cast<size_t>(
                  rng_.UniformInt(static_cast<int64_t>(spec.choices.size())))]
            : rng_.Uniform(spec.lo, spec.hi);
    t.params.emplace_back(spec.name, v);
  }
  return t;
}

HyperTuner::Trial HyperTuner::Perturb(const Trial& base) {
  Trial t;
  for (size_t i = 0; i < space_.size(); ++i) {
    const ParamSpec& spec = space_[i];
    const double current = base.params[i].second;
    double v;
    if (spec.is_choice) {
      // Stay put with probability 1/2, else resample.
      v = rng_.Bernoulli(0.5)
              ? current
              : spec.choices[static_cast<size_t>(rng_.UniformInt(
                    static_cast<int64_t>(spec.choices.size())))];
    } else {
      const double width = 0.15 * (spec.hi - spec.lo);
      v = std::clamp(current + rng_.Normal() * width, spec.lo, spec.hi);
    }
    t.params.emplace_back(spec.name, v);
  }
  return t;
}

HyperTuner::Trial HyperTuner::Optimize(const Objective& objective,
                                       int num_trials) {
  ADAFGL_CHECK(!space_.empty());
  ADAFGL_CHECK(num_trials >= 1);
  history_.clear();
  Trial best;
  const int explore = std::max(1, num_trials * 2 / 3);
  for (int i = 0; i < num_trials; ++i) {
    Trial t = (i < explore || history_.empty()) ? Sample() : Perturb(best);
    t.objective = objective(t);
    if (history_.empty() || t.objective > best.objective) best = t;
    history_.push_back(std::move(t));
  }
  return best;
}

}  // namespace adafgl
