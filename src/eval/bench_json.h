#ifndef ADAFGL_EVAL_BENCH_JSON_H_
#define ADAFGL_EVAL_BENCH_JSON_H_

#include <string>
#include <vector>

#include "eval/report.h"
#include "fed/federation.h"

namespace adafgl {

/// Serving-bench summary recorded into bench.json's `serve` block
/// (schema v4). Latencies are microseconds; `qps` is completed requests
/// over the measured load window.
struct ServeSummary {
  int64_t requests = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t batches = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double qps = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double mean_latency_us = 0.0;
  int64_t store_bytes = 0;
  int threads = 0;
  int batch_size = 0;
};

/// \brief Machine-readable run summary every bench binary emits.
///
/// Activated by ADAFGL_BENCH_JSON=<path>, or by ADAFGL_METRICS=1 (which
/// defaults the path to "bench.json" in the working directory). Disabled
/// (the default) it records nothing and writes nothing, so bench stdout
/// stays byte-identical.
///
/// The document has a fixed schema (tools/bench_to_json.sh diffs the key
/// set against tools/bench_schema_example.json):
///
/// ```json
/// {
///   "schema_version": 4,
///   "experiment": "Table VIII",
///   "description": "...",
///   "knobs": {"seeds", "rounds", "epochs", "post_epochs",
///             "codec", "threads"},
///   "cells": [{"method", "dataset", "split", "acc_mean", "acc_std"}],
///   "runs":  [{"method", "dataset", "split", "final_acc", "codec",
///              "threads", "bytes_up", "bytes_down", "messages_up",
///              "messages_down", "drops", "dropouts", "corruptions",
///              "nacks", "deadline_cuts", "crashes", "rejected_updates",
///              "clipped_updates", "rounds_skipped", "sim_seconds",
///              "wall_seconds", "flops", "peak_tensor_bytes",
///              "rounds": [{"round", "train_loss", "test_acc",
///                          "participants", "quorum", "bytes_up",
///                          "bytes_down", "sim_seconds"}]}],
///   "perf":  {"wall_seconds", "flops", "peak_tensor_bytes",
///             "peak_rss_bytes", "allocs"},
///   "phases": [{"name", "count", "total_ms", "peak_bytes"}],
///   "serve": {"requests", "completed", "rejected", "batches",
///             "cache_hits", "cache_misses", "qps",
///             "p50_latency_us", "p99_latency_us", "mean_latency_us",
///             "store_bytes", "threads", "batch_size"}
/// }
/// ```
///
/// Schema v3 adds the fault-tolerance accounting: per-run transport fault
/// counters (corruptions/nacks/deadline_cuts/crashes from comm::CommStats),
/// server-side recovery tallies (rejected/clipped updates, skipped rounds
/// from ResilienceStats), and the per-round participation quorum.
///
/// Schema v4 adds the `serve` block — the online-serving load-bench
/// summary (serve/server.h). The block is emitted in every document (all
/// zeros unless SetServe was called) so the key-set schema check stays
/// stable across benches.
///
/// `cells` are the aggregated table entries (mean ± std over seeds);
/// `runs` carry the full per-round trajectory of individual runs for the
/// benches that record them (table8's measured-communication section),
/// each with its measured wall-clock/flop/peak-memory cost (RunPerf).
/// `perf` is the whole process (wall-clock since the report was created,
/// kernel flops, peak tensor bytes, peak RSS); `phases` mirrors
/// obs::PhaseSummary() and is empty unless tracing was on. All methods
/// are thread-safe; recording is a no-op when disabled.
class BenchReport {
 public:
  /// Process-wide instance (leaked; safe during exit).
  static BenchReport& Global();

  /// True when a bench.json destination is configured.
  bool enabled() const { return enabled_; }
  const std::string& path() const { return path_; }

  /// Names the experiment (PrintPreamble calls this); the first call also
  /// registers the atexit writer.
  void SetExperiment(const std::string& experiment,
                     const std::string& description);

  /// Records one aggregated table cell.
  void AddCell(const std::string& method, const std::string& dataset,
               const std::string& split, const MeanStd& acc);

  /// Records one full run with its per-round trajectory and transport
  /// accounting.
  void AddRun(const std::string& method, const std::string& dataset,
              const std::string& split, const FedRunResult& result);

  /// Records the serving load-bench summary (last call wins).
  void SetServe(const ServeSummary& serve);

  /// Serializes the document and writes it to path(); no-op when disabled
  /// or when nothing was recorded. Idempotent (later calls rewrite).
  void Write();

  /// Renders the current document (exposed for tests).
  std::string ToJson();

  /// Drops all recorded state and re-reads the environment (tests only).
  void ResetForTest();

 private:
  BenchReport();

  struct Cell {
    std::string method, dataset, split;
    double acc_mean = 0.0, acc_std = 0.0;
  };
  struct Run {
    std::string method, dataset, split;
    double final_acc = 0.0;
    std::string codec;
    int threads = 1;
    comm::CommStats stats;
    ResilienceStats resilience;
    std::vector<RoundRecord> rounds;
    RunPerf perf;
  };

  void ReadEnv();

  bool enabled_ = false;
  int64_t start_ns_ = 0;
  std::string path_;
  std::string experiment_;
  std::string description_;
  std::vector<Cell> cells_;
  std::vector<Run> runs_;
  ServeSummary serve_;
  bool atexit_registered_ = false;
};

}  // namespace adafgl

#endif  // ADAFGL_EVAL_BENCH_JSON_H_
