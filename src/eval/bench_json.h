#ifndef ADAFGL_EVAL_BENCH_JSON_H_
#define ADAFGL_EVAL_BENCH_JSON_H_

#include <string>
#include <vector>

#include "eval/report.h"
#include "fed/federation.h"

namespace adafgl {

/// \brief Machine-readable run summary every bench binary emits.
///
/// Activated by ADAFGL_BENCH_JSON=<path>, or by ADAFGL_METRICS=1 (which
/// defaults the path to "bench.json" in the working directory). Disabled
/// (the default) it records nothing and writes nothing, so bench stdout
/// stays byte-identical.
///
/// The document has a fixed schema (tools/bench_to_json.sh diffs the key
/// set against tools/bench_schema_example.json):
///
/// ```json
/// {
///   "schema_version": 3,
///   "experiment": "Table VIII",
///   "description": "...",
///   "knobs": {"seeds", "rounds", "epochs", "post_epochs",
///             "codec", "threads"},
///   "cells": [{"method", "dataset", "split", "acc_mean", "acc_std"}],
///   "runs":  [{"method", "dataset", "split", "final_acc", "codec",
///              "threads", "bytes_up", "bytes_down", "messages_up",
///              "messages_down", "drops", "dropouts", "corruptions",
///              "nacks", "deadline_cuts", "crashes", "rejected_updates",
///              "clipped_updates", "rounds_skipped", "sim_seconds",
///              "wall_seconds", "flops", "peak_tensor_bytes",
///              "rounds": [{"round", "train_loss", "test_acc",
///                          "participants", "quorum", "bytes_up",
///                          "bytes_down", "sim_seconds"}]}],
///   "perf":  {"wall_seconds", "flops", "peak_tensor_bytes",
///             "peak_rss_bytes", "allocs"},
///   "phases": [{"name", "count", "total_ms", "peak_bytes"}]
/// }
/// ```
///
/// Schema v3 adds the fault-tolerance accounting: per-run transport fault
/// counters (corruptions/nacks/deadline_cuts/crashes from comm::CommStats),
/// server-side recovery tallies (rejected/clipped updates, skipped rounds
/// from ResilienceStats), and the per-round participation quorum.
///
/// `cells` are the aggregated table entries (mean ± std over seeds);
/// `runs` carry the full per-round trajectory of individual runs for the
/// benches that record them (table8's measured-communication section),
/// each with its measured wall-clock/flop/peak-memory cost (RunPerf).
/// `perf` is the whole process (wall-clock since the report was created,
/// kernel flops, peak tensor bytes, peak RSS); `phases` mirrors
/// obs::PhaseSummary() and is empty unless tracing was on. All methods
/// are thread-safe; recording is a no-op when disabled.
class BenchReport {
 public:
  /// Process-wide instance (leaked; safe during exit).
  static BenchReport& Global();

  /// True when a bench.json destination is configured.
  bool enabled() const { return enabled_; }
  const std::string& path() const { return path_; }

  /// Names the experiment (PrintPreamble calls this); the first call also
  /// registers the atexit writer.
  void SetExperiment(const std::string& experiment,
                     const std::string& description);

  /// Records one aggregated table cell.
  void AddCell(const std::string& method, const std::string& dataset,
               const std::string& split, const MeanStd& acc);

  /// Records one full run with its per-round trajectory and transport
  /// accounting.
  void AddRun(const std::string& method, const std::string& dataset,
              const std::string& split, const FedRunResult& result);

  /// Serializes the document and writes it to path(); no-op when disabled
  /// or when nothing was recorded. Idempotent (later calls rewrite).
  void Write();

  /// Renders the current document (exposed for tests).
  std::string ToJson();

  /// Drops all recorded state and re-reads the environment (tests only).
  void ResetForTest();

 private:
  BenchReport();

  struct Cell {
    std::string method, dataset, split;
    double acc_mean = 0.0, acc_std = 0.0;
  };
  struct Run {
    std::string method, dataset, split;
    double final_acc = 0.0;
    std::string codec;
    int threads = 1;
    comm::CommStats stats;
    ResilienceStats resilience;
    std::vector<RoundRecord> rounds;
    RunPerf perf;
  };

  void ReadEnv();

  bool enabled_ = false;
  int64_t start_ns_ = 0;
  std::string path_;
  std::string experiment_;
  std::string description_;
  std::vector<Cell> cells_;
  std::vector<Run> runs_;
  bool atexit_registered_ = false;
};

}  // namespace adafgl

#endif  // ADAFGL_EVAL_BENCH_JSON_H_
