#ifndef ADAFGL_EVAL_SPARSITY_H_
#define ADAFGL_EVAL_SPARSITY_H_

#include "fed/splits.h"
#include "graph/graph.h"
#include "tensor/rng.h"

namespace adafgl {

/// Sparse-setting transforms for the Q4 experiments (Fig. 10). Each returns
/// a modified copy; labels and untouched structure are preserved.

/// Feature sparsity: zeroes the feature vectors of `missing_frac` of the
/// *unlabeled* nodes (the paper assumes unlabeled-node features go missing).
Graph ApplyFeatureSparsity(const Graph& g, double missing_frac, Rng& rng);

/// Edge sparsity: removes `remove_frac` of the edges uniformly at random.
Graph ApplyEdgeSparsity(const Graph& g, double remove_frac, Rng& rng);

/// Label sparsity: keeps only `keep_frac` of the training nodes (per
/// class, at least one kept); dropped nodes are removed from every split.
Graph ApplyLabelSparsity(const Graph& g, double keep_frac, Rng& rng);

/// Applies one of the transforms to every client of a federated dataset.
enum class SparsityKind { kFeature, kEdge, kLabel };
FederatedDataset ApplySparsity(const FederatedDataset& data,
                               SparsityKind kind, double level, Rng& rng);

}  // namespace adafgl

#endif  // ADAFGL_EVAL_SPARSITY_H_
