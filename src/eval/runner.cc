#include "eval/runner.h"

#include <chrono>

#include "data/registry.h"
#include "eval/report.h"
#include "fed/fedgl.h"
#include "fed/fedpub.h"
#include "fed/fedsage.h"
#include "fed/gcfl.h"
#include "nn/models.h"
#include "obs/log.h"
#include "obs/mem.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/status.h"

namespace adafgl {

namespace {

/// MatMul + SpMM multiply-adds counted so far (0 when metrics are off).
int64_t ReadKernelFlops() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  return reg.GetCounter("tensor.matmul.flops")->value() +
         reg.GetCounter("tensor.spmm.flops")->value();
}

}  // namespace

FederatedDataset PrepareFederatedDataset(const ExperimentSpec& spec,
                                         uint64_t seed) {
  Result<DatasetSpec> ds = FindDataset(spec.dataset);
  ADAFGL_CHECK(ds.ok());
  Rng rng(seed);
  Rng data_rng = rng.Fork(1);
  Graph g = GenerateDataset(ds.value(), data_rng);
  Rng split_rng = rng.Fork(2);
  if (spec.split == "community") {
    return CommunitySplit(g, spec.num_clients, split_rng);
  }
  ADAFGL_CHECK(spec.split == "noniid");
  return StructureNonIidSplit(g, spec.num_clients, spec.injection,
                              spec.injection_ratio, split_rng);
}

namespace {

/// Dispatch only; RunAlgorithm wraps this with the span and the perf
/// measurement.
FedRunResult DispatchAlgorithm(const std::string& algorithm,
                               const FederatedDataset& data,
                               const FedConfig& config) {
  if (algorithm == "AdaFGL") return RunAdaFglAsFed(data, config);
  if (algorithm == "FedGL") return RunFedGL(data, config);
  if (algorithm == "GCFL+") return RunGcflPlus(data, config);
  if (algorithm == "FedSage+") return RunFedSagePlus(data, config);
  if (algorithm == "FED-PUB") return RunFedPub(data, config);
  // "Fed<model>": FedAvg over a zoo backbone.
  if (algorithm.rfind("Fed", 0) == 0) {
    const std::string model = algorithm.substr(3);
    for (const std::string& name : ModelZooNames()) {
      if (name == model) {
        FedConfig cfg = config;
        cfg.model = model;
        return RunFedAvg(data, cfg);
      }
    }
  }
  ADAFGL_CHECK(false && "unknown algorithm name");
  return {};
}

}  // namespace

FedRunResult RunAlgorithm(const std::string& algorithm,
                          const FederatedDataset& data,
                          const FedConfig& config) {
  // Lazy name: the string is only built when tracing/profiling/metrics
  // are on, so disabled runs allocate nothing here.
  obs::Span span([&] { return "run." + algorithm; });
  const bool metrics = obs::MetricsEnabled();
  const int64_t flops0 = metrics ? ReadKernelFlops() : 0;
  if (metrics) obs::mem::ResetPeakToLive();
  const auto t0 = std::chrono::steady_clock::now();
  FedRunResult result = DispatchAlgorithm(algorithm, data, config);
  result.perf.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (metrics) {
    result.perf.flops = ReadKernelFlops() - flops0;
    result.perf.peak_tensor_bytes = obs::mem::PeakBytes();
  }
  return result;
}

double RunExperimentOnce(const ExperimentSpec& spec,
                         const std::string& algorithm, uint64_t seed) {
  FederatedDataset data = PrepareFederatedDataset(spec, seed);
  FedConfig cfg = spec.fed;
  cfg.seed = seed ^ 0xa15eedULL;
  Result<DatasetSpec> ds = FindDataset(spec.dataset);
  ADAFGL_CHECK(ds.ok());
  cfg.inductive = ds.value().inductive;
  const double acc = RunAlgorithm(algorithm, data, cfg).final_test_acc;
  if (obs::EventsEnabled()) {
    obs::Event("eval.run")
        .Str("algorithm", algorithm)
        .Str("dataset", spec.dataset)
        .Str("split", spec.split)
        .I64("seed", static_cast<int64_t>(seed))
        .F64("final_acc", acc)
        .Emit();
  }
  obs::Logf(obs::LogLevel::kInfo, "%s on %s (%s, seed=%llu): acc=%.4f",
            algorithm.c_str(), spec.dataset.c_str(), spec.split.c_str(),
            static_cast<unsigned long long>(seed), acc);
  return acc;
}

std::vector<double> RunExperiment(const ExperimentSpec& spec,
                                  const std::string& algorithm, int seeds) {
  std::vector<double> accs;
  accs.reserve(static_cast<size_t>(seeds));
  for (int s = 0; s < seeds; ++s) {
    accs.push_back(
        RunExperimentOnce(spec, algorithm, 1000ULL + 7ULL * s));
  }
  return accs;
}

std::vector<std::string> Table2Methods() {
  return {"FedGCN",  "FedGCNII",  "FedGAMLP", "FedGGCN",
          "FedGloGNN", "FedGPRGNN", "FedGL",    "GCFL+",
          "FedSage+", "FED-PUB",   "AdaFGL"};
}

std::vector<std::string> Table3Methods() {
  return {"FedGCNII", "FedGloGNN", "FedGL",  "GCFL+",
          "FedSage+", "FED-PUB",   "AdaFGL"};
}

FedConfig BenchFedConfig() {
  FedConfig cfg;
  cfg.rounds = EnvInt("ADAFGL_ROUNDS", 15);
  cfg.local_epochs = EnvInt("ADAFGL_EPOCHS", 3);
  cfg.post_local_epochs = EnvInt("ADAFGL_POST_EPOCHS", 10);
  cfg.eval_every = 2;
  // Transport overrides: defaults (lossless, 1 thread, perfect link)
  // reproduce the historical serial results bit-for-bit.
  cfg.comm.codec = EnvStr("ADAFGL_CODEC", cfg.comm.codec);
  cfg.comm.topk_ratio = EnvDouble("ADAFGL_TOPK_RATIO", cfg.comm.topk_ratio);
  cfg.comm.num_threads = EnvInt("ADAFGL_THREADS", cfg.comm.num_threads);
  // Fault tolerance overrides: ADAFGL_AGGREGATOR / ADAFGL_TRIM_RATIO /
  // ADAFGL_MIN_PARTICIPATION / ADAFGL_OVER_SELECT / ADAFGL_MAX_UPDATE_NORM
  // (fed/resilience.h) plus the per-round simulated-time deadline.
  cfg.resilience = ResilienceFromEnv(cfg.resilience);
  cfg.comm.link.round_deadline_s =
      EnvDouble("ADAFGL_ROUND_DEADLINE", cfg.comm.link.round_deadline_s);
  return cfg;
}

}  // namespace adafgl
