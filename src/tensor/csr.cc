#include "tensor/csr.h"

#include <algorithm>
#include <cmath>

#include "obs/prof.h"
#include "obs/registry.h"
#include "par/par.h"

namespace adafgl {

namespace {

/// SpMM accounting (ADAFGL_METRICS=1): calls and 2*nnz*cols multiply-adds.
inline void CountSpMM(int64_t nnz, int64_t cols) {
  static obs::Counter* const calls =
      obs::MetricsRegistry::Global().GetCounter("tensor.spmm.calls");
  static obs::Counter* const flops =
      obs::MetricsRegistry::Global().GetCounter("tensor.spmm.flops");
  calls->Inc();
  flops->Inc(2 * nnz * cols);
}

}  // namespace

CsrMatrix CsrMatrix::FromTriplets(int32_t rows, int32_t cols,
                                  std::vector<Triplet> triplets) {
  CsrMatrix m(rows, cols);
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.indices_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::vector<int64_t> counts(static_cast<size_t>(rows) + 1, 0);
  size_t i = 0;
  while (i < triplets.size()) {
    const int32_t r = triplets[i].row;
    const int32_t c = triplets[i].col;
    ADAFGL_CHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    float v = 0.0f;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      v += triplets[i].value;
      ++i;
    }
    m.indices_.push_back(c);
    m.values_.push_back(v);
    ++counts[static_cast<size_t>(r) + 1];
  }
  for (size_t r = 1; r < counts.size(); ++r) counts[r] += counts[r - 1];
  m.indptr_ = std::move(counts);
  m.mem_.Track(m.BufferBytes());  // Buffers grew after construction.
  return m;
}

bool CsrMatrix::HasEntry(int32_t r, int32_t c) const {
  ADAFGL_CHECK(r >= 0 && r < rows_);
  const auto begin = indices_.begin() + indptr_[static_cast<size_t>(r)];
  const auto end = indices_.begin() + indptr_[static_cast<size_t>(r) + 1];
  return std::binary_search(begin, end, c);
}

Matrix CsrMatrix::Multiply(const Matrix& x) const {
  ADAFGL_CHECK(cols_ == x.rows());
  obs::prof::KernelFrame frame("tensor.spmm");
  if (obs::MetricsEnabled()) CountSpMM(nnz(), x.cols());
  Matrix y(rows_, x.cols());
  const int64_t d = x.cols();
  par::ThreadPool& pool = par::KernelPool();
  if (pool.num_threads() <= 1) {
    for (int32_t r = 0; r < rows_; ++r) {
      float* yr = y.row(r);
      for (int64_t p = indptr_[static_cast<size_t>(r)];
           p < indptr_[static_cast<size_t>(r) + 1]; ++p) {
        const float v = values_[static_cast<size_t>(p)];
        const float* xr = x.row(indices_[static_cast<size_t>(p)]);
        for (int64_t j = 0; j < d; ++j) yr[j] += v * xr[j];
      }
    }
    return y;
  }
  // Row-partitioned: each output row is owned by one chunk and accumulated
  // in the same p-ascending order as the serial loop, so the partition
  // cannot change the bits.
  pool.ParallelForChunks(
      static_cast<size_t>(rows_), 0, [&](size_t r0, size_t r1) {
        obs::prof::KernelFrame chunk_frame("tensor.spmm",
                                           /*dedup_top=*/true);
        for (size_t r = r0; r < r1; ++r) {
          float* yr = y.row(static_cast<int64_t>(r));
          for (int64_t p = indptr_[r]; p < indptr_[r + 1]; ++p) {
            const float v = values_[static_cast<size_t>(p)];
            const float* xr = x.row(indices_[static_cast<size_t>(p)]);
            for (int64_t j = 0; j < d; ++j) yr[j] += v * xr[j];
          }
        }
      });
  return y;
}

Matrix CsrMatrix::MultiplyTranspose(const Matrix& x) const {
  ADAFGL_CHECK(rows_ == x.rows());
  obs::prof::KernelFrame frame("tensor.spmm");
  if (obs::MetricsEnabled()) CountSpMM(nnz(), x.cols());
  Matrix y(cols_, x.cols());
  const int64_t d = x.cols();
  par::ThreadPool& pool = par::KernelPool();
  if (pool.num_threads() <= 1 || nnz() == 0) {
    for (int32_t r = 0; r < rows_; ++r) {
      const float* xr = x.row(r);
      for (int64_t p = indptr_[static_cast<size_t>(r)];
           p < indptr_[static_cast<size_t>(r) + 1]; ++p) {
        const float v = values_[static_cast<size_t>(p)];
        float* yr = y.row(indices_[static_cast<size_t>(p)]);
        for (int64_t j = 0; j < d; ++j) yr[j] += v * xr[j];
      }
    }
    return y;
  }
  // The serial loop scatters into y.row(col) — racy under a row partition.
  // Instead, build a CSC view (entries grouped by column, input rows
  // ascending within each column) and *gather* per output row. Per output
  // element the contributions then arrive in exactly the serial r-ascending
  // order, so the result is bit-identical to the scatter for any thread
  // count. The CSC layout itself is built from per-chunk integer column
  // histograms; integer sums are order-independent and the chunk-major,
  // row-ascending fill yields a unique layout, so any chunking produces
  // identical csc arrays.
  const size_t rows = static_cast<size_t>(rows_);
  const size_t cols = static_cast<size_t>(cols_);
  const size_t n_chunks =
      std::min(rows, static_cast<size_t>(pool.num_threads()));
  std::vector<size_t> bounds(n_chunks + 1);
  for (size_t c = 0; c <= n_chunks; ++c) bounds[c] = rows * c / n_chunks;

  // Stage 1: per-chunk histogram of column indices.
  std::vector<std::vector<int64_t>> hist(n_chunks,
                                         std::vector<int64_t>(cols, 0));
  pool.ParallelFor(n_chunks, [&](size_t c) {
    obs::prof::KernelFrame chunk_frame("tensor.spmm", /*dedup_top=*/true);
    std::vector<int64_t>& h = hist[c];
    for (int64_t p = indptr_[bounds[c]]; p < indptr_[bounds[c + 1]]; ++p) {
      ++h[static_cast<size_t>(indices_[static_cast<size_t>(p)])];
    }
  });

  // Stage 2 (serial): exclusive scan into column starts, then turn each
  // chunk's histogram into its write cursor within the column segment.
  std::vector<int64_t> col_ptr(cols + 1, 0);
  for (size_t col = 0; col < cols; ++col) {
    int64_t running = col_ptr[col];
    for (size_t c = 0; c < n_chunks; ++c) {
      const int64_t count = hist[c][col];
      hist[c][col] = running;
      running += count;
    }
    col_ptr[col + 1] = running;
  }

  // Stage 3: fill the CSC arrays. Chunks own disjoint cursor ranges per
  // column; rows ascend within a chunk and chunks ascend by row range, so
  // every column segment ends up globally row-ascending.
  std::vector<int32_t> csc_rows(static_cast<size_t>(nnz()));
  std::vector<float> csc_vals(static_cast<size_t>(nnz()));
  pool.ParallelFor(n_chunks, [&](size_t c) {
    obs::prof::KernelFrame chunk_frame("tensor.spmm", /*dedup_top=*/true);
    std::vector<int64_t>& cursor = hist[c];
    for (size_t r = bounds[c]; r < bounds[c + 1]; ++r) {
      for (int64_t p = indptr_[r]; p < indptr_[r + 1]; ++p) {
        const size_t col =
            static_cast<size_t>(indices_[static_cast<size_t>(p)]);
        const size_t pos = static_cast<size_t>(cursor[col]++);
        csc_rows[pos] = static_cast<int32_t>(r);
        csc_vals[pos] = values_[static_cast<size_t>(p)];
      }
    }
  });

  // Stage 4: gather — each output row owned by one chunk, accumulated in
  // serial (row-ascending) order.
  pool.ParallelForChunks(cols, 0, [&](size_t c0, size_t c1) {
    obs::prof::KernelFrame chunk_frame("tensor.spmm", /*dedup_top=*/true);
    for (size_t col = c0; col < c1; ++col) {
      float* yr = y.row(static_cast<int64_t>(col));
      for (int64_t p = col_ptr[col]; p < col_ptr[col + 1]; ++p) {
        const float v = csc_vals[static_cast<size_t>(p)];
        const float* xr = x.row(csc_rows[static_cast<size_t>(p)]);
        for (int64_t j = 0; j < d; ++j) yr[j] += v * xr[j];
      }
    }
  });
  return y;
}

Matrix CsrMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (int32_t r = 0; r < rows_; ++r) {
    ForEachInRow(r, [&](int32_t c, float v) { d(r, c) = v; });
  }
  return d;
}

CsrMatrix CsrMatrix::Transposed() const {
  std::vector<Triplet> trip;
  trip.reserve(static_cast<size_t>(nnz()));
  for (int32_t r = 0; r < rows_; ++r) {
    ForEachInRow(r, [&](int32_t c, float v) { trip.push_back({c, r, v}); });
  }
  return FromTriplets(cols_, rows_, std::move(trip));
}

std::vector<float> CsrMatrix::RowSums() const {
  std::vector<float> sums(static_cast<size_t>(rows_), 0.0f);
  for (int32_t r = 0; r < rows_; ++r) {
    ForEachInRow(r, [&](int32_t, float v) {
      sums[static_cast<size_t>(r)] += v;
    });
  }
  return sums;
}

CsrMatrix CsrMatrix::WithSelfLoops() const {
  ADAFGL_CHECK(rows_ == cols_);
  std::vector<Triplet> trip;
  trip.reserve(static_cast<size_t>(nnz()) + static_cast<size_t>(rows_));
  for (int32_t r = 0; r < rows_; ++r) {
    ForEachInRow(r, [&](int32_t c, float v) {
      if (c != r) trip.push_back({r, c, v});
    });
    trip.push_back({r, r, 1.0f});
  }
  return FromTriplets(rows_, cols_, std::move(trip));
}

CsrMatrix CsrMatrix::Normalized(float r) const {
  ADAFGL_CHECK(rows_ == cols_);
  const std::vector<float> deg = RowSums();
  // d_out^{r-1} A d_in^{-r}; for symmetric A row sums equal column sums.
  std::vector<float> left(deg.size()), right(deg.size());
  for (size_t i = 0; i < deg.size(); ++i) {
    const float d = std::max(deg[i], 1e-12f);
    left[i] = std::pow(d, r - 1.0f);
    right[i] = std::pow(d, -r);
  }
  CsrMatrix out = *this;
  for (int32_t row = 0; row < rows_; ++row) {
    for (int64_t p = out.indptr_[static_cast<size_t>(row)];
         p < out.indptr_[static_cast<size_t>(row) + 1]; ++p) {
      const int32_t col = out.indices_[static_cast<size_t>(p)];
      out.values_[static_cast<size_t>(p)] *=
          left[static_cast<size_t>(row)] * right[static_cast<size_t>(col)];
    }
  }
  return out;
}

CsrMatrix CsrFromUndirectedEdges(
    int32_t num_nodes, const std::vector<std::pair<int32_t, int32_t>>& edges) {
  std::vector<Triplet> trip;
  trip.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    ADAFGL_CHECK(u >= 0 && u < num_nodes && v >= 0 && v < num_nodes);
    if (u == v) continue;  // Self loops are added explicitly by callers.
    trip.push_back({u, v, 1.0f});
    trip.push_back({v, u, 1.0f});
  }
  CsrMatrix m = CsrMatrix::FromTriplets(num_nodes, num_nodes, std::move(trip));
  // Collapse duplicate-edge sums back to binary weights.
  for (float& v : m.mutable_values()) v = v > 0.0f ? 1.0f : 0.0f;
  return m;
}

}  // namespace adafgl
