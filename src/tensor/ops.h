#ifndef ADAFGL_TENSOR_OPS_H_
#define ADAFGL_TENSOR_OPS_H_

#include <memory>
#include <vector>

#include "tensor/csr.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace adafgl {

/// Differentiable operations over Tensor handles. Every op creates a new
/// graph node whose backward closure scatters gradients to its parents.
namespace ops {

/// c = a * b (dense matmul).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// c = a * b^T. Used for Gram products H H^T (pass the same tensor twice).
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// c = A * x, A a fixed sparse operator (adjacency / propagation matrix).
/// The shared_ptr keeps A alive for the backward pass.
Tensor SpMM(std::shared_ptr<const CsrMatrix> a, const Tensor& x);

/// Elementwise sum (same shape).
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise difference (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise product (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);

/// s * a for a compile-time-known scalar s.
Tensor Scale(const Tensor& a, float s);

/// s * a where s is a 1x1 tensor (learnable scalar).
Tensor ScaleByScalar(const Tensor& a, const Tensor& s);

/// gamma * a + (1 - gamma) * b where gamma is a 1x1 tensor.
Tensor Lerp(const Tensor& a, const Tensor& b, const Tensor& gamma);

/// x + row-broadcast bias (bias is 1 x cols).
Tensor AddBias(const Tensor& x, const Tensor& bias);

/// max(x, 0).
Tensor Relu(const Tensor& x);

/// tanh(x).
Tensor Tanh(const Tensor& x);

/// logistic sigmoid.
Tensor Sigmoid(const Tensor& x);

/// Inverted dropout; identity when !training or p == 0.
Tensor Dropout(const Tensor& x, float p, bool training, Rng& rng);

/// Horizontal concatenation along columns.
Tensor ConcatCols(const std::vector<Tensor>& xs);

/// Row-wise softmax.
Tensor Softmax(const Tensor& x);

/// Row-wise log-softmax.
Tensor LogSoftmax(const Tensor& x);

/// Mean over `mask` rows of -log_probs[r, labels[r]]. Scalar output.
Tensor NllLoss(const Tensor& log_probs, const std::vector<int32_t>& labels,
               const std::vector<int32_t>& mask);

/// Cross entropy on raw logits (LogSoftmax + NllLoss fused at API level).
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int32_t>& labels,
                              const std::vector<int32_t>& mask);

/// Mean over `mask` rows of -log(probs[r, labels[r]]). For predictions that
/// are already probability mixtures (AdaFGL Eq. 17). Probabilities are
/// clamped at 1e-8.
Tensor ProbNllLoss(const Tensor& probs, const std::vector<int32_t>& labels,
                   const std::vector<int32_t>& mask);

/// Frobenius norm ||a - target||_F against a constant target (Eq. 8).
Tensor FrobeniusLoss(const Tensor& a, const Matrix& target);

/// Mean squared error against a constant target. Scalar output.
Tensor MseLoss(const Tensor& a, const Matrix& target);

/// Mean absolute value of entries (L1 regulariser for sparse masks).
Tensor L1Penalty(const Tensor& a);

/// Sum of scalar (1x1) tensors.
Tensor AddScalars(const std::vector<Tensor>& xs);

/// Mean of same-shaped tensors.
Tensor MeanOf(const std::vector<Tensor>& xs);

/// x + c for a constant matrix c (gradient passes through to x only).
Tensor AddConst(const Tensor& x, const Matrix& c);

/// Row-wise scaling: out[i, j] = x[i, j] * s[i, 0] (s is n x 1).
Tensor ScaleRows(const Tensor& x, const Tensor& s);

/// Column slice [begin, begin + count) of x.
Tensor SliceCols(const Tensor& x, int64_t begin, int64_t count);

/// Row gather: out[i, :] = x[index[i], :].
Tensor GatherRows(const Tensor& x, const std::vector<int32_t>& index);

}  // namespace ops
}  // namespace adafgl

#endif  // ADAFGL_TENSOR_OPS_H_
