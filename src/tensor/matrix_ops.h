#ifndef ADAFGL_TENSOR_MATRIX_OPS_H_
#define ADAFGL_TENSOR_MATRIX_OPS_H_

#include "tensor/matrix.h"

namespace adafgl {

/// Dense numerical kernels over Matrix. All functions are pure (inputs by
/// const reference, result returned by value) unless the name says otherwise.

/// C = A * B.  Requires a.cols() == b.rows().
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A^T * B.  Requires a.rows() == b.rows().
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// C = A * B^T.  Requires a.cols() == b.cols().
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// Elementwise a + b.
Matrix Add(const Matrix& a, const Matrix& b);

/// Elementwise a - b.
Matrix Sub(const Matrix& a, const Matrix& b);

/// Elementwise a * b (Hadamard product).
Matrix Mul(const Matrix& a, const Matrix& b);

/// Elementwise s * a.
Matrix Scale(const Matrix& a, float s);

/// In-place a += s * b.
void Axpy(float s, const Matrix& b, Matrix* a);

/// Adds a 1 x cols row-vector b to every row of a.
Matrix AddRowBroadcast(const Matrix& a, const Matrix& b);

/// Transpose.
Matrix Transpose(const Matrix& a);

/// Row-wise softmax.
Matrix Softmax(const Matrix& a);

/// Row-wise log-softmax (numerically stable).
Matrix LogSoftmax(const Matrix& a);

/// Elementwise max(a, 0).
Matrix Relu(const Matrix& a);

/// Elementwise tanh.
Matrix TanhMat(const Matrix& a);

/// Elementwise logistic sigmoid.
Matrix SigmoidMat(const Matrix& a);

/// Column-wise mean as a 1 x cols matrix.
Matrix ColMean(const Matrix& a);

/// Sum of column `c` over the given rows (all rows if `rows` empty).
float SumAll(const Matrix& a);

/// Frobenius norm ||a||_F.
float FrobeniusNorm(const Matrix& a);

/// Squared Frobenius distance ||a - b||_F^2.
float FrobeniusDistanceSquared(const Matrix& a, const Matrix& b);

/// Horizontal concatenation [a | b].
Matrix ConcatCols(const Matrix& a, const Matrix& b);

/// Horizontal concatenation of several matrices with equal row counts.
Matrix ConcatColsAll(const std::vector<Matrix>& mats);

/// Rows of `a` selected by `index` (gather).
Matrix GatherRows(const Matrix& a, const std::vector<int32_t>& index);

/// L2-normalises every row in place; zero rows are left untouched.
void RowL2NormalizeInPlace(Matrix* a);

/// Per-row argmax as a vector of column indices.
std::vector<int32_t> ArgmaxRows(const Matrix& a);

/// Fraction of rows whose argmax equals labels[row], over rows in `mask`.
/// `mask` holds row indices. Returns 0 when mask is empty.
double Accuracy(const Matrix& logits, const std::vector<int32_t>& labels,
                const std::vector<int32_t>& mask);

/// Dot product of the flattened matrices. Requires same shape.
double Dot(const Matrix& a, const Matrix& b);

/// Maximum absolute entry difference; convenient for tests.
float MaxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace adafgl

#endif  // ADAFGL_TENSOR_MATRIX_OPS_H_
