#ifndef ADAFGL_TENSOR_STATUS_H_
#define ADAFGL_TENSOR_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace adafgl {

/// \brief Lightweight status object for fallible library APIs.
///
/// The library avoids exceptions (database-style codebase convention);
/// operations that can fail on user input return `Status` or `Result<T>`.
/// Programming errors (violated invariants) use `ADAFGL_CHECK` instead.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kOutOfRange,
    kNotFound,
    kInternal,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "UNKNOWN";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "INVALID_ARGUMENT"; break;
      case Code::kOutOfRange: name = "OUT_OF_RANGE"; break;
      case Code::kNotFound: name = "NOT_FOUND"; break;
      case Code::kInternal: name = "INTERNAL"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Code code_;
  std::string message_;
};

/// \brief Value-or-status result, analogous to absl::StatusOr.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit, mirrors StatusOr.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)), value_() {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  // StatusOr-style accessors; valid only when ok().
  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  T&& operator*() && { return std::move(value_); }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

  /// Returns the contained value, aborting if the result holds an error.
  T ValueOrDie() && {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return std::move(value_);
  }

 private:
  Status status_;
  T value_;
};

namespace internal {
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}
}  // namespace internal

}  // namespace adafgl

/// Aborts with a diagnostic when `cond` is false. Used for invariants that
/// indicate programming errors, never for user-input validation.
#define ADAFGL_CHECK(cond)                                          \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::adafgl::internal::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                               \
  } while (0)

#define ADAFGL_RETURN_IF_ERROR(expr)           \
  do {                                         \
    ::adafgl::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // ADAFGL_TENSOR_STATUS_H_
