#ifndef ADAFGL_TENSOR_OPTIM_H_
#define ADAFGL_TENSOR_OPTIM_H_

#include <vector>

#include "tensor/tensor.h"

namespace adafgl {

/// \brief Interface for first-order optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored in the params.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad() {
    for (const Tensor& p : params_) p->ZeroGrad();
  }

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// \brief Plain SGD with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float weight_decay = 0.0f)
      : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

  void Step() override;

 private:
  float lr_;
  float weight_decay_;
};

/// \brief Adam (Kingma & Ba) with decoupled L2 on the gradient.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float weight_decay = 0.0f,
       float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

 private:
  float lr_;
  float weight_decay_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace adafgl

#endif  // ADAFGL_TENSOR_OPTIM_H_
