#ifndef ADAFGL_TENSOR_OPTIM_H_
#define ADAFGL_TENSOR_OPTIM_H_

#include <vector>

#include "tensor/tensor.h"

namespace adafgl {

/// \brief Interface for first-order optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored in the params.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad() {
    for (const Tensor& p : params_) p->ZeroGrad();
  }

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// \brief Plain SGD with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float weight_decay = 0.0f)
      : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

  void Step() override;

 private:
  float lr_;
  float weight_decay_;
};

/// \brief Adam (Kingma & Ba) with decoupled L2 on the gradient.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float weight_decay = 0.0f,
       float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

  /// Moment state for checkpointing: the per-parameter first and second
  /// moments, concatenated [m..., v...], copied out.
  std::vector<Matrix> ExportState() const;

  /// Step counter (bias-correction time) for checkpointing.
  int64_t step_count() const { return t_; }

  /// Restores moments + step counter from ExportState output (moments must
  /// match the parameter shapes). Inverse of ExportState/step_count.
  void ImportState(const std::vector<Matrix>& moments, int64_t step_count);

  /// Drops all moment state and the step counter (fresh-start recovery for
  /// a crashed client with no checkpoint).
  void ResetState();

 private:
  float lr_;
  float weight_decay_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace adafgl

#endif  // ADAFGL_TENSOR_OPTIM_H_
