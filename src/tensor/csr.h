#ifndef ADAFGL_TENSOR_CSR_H_
#define ADAFGL_TENSOR_CSR_H_

#include <cstdint>
#include <vector>

#include "obs/mem.h"
#include "tensor/matrix.h"
#include "tensor/status.h"

namespace adafgl {

/// \brief A single (row, col, value) entry used when building CSR matrices.
struct Triplet {
  int32_t row;
  int32_t col;
  float value;
};

/// \brief Compressed sparse row matrix (float32 values).
///
/// The workhorse for graph adjacency and all propagation operators. Rows and
/// column indices are int32 (graphs in this library are < 2^31 nodes);
/// indptr is int64 to allow > 2^31 non-zeros in principle. Like Matrix,
/// buffer footprints are reported to the memory accountant (obs/mem.h)
/// when ADAFGL_METRICS=1.
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0) {
    indptr_.push_back(0);
    mem_.Track(BufferBytes());
  }

  /// An empty (all-zero) matrix of the given shape.
  CsrMatrix(int32_t rows, int32_t cols)
      : rows_(rows), cols_(cols),
        indptr_(static_cast<size_t>(rows) + 1, 0) {
    mem_.Track(BufferBytes());
  }

  CsrMatrix(const CsrMatrix& o)
      : rows_(o.rows_), cols_(o.cols_), indptr_(o.indptr_),
        indices_(o.indices_), values_(o.values_) {
    mem_.Track(BufferBytes());
  }
  CsrMatrix& operator=(const CsrMatrix& o) {
    rows_ = o.rows_;
    cols_ = o.cols_;
    indptr_ = o.indptr_;
    indices_ = o.indices_;
    values_ = o.values_;
    mem_.Track(BufferBytes());
    return *this;
  }
  CsrMatrix(CsrMatrix&&) = default;
  CsrMatrix& operator=(CsrMatrix&&) = default;

  /// Builds from unsorted triplets; duplicate (row, col) values are summed.
  static CsrMatrix FromTriplets(int32_t rows, int32_t cols,
                                std::vector<Triplet> triplets);

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(indices_.size()); }

  const std::vector<int64_t>& indptr() const { return indptr_; }
  const std::vector<int32_t>& indices() const { return indices_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }

  /// Number of stored entries in row r.
  int64_t RowNnz(int32_t r) const {
    return indptr_[static_cast<size_t>(r) + 1] - indptr_[static_cast<size_t>(r)];
  }

  /// Iterates row r: calls fn(col, value) for every stored entry.
  template <typename Fn>
  void ForEachInRow(int32_t r, Fn&& fn) const {
    ADAFGL_CHECK(r >= 0 && r < rows_);
    for (int64_t p = indptr_[static_cast<size_t>(r)];
         p < indptr_[static_cast<size_t>(r) + 1]; ++p) {
      fn(indices_[static_cast<size_t>(p)], values_[static_cast<size_t>(p)]);
    }
  }

  /// True if (r, c) has a stored entry (binary search; rows are sorted).
  bool HasEntry(int32_t r, int32_t c) const;

  /// y = this * x (CSR x dense).
  Matrix Multiply(const Matrix& x) const;

  /// y = this^T * x. Requires rows() == x.rows().
  Matrix MultiplyTranspose(const Matrix& x) const;

  /// Dense copy; intended for small matrices and tests.
  Matrix ToDense() const;

  /// Transposed copy.
  CsrMatrix Transposed() const;

  /// Per-row sum of values (weighted out-degree) as a length-rows vector.
  std::vector<float> RowSums() const;

  /// Returns a copy with unit diagonal entries added (existing diagonal
  /// entries are overwritten with 1).
  CsrMatrix WithSelfLoops() const;

  /// Symmetric/random-walk normalisation  D^{r-1} A D^{-r}  (Eq. 1 of the
  /// paper); `r` = 0.5 gives GCN's D^{-1/2} A D^{-1/2}, r = 1 the
  /// random-walk variant, r = 0 the reverse-transition variant.
  CsrMatrix Normalized(float r) const;

 private:
  int64_t BufferBytes() const {
    return static_cast<int64_t>(indptr_.capacity() * sizeof(int64_t) +
                                indices_.capacity() * sizeof(int32_t) +
                                values_.capacity() * sizeof(float));
  }

  int32_t rows_;
  int32_t cols_;
  std::vector<int64_t> indptr_;
  std::vector<int32_t> indices_;
  std::vector<float> values_;
  obs::mem::AllocHandle mem_;
};

/// Builds a CSR from an undirected edge list: every {u, v} pair is inserted
/// both ways with value 1; duplicates collapse to a single entry of value 1.
CsrMatrix CsrFromUndirectedEdges(
    int32_t num_nodes, const std::vector<std::pair<int32_t, int32_t>>& edges);

}  // namespace adafgl

#endif  // ADAFGL_TENSOR_CSR_H_
