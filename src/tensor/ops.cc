#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/matrix_ops.h"

namespace adafgl {
namespace ops {

namespace {

/// Creates an interior node. requires_grad if any parent requires it.
Tensor MakeOpNode(Matrix value, std::vector<Tensor> parents,
                  std::function<void(TensorNode&)> backward) {
  bool needs = false;
  for (const Tensor& p : parents) needs = needs || p->requires_grad();
  Tensor node = std::make_shared<TensorNode>(std::move(value), needs);
  if (needs) {
    node->set_parents(std::move(parents));
    node->set_backward_fn(std::move(backward));
  }
  return node;
}

Matrix ScalarMatrix(float v) {
  Matrix m(1, 1);
  m(0, 0) = v;
  return m;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Matrix value = adafgl::MatMul(a->value(), b->value());
  return MakeOpNode(
      std::move(value), {a, b}, [a, b](TensorNode& n) {
        if (a->requires_grad()) {
          a->AccumulateGrad(adafgl::MatMulTransB(n.grad(), b->value()));
        }
        if (b->requires_grad()) {
          b->AccumulateGrad(adafgl::MatMulTransA(a->value(), n.grad()));
        }
      });
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  Matrix value = adafgl::MatMulTransB(a->value(), b->value());
  return MakeOpNode(
      std::move(value), {a, b}, [a, b](TensorNode& n) {
        // c = a b^T;  dL/da = g b;  dL/db = g^T a.
        if (a->requires_grad()) {
          a->AccumulateGrad(adafgl::MatMul(n.grad(), b->value()));
        }
        if (b->requires_grad()) {
          b->AccumulateGrad(adafgl::MatMulTransA(n.grad(), a->value()));
        }
      });
}

Tensor SpMM(std::shared_ptr<const CsrMatrix> a, const Tensor& x) {
  ADAFGL_CHECK(a != nullptr);
  Matrix value = a->Multiply(x->value());
  return MakeOpNode(
      std::move(value), {x}, [a, x](TensorNode& n) {
        if (x->requires_grad()) {
          x->AccumulateGrad(a->MultiplyTranspose(n.grad()));
        }
      });
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Matrix value = adafgl::Add(a->value(), b->value());
  return MakeOpNode(std::move(value), {a, b}, [a, b](TensorNode& n) {
    if (a->requires_grad()) a->AccumulateGrad(n.grad());
    if (b->requires_grad()) b->AccumulateGrad(n.grad());
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Matrix value = adafgl::Sub(a->value(), b->value());
  return MakeOpNode(std::move(value), {a, b}, [a, b](TensorNode& n) {
    if (a->requires_grad()) a->AccumulateGrad(n.grad());
    if (b->requires_grad()) b->AccumulateGrad(adafgl::Scale(n.grad(), -1.0f));
  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  Matrix value = adafgl::Mul(a->value(), b->value());
  return MakeOpNode(std::move(value), {a, b}, [a, b](TensorNode& n) {
    if (a->requires_grad()) {
      a->AccumulateGrad(adafgl::Mul(n.grad(), b->value()));
    }
    if (b->requires_grad()) {
      b->AccumulateGrad(adafgl::Mul(n.grad(), a->value()));
    }
  });
}

Tensor Scale(const Tensor& a, float s) {
  Matrix value = adafgl::Scale(a->value(), s);
  return MakeOpNode(std::move(value), {a}, [a, s](TensorNode& n) {
    if (a->requires_grad()) a->AccumulateGrad(adafgl::Scale(n.grad(), s));
  });
}

Tensor ScaleByScalar(const Tensor& a, const Tensor& s) {
  ADAFGL_CHECK(s->rows() == 1 && s->cols() == 1);
  const float sv = s->value()(0, 0);
  Matrix value = adafgl::Scale(a->value(), sv);
  return MakeOpNode(std::move(value), {a, s}, [a, s, sv](TensorNode& n) {
    if (a->requires_grad()) a->AccumulateGrad(adafgl::Scale(n.grad(), sv));
    if (s->requires_grad()) {
      s->AccumulateGrad(
          ScalarMatrix(static_cast<float>(adafgl::Dot(n.grad(), a->value()))));
    }
  });
}

Tensor Lerp(const Tensor& a, const Tensor& b, const Tensor& gamma) {
  ADAFGL_CHECK(gamma->rows() == 1 && gamma->cols() == 1);
  const float g = gamma->value()(0, 0);
  Matrix value =
      adafgl::Add(adafgl::Scale(a->value(), g),
                  adafgl::Scale(b->value(), 1.0f - g));
  return MakeOpNode(
      std::move(value), {a, b, gamma}, [a, b, gamma, g](TensorNode& n) {
        if (a->requires_grad()) a->AccumulateGrad(adafgl::Scale(n.grad(), g));
        if (b->requires_grad()) {
          b->AccumulateGrad(adafgl::Scale(n.grad(), 1.0f - g));
        }
        if (gamma->requires_grad()) {
          const Matrix diff = adafgl::Sub(a->value(), b->value());
          gamma->AccumulateGrad(
              ScalarMatrix(static_cast<float>(adafgl::Dot(n.grad(), diff))));
        }
      });
}

Tensor AddBias(const Tensor& x, const Tensor& bias) {
  Matrix value = adafgl::AddRowBroadcast(x->value(), bias->value());
  return MakeOpNode(std::move(value), {x, bias}, [x, bias](TensorNode& n) {
    if (x->requires_grad()) x->AccumulateGrad(n.grad());
    if (bias->requires_grad()) {
      Matrix gb(1, n.grad().cols());
      for (int64_t i = 0; i < n.grad().rows(); ++i) {
        const float* gi = n.grad().row(i);
        for (int64_t j = 0; j < n.grad().cols(); ++j) gb(0, j) += gi[j];
      }
      bias->AccumulateGrad(gb);
    }
  });
}

Tensor Relu(const Tensor& x) {
  Matrix value = adafgl::Relu(x->value());
  return MakeOpNode(std::move(value), {x}, [x](TensorNode& n) {
    if (!x->requires_grad()) return;
    Matrix g = n.grad();
    const float* v = x->value().data();
    float* gd = g.data();
    for (int64_t i = 0; i < g.size(); ++i) {
      if (v[i] <= 0.0f) gd[i] = 0.0f;
    }
    x->AccumulateGrad(g);
  });
}

Tensor Tanh(const Tensor& x) {
  Matrix value = adafgl::TanhMat(x->value());
  return MakeOpNode(std::move(value), {x}, [x](TensorNode& n) {
    if (!x->requires_grad()) return;
    Matrix g = n.grad();
    const float* y = n.value().data();
    float* gd = g.data();
    for (int64_t i = 0; i < g.size(); ++i) gd[i] *= (1.0f - y[i] * y[i]);
    x->AccumulateGrad(g);
  });
}

Tensor Sigmoid(const Tensor& x) {
  Matrix value = adafgl::SigmoidMat(x->value());
  return MakeOpNode(std::move(value), {x}, [x](TensorNode& n) {
    if (!x->requires_grad()) return;
    Matrix g = n.grad();
    const float* y = n.value().data();
    float* gd = g.data();
    for (int64_t i = 0; i < g.size(); ++i) gd[i] *= y[i] * (1.0f - y[i]);
    x->AccumulateGrad(g);
  });
}

Tensor Dropout(const Tensor& x, float p, bool training, Rng& rng) {
  if (!training || p <= 0.0f) return x;
  ADAFGL_CHECK(p < 1.0f);
  const float keep = 1.0f - p;
  auto mask = std::make_shared<Matrix>(x->rows(), x->cols());
  for (int64_t i = 0; i < mask->size(); ++i) {
    mask->data()[i] = rng.Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  Matrix value = adafgl::Mul(x->value(), *mask);
  return MakeOpNode(std::move(value), {x}, [x, mask](TensorNode& n) {
    if (x->requires_grad()) {
      x->AccumulateGrad(adafgl::Mul(n.grad(), *mask));
    }
  });
}

Tensor ConcatCols(const std::vector<Tensor>& xs) {
  ADAFGL_CHECK(!xs.empty());
  std::vector<Matrix> vals;
  vals.reserve(xs.size());
  for (const Tensor& t : xs) vals.push_back(t->value());
  Matrix value = adafgl::ConcatColsAll(vals);
  std::vector<Tensor> parents = xs;
  return MakeOpNode(std::move(value), parents, [parents](TensorNode& n) {
    int64_t off = 0;
    for (const Tensor& p : parents) {
      if (p->requires_grad()) {
        Matrix g(p->rows(), p->cols());
        for (int64_t i = 0; i < g.rows(); ++i) {
          const float* src = n.grad().row(i) + off;
          std::copy(src, src + g.cols(), g.row(i));
        }
        p->AccumulateGrad(g);
      }
      off += p->cols();
    }
  });
}

Tensor Softmax(const Tensor& x) {
  Matrix value = adafgl::Softmax(x->value());
  return MakeOpNode(std::move(value), {x}, [x](TensorNode& n) {
    if (!x->requires_grad()) return;
    // dL/dx_ij = p_ij * (g_ij - sum_k g_ik p_ik)
    Matrix g(n.grad().rows(), n.grad().cols());
    for (int64_t i = 0; i < g.rows(); ++i) {
      const float* pi = n.value().row(i);
      const float* gi = n.grad().row(i);
      double dot = 0.0;
      for (int64_t j = 0; j < g.cols(); ++j) dot += gi[j] * pi[j];
      float* out = g.row(i);
      for (int64_t j = 0; j < g.cols(); ++j) {
        out[j] = pi[j] * (gi[j] - static_cast<float>(dot));
      }
    }
    x->AccumulateGrad(g);
  });
}

Tensor LogSoftmax(const Tensor& x) {
  Matrix value = adafgl::LogSoftmax(x->value());
  return MakeOpNode(std::move(value), {x}, [x](TensorNode& n) {
    if (!x->requires_grad()) return;
    // dL/dx_ij = g_ij - softmax(x)_ij * sum_k g_ik
    Matrix g(n.grad().rows(), n.grad().cols());
    for (int64_t i = 0; i < g.rows(); ++i) {
      const float* li = n.value().row(i);
      const float* gi = n.grad().row(i);
      double gsum = 0.0;
      for (int64_t j = 0; j < g.cols(); ++j) gsum += gi[j];
      float* out = g.row(i);
      for (int64_t j = 0; j < g.cols(); ++j) {
        out[j] = gi[j] - std::exp(li[j]) * static_cast<float>(gsum);
      }
    }
    x->AccumulateGrad(g);
  });
}

Tensor NllLoss(const Tensor& log_probs, const std::vector<int32_t>& labels,
               const std::vector<int32_t>& mask) {
  ADAFGL_CHECK(!mask.empty());
  ADAFGL_CHECK(static_cast<int64_t>(labels.size()) == log_probs->rows());
  double loss = 0.0;
  for (int32_t r : mask) {
    ADAFGL_CHECK(r >= 0 && r < log_probs->rows());
    const int32_t y = labels[static_cast<size_t>(r)];
    ADAFGL_CHECK(y >= 0 && y < log_probs->cols());
    loss -= log_probs->value()(r, y);
  }
  loss /= static_cast<double>(mask.size());
  auto labels_copy = std::make_shared<std::vector<int32_t>>(labels);
  auto mask_copy = std::make_shared<std::vector<int32_t>>(mask);
  return MakeOpNode(
      ScalarMatrix(static_cast<float>(loss)), {log_probs},
      [log_probs, labels_copy, mask_copy](TensorNode& n) {
        if (!log_probs->requires_grad()) return;
        const float scale =
            n.grad()(0, 0) / static_cast<float>(mask_copy->size());
        Matrix g(log_probs->rows(), log_probs->cols());
        for (int32_t r : *mask_copy) {
          g(r, (*labels_copy)[static_cast<size_t>(r)]) -= scale;
        }
        log_probs->AccumulateGrad(g);
      });
}

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int32_t>& labels,
                              const std::vector<int32_t>& mask) {
  return NllLoss(LogSoftmax(logits), labels, mask);
}

Tensor ProbNllLoss(const Tensor& probs, const std::vector<int32_t>& labels,
                   const std::vector<int32_t>& mask) {
  ADAFGL_CHECK(!mask.empty());
  constexpr float kEps = 1e-8f;
  double loss = 0.0;
  for (int32_t r : mask) {
    const int32_t y = labels[static_cast<size_t>(r)];
    loss -= std::log(std::max(probs->value()(r, y), kEps));
  }
  loss /= static_cast<double>(mask.size());
  auto labels_copy = std::make_shared<std::vector<int32_t>>(labels);
  auto mask_copy = std::make_shared<std::vector<int32_t>>(mask);
  return MakeOpNode(
      ScalarMatrix(static_cast<float>(loss)), {probs},
      [probs, labels_copy, mask_copy](TensorNode& n) {
        if (!probs->requires_grad()) return;
        const float scale =
            n.grad()(0, 0) / static_cast<float>(mask_copy->size());
        Matrix g(probs->rows(), probs->cols());
        for (int32_t r : *mask_copy) {
          const int32_t y = (*labels_copy)[static_cast<size_t>(r)];
          g(r, y) -= scale / std::max(probs->value()(r, y), 1e-8f);
        }
        probs->AccumulateGrad(g);
      });
}

Tensor FrobeniusLoss(const Tensor& a, const Matrix& target) {
  ADAFGL_CHECK(a->value().SameShape(target));
  const float dist2 = FrobeniusDistanceSquared(a->value(), target);
  const float norm = std::sqrt(std::max(dist2, 1e-12f));
  auto target_copy = std::make_shared<Matrix>(target);
  return MakeOpNode(ScalarMatrix(norm), {a},
                    [a, target_copy, norm](TensorNode& n) {
                      if (!a->requires_grad()) return;
                      // d||a - t||_F / da = (a - t) / ||a - t||_F.
                      Matrix g = adafgl::Sub(a->value(), *target_copy);
                      const float s = n.grad()(0, 0) / std::max(norm, 1e-12f);
                      a->AccumulateGrad(adafgl::Scale(g, s));
                    });
}

Tensor MseLoss(const Tensor& a, const Matrix& target) {
  ADAFGL_CHECK(a->value().SameShape(target));
  const float mse = FrobeniusDistanceSquared(a->value(), target) /
                    static_cast<float>(std::max<int64_t>(a->value().size(), 1));
  auto target_copy = std::make_shared<Matrix>(target);
  return MakeOpNode(ScalarMatrix(mse), {a}, [a, target_copy](TensorNode& n) {
    if (!a->requires_grad()) return;
    Matrix g = adafgl::Sub(a->value(), *target_copy);
    const float s =
        n.grad()(0, 0) * 2.0f / static_cast<float>(a->value().size());
    a->AccumulateGrad(adafgl::Scale(g, s));
  });
}

Tensor L1Penalty(const Tensor& a) {
  double acc = 0.0;
  const float* d = a->value().data();
  for (int64_t i = 0; i < a->value().size(); ++i) acc += std::abs(d[i]);
  acc /= static_cast<double>(std::max<int64_t>(a->value().size(), 1));
  return MakeOpNode(
      ScalarMatrix(static_cast<float>(acc)), {a}, [a](TensorNode& n) {
        if (!a->requires_grad()) return;
        Matrix g(a->rows(), a->cols());
        const float s =
            n.grad()(0, 0) / static_cast<float>(a->value().size());
        const float* v = a->value().data();
        float* gd = g.data();
        for (int64_t i = 0; i < g.size(); ++i) {
          gd[i] = v[i] > 0.0f ? s : (v[i] < 0.0f ? -s : 0.0f);
        }
        a->AccumulateGrad(g);
      });
}

Tensor AddScalars(const std::vector<Tensor>& xs) {
  ADAFGL_CHECK(!xs.empty());
  Tensor acc = xs[0];
  for (size_t i = 1; i < xs.size(); ++i) acc = Add(acc, xs[i]);
  return acc;
}

Tensor MeanOf(const std::vector<Tensor>& xs) {
  ADAFGL_CHECK(!xs.empty());
  Tensor acc = xs[0];
  for (size_t i = 1; i < xs.size(); ++i) acc = Add(acc, xs[i]);
  return Scale(acc, 1.0f / static_cast<float>(xs.size()));
}

Tensor AddConst(const Tensor& x, const Matrix& c) {
  Matrix value = adafgl::Add(x->value(), c);
  return MakeOpNode(std::move(value), {x}, [x](TensorNode& n) {
    if (x->requires_grad()) x->AccumulateGrad(n.grad());
  });
}

Tensor ScaleRows(const Tensor& x, const Tensor& s) {
  ADAFGL_CHECK(s->cols() == 1 && s->rows() == x->rows());
  Matrix value = x->value();
  for (int64_t i = 0; i < value.rows(); ++i) {
    const float si = s->value()(i, 0);
    float* vi = value.row(i);
    for (int64_t j = 0; j < value.cols(); ++j) vi[j] *= si;
  }
  return MakeOpNode(std::move(value), {x, s}, [x, s](TensorNode& n) {
    if (x->requires_grad()) {
      Matrix g = n.grad();
      for (int64_t i = 0; i < g.rows(); ++i) {
        const float si = s->value()(i, 0);
        float* gi = g.row(i);
        for (int64_t j = 0; j < g.cols(); ++j) gi[j] *= si;
      }
      x->AccumulateGrad(g);
    }
    if (s->requires_grad()) {
      Matrix gs(s->rows(), 1);
      for (int64_t i = 0; i < gs.rows(); ++i) {
        const float* gi = n.grad().row(i);
        const float* xi = x->value().row(i);
        double acc = 0.0;
        for (int64_t j = 0; j < n.grad().cols(); ++j) acc += gi[j] * xi[j];
        gs(i, 0) = static_cast<float>(acc);
      }
      s->AccumulateGrad(gs);
    }
  });
}

Tensor SliceCols(const Tensor& x, int64_t begin, int64_t count) {
  ADAFGL_CHECK(begin >= 0 && count >= 0 && begin + count <= x->cols());
  Matrix value(x->rows(), count);
  for (int64_t i = 0; i < value.rows(); ++i) {
    const float* src = x->value().row(i) + begin;
    std::copy(src, src + count, value.row(i));
  }
  return MakeOpNode(std::move(value), {x}, [x, begin, count](TensorNode& n) {
    if (!x->requires_grad()) return;
    Matrix g(x->rows(), x->cols());
    for (int64_t i = 0; i < g.rows(); ++i) {
      const float* src = n.grad().row(i);
      std::copy(src, src + count, g.row(i) + begin);
    }
    x->AccumulateGrad(g);
  });
}

Tensor GatherRows(const Tensor& x, const std::vector<int32_t>& index) {
  Matrix value = adafgl::GatherRows(x->value(), index);
  auto index_copy = std::make_shared<std::vector<int32_t>>(index);
  return MakeOpNode(std::move(value), {x}, [x, index_copy](TensorNode& n) {
    if (!x->requires_grad()) return;
    Matrix g(x->rows(), x->cols());
    for (size_t i = 0; i < index_copy->size(); ++i) {
      const float* src = n.grad().row(static_cast<int64_t>(i));
      float* dst = g.row((*index_copy)[i]);
      for (int64_t j = 0; j < g.cols(); ++j) dst[j] += src[j];
    }
    x->AccumulateGrad(g);
  });
}

}  // namespace ops
}  // namespace adafgl
