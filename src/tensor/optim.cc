#include "tensor/optim.h"

#include <cmath>

#include "tensor/status.h"

namespace adafgl {

void Sgd::Step() {
  for (const Tensor& p : params_) {
    if (p->grad().empty()) continue;
    float* w = p->mutable_value().data();
    const float* g = p->grad().data();
    for (int64_t i = 0; i < p->value().size(); ++i) {
      w[i] -= lr_ * (g[i] + weight_decay_ * w[i]);
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float weight_decay,
           float beta1, float beta2, float eps)
    : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay),
      beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    const Tensor& p = params_[k];
    if (p->grad().empty()) continue;
    float* w = p->mutable_value().data();
    const float* g = p->grad().data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    for (int64_t i = 0; i < p->value().size(); ++i) {
      const float gi = g[i] + weight_decay_ * w[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * gi;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * gi * gi;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

std::vector<Matrix> Adam::ExportState() const {
  std::vector<Matrix> state;
  state.reserve(m_.size() + v_.size());
  for (const Matrix& m : m_) state.push_back(m);
  for (const Matrix& v : v_) state.push_back(v);
  return state;
}

void Adam::ImportState(const std::vector<Matrix>& moments,
                       int64_t step_count) {
  ADAFGL_CHECK(moments.size() == m_.size() + v_.size());
  ADAFGL_CHECK(step_count >= 0);
  for (size_t k = 0; k < m_.size(); ++k) {
    ADAFGL_CHECK(moments[k].SameShape(m_[k]));
    m_[k] = moments[k];
  }
  for (size_t k = 0; k < v_.size(); ++k) {
    ADAFGL_CHECK(moments[m_.size() + k].SameShape(v_[k]));
    v_[k] = moments[m_.size() + k];
  }
  t_ = step_count;
}

void Adam::ResetState() {
  for (Matrix& m : m_) m.Zero();
  for (Matrix& v : v_) v.Zero();
  t_ = 0;
}

}  // namespace adafgl
