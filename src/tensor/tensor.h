#ifndef ADAFGL_TENSOR_TENSOR_H_
#define ADAFGL_TENSOR_TENSOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace adafgl {

class TensorNode;

/// Shared handle to a node in the autograd graph. Ops return new handles;
/// the graph is torn down when the last handle to a subgraph is dropped.
using Tensor = std::shared_ptr<TensorNode>;

/// \brief One node of the reverse-mode autodiff graph.
///
/// A node owns its forward value and (after Backward) its gradient. Interior
/// nodes carry a `backward_fn` closure that scatters `grad` into the parents'
/// gradients. Nodes are created in topological order by construction, so the
/// monotonically increasing `id` doubles as a topological key for the
/// backward sweep.
class TensorNode {
 public:
  TensorNode(Matrix value, bool requires_grad)
      : value_(std::move(value)), requires_grad_(requires_grad),
        id_(next_id_.fetch_add(1, std::memory_order_relaxed)) {}

  TensorNode(const TensorNode&) = delete;
  TensorNode& operator=(const TensorNode&) = delete;

  const Matrix& value() const { return value_; }
  Matrix& mutable_value() { return value_; }

  /// Gradient accumulated by Backward(); zero-sized until first accumulation.
  const Matrix& grad() const { return grad_; }

  bool requires_grad() const { return requires_grad_; }
  int64_t id() const { return id_; }
  const std::vector<Tensor>& parents() const { return parents_; }

  /// Accumulates `g` into this node's gradient buffer.
  void AccumulateGrad(const Matrix& g);

  /// Clears the gradient buffer (keeps its allocation).
  void ZeroGrad();

  int64_t rows() const { return value_.rows(); }
  int64_t cols() const { return value_.cols(); }

  // --- Graph construction (used by ops; not client API). ---
  void set_parents(std::vector<Tensor> parents) {
    parents_ = std::move(parents);
  }
  void set_backward_fn(std::function<void(TensorNode&)> fn) {
    backward_fn_ = std::move(fn);
  }
  const std::function<void(TensorNode&)>& backward_fn() const {
    return backward_fn_;
  }

 private:
  // Atomic so clients may build their autograd graphs on parallel worker
  // threads; ids stay monotone within any single thread's graph, which is
  // all the backward sweep's topological ordering needs.
  static std::atomic<int64_t> next_id_;

  Matrix value_;
  Matrix grad_;
  bool requires_grad_;
  int64_t id_;
  std::vector<Tensor> parents_;
  std::function<void(TensorNode&)> backward_fn_;
};

/// Creates a trainable leaf (participates in gradients).
Tensor MakeParam(Matrix value);

/// Creates a constant leaf (no gradient flows into it).
Tensor MakeConst(Matrix value);

/// Runs reverse-mode autodiff from scalar `loss` (must be 1x1); gradients
/// accumulate into every reachable node with requires_grad.
void Backward(const Tensor& loss);

}  // namespace adafgl

#endif  // ADAFGL_TENSOR_TENSOR_H_
