#include "tensor/tensor.h"

#include <algorithm>
#include <unordered_set>

#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/status.h"

namespace adafgl {

std::atomic<int64_t> TensorNode::next_id_{0};

void TensorNode::AccumulateGrad(const Matrix& g) {
  ADAFGL_CHECK(g.rows() == value_.rows() && g.cols() == value_.cols());
  if (grad_.empty() && g.size() > 0) {
    grad_ = g;
    return;
  }
  float* gd = grad_.data();
  const float* sd = g.data();
  for (int64_t i = 0; i < grad_.size(); ++i) gd[i] += sd[i];
}

void TensorNode::ZeroGrad() {
  if (!grad_.empty()) grad_.Zero();
}

Tensor MakeParam(Matrix value) {
  return std::make_shared<TensorNode>(std::move(value), /*requires_grad=*/true);
}

Tensor MakeConst(Matrix value) {
  return std::make_shared<TensorNode>(std::move(value),
                                      /*requires_grad=*/false);
}

namespace {

void CollectReachable(const Tensor& root, std::vector<TensorNode*>* order,
                      std::unordered_set<TensorNode*>* seen) {
  // Iterative DFS to avoid stack overflow on deep graphs.
  std::vector<TensorNode*> stack = {root.get()};
  while (!stack.empty()) {
    TensorNode* node = stack.back();
    stack.pop_back();
    if (!seen->insert(node).second) continue;
    order->push_back(node);
    for (const Tensor& p : node->parents()) stack.push_back(p.get());
  }
}

}  // namespace

void Backward(const Tensor& loss) {
  ADAFGL_CHECK(loss != nullptr);
  ADAFGL_CHECK(loss->rows() == 1 && loss->cols() == 1);
  obs::Span span("autograd.backward");
  if (obs::MetricsEnabled()) {
    static obs::Counter* const calls =
        obs::MetricsRegistry::Global().GetCounter("autograd.backward.calls");
    calls->Inc();
  }
  std::vector<TensorNode*> nodes;
  std::unordered_set<TensorNode*> seen;
  CollectReachable(loss, &nodes, &seen);
  // Creation ids increase from inputs toward outputs, so descending id order
  // is a valid reverse-topological order of the DAG.
  std::sort(nodes.begin(), nodes.end(),
            [](const TensorNode* a, const TensorNode* b) {
              return a->id() > b->id();
            });
  Matrix one(1, 1);
  one(0, 0) = 1.0f;
  loss->AccumulateGrad(one);
  for (TensorNode* node : nodes) {
    if (node->backward_fn() && !node->grad().empty()) {
      node->backward_fn()(*node);
    }
  }
}

}  // namespace adafgl
