#ifndef ADAFGL_TENSOR_RNG_H_
#define ADAFGL_TENSOR_RNG_H_

#include <cmath>
#include <cstdint>

#include "tensor/status.h"

namespace adafgl {

/// \brief Deterministic pseudo-random generator (xoshiro256** seeded via
/// SplitMix64).
///
/// Every stochastic component of the library (dataset generation, splits,
/// dropout, initialisation, masking) takes an explicit `Rng&` so whole
/// experiments replay bit-identically from a single seed. There is no global
/// RNG state anywhere in the library.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n) {
    ADAFGL_CHECK(n > 0);
    // Rejection sampling for unbiased bounded integers.
    const uint64_t un = static_cast<uint64_t>(n);
    const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
    uint64_t v = NextU64();
    while (v >= limit) v = NextU64();
    return static_cast<int64_t>(v % un);
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Standard normal via Box-Muller (cached second value).
  double Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = Uniform();
    double u2 = Uniform();
    // Guard against log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Forks an independent child stream; deterministic given this stream's
  /// state and `stream_id`.
  Rng Fork(uint64_t stream_id) {
    return Rng(NextU64() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace adafgl

#endif  // ADAFGL_TENSOR_RNG_H_
