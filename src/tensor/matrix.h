#ifndef ADAFGL_TENSOR_MATRIX_H_
#define ADAFGL_TENSOR_MATRIX_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/mem.h"
#include "tensor/rng.h"
#include "tensor/status.h"

namespace adafgl {

/// \brief Dense row-major float32 matrix.
///
/// The single dense container used throughout the library: node features,
/// model weights, probability/propagation matrices, gradients. Kept
/// deliberately simple — shape + flat buffer — with all numerical kernels as
/// free functions in matrix_ops.h so they are individually testable.
///
/// Every buffer (re)allocation reports its footprint to the memory
/// accountant (obs/mem.h) — live/peak bytes and alloc counts, attributed
/// to the innermost active span when ADAFGL_METRICS=1; a no-op branch
/// otherwise. Moves transfer the registration with the buffer; copies
/// register their own.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0f) {
    ADAFGL_CHECK(rows >= 0 && cols >= 0);
    mem_.Track(BufferBytes());
  }
  Matrix(int64_t rows, int64_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    ADAFGL_CHECK(static_cast<int64_t>(data_.size()) == rows * cols);
    mem_.Track(BufferBytes());
  }

  Matrix(const Matrix& o)
      : rows_(o.rows_), cols_(o.cols_), data_(o.data_) {
    mem_.Track(BufferBytes());
  }
  Matrix& operator=(const Matrix& o) {
    rows_ = o.rows_;
    cols_ = o.cols_;
    data_ = o.data_;
    mem_.Track(BufferBytes());
    return *this;
  }
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float& At(int64_t r, int64_t c) {
    ADAFGL_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float At(int64_t r, int64_t c) const {
    ADAFGL_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  // Unchecked access for hot loops.
  float& operator()(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float operator()(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int64_t r) { return data_.data() + r * cols_; }
  const float* row(int64_t r) const { return data_.data() + r * cols_; }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0f); }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Identity matrix of order n.
  static Matrix Identity(int64_t n) {
    Matrix m(n, n);
    for (int64_t i = 0; i < n; ++i) m(i, i) = 1.0f;
    return m;
  }

  /// Matrix with every entry equal to `v`.
  static Matrix Constant(int64_t rows, int64_t cols, float v) {
    Matrix m(rows, cols);
    m.Fill(v);
    return m;
  }

  /// Entries drawn i.i.d. uniform in [lo, hi).
  static Matrix Uniform(int64_t rows, int64_t cols, float lo, float hi,
                        Rng& rng) {
    Matrix m(rows, cols);
    for (auto& v : m.data_) v = static_cast<float>(rng.Uniform(lo, hi));
    return m;
  }

  /// Entries drawn i.i.d. N(0, std^2).
  static Matrix Gaussian(int64_t rows, int64_t cols, float std, Rng& rng) {
    Matrix m(rows, cols);
    for (auto& v : m.data_) v = static_cast<float>(rng.Normal() * std);
    return m;
  }

  /// Glorot/Xavier uniform initialisation for a (fan_in x fan_out) weight.
  static Matrix Glorot(int64_t fan_in, int64_t fan_out, Rng& rng) {
    const float bound =
        std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    return Uniform(fan_in, fan_out, -bound, bound, rng);
  }

 private:
  int64_t BufferBytes() const {
    return static_cast<int64_t>(data_.capacity() * sizeof(float));
  }

  int64_t rows_;
  int64_t cols_;
  std::vector<float> data_;
  obs::mem::AllocHandle mem_;
};

}  // namespace adafgl

#endif  // ADAFGL_TENSOR_MATRIX_H_
