#include "tensor/matrix_ops.h"

#include <algorithm>
#include <cmath>

#include "obs/prof.h"
#include "obs/registry.h"

namespace adafgl {

namespace {

/// Kernel accounting (ADAFGL_METRICS=1): one call counter and a
/// multiply-add tally per matmul flavour. The pointers are resolved once;
/// the disabled path is the single relaxed load in MetricsEnabled().
inline void CountMatMul(int64_t m, int64_t k, int64_t n) {
  static obs::Counter* const calls =
      obs::MetricsRegistry::Global().GetCounter("tensor.matmul.calls");
  static obs::Counter* const flops =
      obs::MetricsRegistry::Global().GetCounter("tensor.matmul.flops");
  calls->Inc();
  flops->Inc(2 * m * k * n);
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.cols() == b.rows());
  obs::prof::KernelFrame frame("tensor.matmul");
  if (obs::MetricsEnabled()) CountMatMul(a.rows(), a.cols(), b.cols());
  Matrix c(a.rows(), b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  for (int64_t i = 0; i < m; ++i) {
    float* ci = c.row(i);
    const float* ai = a.row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) continue;
      const float* bp = b.row(p);
      for (int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.rows() == b.rows());
  obs::prof::KernelFrame frame("tensor.matmul");
  if (obs::MetricsEnabled()) CountMatMul(a.cols(), a.rows(), b.cols());
  Matrix c(a.cols(), b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a.row(i);
    const float* bi = b.row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) continue;
      float* cp = c.row(p);
      for (int64_t j = 0; j < n; ++j) cp[j] += av * bi[j];
    }
  }
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.cols() == b.cols());
  if (obs::MetricsEnabled()) CountMatMul(a.rows(), a.cols(), b.rows());
  Matrix c(a.rows(), b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (int64_t j = 0; j < n; ++j) {
      const float* bj = b.row(j);
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = acc;
    }
  }
  return c;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.SameShape(b));
  Matrix c = a;
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < c.size(); ++i) cd[i] += bd[i];
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.SameShape(b));
  Matrix c = a;
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < c.size(); ++i) cd[i] -= bd[i];
  return c;
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.SameShape(b));
  Matrix c = a;
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < c.size(); ++i) cd[i] *= bd[i];
  return c;
}

Matrix Scale(const Matrix& a, float s) {
  Matrix c = a;
  float* cd = c.data();
  for (int64_t i = 0; i < c.size(); ++i) cd[i] *= s;
  return c;
}

void Axpy(float s, const Matrix& b, Matrix* a) {
  ADAFGL_CHECK(a != nullptr && a->SameShape(b));
  float* ad = a->data();
  const float* bd = b.data();
  for (int64_t i = 0; i < a->size(); ++i) ad[i] += s * bd[i];
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(b.rows() == 1 && b.cols() == a.cols());
  Matrix c = a;
  const float* bd = b.data();
  for (int64_t i = 0; i < c.rows(); ++i) {
    float* ci = c.row(i);
    for (int64_t j = 0; j < c.cols(); ++j) ci[j] += bd[j];
  }
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix c(a.cols(), a.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    for (int64_t j = 0; j < a.cols(); ++j) c(j, i) = ai[j];
  }
  return c;
}

Matrix Softmax(const Matrix& a) {
  Matrix c = a;
  for (int64_t i = 0; i < c.rows(); ++i) {
    float* ci = c.row(i);
    float mx = ci[0];
    for (int64_t j = 1; j < c.cols(); ++j) mx = std::max(mx, ci[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < c.cols(); ++j) {
      ci[j] = std::exp(ci[j] - mx);
      sum += ci[j];
    }
    const float inv = 1.0f / std::max(sum, 1e-30f);
    for (int64_t j = 0; j < c.cols(); ++j) ci[j] *= inv;
  }
  return c;
}

Matrix LogSoftmax(const Matrix& a) {
  Matrix c = a;
  for (int64_t i = 0; i < c.rows(); ++i) {
    float* ci = c.row(i);
    float mx = ci[0];
    for (int64_t j = 1; j < c.cols(); ++j) mx = std::max(mx, ci[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < c.cols(); ++j) sum += std::exp(ci[j] - mx);
    const float lse = mx + std::log(std::max(sum, 1e-30f));
    for (int64_t j = 0; j < c.cols(); ++j) ci[j] -= lse;
  }
  return c;
}

Matrix Relu(const Matrix& a) {
  Matrix c = a;
  float* cd = c.data();
  for (int64_t i = 0; i < c.size(); ++i) cd[i] = std::max(cd[i], 0.0f);
  return c;
}

Matrix TanhMat(const Matrix& a) {
  Matrix c = a;
  float* cd = c.data();
  for (int64_t i = 0; i < c.size(); ++i) cd[i] = std::tanh(cd[i]);
  return c;
}

Matrix SigmoidMat(const Matrix& a) {
  Matrix c = a;
  float* cd = c.data();
  for (int64_t i = 0; i < c.size(); ++i) {
    cd[i] = 1.0f / (1.0f + std::exp(-cd[i]));
  }
  return c;
}

Matrix ColMean(const Matrix& a) {
  Matrix c(1, a.cols());
  if (a.rows() == 0) return c;
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    for (int64_t j = 0; j < a.cols(); ++j) c(0, j) += ai[j];
  }
  const float inv = 1.0f / static_cast<float>(a.rows());
  for (int64_t j = 0; j < a.cols(); ++j) c(0, j) *= inv;
  return c;
}

float SumAll(const Matrix& a) {
  double acc = 0.0;
  const float* d = a.data();
  for (int64_t i = 0; i < a.size(); ++i) acc += d[i];
  return static_cast<float>(acc);
}

float FrobeniusNorm(const Matrix& a) {
  double acc = 0.0;
  const float* d = a.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(d[i]) * d[i];
  }
  return static_cast<float>(std::sqrt(acc));
}

float FrobeniusDistanceSquared(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.SameShape(b));
  double acc = 0.0;
  const float* ad = a.data();
  const float* bd = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(ad[i]) - bd[i];
    acc += diff * diff;
  }
  return static_cast<float>(acc);
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.rows() == b.rows());
  Matrix c(a.rows(), a.cols() + b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    float* ci = c.row(i);
    std::copy(a.row(i), a.row(i) + a.cols(), ci);
    std::copy(b.row(i), b.row(i) + b.cols(), ci + a.cols());
  }
  return c;
}

Matrix ConcatColsAll(const std::vector<Matrix>& mats) {
  ADAFGL_CHECK(!mats.empty());
  int64_t total_cols = 0;
  for (const Matrix& m : mats) {
    ADAFGL_CHECK(m.rows() == mats[0].rows());
    total_cols += m.cols();
  }
  Matrix c(mats[0].rows(), total_cols);
  for (int64_t i = 0; i < c.rows(); ++i) {
    float* ci = c.row(i);
    int64_t off = 0;
    for (const Matrix& m : mats) {
      std::copy(m.row(i), m.row(i) + m.cols(), ci + off);
      off += m.cols();
    }
  }
  return c;
}

Matrix GatherRows(const Matrix& a, const std::vector<int32_t>& index) {
  Matrix c(static_cast<int64_t>(index.size()), a.cols());
  for (size_t i = 0; i < index.size(); ++i) {
    const int32_t r = index[i];
    ADAFGL_CHECK(r >= 0 && r < a.rows());
    std::copy(a.row(r), a.row(r) + a.cols(), c.row(static_cast<int64_t>(i)));
  }
  return c;
}

void RowL2NormalizeInPlace(Matrix* a) {
  ADAFGL_CHECK(a != nullptr);
  for (int64_t i = 0; i < a->rows(); ++i) {
    float* ai = a->row(i);
    double acc = 0.0;
    for (int64_t j = 0; j < a->cols(); ++j) {
      acc += static_cast<double>(ai[j]) * ai[j];
    }
    if (acc <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / std::sqrt(acc));
    for (int64_t j = 0; j < a->cols(); ++j) ai[j] *= inv;
  }
}

std::vector<int32_t> ArgmaxRows(const Matrix& a) {
  std::vector<int32_t> out(static_cast<size_t>(a.rows()), 0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    int32_t best = 0;
    for (int64_t j = 1; j < a.cols(); ++j) {
      if (ai[j] > ai[best]) best = static_cast<int32_t>(j);
    }
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

double Accuracy(const Matrix& logits, const std::vector<int32_t>& labels,
                const std::vector<int32_t>& mask) {
  if (mask.empty()) return 0.0;
  ADAFGL_CHECK(static_cast<int64_t>(labels.size()) == logits.rows());
  int64_t correct = 0;
  for (int32_t r : mask) {
    ADAFGL_CHECK(r >= 0 && r < logits.rows());
    const float* ai = logits.row(r);
    int32_t best = 0;
    for (int64_t j = 1; j < logits.cols(); ++j) {
      if (ai[j] > ai[best]) best = static_cast<int32_t>(j);
    }
    if (best == labels[static_cast<size_t>(r)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(mask.size());
}

double Dot(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.SameShape(b));
  double acc = 0.0;
  const float* ad = a.data();
  const float* bd = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(ad[i]) * bd[i];
  }
  return acc;
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.SameShape(b));
  float mx = 0.0f;
  const float* ad = a.data();
  const float* bd = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::abs(ad[i] - bd[i]));
  }
  return mx;
}

}  // namespace adafgl
