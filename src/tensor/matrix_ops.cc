#include "tensor/matrix_ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/prof.h"
#include "obs/registry.h"
#include "par/par.h"

namespace adafgl {

namespace {

/// Kernel accounting (ADAFGL_METRICS=1): one call counter and a tally of
/// the multiply-adds *actually executed* per matmul flavour. MatMul and
/// MatMulTransA skip entries of A that are exactly zero (common for
/// post-ReLU activations and sparse feature matrices), so their tally is
/// 2 * nnz(A) * n rather than the nominal 2*m*k*n — the counter matches
/// the work performed, not the dense upper bound (see DESIGN.md §9). The
/// nonzeros are tallied inside the multiply loops (one register increment
/// per visited entry — a separate pre-scan would rival the cost of the
/// skipped multiply on sparse inputs). The pointers are resolved once;
/// the disabled path is the single relaxed load in MetricsEnabled().
inline void CountMatMul(int64_t multiply_adds) {
  static obs::Counter* const calls =
      obs::MetricsRegistry::Global().GetCounter("tensor.matmul.calls");
  static obs::Counter* const flops =
      obs::MetricsRegistry::Global().GetCounter("tensor.matmul.flops");
  calls->Inc();
  flops->Inc(2 * multiply_adds);
}

/// Tiling constants for the parallel dense kernels. Blocks keep a slice
/// of B resident in cache while several rows of A stream past it; block
/// boundaries never reorder the per-element accumulation (the p loop
/// stays ascending for every output element), so tiled results are
/// bit-identical to the serial triple loops.
constexpr int64_t kKBlock = 64;   // Rows of B kept hot per pass (MatMul).
constexpr int64_t kJBlock = 256;  // Rows of B per dot-product strip (TransB).

/// Minimum elements before an elementwise map is worth dispatching.
constexpr int64_t kParElemMin = 1 << 15;

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.cols() == b.rows());
  obs::prof::KernelFrame frame("tensor.matmul");
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  par::ThreadPool& pool = par::KernelPool();
  if (pool.num_threads() <= 1) {
    int64_t nnz = 0;
    for (int64_t i = 0; i < m; ++i) {
      float* ci = c.row(i);
      const float* ai = a.row(i);
      for (int64_t p = 0; p < k; ++p) {
        const float av = ai[p];
        if (av == 0.0f) continue;
        ++nnz;
        const float* bp = b.row(p);
        for (int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
      }
    }
    if (obs::MetricsEnabled()) CountMatMul(nnz * n);
    return c;
  }
  // Row-partitioned, k-blocked: each chunk owns its output rows outright
  // (no cross-thread writes), and within a row the p accumulation order is
  // identical to the serial loop, so any thread count produces the same
  // bits. The nnz tally is an integer sum — order-independent, so one
  // relaxed fetch_add per chunk keeps the counter exact.
  std::atomic<int64_t> nnz{0};
  pool.ParallelForChunks(
      static_cast<size_t>(m), 0, [&](size_t r0, size_t r1) {
        obs::prof::KernelFrame chunk_frame("tensor.matmul",
                                           /*dedup_top=*/true);
        int64_t chunk_nnz = 0;
        for (int64_t p0 = 0; p0 < k; p0 += kKBlock) {
          const int64_t p1 = std::min(k, p0 + kKBlock);
          for (int64_t i = static_cast<int64_t>(r0);
               i < static_cast<int64_t>(r1); ++i) {
            float* ci = c.row(i);
            const float* ai = a.row(i);
            for (int64_t p = p0; p < p1; ++p) {
              const float av = ai[p];
              if (av == 0.0f) continue;
              ++chunk_nnz;
              const float* bp = b.row(p);
              for (int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
            }
          }
        }
        nnz.fetch_add(chunk_nnz, std::memory_order_relaxed);
      });
  if (obs::MetricsEnabled()) CountMatMul(nnz.load(std::memory_order_relaxed) * n);
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.rows() == b.rows());
  obs::prof::KernelFrame frame("tensor.matmul");
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(k, n);
  par::ThreadPool& pool = par::KernelPool();
  if (pool.num_threads() <= 1) {
    int64_t nnz = 0;
    for (int64_t i = 0; i < m; ++i) {
      const float* ai = a.row(i);
      const float* bi = b.row(i);
      for (int64_t p = 0; p < k; ++p) {
        const float av = ai[p];
        if (av == 0.0f) continue;
        ++nnz;
        float* cp = c.row(p);
        for (int64_t j = 0; j < n; ++j) cp[j] += av * bi[j];
      }
    }
    if (obs::MetricsEnabled()) CountMatMul(nnz * n);
    return c;
  }
  // The serial loop scatters row i of A into every output row p — racy
  // under a row-of-A partition. Partitioning the *output* rows instead
  // turns it into a gather: each chunk scans all of A/B but only writes
  // c[p0, p1). Per element (p, j) the contribution order stays ascending
  // in i, exactly the serial association. Each visited nonzero is seen by
  // exactly one chunk (the one owning its column), so the chunk tallies
  // sum to nnz(A).
  std::atomic<int64_t> nnz{0};
  pool.ParallelForChunks(
      static_cast<size_t>(k), 0, [&](size_t p0, size_t p1) {
        obs::prof::KernelFrame chunk_frame("tensor.matmul",
                                           /*dedup_top=*/true);
        int64_t chunk_nnz = 0;
        for (int64_t i = 0; i < m; ++i) {
          const float* ai = a.row(i);
          const float* bi = b.row(i);
          for (int64_t p = static_cast<int64_t>(p0);
               p < static_cast<int64_t>(p1); ++p) {
            const float av = ai[p];
            if (av == 0.0f) continue;
            ++chunk_nnz;
            float* cp = c.row(p);
            for (int64_t j = 0; j < n; ++j) cp[j] += av * bi[j];
          }
        }
        nnz.fetch_add(chunk_nnz, std::memory_order_relaxed);
      });
  if (obs::MetricsEnabled()) CountMatMul(nnz.load(std::memory_order_relaxed) * n);
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.cols() == b.cols());
  // The backward-pass gradient matmul (dL/da in ops::MatMul) runs through
  // here — without this frame, training flame graphs under-reported
  // matmul self-time in the backward pass.
  obs::prof::KernelFrame frame("tensor.matmul");
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  // Branch-free dot products: the full 2*m*k*n is the work performed.
  if (obs::MetricsEnabled()) CountMatMul(m * k * n);
  Matrix c(m, n);
  par::ThreadPool& pool = par::KernelPool();
  if (pool.num_threads() <= 1) {
    for (int64_t i = 0; i < m; ++i) {
      const float* ai = a.row(i);
      float* ci = c.row(i);
      for (int64_t j = 0; j < n; ++j) {
        const float* bj = b.row(j);
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
        ci[j] = acc;
      }
    }
    return c;
  }
  // Row-partitioned, j-blocked: every output element is one full-length
  // dot product regardless of blocking, so results cannot depend on the
  // partition.
  pool.ParallelForChunks(
      static_cast<size_t>(m), 0, [&](size_t r0, size_t r1) {
        obs::prof::KernelFrame chunk_frame("tensor.matmul",
                                           /*dedup_top=*/true);
        for (int64_t j0 = 0; j0 < n; j0 += kJBlock) {
          const int64_t j1 = std::min(n, j0 + kJBlock);
          for (int64_t i = static_cast<int64_t>(r0);
               i < static_cast<int64_t>(r1); ++i) {
            const float* ai = a.row(i);
            float* ci = c.row(i);
            for (int64_t j = j0; j < j1; ++j) {
              const float* bj = b.row(j);
              float acc = 0.0f;
              for (int64_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
              ci[j] = acc;
            }
          }
        }
      });
  return c;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.SameShape(b));
  Matrix c = a;
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < c.size(); ++i) cd[i] += bd[i];
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.SameShape(b));
  Matrix c = a;
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < c.size(); ++i) cd[i] -= bd[i];
  return c;
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.SameShape(b));
  Matrix c = a;
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < c.size(); ++i) cd[i] *= bd[i];
  return c;
}

Matrix Scale(const Matrix& a, float s) {
  Matrix c = a;
  float* cd = c.data();
  for (int64_t i = 0; i < c.size(); ++i) cd[i] *= s;
  return c;
}

void Axpy(float s, const Matrix& b, Matrix* a) {
  ADAFGL_CHECK(a != nullptr && a->SameShape(b));
  float* ad = a->data();
  const float* bd = b.data();
  for (int64_t i = 0; i < a->size(); ++i) ad[i] += s * bd[i];
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(b.rows() == 1 && b.cols() == a.cols());
  Matrix c = a;
  const float* bd = b.data();
  for (int64_t i = 0; i < c.rows(); ++i) {
    float* ci = c.row(i);
    for (int64_t j = 0; j < c.cols(); ++j) ci[j] += bd[j];
  }
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix c(a.cols(), a.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    for (int64_t j = 0; j < a.cols(); ++j) c(j, i) = ai[j];
  }
  return c;
}

namespace {

/// Runs `fn(begin, end)` over [0, n), chunked over the kernel pool when
/// `work` (total touched elements) is big enough to amortize dispatch.
/// Every unit is computed independently, so the partition cannot change
/// the bits.
template <typename Fn>
inline void ForEachFlatChunk(int64_t n, int64_t work, Fn&& fn) {
  par::ThreadPool& pool = par::KernelPool();
  if (pool.num_threads() <= 1 || work < kParElemMin || n < 2) {
    fn(int64_t{0}, n);
    return;
  }
  pool.ParallelForChunks(static_cast<size_t>(n), 0,
                         [&](size_t b, size_t e) {
                           fn(static_cast<int64_t>(b),
                              static_cast<int64_t>(e));
                         });
}

}  // namespace

Matrix Softmax(const Matrix& a) {
  Matrix c = a;
  ForEachFlatChunk(c.rows(), c.size(), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      float* ci = c.row(i);
      float mx = ci[0];
      for (int64_t j = 1; j < c.cols(); ++j) mx = std::max(mx, ci[j]);
      float sum = 0.0f;
      for (int64_t j = 0; j < c.cols(); ++j) {
        ci[j] = std::exp(ci[j] - mx);
        sum += ci[j];
      }
      const float inv = 1.0f / std::max(sum, 1e-30f);
      for (int64_t j = 0; j < c.cols(); ++j) ci[j] *= inv;
    }
  });
  return c;
}

Matrix LogSoftmax(const Matrix& a) {
  Matrix c = a;
  ForEachFlatChunk(c.rows(), c.size(), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      float* ci = c.row(i);
      float mx = ci[0];
      for (int64_t j = 1; j < c.cols(); ++j) mx = std::max(mx, ci[j]);
      float sum = 0.0f;
      for (int64_t j = 0; j < c.cols(); ++j) sum += std::exp(ci[j] - mx);
      const float lse = mx + std::log(std::max(sum, 1e-30f));
      for (int64_t j = 0; j < c.cols(); ++j) ci[j] -= lse;
    }
  });
  return c;
}

Matrix Relu(const Matrix& a) {
  Matrix c = a;
  float* cd = c.data();
  ForEachFlatChunk(c.size(), c.size(), [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) cd[i] = std::max(cd[i], 0.0f);
  });
  return c;
}

Matrix TanhMat(const Matrix& a) {
  Matrix c = a;
  float* cd = c.data();
  ForEachFlatChunk(c.size(), c.size(), [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) cd[i] = std::tanh(cd[i]);
  });
  return c;
}

Matrix SigmoidMat(const Matrix& a) {
  Matrix c = a;
  float* cd = c.data();
  ForEachFlatChunk(c.size(), c.size(), [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      cd[i] = 1.0f / (1.0f + std::exp(-cd[i]));
    }
  });
  return c;
}

Matrix ColMean(const Matrix& a) {
  Matrix c(1, a.cols());
  if (a.rows() == 0) return c;
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    for (int64_t j = 0; j < a.cols(); ++j) c(0, j) += ai[j];
  }
  const float inv = 1.0f / static_cast<float>(a.rows());
  for (int64_t j = 0; j < a.cols(); ++j) c(0, j) *= inv;
  return c;
}

float SumAll(const Matrix& a) {
  double acc = 0.0;
  const float* d = a.data();
  for (int64_t i = 0; i < a.size(); ++i) acc += d[i];
  return static_cast<float>(acc);
}

float FrobeniusNorm(const Matrix& a) {
  double acc = 0.0;
  const float* d = a.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(d[i]) * d[i];
  }
  return static_cast<float>(std::sqrt(acc));
}

float FrobeniusDistanceSquared(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.SameShape(b));
  double acc = 0.0;
  const float* ad = a.data();
  const float* bd = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(ad[i]) - bd[i];
    acc += diff * diff;
  }
  return static_cast<float>(acc);
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.rows() == b.rows());
  Matrix c(a.rows(), a.cols() + b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    float* ci = c.row(i);
    std::copy(a.row(i), a.row(i) + a.cols(), ci);
    std::copy(b.row(i), b.row(i) + b.cols(), ci + a.cols());
  }
  return c;
}

Matrix ConcatColsAll(const std::vector<Matrix>& mats) {
  ADAFGL_CHECK(!mats.empty());
  int64_t total_cols = 0;
  for (const Matrix& m : mats) {
    ADAFGL_CHECK(m.rows() == mats[0].rows());
    total_cols += m.cols();
  }
  Matrix c(mats[0].rows(), total_cols);
  for (int64_t i = 0; i < c.rows(); ++i) {
    float* ci = c.row(i);
    int64_t off = 0;
    for (const Matrix& m : mats) {
      std::copy(m.row(i), m.row(i) + m.cols(), ci + off);
      off += m.cols();
    }
  }
  return c;
}

Matrix GatherRows(const Matrix& a, const std::vector<int32_t>& index) {
  Matrix c(static_cast<int64_t>(index.size()), a.cols());
  for (size_t i = 0; i < index.size(); ++i) {
    const int32_t r = index[i];
    ADAFGL_CHECK(r >= 0 && r < a.rows());
    std::copy(a.row(r), a.row(r) + a.cols(), c.row(static_cast<int64_t>(i)));
  }
  return c;
}

void RowL2NormalizeInPlace(Matrix* a) {
  ADAFGL_CHECK(a != nullptr);
  for (int64_t i = 0; i < a->rows(); ++i) {
    float* ai = a->row(i);
    double acc = 0.0;
    for (int64_t j = 0; j < a->cols(); ++j) {
      acc += static_cast<double>(ai[j]) * ai[j];
    }
    if (acc <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / std::sqrt(acc));
    for (int64_t j = 0; j < a->cols(); ++j) ai[j] *= inv;
  }
}

std::vector<int32_t> ArgmaxRows(const Matrix& a) {
  std::vector<int32_t> out(static_cast<size_t>(a.rows()), 0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* ai = a.row(i);
    int32_t best = 0;
    for (int64_t j = 1; j < a.cols(); ++j) {
      if (ai[j] > ai[best]) best = static_cast<int32_t>(j);
    }
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

double Accuracy(const Matrix& logits, const std::vector<int32_t>& labels,
                const std::vector<int32_t>& mask) {
  if (mask.empty()) return 0.0;
  ADAFGL_CHECK(static_cast<int64_t>(labels.size()) == logits.rows());
  int64_t correct = 0;
  for (int32_t r : mask) {
    ADAFGL_CHECK(r >= 0 && r < logits.rows());
    const float* ai = logits.row(r);
    int32_t best = 0;
    for (int64_t j = 1; j < logits.cols(); ++j) {
      if (ai[j] > ai[best]) best = static_cast<int32_t>(j);
    }
    if (best == labels[static_cast<size_t>(r)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(mask.size());
}

double Dot(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.SameShape(b));
  double acc = 0.0;
  const float* ad = a.data();
  const float* bd = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(ad[i]) * bd[i];
  }
  return acc;
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  ADAFGL_CHECK(a.SameShape(b));
  float mx = 0.0f;
  const float* ad = a.data();
  const float* bd = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::abs(ad[i] - bd[i]));
  }
  return mx;
}

}  // namespace adafgl
