#include "partition/metis_like.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "tensor/status.h"

namespace adafgl {

namespace {

/// Weighted graph used across coarsening levels. Node weights count how many
/// original nodes a coarse node represents (the balance constraint is on
/// original node counts).
struct WGraph {
  int32_t n = 0;
  std::vector<std::vector<std::pair<int32_t, float>>> nbrs;
  std::vector<int32_t> node_weight;
};

WGraph FromCsr(const CsrMatrix& adj) {
  WGraph g;
  g.n = adj.rows();
  g.nbrs.resize(static_cast<size_t>(g.n));
  g.node_weight.assign(static_cast<size_t>(g.n), 1);
  for (int32_t u = 0; u < g.n; ++u) {
    adj.ForEachInRow(u, [&](int32_t v, float w) {
      if (v != u) g.nbrs[static_cast<size_t>(u)].emplace_back(v, w);
    });
  }
  return g;
}

/// Heavy-edge matching: visits nodes in random order, matching each
/// unmatched node with its heaviest unmatched neighbour. Returns the
/// coarse-node id per fine node and the number of coarse nodes.
std::pair<std::vector<int32_t>, int32_t> HeavyEdgeMatch(const WGraph& g,
                                                        Rng& rng) {
  std::vector<int32_t> match(static_cast<size_t>(g.n), -1);
  std::vector<int32_t> order(static_cast<size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  for (int32_t i = g.n - 1; i > 0; --i) {
    std::swap(order[static_cast<size_t>(i)],
              order[static_cast<size_t>(rng.UniformInt(i + 1))]);
  }
  std::vector<int32_t> coarse_id(static_cast<size_t>(g.n), -1);
  int32_t next = 0;
  for (int32_t u : order) {
    if (coarse_id[static_cast<size_t>(u)] != -1) continue;
    int32_t best = -1;
    float best_w = -1.0f;
    for (const auto& [v, w] : g.nbrs[static_cast<size_t>(u)]) {
      if (coarse_id[static_cast<size_t>(v)] == -1 && w > best_w) {
        best_w = w;
        best = v;
      }
    }
    coarse_id[static_cast<size_t>(u)] = next;
    if (best != -1) coarse_id[static_cast<size_t>(best)] = next;
    ++next;
  }
  (void)match;
  return {std::move(coarse_id), next};
}

WGraph Coarsen(const WGraph& g, const std::vector<int32_t>& coarse_id,
               int32_t coarse_n) {
  WGraph c;
  c.n = coarse_n;
  c.nbrs.resize(static_cast<size_t>(coarse_n));
  c.node_weight.assign(static_cast<size_t>(coarse_n), 0);
  std::vector<std::unordered_map<int32_t, float>> agg(
      static_cast<size_t>(coarse_n));
  for (int32_t u = 0; u < g.n; ++u) {
    const int32_t cu = coarse_id[static_cast<size_t>(u)];
    c.node_weight[static_cast<size_t>(cu)] +=
        g.node_weight[static_cast<size_t>(u)];
    for (const auto& [v, w] : g.nbrs[static_cast<size_t>(u)]) {
      const int32_t cv = coarse_id[static_cast<size_t>(v)];
      if (cv != cu) agg[static_cast<size_t>(cu)][cv] += w;
    }
  }
  for (int32_t u = 0; u < coarse_n; ++u) {
    auto& out = c.nbrs[static_cast<size_t>(u)];
    out.assign(agg[static_cast<size_t>(u)].begin(),
               agg[static_cast<size_t>(u)].end());
    std::sort(out.begin(), out.end());
  }
  return c;
}

/// Greedy region growing: grows k parts from random seeds via weighted BFS,
/// always extending the currently lightest part.
std::vector<int32_t> InitialPartition(const WGraph& g, int32_t k,
                                      int64_t max_part_weight, Rng& rng) {
  std::vector<int32_t> part(static_cast<size_t>(g.n), -1);
  std::vector<int64_t> weight(static_cast<size_t>(k), 0);
  std::vector<std::queue<int32_t>> frontier(static_cast<size_t>(k));

  // Random distinct seeds.
  std::vector<int32_t> order(static_cast<size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  for (int32_t i = g.n - 1; i > 0; --i) {
    std::swap(order[static_cast<size_t>(i)],
              order[static_cast<size_t>(rng.UniformInt(i + 1))]);
  }
  int32_t seeded = 0;
  for (int32_t u : order) {
    if (seeded == k) break;
    if (part[static_cast<size_t>(u)] == -1) {
      part[static_cast<size_t>(u)] = seeded;
      weight[static_cast<size_t>(seeded)] +=
          g.node_weight[static_cast<size_t>(u)];
      frontier[static_cast<size_t>(seeded)].push(u);
      ++seeded;
    }
  }

  int32_t assigned = seeded;
  size_t fallback_cursor = 0;
  while (assigned < g.n) {
    // Pick lightest part that still has a frontier or can take a fallback.
    int32_t p = 0;
    for (int32_t i = 1; i < k; ++i) {
      if (weight[static_cast<size_t>(i)] < weight[static_cast<size_t>(p)]) {
        p = i;
      }
    }
    int32_t grab = -1;
    auto& q = frontier[static_cast<size_t>(p)];
    while (!q.empty() && grab == -1) {
      const int32_t u = q.front();
      q.pop();
      for (const auto& [v, w] : g.nbrs[static_cast<size_t>(u)]) {
        (void)w;
        if (part[static_cast<size_t>(v)] == -1) {
          grab = v;
          q.push(u);  // u may have more unassigned neighbours.
          break;
        }
      }
    }
    if (grab == -1) {
      // Disconnected remainder: take the next unassigned node anywhere.
      while (fallback_cursor < order.size() &&
             part[static_cast<size_t>(order[fallback_cursor])] != -1) {
        ++fallback_cursor;
      }
      if (fallback_cursor >= order.size()) break;
      grab = order[fallback_cursor];
    }
    part[static_cast<size_t>(grab)] = p;
    weight[static_cast<size_t>(p)] += g.node_weight[static_cast<size_t>(grab)];
    frontier[static_cast<size_t>(p)].push(grab);
    ++assigned;
    (void)max_part_weight;
  }
  return part;
}

/// Greedy boundary refinement: moves boundary nodes to the neighbouring part
/// with maximum cut gain, subject to the balance constraint.
void Refine(const WGraph& g, int32_t k, int64_t max_part_weight, int sweeps,
            std::vector<int32_t>* part) {
  std::vector<int64_t> weight(static_cast<size_t>(k), 0);
  for (int32_t u = 0; u < g.n; ++u) {
    weight[static_cast<size_t>((*part)[static_cast<size_t>(u)])] +=
        g.node_weight[static_cast<size_t>(u)];
  }
  std::unordered_map<int32_t, float> conn;
  for (int s = 0; s < sweeps; ++s) {
    bool moved = false;
    for (int32_t u = 0; u < g.n; ++u) {
      const size_t su = static_cast<size_t>(u);
      const int32_t pu = (*part)[su];
      conn.clear();
      for (const auto& [v, w] : g.nbrs[su]) {
        conn[(*part)[static_cast<size_t>(v)]] += w;
      }
      if (conn.size() <= 1 && conn.count(pu)) continue;  // Interior node.
      const float internal = conn.count(pu) ? conn[pu] : 0.0f;
      float best_gain = 0.0f;
      int32_t best_part = pu;
      for (const auto& [p, w] : conn) {
        if (p == pu) continue;
        if (weight[static_cast<size_t>(p)] +
                g.node_weight[su] > max_part_weight) {
          continue;
        }
        const float gain = w - internal;
        if (gain > best_gain + 1e-9f) {
          best_gain = gain;
          best_part = p;
        }
      }
      if (best_part != pu) {
        weight[static_cast<size_t>(pu)] -= g.node_weight[su];
        weight[static_cast<size_t>(best_part)] += g.node_weight[su];
        (*part)[su] = best_part;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

/// Forces every part non-empty and within the balance bound by moving nodes
/// from the heaviest parts into deficient ones (cheapest-connection first).
void EnforceFeasibility(const WGraph& g, int32_t k, int64_t max_part_weight,
                        std::vector<int32_t>* part) {
  std::vector<int64_t> weight(static_cast<size_t>(k), 0);
  for (int32_t u = 0; u < g.n; ++u) {
    weight[static_cast<size_t>((*part)[static_cast<size_t>(u)])] +=
        g.node_weight[static_cast<size_t>(u)];
  }
  for (int32_t p = 0; p < k; ++p) {
    while (weight[static_cast<size_t>(p)] == 0) {
      // Steal a node from the heaviest part.
      int32_t donor = 0;
      for (int32_t i = 1; i < k; ++i) {
        if (weight[static_cast<size_t>(i)] > weight[static_cast<size_t>(donor)]) {
          donor = i;
        }
      }
      int32_t steal = -1;
      for (int32_t u = 0; u < g.n && steal == -1; ++u) {
        if ((*part)[static_cast<size_t>(u)] == donor) steal = u;
      }
      ADAFGL_CHECK(steal != -1);
      (*part)[static_cast<size_t>(steal)] = p;
      weight[static_cast<size_t>(donor)] -=
          g.node_weight[static_cast<size_t>(steal)];
      weight[static_cast<size_t>(p)] +=
          g.node_weight[static_cast<size_t>(steal)];
    }
  }
  (void)max_part_weight;
}

}  // namespace

std::vector<int32_t> MetisLikePartition(const CsrMatrix& adj, int32_t k,
                                        Rng& rng,
                                        const MetisLikeOptions& options) {
  ADAFGL_CHECK(adj.rows() == adj.cols());
  ADAFGL_CHECK(k > 0);
  const int32_t n = adj.rows();
  if (k == 1) return std::vector<int32_t>(static_cast<size_t>(n), 0);
  ADAFGL_CHECK(n >= k);

  const int64_t max_part_weight = static_cast<int64_t>(
      std::ceil(static_cast<double>(n) / k * (1.0 + options.epsilon)));

  // --- Coarsening phase. ---
  std::vector<WGraph> levels;
  std::vector<std::vector<int32_t>> projections;
  levels.push_back(FromCsr(adj));
  const int32_t target = std::max(k * options.coarsen_to_per_part, 2 * k);
  while (levels.back().n > target) {
    auto [coarse_id, coarse_n] = HeavyEdgeMatch(levels.back(), rng);
    if (coarse_n >= levels.back().n) break;  // Matching stalled.
    WGraph coarse = Coarsen(levels.back(), coarse_id, coarse_n);
    projections.push_back(std::move(coarse_id));
    levels.push_back(std::move(coarse));
  }

  // --- Initial partition on the coarsest graph. ---
  std::vector<int32_t> part =
      InitialPartition(levels.back(), k, max_part_weight, rng);
  EnforceFeasibility(levels.back(), k, max_part_weight, &part);
  Refine(levels.back(), k, max_part_weight, options.refine_sweeps, &part);

  // --- Uncoarsening + refinement. ---
  for (int64_t lvl = static_cast<int64_t>(projections.size()) - 1; lvl >= 0;
       --lvl) {
    const std::vector<int32_t>& proj = projections[static_cast<size_t>(lvl)];
    std::vector<int32_t> fine_part(proj.size());
    for (size_t u = 0; u < proj.size(); ++u) {
      fine_part[u] = part[static_cast<size_t>(proj[u])];
    }
    part = std::move(fine_part);
    Refine(levels[static_cast<size_t>(lvl)], k, max_part_weight,
           options.refine_sweeps, &part);
  }
  EnforceFeasibility(levels.front(), k, max_part_weight, &part);
  return part;
}

std::vector<int32_t> RandomPartition(int32_t num_nodes, int32_t k, Rng& rng) {
  ADAFGL_CHECK(k > 0 && num_nodes >= k);
  std::vector<int32_t> part(static_cast<size_t>(num_nodes));
  // Shuffle node ids and deal them round-robin for exact balance.
  std::vector<int32_t> order(static_cast<size_t>(num_nodes));
  std::iota(order.begin(), order.end(), 0);
  for (int32_t i = num_nodes - 1; i > 0; --i) {
    std::swap(order[static_cast<size_t>(i)],
              order[static_cast<size_t>(rng.UniformInt(i + 1))]);
  }
  for (int32_t i = 0; i < num_nodes; ++i) {
    part[static_cast<size_t>(order[static_cast<size_t>(i)])] = i % k;
  }
  return part;
}

}  // namespace adafgl
