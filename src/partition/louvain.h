#ifndef ADAFGL_PARTITION_LOUVAIN_H_
#define ADAFGL_PARTITION_LOUVAIN_H_

#include <vector>

#include "tensor/csr.h"
#include "tensor/rng.h"

namespace adafgl {

/// Options for the Louvain community-detection algorithm.
struct LouvainOptions {
  /// Stop a local-moving pass when the modularity gain falls below this.
  double min_modularity_gain = 1e-6;
  /// Upper bound on coarsening levels (safety valve; Louvain converges far
  /// earlier on real graphs).
  int max_levels = 20;
  /// Maximum local-moving sweeps per level.
  int max_sweeps_per_level = 50;
};

/// \brief Louvain community detection (Blondel et al., 2008), as used by the
/// paper's *community split* simulation strategy.
///
/// Runs repeated local-moving + graph-aggregation phases until modularity
/// stops improving. Node visiting order is shuffled with `rng`, making the
/// result deterministic for a fixed seed. Returns a community id per node
/// (ids are compacted to 0..num_communities-1).
std::vector<int32_t> Louvain(const CsrMatrix& adj, Rng& rng,
                             const LouvainOptions& options = {});

}  // namespace adafgl

#endif  // ADAFGL_PARTITION_LOUVAIN_H_
