#ifndef ADAFGL_PARTITION_METIS_LIKE_H_
#define ADAFGL_PARTITION_METIS_LIKE_H_

#include <vector>

#include "tensor/csr.h"
#include "tensor/rng.h"

namespace adafgl {

/// Options for the multilevel k-way partitioner.
struct MetisLikeOptions {
  /// Allowed size slack: every part holds at most ceil(n/k * (1+epsilon))
  /// node weight.
  double epsilon = 0.05;
  /// Coarsening stops when the graph has at most this many nodes per part.
  int32_t coarsen_to_per_part = 30;
  /// Boundary-refinement sweeps per uncoarsening level.
  int refine_sweeps = 6;
};

/// \brief Multilevel k-way graph partitioner in the style of Metis
/// (Karypis & Kumar, 1998): heavy-edge-matching coarsening, greedy
/// region-growing initial partition, and boundary Kernighan-Lin/FM
/// refinement during uncoarsening.
///
/// Minimises edge cut subject to a node-count balance constraint. Used by
/// the paper's *structure Non-iid split* (Definition 1) to produce
/// topology-consistent federated subgraphs. Deterministic for a fixed rng
/// seed. Returns a part id in [0, k) per node; every part is non-empty for
/// connected inputs with n >= k.
std::vector<int32_t> MetisLikePartition(const CsrMatrix& adj, int32_t k,
                                        Rng& rng,
                                        const MetisLikeOptions& options = {});

/// Uniform random baseline partition (each node assigned independently,
/// then rebalanced to equal sizes). Used in tests and as a quality foil.
std::vector<int32_t> RandomPartition(int32_t num_nodes, int32_t k, Rng& rng);

}  // namespace adafgl

#endif  // ADAFGL_PARTITION_METIS_LIKE_H_
