#include "partition/louvain.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "tensor/status.h"

namespace adafgl {

namespace {

/// Weighted graph in adjacency-list form used internally across levels.
struct LevelGraph {
  int32_t n = 0;
  // Per-node neighbour lists (node, weight); parallel edges pre-merged.
  std::vector<std::vector<std::pair<int32_t, float>>> nbrs;
  std::vector<float> self_loop;   // Aggregated intra-community weight.
  std::vector<float> degree;      // Weighted degree incl. self loop * 2.
  double total_weight = 0.0;      // 2m.
};

LevelGraph FromCsr(const CsrMatrix& adj) {
  LevelGraph g;
  g.n = adj.rows();
  g.nbrs.resize(static_cast<size_t>(g.n));
  g.self_loop.assign(static_cast<size_t>(g.n), 0.0f);
  g.degree.assign(static_cast<size_t>(g.n), 0.0f);
  for (int32_t u = 0; u < g.n; ++u) {
    adj.ForEachInRow(u, [&](int32_t v, float w) {
      if (v == u) {
        g.self_loop[static_cast<size_t>(u)] += w;
      } else {
        g.nbrs[static_cast<size_t>(u)].emplace_back(v, w);
      }
    });
  }
  for (int32_t u = 0; u < g.n; ++u) {
    float d = 2.0f * g.self_loop[static_cast<size_t>(u)];
    for (const auto& [v, w] : g.nbrs[static_cast<size_t>(u)]) d += w;
    g.degree[static_cast<size_t>(u)] = d;
    g.total_weight += d;
  }
  return g;
}

/// One level of local moving. Returns (community per node, gained).
std::pair<std::vector<int32_t>, bool> LocalMoving(
    const LevelGraph& g, Rng& rng, const LouvainOptions& options) {
  std::vector<int32_t> comm(static_cast<size_t>(g.n));
  std::iota(comm.begin(), comm.end(), 0);
  std::vector<double> comm_tot(g.degree.begin(), g.degree.end());

  std::vector<int32_t> order(static_cast<size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);
  for (int32_t i = g.n - 1; i > 0; --i) {
    std::swap(order[static_cast<size_t>(i)],
              order[static_cast<size_t>(rng.UniformInt(i + 1))]);
  }

  const double two_m = std::max(g.total_weight, 1e-12);
  bool any_gain = false;
  std::unordered_map<int32_t, double> weight_to;

  for (int sweep = 0; sweep < options.max_sweeps_per_level; ++sweep) {
    bool moved = false;
    for (int32_t u : order) {
      const size_t su = static_cast<size_t>(u);
      const int32_t cu = comm[su];
      weight_to.clear();
      weight_to[cu] = 0.0;
      for (const auto& [v, w] : g.nbrs[su]) {
        weight_to[comm[static_cast<size_t>(v)]] += w;
      }
      // Remove u from its community.
      comm_tot[static_cast<size_t>(cu)] -= g.degree[su];
      double best_gain = 0.0;
      int32_t best_comm = cu;
      const double base = weight_to[cu] -
                          comm_tot[static_cast<size_t>(cu)] * g.degree[su] / two_m;
      for (const auto& [c, w_in] : weight_to) {
        const double gain =
            w_in - comm_tot[static_cast<size_t>(c)] * g.degree[su] / two_m;
        if (gain - base > best_gain + options.min_modularity_gain) {
          best_gain = gain - base;
          best_comm = c;
        }
      }
      comm[su] = best_comm;
      comm_tot[static_cast<size_t>(best_comm)] += g.degree[su];
      if (best_comm != cu) {
        moved = true;
        any_gain = true;
      }
    }
    if (!moved) break;
  }
  return {std::move(comm), any_gain};
}

/// Renumbers community ids to a dense 0..k-1 range.
int32_t Compact(std::vector<int32_t>* comm) {
  std::unordered_map<int32_t, int32_t> remap;
  for (int32_t& c : *comm) {
    auto [it, inserted] =
        remap.emplace(c, static_cast<int32_t>(remap.size()));
    c = it->second;
  }
  return static_cast<int32_t>(remap.size());
}

/// Aggregates communities into a coarser LevelGraph.
LevelGraph Aggregate(const LevelGraph& g, const std::vector<int32_t>& comm,
                     int32_t num_comm) {
  LevelGraph coarse;
  coarse.n = num_comm;
  coarse.nbrs.resize(static_cast<size_t>(num_comm));
  coarse.self_loop.assign(static_cast<size_t>(num_comm), 0.0f);
  coarse.degree.assign(static_cast<size_t>(num_comm), 0.0f);

  std::vector<std::unordered_map<int32_t, float>> agg(
      static_cast<size_t>(num_comm));
  for (int32_t u = 0; u < g.n; ++u) {
    const size_t su = static_cast<size_t>(u);
    const int32_t cu = comm[su];
    coarse.self_loop[static_cast<size_t>(cu)] += g.self_loop[su];
    for (const auto& [v, w] : g.nbrs[su]) {
      const int32_t cv = comm[static_cast<size_t>(v)];
      if (cv == cu) {
        // Each intra-community edge visited twice (u->v and v->u).
        coarse.self_loop[static_cast<size_t>(cu)] += w * 0.5f;
      } else {
        agg[static_cast<size_t>(cu)][cv] += w;
      }
    }
  }
  for (int32_t c = 0; c < num_comm; ++c) {
    auto& out = coarse.nbrs[static_cast<size_t>(c)];
    out.assign(agg[static_cast<size_t>(c)].begin(),
               agg[static_cast<size_t>(c)].end());
    std::sort(out.begin(), out.end());
    float d = 2.0f * coarse.self_loop[static_cast<size_t>(c)];
    for (const auto& [v, w] : out) d += w;
    coarse.degree[static_cast<size_t>(c)] = d;
    coarse.total_weight += d;
  }
  return coarse;
}

}  // namespace

std::vector<int32_t> Louvain(const CsrMatrix& adj, Rng& rng,
                             const LouvainOptions& options) {
  ADAFGL_CHECK(adj.rows() == adj.cols());
  const int32_t n = adj.rows();
  std::vector<int32_t> assignment(static_cast<size_t>(n));
  std::iota(assignment.begin(), assignment.end(), 0);
  if (n == 0) return assignment;

  LevelGraph g = FromCsr(adj);
  for (int level = 0; level < options.max_levels; ++level) {
    auto [comm, gained] = LocalMoving(g, rng, options);
    const int32_t num_comm = Compact(&comm);
    // Map original nodes through this level's assignment.
    for (int32_t u = 0; u < n; ++u) {
      assignment[static_cast<size_t>(u)] =
          comm[static_cast<size_t>(assignment[static_cast<size_t>(u)])];
    }
    if (!gained || num_comm == g.n) break;
    g = Aggregate(g, comm, num_comm);
  }
  Compact(&assignment);
  return assignment;
}

}  // namespace adafgl
