#ifndef ADAFGL_DATA_REGISTRY_H_
#define ADAFGL_DATA_REGISTRY_H_

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "graph/graph.h"
#include "tensor/rng.h"
#include "tensor/status.h"

namespace adafgl {

/// \brief Metadata for one of the paper's 12 benchmark datasets (Table I)
/// plus the parameters of its synthetic stand-in.
///
/// The real datasets are not redistributable here, so each entry carries the
/// published statistics (for Table I reporting and for validating the
/// generator) and the DC-SBM parameters used to synthesise a graph in the
/// same topological regime: matched edge homophily, matched class count,
/// heavy-tailed degrees, and a feature signal-to-noise chosen to land
/// single-graph GCN accuracy in the paper's reported band. Large graphs are
/// scaled down (`gen` columns) to run on a single CPU core; DESIGN.md §1
/// documents the substitution.
struct DatasetSpec {
  std::string name;
  // Published statistics (Table I).
  int32_t paper_nodes;
  int32_t paper_features;
  int64_t paper_edges;
  int32_t num_classes;
  double paper_edge_homophily;
  std::string paper_split;
  bool inductive;
  std::string description;
  // Synthetic stand-in parameters.
  SbmParams gen;

  /// True when the published edge homophily >= 0.5.
  bool IsHomophilous() const { return paper_edge_homophily >= 0.5; }
};

/// All 12 datasets, in Table I order.
const std::vector<DatasetSpec>& DatasetRegistry();

/// Lookup by name (case sensitive). NotFound if missing.
Result<DatasetSpec> FindDataset(const std::string& name);

/// Generates the synthetic stand-in graph for a dataset spec.
Graph GenerateDataset(const DatasetSpec& spec, Rng& rng);

/// Convenience: FindDataset + GenerateDataset (aborts on unknown name).
Graph GenerateDatasetByName(const std::string& name, Rng& rng);

}  // namespace adafgl

#endif  // ADAFGL_DATA_REGISTRY_H_
