#include "data/registry.h"

namespace adafgl {

namespace {

SbmParams Gen(int32_t nodes, int32_t classes, double avg_degree,
              double homophily, int32_t feature_dim, double signal,
              double train, double val, double style_spread = 0.3) {
  SbmParams p;
  p.num_nodes = nodes;
  p.num_classes = classes;
  p.num_edges = static_cast<int64_t>(nodes * avg_degree / 2.0);
  p.edge_homophily = homophily;
  p.feature_dim = feature_dim;
  p.feature_signal = signal;
  p.feature_noise = 1.0;
  p.train_frac = train;
  p.val_frac = val;
  p.test_frac = 1.0 - train - val;
  p.feature_subclusters = 3;
  p.subcluster_spread = style_spread;
  return p;
}

std::vector<DatasetSpec> BuildRegistry() {
  std::vector<DatasetSpec> r;
  // name, paper n, paper f, paper m, classes, E.Homo, split, inductive, desc,
  // generator params (gen nodes / classes / avg degree / homophily / f /
  // signal / train / val). Homophilous datasets use the 20/40/40 split,
  // heterophilous 60/20/20, inductive roughly 50/25/25 (Table I).
  r.push_back({"Cora", 2708, 1433, 5429, 7, 0.810, "20/40/40", false,
               "citation network",
               Gen(2708, 7, 4.0, 0.810, 128, 0.10, 0.2, 0.4)});
  r.push_back({"CiteSeer", 3327, 3703, 4732, 6, 0.736, "20/40/40", false,
               "citation network",
               Gen(3327, 6, 2.9, 0.736, 128, 0.13, 0.2, 0.4)});
  r.push_back({"PubMed", 19717, 500, 44338, 3, 0.802, "20/40/40", false,
               "citation network",
               Gen(3000, 3, 4.5, 0.802, 96, 0.16, 0.2, 0.4)});
  r.push_back({"Computer", 13381, 767, 245778, 10, 0.777, "20/40/40", false,
               "co-purchase network",
               Gen(3000, 10, 5.0, 0.777, 96, 0.08, 0.2, 0.4)});
  r.push_back({"Physics", 34493, 8415, 247962, 5, 0.931, "20/40/40", false,
               "co-authorship network",
               Gen(3000, 5, 5.0, 0.931, 160, 0.08, 0.2, 0.4)});
  r.push_back({"Chameleon", 2277, 2325, 36101, 5, 0.234, "60/20/20", false,
               "wiki pages network",
               Gen(2277, 5, 16.0, 0.234, 96, 0.27, 0.6, 0.2)});
  r.push_back({"Squirrel", 5201, 2089, 216933, 5, 0.223, "60/20/20", false,
               "wiki pages network",
               Gen(2500, 5, 20.0, 0.223, 96, 0.12, 0.6, 0.2)});
  r.push_back({"Actor", 7600, 931, 29926, 5, 0.216, "60/20/20", false,
               "movie network",
               Gen(2500, 5, 8.0, 0.216, 64, 0.07, 0.6, 0.2)});
  r.push_back({"Penn94", 41554, 5, 1362229, 2, 0.470, "60/20/20", false,
               "dating network",
               Gen(3000, 2, 20.0, 0.470, 5, 0.60, 0.6, 0.2)});
  r.push_back({"arxiv-year", 169343, 128, 1166243, 5, 0.222, "60/20/20",
               false, "publish network",
               Gen(3500, 5, 12.0, 0.222, 64, 0.17, 0.6, 0.2)});
  r.push_back({"Reddit", 89250, 500, 899756, 7, 0.756, "44k/22k/22k", true,
               "social network",
               Gen(3000, 7, 5.0, 0.756, 96, 0.60, 0.5, 0.25)});
  r.push_back({"Flickr", 232965, 602, 11606919, 41, 0.319, "155k/23k/54k",
               true, "image network",
               Gen(3000, 41, 10.0, 0.319, 96, 0.25, 0.5, 0.25)});
  return r;
}

}  // namespace

const std::vector<DatasetSpec>& DatasetRegistry() {
  static const std::vector<DatasetSpec>& registry =
      *new std::vector<DatasetSpec>(BuildRegistry());
  return registry;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : DatasetRegistry()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no dataset named '" + name + "'");
}

Graph GenerateDataset(const DatasetSpec& spec, Rng& rng) {
  return GenerateSbmGraph(spec.gen, rng);
}

Graph GenerateDatasetByName(const std::string& name, Rng& rng) {
  Result<DatasetSpec> spec = FindDataset(name);
  ADAFGL_CHECK(spec.ok());
  return GenerateDataset(spec.value(), rng);
}

}  // namespace adafgl
