#ifndef ADAFGL_DATA_INJECTION_H_
#define ADAFGL_DATA_INJECTION_H_

#include "graph/graph.h"
#include "tensor/rng.h"

namespace adafgl {

/// Which structural regime an injection pushes a subgraph toward.
enum class InjectionType {
  kHomophilous,    ///< Add edges between same-label node pairs.
  kHeterophilous,  ///< Add edges between different-label node pairs.
};

/// \brief Random-injection (Sec. IV-A): adds `ratio * |E|` new edges between
/// currently non-adjacent node pairs — same-label pairs for homophilous
/// augmentation, cross-label pairs for heterophilous perturbation.
///
/// The paper's default uses ratio = 0.5 ("increasing edges based on half of
/// the original edges"). Labels, features, and splits are preserved.
Graph RandomInjection(const Graph& g, InjectionType type, double ratio,
                      Rng& rng);

/// \brief Meta-injection: surrogate-guided adversarial heterophilous edge
/// insertion standing in for Metattack [74].
///
/// A linear SGC surrogate (logits = Â^2 X W) is fit on the training nodes;
/// candidate cross-label non-adjacent pairs are scored by the product of the
/// surrogate's confidence in both endpoints' true classes — the first-order
/// proxy for how much damage connecting two confidently-but-differently
/// labeled nodes does to message passing — and the top `budget_ratio * |E|`
/// pairs are inserted. Matches the paper's budget of 0.2 * |E| and its
/// restriction to heterophily enhancement.
Graph MetaInjection(const Graph& g, double budget_ratio, Rng& rng);

}  // namespace adafgl

#endif  // ADAFGL_DATA_INJECTION_H_
