#ifndef ADAFGL_DATA_SYNTHETIC_H_
#define ADAFGL_DATA_SYNTHETIC_H_

#include <vector>

#include "graph/graph.h"
#include "tensor/rng.h"

namespace adafgl {

/// Parameters of the degree-corrected stochastic-block-model generator.
///
/// The generator draws `num_edges` undirected edges; each edge picks its
/// first endpoint proportionally to a heavy-tailed degree propensity, then
/// with probability `edge_homophily` picks a same-class partner and
/// otherwise a uniformly different-class partner (also degree-weighted).
/// The expected edge homophily of the output therefore equals
/// `edge_homophily` by construction — the single knob the paper's analysis
/// turns (homophilous vs heterophilous topology regimes).
struct SbmParams {
  int32_t num_nodes = 0;
  int32_t num_classes = 2;
  int64_t num_edges = 0;
  double edge_homophily = 0.8;
  /// Pareto shape for degree propensities; smaller = heavier tail.
  double degree_tail = 2.5;
  /// Zipf-ish skew of class sizes; 0 = balanced.
  double class_skew = 0.3;
  /// Number of topology communities per class. Real homophilous graphs
  /// contain many dense communities per class; with > 1, same-class edges
  /// attach within the endpoint's community with probability
  /// `community_affinity`, so community detection recovers sub-class
  /// clusters instead of whole classes (which would otherwise hand
  /// community split a label-prior shortcut the real datasets don't have).
  int32_t communities_per_class = 3;
  double community_affinity = 0.85;
  /// Per-node homophily heterogeneity. A `hard_node_fraction` of nodes get
  /// their homophily reduced by `hard_homophily_drop` (floored at 0.02)
  /// while the rest are raised to keep the graph-level target — modelling
  /// the boundary/hub nodes whose neighbourhoods are locally mixed in real
  /// graphs. Without them, high-degree homophilous graphs make
  /// neighbourhood majority voting noiseless and every method saturates.
  double hard_node_fraction = 0.25;
  double hard_homophily_drop = 0.6;
  /// Structured heterophily: with this probability, a cross-class edge from
  /// a class-c node attaches to the "preferred" partner class (c+1 mod C)
  /// instead of a uniformly random other class. Real heterophilous graphs
  /// (wiki hierarchies, fraud bipartites) have class-pair structure that
  /// makes neighbourhoods predictive even when labels disagree — the signal
  /// heterophilous GNNs exploit. 0 disables.
  double hetero_structure = 0.6;

  int32_t feature_dim = 64;
  /// Std-dev of class-mean separation relative to unit feature noise.
  double feature_signal = 1.0;
  double feature_noise = 1.0;
  /// Number of intra-class feature subclusters (bag-of-words-like
  /// substructure). With spread > 0, each node's feature is
  /// mu_class + mu_subcluster + noise: the subcluster offsets dominate the
  /// class separation, so few-shot feature-only learners struggle while
  /// neighbourhood/affinity smoothing (which averages subclusters out)
  /// recovers the class mean — the regime real citation features live in.
  int32_t feature_subclusters = 3;
  double subcluster_spread = 0.0;

  double train_frac = 0.2;
  double val_frac = 0.4;
  double test_frac = 0.4;
};

/// Generates a labeled attributed graph from the DC-SBM above, including a
/// stratified train/val/test split.
Graph GenerateSbmGraph(const SbmParams& params, Rng& rng);

/// Draws class-conditioned Gaussian features with optional subcluster
/// structure: X_i = mu_{y_i} + mu_{sub(i)} + noise * eps, where sub(i) is a
/// uniformly chosen per-class subcluster whose mean has per-dim std-dev
/// `subcluster_spread` (0 disables substructure).
Matrix GenerateClassFeatures(const std::vector<int32_t>& labels,
                             int32_t num_classes, int32_t feature_dim,
                             double signal, double noise, Rng& rng,
                             int32_t subclusters = 1,
                             double subcluster_spread = 0.0);

/// Stratified split: every class is divided train/val/test with the given
/// fractions. Fills the graph's split vectors.
void StratifiedSplit(Graph* g, double train_frac, double val_frac, Rng& rng);

}  // namespace adafgl

#endif  // ADAFGL_DATA_SYNTHETIC_H_
