#include "data/injection.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "tensor/matrix_ops.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "tensor/status.h"

namespace adafgl {

namespace {

/// Collects the current undirected edges and a fast lookup set.
std::set<std::pair<int32_t, int32_t>> EdgeSet(const Graph& g) {
  std::set<std::pair<int32_t, int32_t>> s;
  for (const auto& e : UndirectedEdges(g.adj)) s.insert(e);
  return s;
}

Graph RebuildWithEdges(const Graph& g,
                       std::vector<std::pair<int32_t, int32_t>> edges) {
  Graph out;
  out.adj = CsrFromUndirectedEdges(g.num_nodes(), edges);
  out.features = g.features;
  out.labels = g.labels;
  out.num_classes = g.num_classes;
  out.train_nodes = g.train_nodes;
  out.val_nodes = g.val_nodes;
  out.test_nodes = g.test_nodes;
  return out;
}

}  // namespace

Graph RandomInjection(const Graph& g, InjectionType type, double ratio,
                      Rng& rng) {
  ADAFGL_CHECK(ratio >= 0.0);
  const int32_t n = g.num_nodes();
  auto edge_set = EdgeSet(g);
  std::vector<std::pair<int32_t, int32_t>> edges(edge_set.begin(),
                                                 edge_set.end());
  const int64_t to_add =
      static_cast<int64_t>(static_cast<double>(edges.size()) * ratio);
  int64_t added = 0;
  int64_t attempts = 0;
  const int64_t max_attempts = std::max<int64_t>(1000, to_add * 200);
  while (added < to_add && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<int32_t>(rng.UniformInt(n));
    const auto v = static_cast<int32_t>(rng.UniformInt(n));
    if (u == v) continue;
    const bool same =
        g.labels[static_cast<size_t>(u)] == g.labels[static_cast<size_t>(v)];
    if (type == InjectionType::kHomophilous && !same) continue;
    if (type == InjectionType::kHeterophilous && same) continue;
    const auto key = std::minmax(u, v);
    if (!edge_set.insert({key.first, key.second}).second) continue;
    edges.emplace_back(key.first, key.second);
    ++added;
  }
  return RebuildWithEdges(g, std::move(edges));
}

Graph MetaInjection(const Graph& g, double budget_ratio, Rng& rng) {
  ADAFGL_CHECK(budget_ratio >= 0.0);
  const int32_t n = g.num_nodes();
  auto edge_set = EdgeSet(g);
  std::vector<std::pair<int32_t, int32_t>> edges(edge_set.begin(),
                                                 edge_set.end());
  const int64_t budget =
      static_cast<int64_t>(static_cast<double>(edges.size()) * budget_ratio);
  if (budget == 0 || g.train_nodes.empty()) {
    return RebuildWithEdges(g, std::move(edges));
  }

  // --- Fit the linear SGC surrogate: logits = Â^2 X W. ---
  auto norm_adj = std::make_shared<CsrMatrix>(GcnNormalized(g.adj));
  Matrix x2 = norm_adj->Multiply(norm_adj->Multiply(g.features));
  Tensor x2t = MakeConst(x2);
  Rng init_rng = rng.Fork(1);
  Tensor w = MakeParam(
      Matrix::Glorot(g.features.cols(), g.num_classes, init_rng));
  Adam opt({w}, /*lr=*/0.05f, /*weight_decay=*/5e-4f);
  for (int epoch = 0; epoch < 60; ++epoch) {
    opt.ZeroGrad();
    Tensor logits = ops::MatMul(x2t, w);
    Tensor loss =
        ops::CrossEntropyWithLogits(logits, g.labels, g.train_nodes);
    Backward(loss);
    opt.Step();
  }
  const Matrix probs = Softmax(MatMul(x2, w->value()));

  // --- Score candidate cross-label pairs. ---
  struct Candidate {
    float score;
    int32_t u;
    int32_t v;
  };
  std::vector<Candidate> candidates;
  const int64_t pool = budget * 30;
  std::set<std::pair<int32_t, int32_t>> seen;
  for (int64_t i = 0; i < pool * 4 &&
                      static_cast<int64_t>(candidates.size()) < pool; ++i) {
    const auto u = static_cast<int32_t>(rng.UniformInt(n));
    const auto v = static_cast<int32_t>(rng.UniformInt(n));
    if (u == v) continue;
    if (g.labels[static_cast<size_t>(u)] ==
        g.labels[static_cast<size_t>(v)]) {
      continue;
    }
    const auto key = std::minmax(u, v);
    if (edge_set.count({key.first, key.second})) continue;
    if (!seen.insert({key.first, key.second}).second) continue;
    // First-order damage proxy, following Metattack's empirically observed
    // strategy: attach a *vulnerable* victim (low degree, low surrogate
    // confidence in its true class) to a *confident* attacker of a
    // different class, so the injected message flips the victim.
    auto pair_score = [&](int32_t victim, int32_t attacker) {
      const float vulnerability =
          1.0f - probs(victim, g.labels[static_cast<size_t>(victim)]);
      const float attacker_conf =
          probs(attacker, g.labels[static_cast<size_t>(attacker)]);
      const float inv_deg =
          1.0f / (1.0f + static_cast<float>(g.adj.RowNnz(victim)));
      return vulnerability * attacker_conf * inv_deg;
    };
    const float score = std::max(pair_score(u, v), pair_score(v, u));
    candidates.push_back({score, key.first, key.second});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  const int64_t take =
      std::min<int64_t>(budget, static_cast<int64_t>(candidates.size()));
  for (int64_t i = 0; i < take; ++i) {
    edges.emplace_back(candidates[static_cast<size_t>(i)].u,
                       candidates[static_cast<size_t>(i)].v);
  }
  return RebuildWithEdges(g, std::move(edges));
}

}  // namespace adafgl
