#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "tensor/status.h"

namespace adafgl {

namespace {

/// Alias-free weighted sampler over a fixed weight vector (linear scan over
/// a cumulative array with binary search).
class WeightedSampler {
 public:
  explicit WeightedSampler(const std::vector<double>& weights) {
    cumulative_.reserve(weights.size());
    double acc = 0.0;
    for (double w : weights) {
      acc += std::max(w, 0.0);
      cumulative_.push_back(acc);
    }
    total_ = acc;
  }

  bool empty() const { return total_ <= 0.0; }

  int32_t Sample(Rng& rng) const {
    ADAFGL_CHECK(!empty());
    const double u = rng.Uniform() * total_;
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<int32_t>(
        std::min<size_t>(static_cast<size_t>(it - cumulative_.begin()),
                         cumulative_.size() - 1));
  }

 private:
  std::vector<double> cumulative_;
  double total_ = 0.0;
};

}  // namespace

Matrix GenerateClassFeatures(const std::vector<int32_t>& labels,
                             int32_t num_classes, int32_t feature_dim,
                             double signal, double noise, Rng& rng,
                             int32_t subclusters, double subcluster_spread) {
  ADAFGL_CHECK(subclusters >= 1);
  Matrix means(num_classes, feature_dim);
  for (int64_t i = 0; i < means.size(); ++i) {
    means.data()[i] = static_cast<float>(rng.Normal() * signal);
  }
  // Class-independent "style" offsets shared by all classes (zero when
  // spread is 0). Because every class draws from the same pool, the offset
  // carries no label information — it is structured nuisance variance that
  // neighbourhood averaging removes but a few-shot feature learner cannot.
  Matrix sub_means(subclusters, feature_dim);
  if (subcluster_spread > 0.0) {
    for (int64_t i = 0; i < sub_means.size(); ++i) {
      sub_means.data()[i] =
          static_cast<float>(rng.Normal() * subcluster_spread);
    }
  }
  Matrix x(static_cast<int64_t>(labels.size()), feature_dim);
  for (size_t i = 0; i < labels.size(); ++i) {
    const float* mu = means.row(labels[i]);
    const float* mu_sub = sub_means.row(rng.UniformInt(subclusters));
    float* xi = x.row(static_cast<int64_t>(i));
    for (int32_t j = 0; j < feature_dim; ++j) {
      xi[j] = mu[j] + mu_sub[j] + static_cast<float>(rng.Normal() * noise);
    }
  }
  return x;
}

void StratifiedSplit(Graph* g, double train_frac, double val_frac, Rng& rng) {
  ADAFGL_CHECK(g != nullptr);
  ADAFGL_CHECK(train_frac > 0.0 && train_frac + val_frac < 1.0 + 1e-9);
  g->train_nodes.clear();
  g->val_nodes.clear();
  g->test_nodes.clear();
  std::vector<std::vector<int32_t>> by_class(
      static_cast<size_t>(g->num_classes));
  for (int32_t i = 0; i < g->num_nodes(); ++i) {
    by_class[static_cast<size_t>(g->labels[static_cast<size_t>(i)])]
        .push_back(i);
  }
  for (auto& nodes : by_class) {
    for (int64_t i = static_cast<int64_t>(nodes.size()) - 1; i > 0; --i) {
      std::swap(nodes[static_cast<size_t>(i)],
                nodes[static_cast<size_t>(rng.UniformInt(i + 1))]);
    }
    const auto n = static_cast<int64_t>(nodes.size());
    const int64_t n_train =
        std::max<int64_t>(1, static_cast<int64_t>(std::lround(n * train_frac)));
    const int64_t n_val = static_cast<int64_t>(std::lround(n * val_frac));
    for (int64_t i = 0; i < n; ++i) {
      if (i < n_train) {
        g->train_nodes.push_back(nodes[static_cast<size_t>(i)]);
      } else if (i < n_train + n_val) {
        g->val_nodes.push_back(nodes[static_cast<size_t>(i)]);
      } else {
        g->test_nodes.push_back(nodes[static_cast<size_t>(i)]);
      }
    }
  }
  std::sort(g->train_nodes.begin(), g->train_nodes.end());
  std::sort(g->val_nodes.begin(), g->val_nodes.end());
  std::sort(g->test_nodes.begin(), g->test_nodes.end());
}

Graph GenerateSbmGraph(const SbmParams& params, Rng& rng) {
  ADAFGL_CHECK(params.num_nodes > 0);
  ADAFGL_CHECK(params.num_classes >= 2);
  ADAFGL_CHECK(params.num_nodes >= params.num_classes * 4);
  const int32_t n = params.num_nodes;
  const int32_t c = params.num_classes;

  // --- Labels with mild Zipf skew over class sizes. ---
  std::vector<double> class_weight(static_cast<size_t>(c));
  for (int32_t k = 0; k < c; ++k) {
    class_weight[static_cast<size_t>(k)] =
        1.0 / std::pow(static_cast<double>(k) + 1.0, params.class_skew);
  }
  std::vector<int32_t> labels(static_cast<size_t>(n));
  {
    // Deterministic proportional allocation, then shuffle node order.
    const double tot = std::accumulate(class_weight.begin(),
                                       class_weight.end(), 0.0);
    std::vector<int32_t> counts(static_cast<size_t>(c), 0);
    int32_t assigned = 0;
    for (int32_t k = 0; k < c; ++k) {
      counts[static_cast<size_t>(k)] = std::max<int32_t>(
          2, static_cast<int32_t>(n * class_weight[static_cast<size_t>(k)] /
                                  tot));
      assigned += counts[static_cast<size_t>(k)];
    }
    // Fix rounding drift on class 0.
    counts[0] += n - assigned;
    ADAFGL_CHECK(counts[0] >= 2);
    int32_t idx = 0;
    for (int32_t k = 0; k < c; ++k) {
      for (int32_t i = 0; i < counts[static_cast<size_t>(k)]; ++i) {
        labels[static_cast<size_t>(idx++)] = k;
      }
    }
    for (int32_t i = n - 1; i > 0; --i) {
      std::swap(labels[static_cast<size_t>(i)],
                labels[static_cast<size_t>(rng.UniformInt(i + 1))]);
    }
  }

  // --- Per-node homophily: bimodal around the graph-level target. ---
  std::vector<double> node_homophily(static_cast<size_t>(n),
                                     params.edge_homophily);
  if (params.hard_node_fraction > 0.0) {
    const double q = params.hard_node_fraction;
    const double h = params.edge_homophily;
    double h_hard = std::max(0.02, h - params.hard_homophily_drop);
    double h_easy =
        std::min(0.98, (h - q * h_hard) / std::max(1e-9, 1.0 - q));
    // Re-solve the hard level so the mixture mean stays exactly on target
    // even when the easy level clamps at 0.98.
    h_hard = std::clamp((h - (1.0 - q) * h_easy) / std::max(1e-9, q), 0.02,
                        0.98);
    for (int32_t i = 0; i < n; ++i) {
      node_homophily[static_cast<size_t>(i)] =
          rng.Bernoulli(q) ? h_hard : h_easy;
    }
  }

  // --- Degree propensities: Pareto(tail) heavy-tailed. ---
  std::vector<double> theta(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    const double u = std::max(rng.Uniform(), 1e-12);
    theta[static_cast<size_t>(i)] =
        std::pow(u, -1.0 / params.degree_tail);  // Pareto with x_m = 1.
  }

  // Per-class and per-(class, community) weighted samplers.
  const int32_t blocks = std::max<int32_t>(1, params.communities_per_class);
  std::vector<int32_t> community(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    community[static_cast<size_t>(i)] =
        static_cast<int32_t>(rng.UniformInt(blocks));
  }
  std::vector<std::vector<double>> class_theta(
      static_cast<size_t>(c),
      std::vector<double>(static_cast<size_t>(n), 0.0));
  std::vector<std::vector<double>> block_theta(
      static_cast<size_t>(c) * blocks,
      std::vector<double>(static_cast<size_t>(n), 0.0));
  for (int32_t i = 0; i < n; ++i) {
    const int32_t y = labels[static_cast<size_t>(i)];
    class_theta[static_cast<size_t>(y)][static_cast<size_t>(i)] =
        theta[static_cast<size_t>(i)];
    block_theta[static_cast<size_t>(y) * blocks +
                static_cast<size_t>(community[static_cast<size_t>(i)])]
               [static_cast<size_t>(i)] = theta[static_cast<size_t>(i)];
  }
  WeightedSampler global_sampler(theta);
  std::vector<WeightedSampler> class_sampler;
  class_sampler.reserve(static_cast<size_t>(c));
  for (int32_t k = 0; k < c; ++k) {
    class_sampler.emplace_back(class_theta[static_cast<size_t>(k)]);
  }
  std::vector<WeightedSampler> block_sampler;
  block_sampler.reserve(static_cast<size_t>(c) * blocks);
  for (size_t b = 0; b < block_theta.size(); ++b) {
    block_sampler.emplace_back(block_theta[b]);
  }

  // --- Edges. ---
  const int64_t m = params.num_edges > 0
                        ? params.num_edges
                        : static_cast<int64_t>(2LL * n);
  std::set<std::pair<int32_t, int32_t>> edge_set;
  std::vector<std::pair<int32_t, int32_t>> edges;
  edges.reserve(static_cast<size_t>(m));
  int64_t attempts = 0;
  const int64_t max_attempts = m * 50;
  while (static_cast<int64_t>(edges.size()) < m && attempts < max_attempts) {
    ++attempts;
    const int32_t u = global_sampler.Sample(rng);
    const bool want_same =
        rng.Bernoulli(node_homophily[static_cast<size_t>(u)]);
    // Retry partner draws WITHIN the chosen branch; otherwise duplicate
    // rejection (more likely inside small same-class pools) would skew the
    // realised homophily below target.
    bool inserted = false;
    for (int retry = 0; retry < 8 && !inserted; ++retry) {
      int32_t v;
      if (want_same) {
        const int32_t y = labels[static_cast<size_t>(u)];
        if (blocks > 1 && rng.Bernoulli(params.community_affinity)) {
          const auto& sampler =
              block_sampler[static_cast<size_t>(y) * blocks +
                            static_cast<size_t>(
                                community[static_cast<size_t>(u)])];
          v = sampler.empty()
                  ? class_sampler[static_cast<size_t>(y)].Sample(rng)
                  : sampler.Sample(rng);
        } else {
          v = class_sampler[static_cast<size_t>(y)].Sample(rng);
        }
      } else if (c > 2 && rng.Bernoulli(params.hetero_structure)) {
        // Structured heterophily: attach to the preferred partner class.
        const int32_t target =
            (labels[static_cast<size_t>(u)] + 1) % c;
        v = class_sampler[static_cast<size_t>(target)].Sample(rng);
      } else {
        v = global_sampler.Sample(rng);
        int guard = 0;
        while (labels[static_cast<size_t>(v)] ==
                   labels[static_cast<size_t>(u)] && guard++ < 64) {
          v = global_sampler.Sample(rng);
        }
        if (labels[static_cast<size_t>(v)] ==
            labels[static_cast<size_t>(u)]) {
          break;
        }
      }
      if (u == v) continue;
      const auto key = std::minmax(u, v);
      if (edge_set.insert({key.first, key.second}).second) {
        edges.emplace_back(key.first, key.second);
        inserted = true;
      }
    }
  }

  Matrix features = GenerateClassFeatures(
      labels, c, params.feature_dim, params.feature_signal,
      params.feature_noise, rng, params.feature_subclusters,
      params.subcluster_spread);
  Graph g = MakeGraph(n, edges, std::move(features), std::move(labels), c);
  StratifiedSplit(&g, params.train_frac, params.val_frac, rng);
  return g;
}

}  // namespace adafgl
