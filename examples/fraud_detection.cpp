/// Fraud detection across banks — the heterophilous scenario from the
/// paper's introduction: "fraudsters are more likely to build connections
/// with customers", so the transaction graph is heterophilous, and each
/// bank's local engineering yields a different topology regime.
///
/// Builds a heterophilous transaction network (2 classes: customer /
/// fraudster), carves it into 6 "banks" with structure Non-iid split, and
/// compares a plain federated GCN (homophily assumption) against a
/// federated GloGNN (heterophily-aware) and AdaFGL (adaptive).
///
///   ./build/examples/fraud_detection
#include <cstdio>

#include "core/adafgl.h"
#include "data/synthetic.h"
#include "eval/runner.h"
#include "fed/splits.h"
#include "graph/metrics.h"

int main() {
  using namespace adafgl;

  // A transaction network: 3000 accounts, 6% of edges connect accounts of
  // the same type (fraudsters attach to customers, not to each other).
  SbmParams params;
  params.num_nodes = 3000;
  params.num_classes = 2;
  params.num_edges = 12000;
  params.edge_homophily = 0.06;
  params.class_skew = 1.2;  // Far fewer fraudsters than customers.
  params.feature_dim = 32;
  params.feature_signal = 0.25;
  params.feature_subclusters = 3;
  params.subcluster_spread = 0.3;
  params.train_frac = 0.4;
  params.val_frac = 0.2;
  Rng rng(17);
  Graph transactions = GenerateSbmGraph(params, rng);
  std::printf("transaction network: %d accounts, %lld edges, "
              "edge homophily %.3f (fraud attaches to customers)\n",
              transactions.num_nodes(),
              static_cast<long long>(transactions.num_edges()),
              EdgeHomophily(transactions.adj, transactions.labels));

  // Six banks; each bank's data pipeline injects its own structural bias.
  Rng split_rng(3);
  FederatedDataset banks = StructureNonIidSplit(
      transactions, 6, InjectionMode::kRandom, 0.5, split_rng);

  FedConfig config;
  config.rounds = 20;
  config.local_epochs = 3;
  config.seed = 9;

  std::printf("\n%-22s %s\n", "method", "fraud-detection accuracy");
  for (const char* method : {"FedGCN", "FedGloGNN", "AdaFGL"}) {
    FedRunResult r = RunAlgorithm(method, banks, config);
    std::printf("%-22s %.1f%%\n", method, 100.0 * r.final_test_acc);
  }

  std::printf("\nAdaFGL per-bank adaptation (HCS ~ how homophilous each "
              "bank's graph is):\n");
  AdaFglResult ada = RunAdaFgl(banks, config, AdaFglOptions());
  for (size_t b = 0; b < ada.client_hcs.size(); ++b) {
    std::printf("  bank %zu: HCS %.2f -> %.0f%% weight on the "
                "heterophilous propagation branch, acc %.1f%%\n",
                b, ada.client_hcs[b], 100.0 * (1.0 - ada.client_hcs[b]),
                100.0 * ada.client_test_acc[b]);
  }
  return 0;
}
