/// Cross-institution citation collaboration — the homophilous scenario
/// from the paper's introduction (research-team-based citation networks).
///
/// Five institutions each hold the subgraph of papers authored there
/// (community split — collaboration clusters align with topology). No raw
/// graph ever leaves an institution; only model parameters are exchanged
/// during AdaFGL Step 1, and Step 2 is fully local.
///
///   ./build/examples/citation_collaboration
#include <cstdio>

#include "core/adafgl.h"
#include "data/registry.h"
#include "eval/runner.h"
#include "fed/splits.h"
#include "graph/metrics.h"

int main() {
  using namespace adafgl;

  Rng rng(5);
  Graph citations = GenerateDatasetByName("PubMed", rng);
  Rng split_rng(6);
  FederatedDataset institutions = CommunitySplit(citations, 5, split_rng);

  std::printf("5 institutions hold citation subgraphs:\n");
  for (int32_t c = 0; c < institutions.num_clients(); ++c) {
    const Graph& g = institutions.clients[static_cast<size_t>(c)];
    const auto hist = LabelHistogram(g.labels, g.num_classes);
    std::printf("  institution %d: %4d papers, field mix [", c,
                g.num_nodes());
    for (size_t k = 0; k < hist.size(); ++k) {
      std::printf("%s%lld", k ? ", " : "", static_cast<long long>(hist[k]));
    }
    std::printf("]\n");
  }

  FedConfig config;
  config.rounds = 20;
  config.local_epochs = 3;
  config.seed = 12;

  // Baseline 1: every institution trains alone (no federation) —
  // emulated by a 1-round federation with heavy local correction.
  FedConfig solo = config;
  solo.rounds = 1;
  solo.local_epochs = 1;
  solo.post_local_epochs = 60;
  const double alone = RunFedAvg(institutions, solo).final_test_acc;

  // Baseline 2: standard federated GCN.
  const double fedavg = RunFedAvg(institutions, config).final_test_acc;

  // AdaFGL: federation + personalized propagation.
  AdaFglResult ada = RunAdaFgl(institutions, config, AdaFglOptions());

  std::printf("\npaper-field classification accuracy:\n");
  std::printf("  local-only training      %.1f%%\n", 100.0 * alone);
  std::printf("  federated GCN (FedAvg)   %.1f%%\n", 100.0 * fedavg);
  std::printf("  AdaFGL                   %.1f%%\n",
              100.0 * ada.final_test_acc);
  std::printf("\nfederation helps every institution without sharing a "
              "single citation edge.\n");
  return 0;
}
