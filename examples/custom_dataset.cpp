/// Bring-your-own-graph: the public API for plugging a custom dataset into
/// the federated pipeline.
///
/// Shows the full path a downstream user takes: build a Graph from raw
/// edges/features/labels, create a split, simulate (or map) a federation,
/// pick a model from the zoo, and train — first centrally, then federated.
///
///   ./build/examples/custom_dataset
#include <cstdio>
#include <vector>

#include "data/synthetic.h"
#include "eval/runner.h"
#include "fed/federation.h"
#include "graph/metrics.h"
#include "nn/models.h"
#include "tensor/matrix_ops.h"
#include "tensor/optim.h"

int main() {
  using namespace adafgl;

  // --- 1. Build a Graph from raw data. Here: a small ring-of-cliques
  // "collaboration" graph with hand-made features. ---
  const int32_t kCliques = 6;
  const int32_t kSize = 30;
  const int32_t n = kCliques * kSize;
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t q = 0; q < kCliques; ++q) {
    const int32_t base = q * kSize;
    for (int32_t i = 0; i < kSize; ++i) {
      for (int32_t j = i + 1; j < kSize; j += 3) {  // Sparse clique.
        edges.emplace_back(base + i, base + j);
      }
    }
    // Ring link to the next clique.
    edges.emplace_back(base, ((q + 1) % kCliques) * kSize);
  }
  std::vector<int32_t> labels(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) {
    labels[static_cast<size_t>(v)] = (v / kSize) % 3;  // 3 classes.
  }
  Rng rng(8);
  Matrix features =
      GenerateClassFeatures(labels, 3, 16, /*signal=*/0.6, /*noise=*/1.0,
                            rng);
  Graph g = MakeGraph(n, edges, std::move(features), std::move(labels), 3);
  StratifiedSplit(&g, /*train_frac=*/0.3, /*val_frac=*/0.2, rng);
  std::printf("custom graph: %d nodes, %lld edges, homophily %.2f, "
              "%zu train nodes\n",
              g.num_nodes(), static_cast<long long>(g.num_edges()),
              EdgeHomophily(g.adj, g.labels), g.train_nodes.size());

  // --- 2. Central training with any zoo model. ---
  ModelConfig mc;
  mc.in_dim = g.feature_dim();
  mc.num_classes = g.num_classes;
  mc.hidden = 32;
  Rng model_rng(9);
  auto model = CreateModel("GPRGNN", mc, model_rng);
  GraphContext ctx = GraphContext::Create(g);
  Adam opt(model->Params(), 0.02f, 5e-4f);
  Rng train_rng(10);
  for (int epoch = 0; epoch < 60; ++epoch) {
    opt.ZeroGrad();
    Tensor logits = model->Forward(ctx, /*training=*/true, train_rng);
    Backward(ops::CrossEntropyWithLogits(logits, g.labels, g.train_nodes));
    opt.Step();
  }
  Rng eval_rng(11);
  Tensor logits = model->Forward(ctx, /*training=*/false, eval_rng);
  std::printf("central GPR-GNN test accuracy: %.1f%%\n",
              100.0 * Accuracy(logits->value(), g.labels, g.test_nodes));

  // --- 3. Federate it. In production each client wraps its own local
  // Graph; here we simulate the partition. ---
  Rng split_rng(12);
  FederatedDataset fed =
      StructureNonIidSplit(g, /*num_clients=*/4, InjectionMode::kRandom,
                           0.5, split_rng);
  FedConfig cfg;
  cfg.rounds = 15;
  cfg.model = "GPRGNN";
  cfg.hidden = 32;
  cfg.seed = 13;
  FedRunResult fed_result = RunFedAvg(fed, cfg);
  std::printf("federated GPR-GNN (4 clients): %.1f%%\n",
              100.0 * fed_result.final_test_acc);

  FedRunResult ada = RunAlgorithm("AdaFGL", fed, cfg);
  std::printf("AdaFGL on the same federation: %.1f%%\n",
              100.0 * ada.final_test_acc);
  return 0;
}
