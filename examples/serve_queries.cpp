/// Serving: train -> freeze -> persist -> serve online queries.
///
/// Trains AdaFGL on the Cora stand-in, freezes Step 2's per-client
/// combined probability matrices into a node-embedding store, round-trips
/// the store through the checkpoint wire format, and stands up the online
/// server (bounded admission queue -> micro-batcher -> worker pool -> LRU
/// cache) to answer a few classification queries — including one with
/// ego-graph smoothing — before printing the serving counters.
///
///   ./build/examples/serve_queries
#include <cstdio>

#include "core/adafgl.h"
#include "data/registry.h"
#include "fed/splits.h"
#include "serve/server.h"
#include "serve/store.h"

int main() {
  using namespace adafgl;

  // 1. Train. export_predictions keeps each client's final combined
  //    probability matrix (Eq. 17) on the result — the freeze input.
  Rng rng(42);
  Graph cora = GenerateDatasetByName("Cora", rng);
  Rng split_rng(7);
  FederatedDataset federation = StructureNonIidSplit(
      cora, /*num_clients=*/4, InjectionMode::kRandom, /*ratio=*/0.5,
      split_rng);

  FedConfig config;
  config.rounds = 5;
  config.local_epochs = 2;
  config.hidden = 32;
  config.seed = 42;
  AdaFglOptions options;
  options.export_predictions = true;
  AdaFglResult trained = RunAdaFgl(federation, config, options);
  std::printf("trained: %d clients, final test accuracy %.3f\n",
              federation.num_clients(), trained.final_test_acc);

  // 2. Freeze. Serving becomes a row lookup in the frozen store —
  //    bitwise identical to direct Step 2 inference (Precision::kF16
  //    would halve the payload at ~1e-3 relative error instead).
  Result<serve::FrozenStore> frozen =
      serve::FreezeAdaFgl(trained, serve::Precision::kF32);
  if (!frozen.ok()) {
    std::printf("freeze failed: %s\n", frozen.status().ToString().c_str());
    return 1;
  }
  std::printf("frozen store: %lld nodes, %lld payload bytes\n",
              static_cast<long long>(frozen->total_nodes()),
              static_cast<long long>(frozen->payload_bytes()));

  // 3. Persist + restore through the checkpoint wire format. A real
  //    deployment trains offline, ships the file, and serves from it.
  const std::string path = "/tmp/adafgl_store.bin";
  Status saved = serve::SaveStoreToFile(*frozen, path);
  if (!saved.ok()) {
    std::printf("save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  Result<serve::FrozenStore> restored = serve::LoadStoreFromFile(path);
  if (!restored.ok()) {
    std::printf("load failed: %s\n", restored.status().ToString().c_str());
    return 1;
  }

  // 4. Serve. Adjacency (one CSR per client) enables Query::smooth.
  //    ServeOptionsFromEnv() honours ADAFGL_SERVE_THREADS /
  //    ADAFGL_SERVE_BATCH / ADAFGL_SERVE_CACHE_MB.
  std::vector<CsrMatrix> adjacency;
  for (const Graph& g : federation.clients) adjacency.push_back(g.adj);
  Result<std::unique_ptr<serve::Server>> server = serve::Server::Create(
      *std::move(restored), std::move(adjacency), serve::ServeOptionsFromEnv());
  if (!server.ok()) {
    std::printf("server failed: %s\n", server.status().ToString().c_str());
    return 1;
  }

  serve::Query queries[] = {
      {/*client=*/0, /*node=*/0, /*smooth=*/false},
      {/*client=*/1, /*node=*/3, /*smooth=*/false},
      {/*client=*/1, /*node=*/3, /*smooth=*/false},  // Repeat: cache hit.
      {/*client=*/2, /*node=*/7, /*smooth=*/true},   // Ego-graph smoothed.
  };
  for (const serve::Query& q : queries) {
    Result<serve::Prediction> p = (*server)->Predict(q);
    if (!p.ok()) {
      std::printf("query failed: %s\n", p.status().ToString().c_str());
      return 1;
    }
    std::printf("client %d node %-3d %s-> class %d (p=%.3f)%s\n", q.client,
                q.node, q.smooth ? "[smooth] " : "", p->label,
                p->probs[static_cast<size_t>(p->label)],
                p->cache_hit ? "  [cache hit]" : "");
  }

  serve::ServeStats stats = (*server)->Stats();
  std::printf(
      "\nserved %lld queries in %lld batches, %lld cache hits, "
      "p99 latency %.1f us\n",
      static_cast<long long>(stats.completed),
      static_cast<long long>(stats.batches),
      static_cast<long long>(stats.cache_hits),
      stats.p99_latency_ns / 1000.0);
  return 0;
}
