/// Quickstart: the 30-second tour of the AdaFGL library.
///
/// Generates the Cora stand-in dataset, simulates a 10-client federation
/// with the paper's structure Non-iid split, runs the full AdaFGL paradigm
/// (Step 1 federated knowledge extractor + Step 2 adaptive personalized
/// propagation) and prints what it learned.
///
///   ./build/examples/quickstart
#include <cstdio>

#include "core/adafgl.h"
#include "data/registry.h"
#include "fed/splits.h"
#include "graph/metrics.h"

int main() {
  using namespace adafgl;

  // 1. A graph. Real deployments load their own (see custom_dataset.cpp);
  //    here we generate the synthetic Cora stand-in from the registry.
  Rng rng(42);
  Graph cora = GenerateDatasetByName("Cora", rng);
  std::printf("Cora stand-in: %d nodes, %lld edges, edge homophily %.3f\n",
              cora.num_nodes(), static_cast<long long>(cora.num_edges()),
              EdgeHomophily(cora.adj, cora.labels));

  // 2. A federation. structure Non-iid split = Metis-like partition +
  //    per-client homophilous/heterophilous edge injection (Definition 1).
  Rng split_rng(7);
  FederatedDataset federation = StructureNonIidSplit(
      cora, /*num_clients=*/10, InjectionMode::kRandom,
      /*ratio=*/0.5, split_rng);
  std::printf("\n%d clients with injected topology variance:\n",
              federation.num_clients());
  for (int32_t c = 0; c < federation.num_clients(); ++c) {
    std::printf("  client %d: %4d nodes, node homophily %.2f (%s)\n", c,
                federation.clients[static_cast<size_t>(c)].num_nodes(),
                NodeHomophily(federation.clients[static_cast<size_t>(c)].adj,
                              federation.clients[static_cast<size_t>(c)]
                                  .labels),
                federation.injections[static_cast<size_t>(c)] ==
                        InjectionType::kHomophilous
                    ? "homophilous injection"
                    : "heterophilous injection");
  }

  // 3. AdaFGL. Step 1 trains a federated GCN knowledge extractor with
  //    FedAvg; Step 2 personalizes each client with homophilous +
  //    heterophilous propagation combined by the HCS.
  FedConfig config;
  config.rounds = 20;
  config.local_epochs = 3;
  config.seed = 1;
  AdaFglResult result = RunAdaFgl(federation, config, AdaFglOptions());

  std::printf("\nAdaFGL finished: test accuracy %.1f%%\n",
              100.0 * result.final_test_acc);
  std::printf("per-client accuracy / homophily-confidence score:\n");
  for (size_t c = 0; c < result.client_test_acc.size(); ++c) {
    std::printf("  client %zu: acc %.1f%%  HCS %.2f\n", c,
                100.0 * result.client_test_acc[c], result.client_hcs[c]);
  }
  std::printf("\ncommunication: %.2f MiB up, %.2f MiB down "
              "(Step 2 is fully local)\n",
              result.bytes_up / (1024.0 * 1024.0),
              result.bytes_down / (1024.0 * 1024.0));
  return 0;
}
