/// Deterministic chaos harness: FedAvg (GCN backbone) on the Cora config
/// under a sweep of fault levels — message loss, bit corruption, client
/// crashes, and poisoned (NaN) uploads — with the recovery stack enabled
/// (retry+backoff, round deadlines, over-selection, quorum, trimmed-mean
/// aggregation). Every fault decision derives from (seed, round, client)
/// coordinates, so the sweep replays identically under any thread count.
///
/// The binary self-checks the acceptance gate for the target level
/// (drop=0.1, crash=0.05, corrupt=0.02): every round completes, no NaN
/// ever reaches the aggregate, and final accuracy stays within 3 points
/// of the fault-free run. It exits non-zero on violation.
///
/// The CHAOS-GOLDEN block printed at the end contains only
/// schedule-driven integer counters (no floats), and is diffed against
/// tests/golden/chaos_summary.txt by the CI chaos smoke job.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fed/federation.h"
#include "fed/resilience.h"

using namespace adafgl;

namespace {

struct FaultLevel {
  const char* name;
  double drop_prob;
  double crash_prob;
  double corrupt_prob;
  double nan_upload_prob;
};

/// The swept fault-rate curve. "target" is the acceptance-criteria level.
const FaultLevel kLevels[] = {
    {"clean", 0.0, 0.0, 0.0, 0.0},
    {"mild", 0.05, 0.02, 0.01, 0.0},
    {"target", 0.10, 0.05, 0.02, 0.0},
    {"extreme", 0.20, 0.10, 0.05, 0.10},
};

/// Fixed Cora-config run; knobs are pinned (not env-driven) so the golden
/// counters are reproducible anywhere.
FedConfig ChaosConfig(const FaultLevel& level) {
  FedConfig cfg;
  cfg.rounds = 15;
  cfg.local_epochs = 3;
  cfg.post_local_epochs = 2;
  cfg.seed = 20240ULL;
  comm::LinkOptions& link = cfg.comm.link;
  link.drop_prob = level.drop_prob;
  link.crash_prob = level.crash_prob;
  link.corrupt_prob = level.corrupt_prob;
  cfg.resilience.nan_upload_prob = level.nan_upload_prob;
  if (level.drop_prob > 0.0 || level.crash_prob > 0.0 ||
      level.corrupt_prob > 0.0) {
    // Recovery stack: retries with backoff on a heterogeneous link, a
    // per-round deadline that cuts stragglers (retry chains push slow
    // clients over it), over-selection to compensate, a quorum floor,
    // and outlier-robust aggregation.
    link.latency_s = 0.01;
    link.heterogeneity = 1.0;
    link.max_retries = 3;
    link.backoff_base_s = 0.05;
    link.round_deadline_s = 0.1;
    cfg.resilience.aggregator = Aggregator::kTrimmedMean;
    cfg.resilience.trim_ratio = 0.2;
    cfg.resilience.min_participation = 0.3;
    cfg.resilience.over_select = 0.25;
  }
  return cfg;
}

bool HistoryFinite(const FedRunResult& result) {
  if (!std::isfinite(result.final_test_acc)) return false;
  for (const RoundRecord& r : result.history) {
    if (!std::isfinite(r.train_loss) || !std::isfinite(r.test_acc)) {
      return false;
    }
  }
  return AllFinite(result.global_weights);
}

}  // namespace

int main() {
  bench::PrintPreamble("Chaos harness",
                       "FedAvg on Cora under injected faults (deterministic "
                       "chaos schedule)");
  ExperimentSpec spec;
  spec.dataset = "Cora";
  spec.split = "noniid";
  spec.num_clients = 10;

  TablePrinter table({"Level", "drop", "crash", "corrupt", "Acc", "Rounds",
                      "Skipped"},
                     9);
  table.PrintHeader();

  std::vector<FedRunResult> results;
  for (const FaultLevel& level : kLevels) {
    const FedConfig cfg = ChaosConfig(level);
    FederatedDataset data = PrepareFederatedDataset(spec, /*seed=*/1000);
    FedRunResult result = RunAlgorithm("FedGCN", data, cfg);
    BenchReport::Global().AddRun("FedAvg", "Cora",
                                 std::string("chaos:") + level.name, result);
    char acc[16], drop[16], crash[16], corrupt[16], rounds[16], skipped[16];
    std::snprintf(acc, sizeof(acc), "%.4f", result.final_test_acc);
    std::snprintf(drop, sizeof(drop), "%.2f", level.drop_prob);
    std::snprintf(crash, sizeof(crash), "%.2f", level.crash_prob);
    std::snprintf(corrupt, sizeof(corrupt), "%.2f", level.corrupt_prob);
    std::snprintf(rounds, sizeof(rounds), "%zu", result.history.size());
    std::snprintf(skipped, sizeof(skipped), "%lld",
                  static_cast<long long>(result.resilience.rounds_skipped));
    table.PrintRow({level.name, drop, crash, corrupt, acc, rounds, skipped});
    results.push_back(std::move(result));
  }

  // Schedule-driven integer counters only — stable across machines,
  // compilers, and thread counts. Diffed against
  // tests/golden/chaos_summary.txt by the CI chaos smoke job.
  std::printf("CHAOS-GOLDEN-BEGIN\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const FedRunResult& r = results[i];
    int64_t participants = 0;
    for (const RoundRecord& rec : r.history) participants += rec.participants;
    std::printf(
        "level=%s participants=%lld crashes=%lld corruptions=%lld "
        "nacks=%lld deadline_cuts=%lld rejected=%lld skipped=%lld\n",
        kLevels[i].name, static_cast<long long>(participants),
        static_cast<long long>(r.comm.stats.crashes),
        static_cast<long long>(r.comm.stats.corruptions),
        static_cast<long long>(r.comm.stats.nacks),
        static_cast<long long>(r.comm.stats.deadline_cuts),
        static_cast<long long>(r.resilience.rejected_updates),
        static_cast<long long>(r.resilience.rounds_skipped));
  }
  std::printf("CHAOS-GOLDEN-END\n");

  // Acceptance gate (ISSUE 4): at the target fault level every round
  // completes, nothing non-finite survives to the aggregate, and accuracy
  // stays within 3 points of fault-free.
  const FedRunResult& clean = results[0];
  const FedRunResult& target = results[2];
  int failures = 0;
  if (target.history.size() != 15 || target.resilience.rounds_skipped != 0) {
    std::printf("[FAIL] target level skipped rounds: history=%zu "
                "skipped=%lld\n",
                target.history.size(),
                static_cast<long long>(target.resilience.rounds_skipped));
    ++failures;
  }
  for (const FedRunResult& r : results) {
    if (!HistoryFinite(r)) {
      std::printf("[FAIL] non-finite value reached the aggregate\n");
      ++failures;
      break;
    }
  }
  const double gap = std::fabs(clean.final_test_acc - target.final_test_acc);
  if (gap > 0.03) {
    std::printf("[FAIL] target accuracy %.4f vs clean %.4f (gap %.4f > "
                "0.03)\n",
                target.final_test_acc, clean.final_test_acc, gap);
    ++failures;
  }
  if (failures == 0) {
    std::printf("[shape] all acceptance gates hold: target acc %.4f vs "
                "clean %.4f (gap %.4f <= 0.03), 15/15 rounds, aggregates "
                "finite\n",
                target.final_test_acc, clean.final_test_acc, gap);
  }
  return failures == 0 ? 0 : 1;
}
