/// Reproduces Fig. 6: sensitivity of AdaFGL to the topology-optimisation
/// coefficient alpha (Eq. 5) and the learnable-propagation coefficient
/// beta (Eq. 11), on a homophilous (Cora) and a heterophilous (Chameleon)
/// dataset under both splits. Shape check: larger alpha/beta favour
/// homophilous settings, smaller favour heterophilous ones.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace adafgl;

int main() {
  bench::PrintPreamble("Fig. 6", "alpha/beta hyperparameter sensitivity");
  const std::vector<float> values = {0.1f, 0.3f, 0.5f, 0.7f, 0.9f};
  for (const char* param : {"alpha", "beta"}) {
    for (const std::string& dataset : {std::string("Cora"),
                                       std::string("Chameleon")}) {
      std::printf("\n--- %s sweep on %s ---\n", param, dataset.c_str());
      std::vector<std::string> header = {"Split"};
      for (float v : values) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%s=%.1f", param, v);
        header.push_back(buf);
      }
      TablePrinter table(header, 10);
      table.PrintHeader();
      for (const char* split : {"community", "noniid"}) {
        std::vector<std::string> cells = {split};
        std::vector<double> means;
        for (float v : values) {
          ExperimentSpec spec;
          spec.dataset = dataset;
          spec.split = split;
          spec.fed = BenchFedConfig();
        spec.fed.rounds = std::max(8, spec.fed.rounds / 2);
          AdaFglOptions opt;
          opt.personalized_epochs = 25;
          opt.adaptive_coefficients = false;
          opt.alpha = 0.5f;
          opt.beta = 0.5f;
          if (param == std::string("alpha")) {
            opt.alpha = v;
          } else {
            opt.beta = v;
          }
          const MeanStd acc = bench::RunAdaFglCell(spec, opt);
          means.push_back(acc.mean);
          cells.push_back(FormatAccPct(acc));
        }
        bench::MarkBest(&cells, [&] {
          std::vector<double> m(1, -1.0);  // Skip the split-label column.
          m.insert(m.end(), means.begin(), means.end());
          return m;
        }());
        table.PrintRow(cells);
      }
    }
  }
  return 0;
}
