/// Kernel microbenchmarks (google-benchmark): throughput of the primitives
/// every experiment is built on — SpMM, dense matmul, Louvain, the
/// Metis-like partitioner, label propagation, HCS, and the propagation-
/// matrix construction of AdaFGL Step 1.
///
/// Before the google-benchmark suite, main() runs a fixed parallel-kernel
/// scaling suite over the adafgl::par runtime: 512x512x512 dense matmul
/// and Cora-scale SpMM at ADAFGL_KERNEL_THREADS = 1/2/4, each rep
/// bitwise-checked against the single-thread result (the bit-identity
/// contract of src/par). With ADAFGL_BENCH_JSON=<path> the suite writes a
/// bench.json document that tools/bench_runner.sh merges into the
/// BENCH_<seq>.json perf trajectory.
///
///   ./build/bench/micro_kernels [--benchmark_filter=...]
///   ADAFGL_MICRO_REPS=5 ./build/bench/micro_kernels
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/label_propagation.h"
#include "core/propagation_matrix.h"
#include "data/synthetic.h"
#include "obs/json.h"
#include "partition/louvain.h"
#include "partition/metis_like.h"
#include "par/par.h"
#include "tensor/matrix_ops.h"

namespace adafgl {
namespace {

Graph BenchGraph(int32_t n) {
  SbmParams p;
  p.num_nodes = n;
  p.num_classes = 5;
  p.num_edges = n * 4;
  p.edge_homophily = 0.8;
  p.feature_dim = 64;
  Rng rng(1);
  return GenerateSbmGraph(p, rng);
}

void BM_SpMM(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int32_t>(state.range(0)));
  CsrMatrix norm = GcnNormalized(g.adj);
  for (auto _ : state) {
    benchmark::DoNotOptimize(norm.Multiply(g.features));
  }
  state.SetItemsProcessed(state.iterations() * norm.nnz());
}
BENCHMARK(BM_SpMM)->Arg(1000)->Arg(4000);

void BM_DenseMatMul(benchmark::State& state) {
  const auto n = static_cast<int64_t>(state.range(0));
  Rng rng(2);
  Matrix a = Matrix::Gaussian(n, n, 1.0f, rng);
  Matrix b = Matrix::Gaussian(n, 64, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * 64);
}
BENCHMARK(BM_DenseMatMul)->Arg(256)->Arg(512);

void BM_Louvain(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    Rng rng(3);
    benchmark::DoNotOptimize(Louvain(g.adj, rng));
  }
}
BENCHMARK(BM_Louvain)->Arg(1000)->Arg(4000);

void BM_MetisLike(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    Rng rng(4);
    benchmark::DoNotOptimize(MetisLikePartition(g.adj, 10, rng));
  }
}
BENCHMARK(BM_MetisLike)->Arg(1000)->Arg(4000);

void BM_LabelPropagation(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LabelPropagation(g, g.train_nodes));
  }
}
BENCHMARK(BM_LabelPropagation)->Arg(1000)->Arg(4000);

void BM_Hcs(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    Rng rng(5);
    benchmark::DoNotOptimize(HomophilyConfidenceScore(g, 0.5, rng));
  }
}
BENCHMARK(BM_Hcs)->Arg(1000)->Arg(4000);

void BM_PropagationMatrix(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int32_t>(state.range(0)));
  Rng rng(6);
  Matrix probs = Softmax(Matrix::Gaussian(g.num_nodes(), 5, 1.0f, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPropagationMatrix(g, probs, 0.5f));
  }
}
BENCHMARK(BM_PropagationMatrix)->Arg(256)->Arg(512);

// ---------------------------------------------------------------------
// Parallel-kernel scaling suite (adafgl::par).

struct KernelResult {
  std::string method;      // e.g. "kernel.matmul.512x512x512.t2"
  int threads = 1;
  double wall_seconds = 0.0;  // Min over ADAFGL_MICRO_REPS reps.
  int64_t flops = 0;          // Multiply-adds * 2 for one invocation.
};

int EnvIntOr(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::atoi(v) : fallback;
}

bool BitEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

/// Runs `fn` (one kernel invocation returning its result) `reps` times at
/// each thread count, keeping the min wall time; every result must be
/// bit-identical to the single-thread one.
template <typename Fn>
void RunScalingCase(const std::string& name, int64_t flops, int reps,
                    const std::vector<int>& thread_counts, Fn&& fn,
                    std::vector<KernelResult>* out) {
  Matrix golden;
  for (int threads : thread_counts) {
    par::ResetKernelPoolForTest(threads);
    KernelResult r;
    r.method = name + ".t" + std::to_string(threads);
    r.threads = threads;
    r.flops = flops;
    r.wall_seconds = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      Matrix result = fn();
      const auto t1 = std::chrono::steady_clock::now();
      const double s =
          std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
              .count();
      if (rep == 0 || s < r.wall_seconds) r.wall_seconds = s;
      if (threads == thread_counts.front() && rep == 0) {
        golden = std::move(result);
      } else if (!BitEqual(result, golden)) {
        std::fprintf(stderr,
                     "FAIL: %s not bit-identical to t=%d result\n",
                     r.method.c_str(), thread_counts.front());
        std::exit(1);
      }
    }
    out->push_back(r);
  }
}

std::vector<KernelResult> RunScalingSuite(int reps) {
  const std::vector<int> threads = {1, 2, 4};
  std::vector<KernelResult> results;

  // 512x512x512 dense matmul (Gaussian operands: no zero-skip shortcut,
  // so the nominal 2*m*k*n is the executed work).
  {
    Rng rng(7);
    const Matrix a = Matrix::Gaussian(512, 512, 1.0f, rng);
    const Matrix b = Matrix::Gaussian(512, 512, 1.0f, rng);
    RunScalingCase("kernel.matmul.512x512x512", 2LL * 512 * 512 * 512, reps,
                   threads, [&] { return MatMul(a, b); }, &results);
  }

  // Cora-scale SpMM: GCN-normalized SBM adjacency at Cora's node/edge/
  // feature counts (2708 nodes, 5429 undirected edges, 1433 features).
  {
    SbmParams p;
    p.num_nodes = 2708;
    p.num_classes = 7;
    p.num_edges = 5429;
    p.edge_homophily = 0.81;
    p.feature_dim = 1433;
    Rng rng(8);
    Graph g = GenerateSbmGraph(p, rng);
    CsrMatrix norm = GcnNormalized(g.adj);
    const int64_t flops = 2 * norm.nnz() * g.features.cols();
    RunScalingCase("kernel.spmm.cora", flops, reps, threads,
                   [&] { return norm.Multiply(g.features); }, &results);
    RunScalingCase("kernel.spmm_t.cora", flops, reps, threads,
                   [&] { return norm.MultiplyTranspose(g.features); },
                   &results);
  }

  par::ResetKernelPoolForTest(0);  // Back to the environment default.
  return results;
}

void PrintScalingReport(const std::vector<KernelResult>& results) {
  std::printf("%-28s %7s %12s %10s %9s\n", "kernel", "threads", "seconds",
              "gflop/s", "speedup");
  double t1_seconds = 0.0;
  for (const KernelResult& r : results) {
    if (r.threads == 1) t1_seconds = r.wall_seconds;
    const double gflops =
        r.wall_seconds > 0.0
            ? static_cast<double>(r.flops) / r.wall_seconds / 1e9
            : 0.0;
    const double speedup =
        r.wall_seconds > 0.0 ? t1_seconds / r.wall_seconds : 0.0;
    std::printf("%-28s %7d %12.6f %10.2f %8.2fx\n", r.method.c_str(),
                r.threads, r.wall_seconds, gflops, speedup);
  }
}

/// Minimal bench.json (schema v3 subset) for tools/bench_merge.py: the
/// experiment name, the suite knobs, per-method wall/flops runs, and a
/// process perf block summing the per-run minima.
void WriteBenchJson(const std::string& path,
                    const std::vector<KernelResult>& results, int reps) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(3);
  w.Key("experiment");
  w.String("micro_kernels");
  w.Key("description");
  w.String("parallel kernel scaling suite (adafgl::par)");
  w.Key("knobs");
  w.BeginObject();
  w.Key("reps");
  w.Int(reps);
  w.Key("hardware_threads");
  w.Int(static_cast<int64_t>(std::thread::hardware_concurrency()));
  w.EndObject();
  double total = 0.0;
  int64_t total_flops = 0;
  w.Key("runs");
  w.BeginArray();
  for (const KernelResult& r : results) {
    w.BeginObject();
    w.Key("method");
    w.String(r.method);
    w.Key("threads");
    w.Int(r.threads);
    w.Key("wall_seconds");
    w.Double(r.wall_seconds);
    w.Key("flops");
    w.Int(r.flops);
    w.EndObject();
    total += r.wall_seconds;
    total_flops += r.flops;
  }
  w.EndArray();
  w.Key("perf");
  w.BeginObject();
  w.Key("wall_seconds");
  w.Double(total);
  w.Key("flops");
  w.Int(total_flops);
  w.EndObject();
  w.EndObject();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << w.str() << "\n";
}

}  // namespace
}  // namespace adafgl

int main(int argc, char** argv) {
  const int reps = adafgl::EnvIntOr("ADAFGL_MICRO_REPS", 3);
  const std::vector<adafgl::KernelResult> results =
      adafgl::RunScalingSuite(reps);
  adafgl::PrintScalingReport(results);
  if (const char* path = std::getenv("ADAFGL_BENCH_JSON");
      path && *path) {
    adafgl::WriteBenchJson(path, results, reps);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
