/// Kernel microbenchmarks (google-benchmark): throughput of the primitives
/// every experiment is built on — SpMM, dense matmul, Louvain, the
/// Metis-like partitioner, label propagation, HCS, and the propagation-
/// matrix construction of AdaFGL Step 1.
#include <benchmark/benchmark.h>

#include "core/label_propagation.h"
#include "core/propagation_matrix.h"
#include "data/synthetic.h"
#include "partition/louvain.h"
#include "partition/metis_like.h"
#include "tensor/matrix_ops.h"

namespace adafgl {
namespace {

Graph BenchGraph(int32_t n) {
  SbmParams p;
  p.num_nodes = n;
  p.num_classes = 5;
  p.num_edges = n * 4;
  p.edge_homophily = 0.8;
  p.feature_dim = 64;
  Rng rng(1);
  return GenerateSbmGraph(p, rng);
}

void BM_SpMM(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int32_t>(state.range(0)));
  CsrMatrix norm = GcnNormalized(g.adj);
  for (auto _ : state) {
    benchmark::DoNotOptimize(norm.Multiply(g.features));
  }
  state.SetItemsProcessed(state.iterations() * norm.nnz());
}
BENCHMARK(BM_SpMM)->Arg(1000)->Arg(4000);

void BM_DenseMatMul(benchmark::State& state) {
  const auto n = static_cast<int64_t>(state.range(0));
  Rng rng(2);
  Matrix a = Matrix::Gaussian(n, n, 1.0f, rng);
  Matrix b = Matrix::Gaussian(n, 64, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * 64);
}
BENCHMARK(BM_DenseMatMul)->Arg(256)->Arg(512);

void BM_Louvain(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    Rng rng(3);
    benchmark::DoNotOptimize(Louvain(g.adj, rng));
  }
}
BENCHMARK(BM_Louvain)->Arg(1000)->Arg(4000);

void BM_MetisLike(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    Rng rng(4);
    benchmark::DoNotOptimize(MetisLikePartition(g.adj, 10, rng));
  }
}
BENCHMARK(BM_MetisLike)->Arg(1000)->Arg(4000);

void BM_LabelPropagation(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LabelPropagation(g, g.train_nodes));
  }
}
BENCHMARK(BM_LabelPropagation)->Arg(1000)->Arg(4000);

void BM_Hcs(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    Rng rng(5);
    benchmark::DoNotOptimize(HomophilyConfidenceScore(g, 0.5, rng));
  }
}
BENCHMARK(BM_Hcs)->Arg(1000)->Arg(4000);

void BM_PropagationMatrix(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int32_t>(state.range(0)));
  Rng rng(6);
  Matrix probs = Softmax(Matrix::Gaussian(g.num_nodes(), 5, 1.0f, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPropagationMatrix(g, probs, 0.5f));
  }
}
BENCHMARK(BM_PropagationMatrix)->Arg(256)->Arg(512);

}  // namespace
}  // namespace adafgl

BENCHMARK_MAIN();
