/// Reproduces Fig. 7: client-dependent HCS against the true local subgraph
/// homophily, under community split (upper) and structure Non-iid split
/// (lower). Shape check: HCS tracks subgraph homophily (positive rank
/// correlation).
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "core/adafgl.h"
#include "graph/metrics.h"

using namespace adafgl;

namespace {

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  auto ranks = [](const std::vector<double>& v) {
    std::vector<size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (size_t i = 0; i < idx.size(); ++i) {
      r[idx[i]] = static_cast<double>(i);
    }
    return r;
  };
  const std::vector<double> ra = ranks(a), rb = ranks(b);
  const double n = static_cast<double>(a.size());
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

}  // namespace

int main() {
  bench::PrintPreamble("Fig. 7", "client-wise HCS vs subgraph homophily");
  for (const char* split : {"community", "noniid"}) {
    ExperimentSpec spec;
    spec.dataset = "Cora";
    spec.split = split;
    spec.fed = BenchFedConfig();
    FederatedDataset data = PrepareFederatedDataset(spec, 1000);
    FedConfig cfg = spec.fed;
    cfg.seed = 31;
    AdaFglResult r = RunAdaFgl(data, cfg, AdaFglOptions());
    std::printf("\n--- %s split ---\n", split);
    std::printf("client:      ");
    for (size_t c = 0; c < data.clients.size(); ++c) {
      std::printf("  c%zu  ", c);
    }
    std::printf("\nHCS:         ");
    std::vector<double> homophily;
    for (size_t c = 0; c < data.clients.size(); ++c) {
      std::printf(" %.2f ", r.client_hcs[c]);
      homophily.push_back(
          NodeHomophily(data.clients[c].adj, data.clients[c].labels));
    }
    std::printf("\nhomophily:   ");
    for (double h : homophily) std::printf(" %.2f ", h);
    std::printf("\n[shape] Spearman(HCS, homophily) = %.3f\n",
                SpearmanCorrelation(r.client_hcs, homophily));
  }
  return 0;
}
