/// Reproduces Fig. 10: accuracy on Computer under feature, edge, and label
/// sparsity at increasing severity, community split (upper) and structure
/// Non-iid split (lower). Shape check: AdaFGL is the most robust curve.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eval/sparsity.h"

using namespace adafgl;

int main() {
  bench::PrintPreamble("Fig. 10",
                       "sparse-setting robustness on Computer");
  const std::vector<double> levels = {0.2, 0.4, 0.6, 0.8};
  const std::vector<std::string> methods = {"FedGCN", "FedGloGNN", "FedGL",
                                            "FedSage+", "FED-PUB", "AdaFGL"};
  const struct {
    SparsityKind kind;
    const char* name;
  } kinds[] = {{SparsityKind::kFeature, "feature"},
               {SparsityKind::kEdge, "edge"},
               {SparsityKind::kLabel, "label"}};

  for (const char* split : {"community", "noniid"}) {
    for (const auto& kind : kinds) {
      std::printf("\n--- %s sparsity, %s split ---\n", kind.name, split);
      std::vector<std::string> header = {"Method"};
      for (double l : levels) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "s=%.1f", l);
        header.push_back(buf);
      }
      TablePrinter table(header, 10);
      table.PrintHeader();
      std::vector<double> ada_drop(1, 0.0), base_drop(1, 0.0);
      double ada_first = 0.0, ada_last = 0.0;
      double base_first = 0.0, base_last = 0.0;
      for (const std::string& method : methods) {
        std::vector<std::string> cells = {method};
        std::vector<double> curve;
        for (double level : levels) {
          ExperimentSpec spec;
          spec.dataset = "Computer";
          spec.split = split;
          spec.fed = BenchFedConfig();
        spec.fed.rounds = std::max(8, spec.fed.rounds / 2);
          FederatedDataset data = PrepareFederatedDataset(spec, 1000);
          Rng rng(17);
          FederatedDataset sparse =
              ApplySparsity(data, kind.kind, level, rng);
          FedConfig cfg = spec.fed;
          cfg.seed = 51;
          const double acc =
              RunAlgorithm(method, sparse, cfg).final_test_acc;
          curve.push_back(acc);
          char buf[16];
          std::snprintf(buf, sizeof(buf), "%.1f", 100.0 * acc);
          cells.push_back(buf);
        }
        if (method == "AdaFGL") {
          ada_first = curve.front();
          ada_last = curve.back();
        } else if (curve.front() > base_first) {
          base_first = curve.front();
          base_last = curve.back();
        }
        table.PrintRow(cells);
      }
      std::printf("[shape] degradation %.1f pp (AdaFGL) vs %.1f pp "
                  "(best baseline at s=%.1f)\n",
                  100.0 * (ada_first - ada_last),
                  100.0 * (base_first - base_last), levels.front());
      (void)ada_drop;
      (void)base_drop;
    }
  }
  return 0;
}
