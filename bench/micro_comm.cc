/// Micro-benchmarks of the comm subsystem: codec encode/decode throughput
/// at GCN-like payload sizes, frame checksumming, and thread-pool
/// dispatch overhead.
///
///   ./build/bench/micro_comm [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <vector>

#include "comm/codec.h"
#include "par/thread_pool.h"
#include "comm/wire.h"
#include "tensor/rng.h"

namespace adafgl::comm {
namespace {

using ::adafgl::par::ThreadPool;

std::vector<Matrix> GcnLikeWeights(int64_t features, int64_t hidden,
                                   int64_t classes) {
  Rng rng(11);
  std::vector<Matrix> w = {Matrix(features, hidden), Matrix(1, hidden),
                           Matrix(hidden, classes), Matrix(1, classes)};
  for (Matrix& m : w) {
    for (int64_t i = 0; i < m.size(); ++i) {
      m.data()[i] = static_cast<float>(rng.Normal());
    }
  }
  return w;
}

void ReportFloatThroughput(benchmark::State& state,
                           const std::vector<Matrix>& weights) {
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          PayloadFloatBytes(weights));
}

void BM_CodecEncode(benchmark::State& state, const char* name) {
  const auto codec = MakeCodec(name);
  const std::vector<Matrix> weights = GcnLikeWeights(state.range(0), 64, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Encode(weights));
  }
  ReportFloatThroughput(state, weights);
}

void BM_CodecDecode(benchmark::State& state, const char* name) {
  const auto codec = MakeCodec(name);
  const std::vector<Matrix> weights = GcnLikeWeights(state.range(0), 64, 7);
  const std::string payload = codec->Encode(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Decode(payload));
  }
  ReportFloatThroughput(state, weights);
}

void BM_CodecRoundTrip(benchmark::State& state, const char* name) {
  const auto codec = MakeCodec(name);
  const std::vector<Matrix> weights = GcnLikeWeights(state.range(0), 64, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Decode(codec->Encode(weights)));
  }
  ReportFloatThroughput(state, weights);
}

void BM_FrameEncodeDecode(benchmark::State& state) {
  const auto codec = MakeCodec("lossless");
  const std::vector<Matrix> weights = GcnLikeWeights(state.range(0), 64, 7);
  std::string payload = codec->Encode(weights);
  for (auto _ : state) {
    // Checksummed framing round trip (no codec work): the fixed per-message
    // transport tax.
    const std::string bytes =
        EncodeFrame(MessageType::kWeights, CodecId::kLossless, payload);
    benchmark::DoNotOptimize(DecodeFrame(bytes));
  }
  ReportFloatThroughput(state, weights);
}

void BM_ThreadPoolDispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    // Empty-body ParallelFor over a typical federation size: measures pure
    // claim/wake/join overhead per round.
    pool.ParallelFor(10, [](size_t i) { benchmark::DoNotOptimize(i); });
  }
}

BENCHMARK_CAPTURE(BM_CodecEncode, lossless, "lossless")->Arg(1433);
BENCHMARK_CAPTURE(BM_CodecEncode, fp16, "fp16")->Arg(1433);
BENCHMARK_CAPTURE(BM_CodecEncode, topk, "topk")->Arg(1433);
BENCHMARK_CAPTURE(BM_CodecDecode, lossless, "lossless")->Arg(1433);
BENCHMARK_CAPTURE(BM_CodecDecode, fp16, "fp16")->Arg(1433);
BENCHMARK_CAPTURE(BM_CodecDecode, topk, "topk")->Arg(1433);
BENCHMARK_CAPTURE(BM_CodecRoundTrip, lossless, "lossless")
    ->Arg(128)->Arg(1433)->Arg(8192);
BENCHMARK(BM_FrameEncodeDecode)->Arg(1433);
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace adafgl::comm

BENCHMARK_MAIN();
