/// Reproduces Table VIII: the FGL paradigm taxonomy (communication content,
/// server-side role, client-side role per method), augmented with the
/// communication volume actually measured by this implementation on a
/// common workload — the quantity the taxonomy qualitatively ranks.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace adafgl;

int main() {
  bench::PrintPreamble("Table VIII",
                       "FGL paradigm summary + measured communication");
  TablePrinter taxonomy(
      {"Method", "Type", "Communication", "Server-side", "Client-side"},
      24);
  taxonomy.PrintHeader();
  taxonomy.PrintRow({"FedGL", "FedC", "Params+Preds+Labels",
                     "Label fusion/broadcast", "Pseudo-label training"});
  taxonomy.PrintRow({"GCFL+", "FedS", "Params+Gradients",
                     "Gradient clustering", "Local training"});
  taxonomy.PrintRow({"FedSage+", "FedC", "Params+Emb+GenGrads",
                     "NeighGen aggregation", "Data augmentation"});
  taxonomy.PrintRow({"FED-PUB", "FedC", "Params+FuncEmb",
                     "Similarity aggregation", "Personalized mask"});
  taxonomy.PrintRow({"AdaFGL", "FedC", "Model params only",
                     "Model aggregation", "Personalized propagation"});

  std::printf("\nMeasured communication on Cora, structure Non-iid split "
              "(10 clients):\n");
  ExperimentSpec spec;
  spec.dataset = "Cora";
  spec.split = "noniid";
  spec.fed = BenchFedConfig();
  // Give the simulated clock something to measure (a 100 Mbit/s federation
  // with 20 ms links); codec/threads come from ADAFGL_CODEC/ADAFGL_THREADS.
  spec.fed.comm.link.latency_s = 0.02;
  spec.fed.comm.link.bandwidth_bps = 100e6 / 8.0;
  std::printf("codec=%s threads=%d link=100Mbit/s+20ms\n\n",
              spec.fed.comm.codec.c_str(), spec.fed.comm.num_threads);
  TablePrinter comm(
      {"Method", "up", "down", "sim time", "msgs", "final acc"}, 12);
  comm.PrintHeader();
  FederatedDataset data = PrepareFederatedDataset(spec, 1000);
  for (const std::string& method :
       {std::string("FedGL"), std::string("GCFL+"), std::string("FedSage+"),
        std::string("FED-PUB"), std::string("AdaFGL")}) {
    FedConfig cfg = spec.fed;
    cfg.seed = 555;
    FedRunResult r = RunAlgorithm(method, data, cfg);
    BenchReport::Global().AddRun(method, spec.dataset, spec.split, r);
    char msgs[32], acc[32];
    std::snprintf(msgs, sizeof(msgs), "%lld",
                  static_cast<long long>(r.comm.stats.messages_up +
                                         r.comm.stats.messages_down));
    std::snprintf(acc, sizeof(acc), "%.1f", 100.0 * r.final_test_acc);
    comm.PrintRow({method, FormatBytes(r.bytes_up),
                   FormatBytes(r.bytes_down),
                   FormatSimSeconds(r.comm.stats.sim_seconds), msgs, acc});
  }
  return 0;
}
