/// Reproduces Table VIII: the FGL paradigm taxonomy (communication content,
/// server-side role, client-side role per method), augmented with the
/// communication volume actually measured by this implementation on a
/// common workload — the quantity the taxonomy qualitatively ranks.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace adafgl;

int main() {
  bench::PrintPreamble("Table VIII",
                       "FGL paradigm summary + measured communication");
  TablePrinter taxonomy(
      {"Method", "Type", "Communication", "Server-side", "Client-side"},
      24);
  taxonomy.PrintHeader();
  taxonomy.PrintRow({"FedGL", "FedC", "Params+Preds+Labels",
                     "Label fusion/broadcast", "Pseudo-label training"});
  taxonomy.PrintRow({"GCFL+", "FedS", "Params+Gradients",
                     "Gradient clustering", "Local training"});
  taxonomy.PrintRow({"FedSage+", "FedC", "Params+Emb+GenGrads",
                     "NeighGen aggregation", "Data augmentation"});
  taxonomy.PrintRow({"FED-PUB", "FedC", "Params+FuncEmb",
                     "Similarity aggregation", "Personalized mask"});
  taxonomy.PrintRow({"AdaFGL", "FedC", "Model params only",
                     "Model aggregation", "Personalized propagation"});

  std::printf("\nMeasured communication on Cora, structure Non-iid split "
              "(10 clients):\n");
  TablePrinter comm({"Method", "up MiB", "down MiB", "final acc"}, 12);
  comm.PrintHeader();
  ExperimentSpec spec;
  spec.dataset = "Cora";
  spec.split = "noniid";
  spec.fed = BenchFedConfig();
  FederatedDataset data = PrepareFederatedDataset(spec, 1000);
  for (const std::string& method :
       {std::string("FedGL"), std::string("GCFL+"), std::string("FedSage+"),
        std::string("FED-PUB"), std::string("AdaFGL")}) {
    FedConfig cfg = spec.fed;
    cfg.seed = 555;
    FedRunResult r = RunAlgorithm(method, data, cfg);
    char up[32], down[32], acc[32];
    std::snprintf(up, sizeof(up), "%.2f",
                  static_cast<double>(r.bytes_up) / (1024.0 * 1024.0));
    std::snprintf(down, sizeof(down), "%.2f",
                  static_cast<double>(r.bytes_down) / (1024.0 * 1024.0));
    std::snprintf(acc, sizeof(acc), "%.1f", 100.0 * r.final_test_acc);
    comm.PrintRow({method, up, down, acc});
  }
  return 0;
}
