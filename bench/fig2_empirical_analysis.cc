/// Reproduces Fig. 2: the empirical analysis motivating structure Non-iid
/// split, on Cora with 10 clients.
///   (a) per-client label distributions under both splits;
///   (b) per-client node/edge homophily under both splits;
///   (c) convergence of a federated GCN under both splits;
///   (d) per-client final accuracy under both splits.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "graph/metrics.h"

using namespace adafgl;

int main() {
  bench::PrintPreamble("Fig. 2", "empirical analysis on Cora, 10 clients");
  for (const char* split : {"community", "noniid"}) {
    ExperimentSpec spec;
    spec.dataset = "Cora";
    spec.split = split;
    spec.fed = BenchFedConfig();
    FederatedDataset data = PrepareFederatedDataset(spec, 1000);
    std::printf("\n=== %s split ===\n", split);

    std::printf("(a) label distribution per client "
                "(rows: clients, cols: classes)\n");
    for (int32_t c = 0; c < data.num_clients(); ++c) {
      const auto hist = LabelHistogram(data.clients[c].labels,
                                       data.clients[c].num_classes);
      std::printf("  client %2d:", c);
      for (int64_t count : hist) std::printf(" %4lld",
                                             static_cast<long long>(count));
      std::printf("\n");
    }

    std::printf("(b) per-client homophily (node / edge)\n  ");
    for (int32_t c = 0; c < data.num_clients(); ++c) {
      std::printf("c%d:%.2f/%.2f ", c,
                  NodeHomophily(data.clients[c].adj, data.clients[c].labels),
                  EdgeHomophily(data.clients[c].adj, data.clients[c].labels));
    }
    std::printf("\n");

    FedConfig cfg = spec.fed;
    cfg.seed = 77;
    FedRunResult r = RunFedAvg(data, cfg);
    std::printf("(c) FedGCN convergence (round: accuracy)\n  ");
    for (const RoundRecord& rec : r.history) {
      std::printf("%d:%.3f ", rec.round, rec.test_acc);
    }
    std::printf("\n(d) per-client final accuracy\n  ");
    for (size_t c = 0; c < r.client_test_acc.size(); ++c) {
      std::printf("c%zu:%.3f ", c, r.client_test_acc[c]);
    }
    std::printf("\n");

    // Shape summary: homophily spread is wider under structure Non-iid.
    double min_h = 1.0, max_h = 0.0;
    for (const Graph& c : data.clients) {
      const double h = EdgeHomophily(c.adj, c.labels);
      min_h = std::min(min_h, h);
      max_h = std::max(max_h, h);
    }
    std::printf("[shape] edge-homophily spread across clients: %.3f\n",
                max_h - min_h);
  }
  return 0;
}
