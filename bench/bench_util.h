#ifndef ADAFGL_BENCH_BENCH_UTIL_H_
#define ADAFGL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "data/registry.h"
#include "eval/bench_json.h"
#include "eval/report.h"
#include "eval/runner.h"

namespace adafgl {
namespace bench {

/// Number of repetitions per cell; override with ADAFGL_SEEDS.
inline int BenchSeeds() { return EnvInt("ADAFGL_SEEDS", 1); }

/// Runs one (dataset, split, algorithm) cell over the bench seed count.
/// The aggregate also lands in bench.json when that sink is enabled
/// (ADAFGL_BENCH_JSON / ADAFGL_METRICS=1).
inline MeanStd RunCell(const ExperimentSpec& spec,
                       const std::string& algorithm) {
  const MeanStd acc =
      Aggregate(RunExperiment(spec, algorithm, BenchSeeds()));
  BenchReport::Global().AddCell(algorithm, spec.dataset, spec.split, acc);
  return acc;
}

/// Runs AdaFGL with explicit options (ablation/sensitivity cells).
inline MeanStd RunAdaFglCell(const ExperimentSpec& spec,
                             const AdaFglOptions& options) {
  std::vector<double> accs;
  for (int s = 0; s < BenchSeeds(); ++s) {
    const uint64_t seed = 1000ULL + 7ULL * s;
    FederatedDataset data = PrepareFederatedDataset(spec, seed);
    FedConfig cfg = spec.fed;
    cfg.seed = seed ^ 0xa15eedULL;
    Result<DatasetSpec> ds = FindDataset(spec.dataset);
    if (ds.ok()) cfg.inductive = ds.value().inductive;
    accs.push_back(RunAdaFglAsFed(data, cfg, options).final_test_acc);
  }
  const MeanStd acc = Aggregate(accs);
  BenchReport::Global().AddCell("AdaFGL", spec.dataset, spec.split, acc);
  return acc;
}

/// Standard bench preamble: what the binary reproduces + knobs in effect.
inline void PrintPreamble(const char* experiment, const char* description) {
  BenchReport::Global().SetExperiment(experiment, description);
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("(synthetic stand-in datasets; shapes, not absolute numbers,\n");
  std::printf(" are the reproduction target — see DESIGN.md §1)\n");
  std::printf("seeds=%d rounds=%d  [env: ADAFGL_SEEDS, ADAFGL_ROUNDS]\n",
              BenchSeeds(), EnvInt("ADAFGL_ROUNDS", 15));
  std::printf("==============================================================\n");
}

/// Marks the best entry of a row of formatted accuracy cells with a '*'.
inline void MarkBest(std::vector<std::string>* cells,
                     const std::vector<double>& means) {
  if (means.empty()) return;
  size_t best = 0;
  for (size_t i = 1; i < means.size(); ++i) {
    if (means[i] > means[best]) best = i;
  }
  (*cells)[best] += "*";
}

}  // namespace bench
}  // namespace adafgl

#endif  // ADAFGL_BENCH_BENCH_UTIL_H_
