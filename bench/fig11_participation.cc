/// Reproduces Fig. 11: accuracy under sparse client participation — a
/// 20-client structure Non-iid split with participation ratios swept, on
/// arxiv-year, Reddit, and Flickr. Shape checks: cross-client-interaction
/// methods (FedGL, FedSage+) degrade with low participation; personalized
/// strategies (AdaFGL, FED-PUB) stay robust.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace adafgl;

int main() {
  bench::PrintPreamble("Fig. 11",
                       "client-participation robustness (20 clients)");
  const std::vector<double> ratios = {0.2, 0.5, 1.0};
  const std::vector<std::string> methods = {"FedGCNII", "FedGloGNN",
                                            "FedGL", "FedSage+", "FED-PUB",
                                            "AdaFGL"};
  for (const std::string& dataset :
       {std::string("arxiv-year"), std::string("Reddit"),
        std::string("Flickr")}) {
    std::printf("\n--- %s, structure Non-iid, 20 clients ---\n",
                dataset.c_str());
    std::vector<std::string> header = {"Method"};
    for (double r : ratios) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "p=%.1f", r);
      header.push_back(buf);
    }
    TablePrinter table(header, 10);
    table.PrintHeader();
    double ada_span = 0.0, interact_span = 0.0;
    for (const std::string& method : methods) {
      std::vector<std::string> cells = {method};
      std::vector<double> curve;
      for (double ratio : ratios) {
        ExperimentSpec spec;
        spec.dataset = dataset;
        spec.split = "noniid";
        spec.num_clients = 20;
        spec.fed = BenchFedConfig();
        spec.fed.rounds = std::max(8, spec.fed.rounds / 2);
        spec.fed.participation = ratio;
        const MeanStd acc = bench::RunCell(spec, method);
        curve.push_back(acc.mean);
        cells.push_back(FormatAccPct(acc));
      }
      const double span = curve.back() - curve.front();
      if (method == "AdaFGL") ada_span = span;
      if (method == "FedGL") interact_span = span;
      table.PrintRow(cells);
    }
    std::printf("[shape] accuracy lost at p=0.2: AdaFGL %.1f pp vs FedGL "
                "%.1f pp\n",
                100.0 * ada_span, 100.0 * interact_span);
  }
  return 0;
}
