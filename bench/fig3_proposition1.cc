/// Reproduces Fig. 3 / Proposition 1: "topological homophily attracts both
/// the global model and optima, while topological heterophily diverges
/// them." Two two-client federations share identical features and labels;
/// one client keeps homophilous topology in both, the other is homophilous
/// in federation A and heterophily-injected in federation B. We measure
/// the parameter distance between each client's local optimum (trained to
/// convergence alone) and the FedAvg global model.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "data/injection.h"
#include "data/synthetic.h"
#include "fed/federation.h"
#include "tensor/matrix_ops.h"

using namespace adafgl;

namespace {

double WeightDistance(const std::vector<Matrix>& a,
                      const std::vector<Matrix>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += FrobeniusDistanceSquared(a[i], b[i]);
  }
  return std::sqrt(acc);
}

std::vector<Matrix> LocalOptimum(const Graph& g, const FedConfig& cfg,
                                 const std::vector<Matrix>& init) {
  FedClient solo(g, cfg, 99);
  solo.SetGlobalWeights(init);
  solo.TrainEpochs(120);
  return solo.Weights();
}

}  // namespace

int main() {
  bench::PrintPreamble("Fig. 3 / Proposition 1",
                       "global model vs local optima under topology "
                       "variation");
  SbmParams p;
  p.num_nodes = 300;
  p.num_classes = 3;
  p.num_edges = 1200;
  p.edge_homophily = 0.9;
  p.feature_dim = 16;
  p.feature_signal = 0.5;
  p.train_frac = 0.3;
  p.val_frac = 0.2;
  Rng rng(5);
  Graph a = GenerateSbmGraph(p, rng);
  Graph b = GenerateSbmGraph(p, rng);

  FedConfig cfg;
  cfg.rounds = EnvInt("ADAFGL_ROUNDS", 20);
  cfg.local_epochs = 3;
  cfg.post_local_epochs = 0;
  cfg.hidden = 16;
  cfg.seed = 11;

  TablePrinter table({"Federation", "dist(c0 opt)", "dist(c1 opt)",
                      "acc(c0)", "acc(c1)", "global acc"},
                     13);
  table.PrintHeader();
  // Divergence is measured where it bites: the global model's accuracy on
  // the client whose topology was flipped (the parameter-space distance is
  // printed too, but is noisy under permutation/scale invariances).
  double homo_acc = 0.0, hete_acc = 0.0;
  for (const char* scenario : {"homo+homo", "homo+hete"}) {
    Graph b_used = b;
    if (scenario == std::string("homo+hete")) {
      Rng inj_rng(7);
      b_used = RandomInjection(b, InjectionType::kHeterophilous, 1.0,
                               inj_rng);
    }
    FederatedDataset fed;
    fed.clients = {a, b_used};
    fed.global_ids = {{}, {}};
    FedRunResult r = RunFedAvg(fed, cfg);
    const auto opt_a = LocalOptimum(a, cfg, r.global_weights);
    const auto opt_b = LocalOptimum(b_used, cfg, r.global_weights);
    const double da = WeightDistance(r.global_weights, opt_a);
    const double db = WeightDistance(r.global_weights, opt_b);
    if (scenario == std::string("homo+homo")) {
      homo_acc = r.client_test_acc[1];
    } else {
      hete_acc = r.client_test_acc[1];
    }
    char ca[32], cb[32], a0[32], a1[32], acc[32];
    std::snprintf(ca, sizeof(ca), "%.3f", da);
    std::snprintf(cb, sizeof(cb), "%.3f", db);
    std::snprintf(a0, sizeof(a0), "%.3f", r.client_test_acc[0]);
    std::snprintf(a1, sizeof(a1), "%.3f", r.client_test_acc[1]);
    std::snprintf(acc, sizeof(acc), "%.3f", r.final_test_acc);
    table.PrintRow({scenario, ca, cb, a0, a1, acc});
  }
  std::printf("[shape] global model accuracy on the flipped client: %.3f "
              "(homophilous) vs %.3f (heterophily-injected) — %s\n",
              homo_acc, hete_acc,
              hete_acc < homo_acc - 0.01 ? "confirms Proposition 1"
                                         : "NOT confirmed");
  return 0;
}
