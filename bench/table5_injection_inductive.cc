/// Reproduces Table V: inductive accuracy under the two structural
/// injection strategies (random vs meta) on Flickr and Reddit.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace adafgl;

int main() {
  bench::PrintPreamble("Table V",
                       "inductive accuracy under random vs meta injection");
  const std::vector<std::string> datasets = {"Flickr", "Reddit"};
  const std::vector<std::string> methods = {"FedGL", "GCFL+", "FedSage+",
                                            "FED-PUB", "AdaFGL"};
  TablePrinter table({"Method", "Flickr/Rand", "Flickr/Meta",
                      "Reddit/Rand", "Reddit/Meta"},
                     12);
  table.PrintHeader();
  std::vector<std::vector<double>> means(
      methods.size(), std::vector<double>(4, 0.0));
  std::vector<std::vector<std::string>> cells(
      methods.size(), std::vector<std::string>(4));
  for (size_t mi = 0; mi < methods.size(); ++mi) {
    size_t col = 0;
    for (const auto& dataset : datasets) {
      for (InjectionMode mode :
           {InjectionMode::kRandom, InjectionMode::kMeta}) {
        ExperimentSpec spec;
        spec.dataset = dataset;
        spec.split = "noniid";
        spec.injection = mode;
        spec.fed = BenchFedConfig();
        const MeanStd acc = bench::RunCell(spec, methods[mi]);
        means[mi][col] = acc.mean;
        cells[mi][col] = FormatAccPct(acc);
        ++col;
      }
    }
  }
  for (size_t col = 0; col < 4; ++col) {
    size_t best = 0;
    for (size_t mi = 1; mi < methods.size(); ++mi) {
      if (means[mi][col] > means[best][col]) best = mi;
    }
    cells[best][col] += "*";
  }
  for (size_t mi = 0; mi < methods.size(); ++mi) {
    table.PrintRow({methods[mi], cells[mi][0], cells[mi][1], cells[mi][2],
                    cells[mi][3]});
  }
  return 0;
}
