/// Micro-benchmarks of the observability layer: the disabled fast path
/// (one relaxed atomic load), enabled counter/histogram updates, span
/// begin/end, and event rendering.
///
/// Before the benchmark suite runs, main() measures the disabled
/// instrumentation path directly and aborts if it costs >= 5 ns/op — the
/// pinned budget that keeps `ADAFGL_METRICS` safe to leave compiled into
/// every kernel hot loop.
///
///   ./build/bench/micro_obs [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "obs/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace adafgl::obs {
namespace {

/// The exact pattern instrumented kernels use: gate on the knob, resolve
/// the instrument once, update it.
inline void GatedInc(int64_t n) {
  if (MetricsEnabled()) {
    static Counter* const c =
        MetricsRegistry::Global().GetCounter("micro.gated");
    c->Inc(n);
  }
}

void BM_DisabledGate(benchmark::State& state) {
  SetMetricsEnabled(false);
  int64_t i = 0;
  for (auto _ : state) {
    GatedInc(i);
    benchmark::DoNotOptimize(++i);
  }
}
BENCHMARK(BM_DisabledGate);

void BM_EnabledCounterInc(benchmark::State& state) {
  SetMetricsEnabled(true);
  Counter* const c = MetricsRegistry::Global().GetCounter("micro.counter");
  for (auto _ : state) {
    c->Inc();
  }
  SetMetricsEnabled(false);
  benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_EnabledCounterInc);

void BM_EnabledHistogramRecord(benchmark::State& state) {
  SetMetricsEnabled(true);
  Histogram* const h = MetricsRegistry::Global().GetHistogram(
      "micro.histogram", DefaultTimeBoundsNs());
  double v = 1.0;
  for (auto _ : state) {
    h->Record(v);
    v = v < 1e9 ? v * 3.0 : 1.0;
  }
  SetMetricsEnabled(false);
  benchmark::DoNotOptimize(h->count());
}
BENCHMARK(BM_EnabledHistogramRecord);

void BM_DisabledSpan(benchmark::State& state) {
  SetTraceEnabled(false);
  for (auto _ : state) {
    Span span("micro.disabled_span");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_DisabledSpan);

void BM_EnabledSpan(benchmark::State& state) {
  SetTraceEnabled(true);
  for (auto _ : state) {
    Span span("micro.enabled_span");
    benchmark::DoNotOptimize(&span);
  }
  SetTraceEnabled(false);
  ResetTraceForTest();
}
BENCHMARK(BM_EnabledSpan);

void BM_EventRender(benchmark::State& state) {
  for (auto _ : state) {
    Event e("micro.event");
    e.I64("round", 3).F64("loss", 0.5).Str("method", "FedAvg");
    benchmark::DoNotOptimize(e.Render());
  }
}
BENCHMARK(BM_EventRender);

/// Measures the disabled gate outside the benchmark harness and enforces
/// the pinned <5 ns/op budget. Returns the measured cost.
double MeasureDisabledGateNs() {
  SetMetricsEnabled(false);
  constexpr int64_t kIters = 50'000'000;
  // Warm the branch predictor and force the atomic into cache.
  for (int64_t i = 0; i < 1000; ++i) GatedInc(i);
  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < kIters; ++i) {
    GatedInc(i);
    asm volatile("" ::: "memory");  // The loop must survive optimization.
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return ns / static_cast<double>(kIters);
}

/// Same budget for the Span constructor/destructor with every knob off
/// (ADAFGL_PROFILE unset): one relaxed load in, one branch out.
double MeasureDisabledSpanNs() {
  SetMetricsEnabled(false);
  SetTraceEnabled(false);
  SetProfileEnabled(false);
  constexpr int64_t kIters = 50'000'000;
  for (int64_t i = 0; i < 1000; ++i) {
    Span span("micro.budget_span");
    asm volatile("" ::: "memory");
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < kIters; ++i) {
    Span span("micro.budget_span");
    asm volatile("" ::: "memory");
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return ns / static_cast<double>(kIters);
}

}  // namespace
}  // namespace adafgl::obs

int main(int argc, char** argv) {
  using namespace adafgl::obs;
  // Pinned budget: with the knobs off, instrumentation must stay under
  // 5 ns/op or it is not safe inside kernel hot loops. Skip when the
  // environment already enabled metrics (the measurement would be of the
  // enabled path).
  if (!MetricsEnabled()) {
    const double ns = MeasureDisabledGateNs();
    std::printf("disabled-gate cost: %.3f ns/op (budget 5.0)\n", ns);
    if (ns >= 5.0) {
      std::fprintf(stderr,
                   "FAIL: disabled instrumentation path costs %.3f ns/op "
                   "(>= 5 ns budget)\n",
                   ns);
      return 1;
    }
    const double span_ns = MeasureDisabledSpanNs();
    std::printf("disabled-span cost: %.3f ns/op (budget 5.0)\n", span_ns);
    if (span_ns >= 5.0) {
      std::fprintf(stderr,
                   "FAIL: disabled Span costs %.3f ns/op (>= 5 ns budget)\n",
                   span_ns);
      return 1;
    }
  } else {
    std::printf("ADAFGL_METRICS is set; skipping disabled-path assertion\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
