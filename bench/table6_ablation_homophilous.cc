/// Reproduces Table VI: ablation of AdaFGL components (K.P., T.F., L.M.,
/// L.T., HCS) on homophilous datasets (Computer, Reddit), both splits.
#include "ablation_common.h"

int main() {
  return adafgl::bench::RunAblationTable("Table VI", {"Computer", "Reddit"});
}
