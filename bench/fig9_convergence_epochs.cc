/// Reproduces Fig. 9: epoch-wise convergence including AdaFGL's Step-2
/// personalized phase — AdaFGL starts higher (it begins from the federated
/// knowledge extractor) and stabilises early, on Cora and Squirrel under
/// both splits.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/adafgl.h"

using namespace adafgl;

int main() {
  bench::PrintPreamble("Fig. 9",
                       "AdaFGL Step-2 epoch-wise convergence vs FedGCN "
                       "rounds");
  for (const std::string& dataset : {std::string("Cora"),
                                     std::string("Squirrel")}) {
    for (const char* split : {"community", "noniid"}) {
      std::printf("\n--- %s, %s split ---\n", dataset.c_str(), split);
      ExperimentSpec spec;
      spec.dataset = dataset;
      spec.split = split;
      spec.fed = BenchFedConfig();
      FederatedDataset data = PrepareFederatedDataset(spec, 1000);

      FedConfig cfg = spec.fed;
      cfg.seed = 43;
      FedRunResult gcn = RunFedAvg(data, cfg);
      std::printf("FedGCN rounds: ");
      for (const RoundRecord& rec : gcn.history) {
        std::printf(" %d:%.3f", rec.round, rec.test_acc);
      }
      std::printf("  final=%.3f\n", gcn.final_test_acc);

      AdaFglResult ada = RunAdaFgl(data, cfg, AdaFglOptions());
      std::printf("AdaFGL Step2 (every 5 personalized epochs): ");
      for (size_t e = 0; e < ada.step2_epoch_acc.size(); ++e) {
        std::printf(" %zu:%.3f", 5 * (e + 1), ada.step2_epoch_acc[e]);
      }
      std::printf("  final=%.3f\n", ada.final_test_acc);
      const double start = ada.step2_epoch_acc.empty()
                               ? 0.0
                               : ada.step2_epoch_acc.front();
      std::printf("[shape] AdaFGL initial personalized accuracy %.3f vs "
                  "FedGCN first-eval %.3f (higher start expected)\n",
                  start,
                  gcn.history.empty() ? 0.0 : gcn.history.front().test_acc);
    }
  }
  return 0;
}
