/// Reproduces Table I: the statistical profile of all 12 benchmark
/// datasets, printing the published statistics next to the synthetic
/// stand-in actually generated (nodes, edges, classes, measured edge
/// homophily, split sizes).
#include <cstdio>

#include "bench_util.h"
#include "data/registry.h"
#include "graph/metrics.h"

using namespace adafgl;

int main() {
  bench::PrintPreamble("Table I", "dataset statistics, paper vs generated");
  TablePrinter table({"Dataset", "paper n", "gen n", "gen m", "cls",
                      "E.Homo tgt", "E.Homo gen", "train/val/test", "task"},
                     11);
  table.PrintHeader();
  for (const DatasetSpec& spec : DatasetRegistry()) {
    Rng rng(7);
    Graph g = GenerateDataset(spec, rng);
    char paper_n[32], gen_n[32], gen_m[32], cls[16], tgt[16], got[16],
        split[32];
    std::snprintf(paper_n, sizeof(paper_n), "%d", spec.paper_nodes);
    std::snprintf(gen_n, sizeof(gen_n), "%d", g.num_nodes());
    std::snprintf(gen_m, sizeof(gen_m), "%lld",
                  static_cast<long long>(g.num_edges()));
    std::snprintf(cls, sizeof(cls), "%d", g.num_classes);
    std::snprintf(tgt, sizeof(tgt), "%.3f", spec.paper_edge_homophily);
    std::snprintf(got, sizeof(got), "%.3f", EdgeHomophily(g.adj, g.labels));
    std::snprintf(split, sizeof(split), "%zu/%zu/%zu",
                  g.train_nodes.size(), g.val_nodes.size(),
                  g.test_nodes.size());
    table.PrintRow({spec.name, paper_n, gen_n, gen_m, cls, tgt, got, split,
                    spec.inductive ? "Inductive" : "Transductive"});
  }
  return 0;
}
