#ifndef ADAFGL_BENCH_ABLATION_COMMON_H_
#define ADAFGL_BENCH_ABLATION_COMMON_H_

/// Shared driver for the Table VI / Table VII component ablations.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace adafgl {
namespace bench {

struct AblationRow {
  const char* module;
  const char* component;
  void (*apply)(AdaFglOptions*);
};

inline const AblationRow kAblationRows[] = {
    {"Homo.", "w/o K.P.",
     [](AdaFglOptions* o) { o->use_knowledge_preserving = false; }},
    {"Hete.", "w/o T.F.",
     [](AdaFglOptions* o) { o->use_topology_independent = false; }},
    {"Hete.", "w/o L.M.",
     [](AdaFglOptions* o) { o->use_learnable_message = false; }},
    {"Ada.", "w/o L.T.",
     [](AdaFglOptions* o) { o->use_local_topology = false; }},
    {"Ada.", "w/o HCS", [](AdaFglOptions* o) { o->use_hcs = false; }},
    {"AdaFGL", "-", [](AdaFglOptions*) {}},
};

/// Prints one ablation table (the paper's Tables VI/VII layout) and a
/// shape summary counting ablation cells that fall at or below full
/// AdaFGL.
inline int RunAblationTable(const char* table_name,
                            const std::vector<std::string>& datasets) {
  PrintPreamble(table_name, "AdaFGL component ablation");
  std::vector<std::string> header = {"Module", "Component"};
  for (const auto& d : datasets) {
    header.push_back(d + "/Com.");
    header.push_back(d + "/NonIID");
  }
  TablePrinter table(header, 14);
  table.PrintHeader();
  std::vector<std::vector<double>> all_means;
  for (const AblationRow& row : kAblationRows) {
    std::vector<std::string> cells = {row.module, row.component};
    std::vector<double> means;
    for (const auto& dataset : datasets) {
      for (const char* split : {"community", "noniid"}) {
        ExperimentSpec spec;
        spec.dataset = dataset;
        spec.split = split;
        spec.fed = BenchFedConfig();
        spec.fed.rounds = std::max(8, spec.fed.rounds / 2);
        AdaFglOptions opt;
          opt.personalized_epochs = 25;
        row.apply(&opt);
        const MeanStd acc = RunAdaFglCell(spec, opt);
        means.push_back(acc.mean);
        cells.push_back(FormatAccPct(acc));
      }
    }
    all_means.push_back(means);
    table.PrintRow(cells);
  }
  const std::vector<double>& full = all_means.back();
  int below = 0, total = 0;
  for (size_t r = 0; r + 1 < all_means.size(); ++r) {
    for (size_t c = 0; c < full.size(); ++c) {
      ++total;
      below += (all_means[r][c] <= full[c] + 1e-9);
    }
  }
  std::printf("[shape] %d/%d ablation cells at or below full AdaFGL\n",
              below, total);
  return 0;
}

}  // namespace bench
}  // namespace adafgl

#endif  // ADAFGL_BENCH_ABLATION_COMMON_H_
