/// Reproduces Fig. 5: predictive performance under varying degrees of
/// topology heterogeneity — the structure Non-iid injection ratio is swept
/// and each method's accuracy tracked. Shape checks: AdaFGL stays best at
/// every level and degrades most gracefully.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace adafgl;

int main() {
  bench::PrintPreamble("Fig. 5",
                       "accuracy vs injection ratio (topology "
                       "heterogeneity)");
  const std::vector<double> ratios = {0.0, 0.25, 0.5, 0.75, 1.0};
  const std::vector<std::string> methods = {"FedGCN", "FedGloGNN", "FedGL",
                                            "FED-PUB", "AdaFGL"};
  for (const std::string& dataset : {std::string("Computer"),
                                     std::string("Flickr")}) {
    std::printf("\n--- %s ---\n", dataset.c_str());
    std::vector<std::string> header = {"Method"};
    for (double r : ratios) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "r=%.2f", r);
      header.push_back(buf);
    }
    TablePrinter table(header, 10);
    table.PrintHeader();
    std::vector<double> ada_curve, best_other_curve(ratios.size(), 0.0);
    for (const std::string& method : methods) {
      std::vector<std::string> cells = {method};
      std::vector<double> curve;
      for (size_t ri = 0; ri < ratios.size(); ++ri) {
        ExperimentSpec spec;
        spec.dataset = dataset;
        spec.split = "noniid";
        spec.injection_ratio = ratios[ri];
        spec.fed = BenchFedConfig();
        spec.fed.rounds = std::max(8, spec.fed.rounds / 2);
        const MeanStd acc = bench::RunCell(spec, method);
        curve.push_back(acc.mean);
        cells.push_back(FormatAccPct(acc));
      }
      if (method == "AdaFGL") {
        ada_curve = curve;
      } else {
        for (size_t ri = 0; ri < curve.size(); ++ri) {
          best_other_curve[ri] = std::max(best_other_curve[ri], curve[ri]);
        }
      }
      table.PrintRow(cells);
    }
    int wins = 0;
    for (size_t ri = 0; ri < ratios.size(); ++ri) {
      wins += (ada_curve[ri] >= best_other_curve[ri]);
    }
    std::printf("[shape] AdaFGL best at %d/%zu heterogeneity levels; "
                "AdaFGL drop %.1f vs best-baseline drop %.1f (pp)\n",
                wins, ratios.size(),
                100.0 * (ada_curve.front() - ada_curve.back()),
                100.0 * (best_other_curve.front() - best_other_curve.back()));
  }
  return 0;
}
