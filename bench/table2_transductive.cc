/// Reproduces Table II: transductive test accuracy on the 10 transductive
/// datasets under community split and structure Non-iid split, for the
/// federated-GNN baselines, the FGL baselines, and AdaFGL.
///
/// Headline shape checks: AdaFGL first in every column; heterophilous GNNs
/// (FedGGCN/FedGloGNN) gain under structure Non-iid; AdaFGL's margin is
/// larger under structure Non-iid than under community split.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/registry.h"

using namespace adafgl;

int main() {
  bench::PrintPreamble("Table II",
                       "transductive accuracy under two simulation "
                       "strategies");
  std::vector<std::string> datasets;
  for (const DatasetSpec& spec : DatasetRegistry()) {
    if (!spec.inductive) datasets.push_back(spec.name);
  }
  const std::vector<std::string> methods = Table2Methods();

  for (const char* split : {"community", "noniid"}) {
    std::printf("\n--- %s split ---\n",
                split == std::string("community") ? "Community"
                                                  : "Structure Non-iid");
    std::vector<std::string> header = {"Method"};
    for (const auto& d : datasets) header.push_back(d);
    TablePrinter table(header, 10);
    table.PrintHeader();

    // Collect per-dataset columns so the best method can be starred.
    std::vector<std::vector<double>> means(
        methods.size(), std::vector<double>(datasets.size(), 0.0));
    std::vector<std::vector<std::string>> cells(
        methods.size(),
        std::vector<std::string>(datasets.size()));
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      for (size_t di = 0; di < datasets.size(); ++di) {
        ExperimentSpec spec;
        spec.dataset = datasets[di];
        spec.split = split;
        spec.fed = BenchFedConfig();
        const MeanStd acc = bench::RunCell(spec, methods[mi]);
        means[mi][di] = acc.mean;
        cells[mi][di] = FormatAccPct(acc);
      }
    }
    for (size_t di = 0; di < datasets.size(); ++di) {
      size_t best = 0;
      for (size_t mi = 1; mi < methods.size(); ++mi) {
        if (means[mi][di] > means[best][di]) best = mi;
      }
      cells[best][di] += "*";
    }
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      std::vector<std::string> row = {methods[mi]};
      row.insert(row.end(), cells[mi].begin(), cells[mi].end());
      table.PrintRow(row);
    }

    // Shape summary: AdaFGL vs best baseline, averaged over datasets.
    double ada = 0.0, best_base = 0.0;
    for (size_t di = 0; di < datasets.size(); ++di) {
      ada += means.back()[di];
      double b = 0.0;
      for (size_t mi = 0; mi + 1 < methods.size(); ++mi) {
        b = std::max(b, means[mi][di]);
      }
      best_base += b;
    }
    std::printf("[shape] AdaFGL mean %.2f%% vs best-baseline mean %.2f%% "
                "(margin %+.2f)\n",
                100.0 * ada / datasets.size(),
                100.0 * best_base / datasets.size(),
                100.0 * (ada - best_base) / datasets.size());
  }
  return 0;
}
