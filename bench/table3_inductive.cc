/// Reproduces Table III: inductive accuracy on Flickr and Reddit under both
/// simulation strategies (training restricted to the train-induced
/// subgraph, evaluation on unseen nodes).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace adafgl;

int main() {
  bench::PrintPreamble("Table III",
                       "inductive accuracy on Flickr/Reddit, two splits");
  const std::vector<std::string> datasets = {"Flickr", "Reddit"};
  const std::vector<std::string> methods = Table3Methods();
  for (const char* split : {"community", "noniid"}) {
    std::printf("\n--- %s split ---\n",
                split == std::string("community") ? "Community"
                                                  : "Structure Non-iid");
    TablePrinter table({"Method", "Flickr", "Reddit"}, 12);
    table.PrintHeader();
    std::vector<std::vector<double>> means(
        methods.size(), std::vector<double>(datasets.size(), 0.0));
    std::vector<std::vector<std::string>> cells(
        methods.size(), std::vector<std::string>(datasets.size()));
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      for (size_t di = 0; di < datasets.size(); ++di) {
        ExperimentSpec spec;
        spec.dataset = datasets[di];
        spec.split = split;
        spec.fed = BenchFedConfig();
        const MeanStd acc = bench::RunCell(spec, methods[mi]);
        means[mi][di] = acc.mean;
        cells[mi][di] = FormatAccPct(acc);
      }
    }
    for (size_t di = 0; di < datasets.size(); ++di) {
      size_t best = 0;
      for (size_t mi = 1; mi < methods.size(); ++mi) {
        if (means[mi][di] > means[best][di]) best = mi;
      }
      cells[best][di] += "*";
    }
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      table.PrintRow({methods[mi], cells[mi][0], cells[mi][1]});
    }
  }
  return 0;
}
