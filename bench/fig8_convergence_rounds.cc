/// Reproduces Fig. 8: convergence curves over federated communication
/// rounds under community split (upper) and structure Non-iid split
/// (lower), for representative methods on Cora and Chameleon.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace adafgl;

int main() {
  bench::PrintPreamble("Fig. 8",
                       "round-wise convergence under both splits");
  const std::vector<std::string> methods = {"FedGCN", "FedGloGNN", "FedGL",
                                            "FED-PUB"};
  for (const std::string& dataset : {std::string("Cora"),
                                     std::string("Chameleon")}) {
    for (const char* split : {"community", "noniid"}) {
      std::printf("\n--- %s, %s split (round: accuracy series) ---\n",
                  dataset.c_str(), split);
      ExperimentSpec spec;
      spec.dataset = dataset;
      spec.split = split;
      spec.fed = BenchFedConfig();
      spec.fed.eval_every = 2;
      FederatedDataset data = PrepareFederatedDataset(spec, 1000);
      for (const std::string& method : methods) {
        FedConfig cfg = spec.fed;
        cfg.seed = 41;
        FedRunResult r = RunAlgorithm(method, data, cfg);
        std::printf("%-10s", method.c_str());
        for (const RoundRecord& rec : r.history) {
          std::printf(" %d:%.3f", rec.round, rec.test_acc);
        }
        std::printf("  final=%.3f\n", r.final_test_acc);
      }
    }
  }
  return 0;
}
