/// Reproduces Table VII: ablation of AdaFGL components (K.P., T.F., L.M.,
/// L.T., HCS) on heterophilous datasets (arxiv-year, Flickr), both splits.
#include "ablation_common.h"

int main() {
  return adafgl::bench::RunAblationTable("Table VII",
                                         {"arxiv-year", "Flickr"});
}
