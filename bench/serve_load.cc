/// Closed-loop load generator for the online serving path (adafgl::serve):
/// trains AdaFGL on the bench workload, freezes the Step-2 predictions into
/// an embedding store, round-trips the store through the checkpoint wire
/// format, then drives the server with Zipfian-distributed queries from a
/// fixed worker count. Reports QPS and latency quantiles and records the
/// schema-v4 `serve` block in bench.json.
///
/// Knobs (all deterministic given a seed; wall-clock obviously is not):
///   ADAFGL_SERVE_THREADS   server worker threads        (default 2)
///   ADAFGL_SERVE_BATCH     micro-batch flush size       (default 16)
///   ADAFGL_SERVE_CACHE_MB  LRU result-cache budget      (default 8)
///   ADAFGL_SERVE_QUERIES   total queries to issue       (default 20000)
///   ADAFGL_SERVE_CLIENTS   closed-loop load workers     (default 4)
///
/// `serve_load --smoke` runs a small self-checked acceptance pass (no
/// rejected requests, finite p99, warm cache) and exits non-zero on
/// violation — the CI smoke gate.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/obs.h"
#include "serve/server.h"
#include "serve/store.h"
#include "tensor/rng.h"

using namespace adafgl;

namespace {

/// Zipfian sampler over [0, n) with exponent s, via a precomputed CDF and
/// binary search — exact, deterministic, and fast enough for a load loop.
class Zipf {
 public:
  Zipf(int64_t n, double s) : cdf_(static_cast<size_t>(n)) {
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[static_cast<size_t>(i)] = sum;
    }
    for (double& v : cdf_) v /= sum;
  }

  int64_t Sample(Rng& rng) const {
    const double u = rng.Uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int64_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// Store shape handed to the load loop (node counts per client).
struct StoreShape {
  int64_t total_nodes = 0;
  std::vector<int32_t> client_nodes;
};

struct LoadResult {
  int64_t issued = 0;
  int64_t failed = 0;
  double wall_seconds = 0.0;
};

/// Closed loop: `workers` threads each keep exactly one request in flight
/// (blocking Predict), drawing (client, node) from one Zipfian popularity
/// ranking over all nodes; odd draws additionally ask for ego-graph
/// smoothing. Per-worker Rng streams keep the query sequence independent
/// of scheduling.
LoadResult RunLoad(serve::Server& server, const StoreShape& shape,
                   int workers, int64_t total_queries, uint64_t seed) {
  const Zipf zipf(shape.total_nodes, 1.0);
  std::atomic<int64_t> remaining{total_queries};
  std::atomic<int64_t> failed{0};
  const int64_t t0 = obs::NowNs();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(seed + 17ULL * static_cast<uint64_t>(w));
      while (remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
        const int64_t pick = zipf.Sample(rng);
        serve::Query q;
        int64_t offset = pick;
        for (size_t c = 0; c < shape.client_nodes.size(); ++c) {
          if (offset < shape.client_nodes[c]) {
            q.client = static_cast<int32_t>(c);
            q.node = static_cast<int32_t>(offset);
            break;
          }
          offset -= shape.client_nodes[c];
        }
        q.smooth = (pick & 1) != 0;
        if (!server.Predict(q).ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  LoadResult r;
  r.issued = total_queries;
  r.failed = failed.load();
  r.wall_seconds = static_cast<double>(obs::NowNs() - t0) / 1e9;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::PrintPreamble("Serve load",
                       "online serving: Zipfian closed-loop QPS/latency");

  // --- Train + freeze. ---
  ExperimentSpec spec;
  spec.dataset = "Cora";
  spec.split = "noniid";
  spec.fed = BenchFedConfig();
  spec.fed.seed = 555;
  FederatedDataset data = PrepareFederatedDataset(spec, 1000);
  AdaFglOptions opts;
  opts.export_predictions = true;
  std::printf("training AdaFGL (%d clients) and freezing the store...\n",
              data.num_clients());
  const AdaFglResult trained = RunAdaFgl(data, spec.fed, opts);

  Result<serve::FrozenStore> frozen = serve::FreezeAdaFgl(trained);
  if (!frozen.ok()) {
    std::fprintf(stderr, "freeze failed: %s\n",
                 frozen.status().ToString().c_str());
    return 1;
  }
  // Exercise the persistence path: every served byte went through the
  // checkpoint wire format.
  Result<serve::FrozenStore> store =
      serve::DeserializeStore(serve::SerializeStore(*frozen));
  if (!store.ok()) {
    std::fprintf(stderr, "store round-trip failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  const int64_t store_bytes = store->payload_bytes();

  std::vector<CsrMatrix> adjacency;
  adjacency.reserve(static_cast<size_t>(data.num_clients()));
  for (const Graph& g : data.clients) adjacency.push_back(g.adj);

  StoreShape shape;
  shape.total_nodes = store->total_nodes();
  for (const serve::FrozenClient& c : store->clients) {
    shape.client_nodes.push_back(c.num_nodes);
  }

  // --- Serve. ---
  serve::ServeOptions serve_opts = serve::ServeOptionsFromEnv();
  if (std::getenv("ADAFGL_SERVE_THREADS") == nullptr) {
    serve_opts.threads = 2;
  }
  const int load_workers =
      std::max(1, EnvInt("ADAFGL_SERVE_CLIENTS", 4));
  const int64_t total_queries =
      smoke ? 2000 : std::max(1, EnvInt("ADAFGL_SERVE_QUERIES", 20000));

  Result<std::unique_ptr<serve::Server>> server = serve::Server::Create(
      std::move(*store), std::move(adjacency), serve_opts);
  if (!server.ok()) {
    std::fprintf(stderr, "server create failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  serve::Server& s = **server;

  std::printf("store: %d clients, %lld nodes, %s frozen\n", s.num_clients(),
              static_cast<long long>(shape.total_nodes),
              FormatBytes(store_bytes).c_str());
  std::printf("serve: threads=%d batch=%d cache=%dMB | load: workers=%d "
              "queries=%lld zipf(s=1.0)\n\n",
              serve_opts.threads, serve_opts.batch_size, serve_opts.cache_mb,
              load_workers, static_cast<long long>(total_queries));

  const LoadResult load =
      RunLoad(s, shape, load_workers, total_queries, /*seed=*/4242);
  const serve::ServeStats stats = s.Stats();
  const double qps =
      load.wall_seconds > 0.0
          ? static_cast<double>(stats.completed) / load.wall_seconds
          : 0.0;
  const double hit_rate =
      stats.cache_hits + stats.cache_misses > 0
          ? static_cast<double>(stats.cache_hits) /
                static_cast<double>(stats.cache_hits + stats.cache_misses)
          : 0.0;

  TablePrinter table({"metric", "value"}, 20);
  table.PrintHeader();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", qps);
  table.PrintRow({"qps", buf});
  std::snprintf(buf, sizeof(buf), "%.1f us", stats.p50_latency_ns / 1e3);
  table.PrintRow({"p50 latency", buf});
  std::snprintf(buf, sizeof(buf), "%.1f us", stats.p99_latency_ns / 1e3);
  table.PrintRow({"p99 latency", buf});
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * hit_rate);
  table.PrintRow({"cache hit rate", buf});
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(stats.batches));
  table.PrintRow({"micro-batches", buf});
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(stats.rejected));
  table.PrintRow({"rejected", buf});

  ServeSummary summary;
  summary.requests = stats.submitted;
  summary.completed = stats.completed;
  summary.rejected = stats.rejected;
  summary.batches = stats.batches;
  summary.cache_hits = stats.cache_hits;
  summary.cache_misses = stats.cache_misses;
  summary.qps = qps;
  summary.p50_latency_us = stats.p50_latency_ns / 1e3;
  summary.p99_latency_us = stats.p99_latency_ns / 1e3;
  summary.mean_latency_us = stats.mean_latency_ns / 1e3;
  summary.store_bytes = store_bytes;
  summary.threads = serve_opts.threads;
  summary.batch_size = serve_opts.batch_size;
  BenchReport::Global().SetServe(summary);

  // --- Acceptance: the served rows must be the Step-2 predictions. ---
  int64_t mismatches = 0;
  for (int32_t c = 0; c < s.num_clients() && c < 4; ++c) {
    const Matrix& direct = trained.client_predictions[static_cast<size_t>(c)];
    for (int32_t v = 0; v < direct.rows(); v += 7) {
      Result<serve::Prediction> p = s.Predict({c, v, /*smooth=*/false});
      if (!p.ok()) {
        ++mismatches;
        continue;
      }
      if (std::memcmp(p->probs.data(), direct.row(v),
                      static_cast<size_t>(direct.cols()) * sizeof(float)) !=
          0) {
        ++mismatches;
      }
    }
  }
  std::printf("\nbitwise check vs direct Step 2 inference: %s\n",
              mismatches == 0 ? "identical" : "MISMATCH");

  if (smoke) {
    bool ok = true;
    if (load.failed != 0 || stats.rejected != 0) {
      std::fprintf(stderr, "SMOKE FAIL: %lld failed, %lld rejected\n",
                   static_cast<long long>(load.failed),
                   static_cast<long long>(stats.rejected));
      ok = false;
    }
    if (!(stats.p99_latency_ns > 0.0) || !std::isfinite(stats.p99_latency_ns)) {
      std::fprintf(stderr, "SMOKE FAIL: p99 not positive-finite\n");
      ok = false;
    }
    if (stats.cache_hits <= 0) {
      std::fprintf(stderr, "SMOKE FAIL: cache never hit under Zipfian load\n");
      ok = false;
    }
    if (mismatches != 0) {
      std::fprintf(stderr, "SMOKE FAIL: served rows diverge from Step 2\n");
      ok = false;
    }
    std::printf("serve_load smoke: %s\n", ok ? "OK" : "FAIL");
    return ok ? 0 : 1;
  }
  return mismatches == 0 ? 0 : 1;
}
