#!/usr/bin/env python3
"""Diffs the two newest perf-trajectory files and gates regressions.

Scans a directory (default: the repo root) for BENCH_<seq>.json files
written by tools/bench_runner.sh, compares the highest-seq file (the
candidate) against the second-highest (the baseline), and exits non-zero
when any method regresses beyond the thresholds:

  wall_seconds       > +10%   (ADAFGL_BENCH_WALL_TOL overrides, fraction)
  peak_tensor_bytes  > +5%    (ADAFGL_BENCH_MEM_TOL overrides, fraction)

wall_seconds is gated only when both files carry the same host
fingerprint (bench_merge stamps CPU model + core count): absolute
timings from different machines are not comparable, so cross-host wall
deltas are reported as notes. peak_tensor_bytes is deterministic and
gated regardless. Methods present in only one file are reported but
never fail the gate (new benches come and go). With fewer than two trajectory files the gate
passes trivially — there is nothing to compare yet.

usage:
  bench_compare.py [DIR]          # gate newest vs second-newest
  bench_compare.py A.json B.json  # explicit baseline, candidate
  bench_compare.py --self-test    # verify the gate logic itself
"""
import copy
import glob
import json
import os
import re
import sys

WALL_TOL = float(os.environ.get("ADAFGL_BENCH_WALL_TOL", "0.10"))
MEM_TOL = float(os.environ.get("ADAFGL_BENCH_MEM_TOL", "0.05"))


def find_trajectory_files(root):
    """BENCH_<seq>.json files under root, sorted by seq ascending."""
    found = []
    for path in glob.glob(os.path.join(root, "BENCH_*.json")):
        m = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
        if m:
            found.append((int(m.group(1)), path))
    found.sort()
    return [path for _, path in found]


def compare(baseline, candidate):
    """Returns (regressions, notes): lists of human-readable lines."""
    regressions = []
    notes = []
    # Wall-clock is only comparable when both trajectory files were
    # recorded on the same machine (bench_merge stamps a host
    # fingerprint). Across hosts — or against pre-fingerprint files —
    # wall deltas are reported but not gated; deterministic quantities
    # (peak_tensor_bytes) are gated regardless.
    same_host = (
        baseline.get("host") is not None
        and baseline.get("host") == candidate.get("host")
    )
    if not same_host:
        notes.append(
            "  host fingerprint differs or is missing: "
            "wall_seconds reported, not gated"
        )
    base_methods = baseline.get("methods", {})
    cand_methods = candidate.get("methods", {})
    for name in sorted(set(base_methods) | set(cand_methods)):
        if name not in base_methods:
            notes.append(f"  {name}: new method (no baseline)")
            continue
        if name not in cand_methods:
            notes.append(f"  {name}: dropped from candidate")
            continue
        b, c = base_methods[name], cand_methods[name]
        checks = [
            ("wall_seconds", WALL_TOL, "s"),
            ("peak_tensor_bytes", MEM_TOL, "B"),
        ]
        for key, tol, unit in checks:
            bv, cv = b.get(key, 0), c.get(key, 0)
            if bv <= 0:
                continue
            ratio = (cv - bv) / bv
            gated = same_host or key != "wall_seconds"
            line = (
                f"  {name}.{key}: {bv:g}{unit} -> {cv:g}{unit} "
                f"({ratio:+.1%}, tol +{tol:.0%}"
                f"{'' if gated else ', cross-host: not gated'})"
            )
            if gated and ratio > tol:
                regressions.append(line)
            else:
                notes.append(line)
    # Serving summary (trajectory files merged from schema-v4 inputs):
    # informational only — serving QPS is machine-sensitive, so it is
    # reported but never gated.
    b_serve = baseline.get("serve", {})
    c_serve = candidate.get("serve", {})
    if c_serve.get("completed", 0) > 0:
        if b_serve.get("completed", 0) > 0:
            notes.append(
                f"  serve.qps: {b_serve.get('qps', 0):.0f} -> "
                f"{c_serve.get('qps', 0):.0f} (not gated)"
            )
            notes.append(
                f"  serve.p99_latency_us: "
                f"{b_serve.get('p99_latency_us', 0):.1f} -> "
                f"{c_serve.get('p99_latency_us', 0):.1f} (not gated)"
            )
        else:
            notes.append("  serve: new serving summary (no baseline)")
    return regressions, notes


def run_gate(baseline_path, candidate_path):
    with open(baseline_path, "r", encoding="utf-8") as f:
        baseline = json.load(f)
    with open(candidate_path, "r", encoding="utf-8") as f:
        candidate = json.load(f)
    print(f"bench_compare: {baseline_path} (baseline) vs "
          f"{candidate_path} (candidate)")
    regressions, notes = compare(baseline, candidate)
    for line in notes:
        print(line)
    if regressions:
        print("bench_compare: REGRESSIONS:")
        for line in regressions:
            print(line)
        return 1
    print("bench_compare: OK (no regression beyond thresholds)")
    return 0


def self_test():
    """Verifies the gate fails on injected regressions and passes otherwise."""
    base = {
        "schema_version": 1,
        "host": {"cpu": "test-cpu", "cores": 1},
        "methods": {
            "AdaFGL": {
                "wall_seconds": 10.0,
                "flops": 1000,
                "wire_bytes": 500,
                "peak_tensor_bytes": 1 << 20,
            },
            "FedGL": {
                "wall_seconds": 4.0,
                "flops": 400,
                "wire_bytes": 200,
                "peak_tensor_bytes": 1 << 19,
            },
        },
    }

    def check(label, mutate, want_fail):
        cand = copy.deepcopy(base)
        mutate(cand)
        regressions, _ = compare(base, cand)
        failed = bool(regressions)
        ok = failed == want_fail
        print(f"  self-test {label}: "
              f"{'FAIL-gate' if failed else 'pass-gate'} "
              f"({'expected' if ok else 'UNEXPECTED'})")
        return ok

    results = [
        check("identical", lambda c: None, want_fail=False),
        check(
            "wall -20% (improvement)",
            lambda c: c["methods"]["AdaFGL"].__setitem__(
                "wall_seconds", 8.0
            ),
            want_fail=False,
        ),
        check(
            "wall +8% (within tol)",
            lambda c: c["methods"]["AdaFGL"].__setitem__(
                "wall_seconds", 10.8
            ),
            want_fail=False,
        ),
        check(
            "wall +15% (injected regression)",
            lambda c: c["methods"]["AdaFGL"].__setitem__(
                "wall_seconds", 11.5
            ),
            want_fail=True,
        ),
        check(
            "peak mem +8% (injected regression)",
            lambda c: c["methods"]["FedGL"].__setitem__(
                "peak_tensor_bytes", int((1 << 19) * 1.08)
            ),
            want_fail=True,
        ),
        check(
            "method added",
            lambda c: c["methods"].__setitem__(
                "NewMethod", {"wall_seconds": 1.0}
            ),
            want_fail=False,
        ),
        check(
            "wall +15% on a different host (not gated)",
            lambda c: (
                c.__setitem__("host", {"cpu": "other-cpu", "cores": 8}),
                c["methods"]["AdaFGL"].__setitem__("wall_seconds", 11.5),
            ),
            want_fail=False,
        ),
        check(
            "peak mem +8% on a different host (still gated)",
            lambda c: (
                c.__setitem__("host", {"cpu": "other-cpu", "cores": 8}),
                c["methods"]["FedGL"].__setitem__(
                    "peak_tensor_bytes", int((1 << 19) * 1.08)
                ),
            ),
            want_fail=True,
        ),
    ]
    if all(results):
        print("bench_compare: self-test OK")
        return 0
    print("bench_compare: self-test FAILED")
    return 1


def main():
    args = sys.argv[1:]
    if args == ["--self-test"]:
        sys.exit(self_test())
    if len(args) == 2:
        sys.exit(run_gate(args[0], args[1]))
    root = args[0] if len(args) == 1 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..")
    files = find_trajectory_files(root)
    if len(files) < 2:
        print(f"bench_compare: {len(files)} trajectory file(s) in {root}; "
              "nothing to compare — OK")
        sys.exit(0)
    sys.exit(run_gate(files[-2], files[-1]))


if __name__ == "__main__":
    main()
