#!/usr/bin/env python3
"""Merges one or more bench.json documents into a perf-trajectory file.

Input: bench.json files (schema_version 2, 3 or 4, see
src/eval/bench_json.h) emitted by the bench binaries under
ADAFGL_METRICS=1. Output: one BENCH_<seq>.json document summarising
per-method cost:

```json
{
  "schema_version": 1,
  "seq": 1,
  "sources": ["Table VIII"],
  "knobs": {...},                    # from the first input
  "process": {"wall_seconds", "flops", "peak_tensor_bytes",
              "peak_rss_bytes", "allocs"},   # summed / maxed over inputs
  "methods": {
    "AdaFGL": {"wall_seconds", "flops", "wire_bytes",
               "peak_tensor_bytes", "runs"},
    ...
  },
  "serve": {...}   # schema-v4 serving summary, {} when no input has one
}
```

Schema v4 inputs may carry a `serve` block (the online-serving load
bench); the last input with non-zero serve.requests wins. v2/v3 inputs
(and v4 training benches, which emit an all-zero block) contribute
nothing, keeping the merger backward-compatible.

Per method, runs are aggregated: wall_seconds/flops/wire_bytes sum,
peak_tensor_bytes takes the max. tools/bench_runner.sh drives this;
tools/bench_compare.py diffs two trajectory files.

usage: bench_merge.py --seq N --out BENCH_0001.json bench1.json [...]
"""
import argparse
import json
import os
import platform
import re
import sys


def host_fingerprint():
    """Stable machine identity: CPU model + logical core count.

    bench_compare.py gates wall-clock only when baseline and candidate
    share this fingerprint — absolute timings recorded on different
    hosts/containers are not comparable, while byte counts are.
    """
    model = platform.machine()
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as f:
            m = re.search(r"^model name\s*:\s*(.+)$", f.read(), re.M)
        if m:
            model = m.group(1).strip()
    except OSError:
        pass
    return {"cpu": model, "cores": os.cpu_count() or 0}


def merge(docs):
    methods = {}
    process = {
        "wall_seconds": 0.0,
        "flops": 0,
        "peak_tensor_bytes": 0,
        "peak_rss_bytes": 0,
        "allocs": 0,
    }
    sources = []
    knobs = {}
    serve = {}
    for doc in docs:
        if doc.get("schema_version") not in (2, 3, 4):
            sys.exit(
                "bench_merge: expected bench.json schema_version 2, 3 or 4, "
                f"got {doc.get('schema_version')!r}"
            )
        doc_serve = doc.get("serve", {})
        if doc_serve.get("requests", 0) > 0:
            serve = doc_serve
        sources.append(doc.get("experiment", ""))
        if not knobs:
            knobs = doc.get("knobs", {})
        perf = doc.get("perf", {})
        process["wall_seconds"] += perf.get("wall_seconds", 0.0)
        process["flops"] += perf.get("flops", 0)
        process["allocs"] += perf.get("allocs", 0)
        for key in ("peak_tensor_bytes", "peak_rss_bytes"):
            process[key] = max(process[key], perf.get(key, 0))
        for run in doc.get("runs", []):
            m = methods.setdefault(
                run["method"],
                {
                    "wall_seconds": 0.0,
                    "flops": 0,
                    "wire_bytes": 0,
                    "peak_tensor_bytes": 0,
                    "runs": 0,
                },
            )
            m["wall_seconds"] += run.get("wall_seconds", 0.0)
            m["flops"] += run.get("flops", 0)
            m["wire_bytes"] += run.get("bytes_up", 0) + run.get(
                "bytes_down", 0
            )
            m["peak_tensor_bytes"] = max(
                m["peak_tensor_bytes"], run.get("peak_tensor_bytes", 0)
            )
            m["runs"] += 1
    if not methods:
        sys.exit("bench_merge: no runs[] entries found in the inputs")
    return {
        "schema_version": 1,
        "seq": None,  # filled by main
        "sources": sources,
        "knobs": knobs,
        "process": process,
        "methods": {k: methods[k] for k in sorted(methods)},
        "serve": serve,
        "host": host_fingerprint(),
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seq", type=int, required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument("inputs", nargs="+")
    args = parser.parse_args()

    docs = []
    for path in args.inputs:
        with open(path, "r", encoding="utf-8") as f:
            docs.append(json.load(f))
    doc = merge(docs)
    doc["seq"] = args.seq
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(
        f"bench_merge: wrote {args.out} "
        f"({len(doc['methods'])} methods from {len(docs)} input(s))"
    )


if __name__ == "__main__":
    main()
