#!/usr/bin/env bash
# Perf-trajectory runner: executes the pinned bench subset with metrics
# on, merges the emitted bench.json documents into the repo-root
# BENCH_<seq>.json (seq = 1 + highest existing), and runs
# tools/bench_compare.py against the previous trajectory file. One
# BENCH_<seq>.json per invocation accumulates a perf history of the repo
# (wall-clock, flops, wire bytes, peak tensor memory per method).
#
#   tools/bench_runner.sh                 # uses ./build (or $BUILD_DIR)
#   BUILD_DIR=build-rel tools/bench_runner.sh
#   OUT_DIR=/tmp/traj tools/bench_runner.sh   # write elsewhere (tests)
#
# The knobs are pinned so trajectory files are comparable run-to-run;
# absolute wall-clock still varies with the machine, which is why
# bench_compare.py gates on relative thresholds.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$root/build}"
outdir="${OUT_DIR:-$root}"
bin="$build/bench/table8_paradigm_summary"
kernels_bin="$build/bench/micro_kernels"
serve_bin="$build/bench/serve_load"

if [[ ! -x "$bin" || ! -x "$kernels_bin" || ! -x "$serve_bin" ]]; then
  echo "building table8_paradigm_summary + micro_kernels + serve_load..." >&2
  cmake -B "$build" -S "$root" >/dev/null
  cmake --build "$build" -j --target table8_paradigm_summary \
    --target micro_kernels --target serve_load >/dev/null
fi

# Next sequence number: 1 + the highest BENCH_<seq>.json present.
seq=0
shopt -s nullglob
for f in "$outdir"/BENCH_*.json; do
  base="$(basename "$f")"
  if [[ "$base" =~ ^BENCH_([0-9]+)\.json$ ]]; then
    n=$((10#${BASH_REMATCH[1]}))
    (( n > seq )) && seq=$n
  fi
done
shopt -u nullglob
seq=$((seq + 1))
out="$outdir/$(printf 'BENCH_%04d.json' "$seq")"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Pinned subset: table8 covers every paradigm (one run per method) and
# records per-run transport + perf. Small fixed knobs keep it quick.
echo "bench_runner: running table8 (pinned knobs, metrics on)..." >&2
ADAFGL_SEEDS=1 ADAFGL_ROUNDS=3 ADAFGL_EPOCHS=1 ADAFGL_POST_EPOCHS=2 \
  ADAFGL_METRICS=1 ADAFGL_BENCH_JSON="$tmp/table8.json" \
  "$bin" >"$tmp/table8.stdout" 2>"$tmp/table8.stderr"

if [[ ! -s "$tmp/table8.json" ]]; then
  echo "bench_runner: FAIL: table8 did not write bench.json" >&2
  cat "$tmp/table8.stderr" >&2
  exit 1
fi

# Parallel-kernel scaling suite (adafgl::par): fixed matmul/SpMM cases at
# 1/2/4 kernel threads, bitwise-checked against single-thread. The
# benchmark filter skips the google-benchmark section — the trajectory
# only wants the fixed suite.
echo "bench_runner: running micro_kernels scaling suite..." >&2
ADAFGL_MICRO_REPS=3 ADAFGL_BENCH_JSON="$tmp/kernels.json" \
  "$kernels_bin" --benchmark_filter=NoSuchBenchmark \
  >"$tmp/kernels.stdout" 2>"$tmp/kernels.stderr"

if [[ ! -s "$tmp/kernels.json" ]]; then
  echo "bench_runner: FAIL: micro_kernels did not write bench.json" >&2
  cat "$tmp/kernels.stderr" >&2
  exit 1
fi

# Online-serving closed loop (adafgl::serve): pinned train knobs + a
# pinned Zipfian load, recorded as the schema-v4 `serve` block. QPS and
# latency are machine-sensitive, so bench_compare reports them without
# gating.
echo "bench_runner: running serve_load (pinned Zipfian closed loop)..." >&2
ADAFGL_SEEDS=1 ADAFGL_ROUNDS=3 ADAFGL_EPOCHS=1 ADAFGL_POST_EPOCHS=2 \
  ADAFGL_SERVE_THREADS=2 ADAFGL_SERVE_QUERIES=20000 \
  ADAFGL_BENCH_JSON="$tmp/serve.json" \
  "$serve_bin" >"$tmp/serve.stdout" 2>"$tmp/serve.stderr"

if [[ ! -s "$tmp/serve.json" ]]; then
  echo "bench_runner: FAIL: serve_load did not write bench.json" >&2
  cat "$tmp/serve.stderr" >&2
  exit 1
fi

# table8 first: its pinned knobs label the trajectory file.
python3 "$root/tools/bench_merge.py" --seq "$seq" --out "$out" \
  "$tmp/table8.json" "$tmp/kernels.json" "$tmp/serve.json"

# Gate against the previous trajectory file (trivially OK when this is
# the first one).
python3 "$root/tools/bench_compare.py" "$outdir"
