#!/usr/bin/env bash
# Perf-trajectory runner: executes the pinned bench subset with metrics
# on, merges the emitted bench.json documents into the repo-root
# BENCH_<seq>.json (seq = 1 + highest existing), and runs
# tools/bench_compare.py against the previous trajectory file. One
# BENCH_<seq>.json per invocation accumulates a perf history of the repo
# (wall-clock, flops, wire bytes, peak tensor memory per method).
#
#   tools/bench_runner.sh                 # uses ./build (or $BUILD_DIR)
#   BUILD_DIR=build-rel tools/bench_runner.sh
#   OUT_DIR=/tmp/traj tools/bench_runner.sh   # write elsewhere (tests)
#
# The knobs are pinned so trajectory files are comparable run-to-run;
# absolute wall-clock still varies with the machine, which is why
# bench_compare.py gates on relative thresholds.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$root/build}"
outdir="${OUT_DIR:-$root}"
bin="$build/bench/table8_paradigm_summary"

if [[ ! -x "$bin" ]]; then
  echo "building table8_paradigm_summary..." >&2
  cmake -B "$build" -S "$root" >/dev/null
  cmake --build "$build" -j --target table8_paradigm_summary >/dev/null
fi

# Next sequence number: 1 + the highest BENCH_<seq>.json present.
seq=0
shopt -s nullglob
for f in "$outdir"/BENCH_*.json; do
  base="$(basename "$f")"
  if [[ "$base" =~ ^BENCH_([0-9]+)\.json$ ]]; then
    n=$((10#${BASH_REMATCH[1]}))
    (( n > seq )) && seq=$n
  fi
done
shopt -u nullglob
seq=$((seq + 1))
out="$outdir/$(printf 'BENCH_%04d.json' "$seq")"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Pinned subset: table8 covers every paradigm (one run per method) and
# records per-run transport + perf. Small fixed knobs keep it quick.
echo "bench_runner: running table8 (pinned knobs, metrics on)..." >&2
ADAFGL_SEEDS=1 ADAFGL_ROUNDS=3 ADAFGL_EPOCHS=1 ADAFGL_POST_EPOCHS=2 \
  ADAFGL_METRICS=1 ADAFGL_BENCH_JSON="$tmp/table8.json" \
  "$bin" >"$tmp/table8.stdout" 2>"$tmp/table8.stderr"

if [[ ! -s "$tmp/table8.json" ]]; then
  echo "bench_runner: FAIL: table8 did not write bench.json" >&2
  cat "$tmp/table8.stderr" >&2
  exit 1
fi

python3 "$root/tools/bench_merge.py" --seq "$seq" --out "$out" \
  "$tmp/table8.json"

# Gate against the previous trajectory file (trivially OK when this is
# the first one).
python3 "$root/tools/bench_compare.py" "$outdir"
