#!/usr/bin/env bash
# Runs the table8 bench with the bench.json sink enabled and checks that
# the emitted document's key schema matches the checked-in example
# (tools/bench_schema_example.json). A schema drift fails the script, so
# downstream consumers of bench.json notice breaking changes here first.
#
#   tools/bench_to_json.sh            # uses ./build (or $BUILD_DIR)
#   BUILD_DIR=build-tsan tools/bench_to_json.sh
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$root/build}"
bin="$build/bench/table8_paradigm_summary"

if [[ ! -x "$bin" ]]; then
  echo "building table8_paradigm_summary..." >&2
  cmake -B "$build" -S "$root" >/dev/null
  cmake --build "$build" -j --target table8_paradigm_summary >/dev/null
fi

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# Tiny knobs: the schema is knob-independent, so keep the run short.
ADAFGL_SEEDS=1 ADAFGL_ROUNDS=2 ADAFGL_EPOCHS=1 ADAFGL_POST_EPOCHS=1 \
  ADAFGL_BENCH_JSON="$out/bench.json" "$bin" >"$out/stdout.txt"

if [[ ! -s "$out/bench.json" ]]; then
  echo "FAIL: table8 did not write bench.json" >&2
  exit 1
fi

python3 "$root/tools/json_schema_keys.py" "$out/bench.json" \
  >"$out/schema.txt"
python3 "$root/tools/json_schema_keys.py" \
  "$root/tools/bench_schema_example.json" >"$out/expected.txt"

if ! diff -u "$out/expected.txt" "$out/schema.txt"; then
  echo "FAIL: bench.json schema drifted from tools/bench_schema_example.json" >&2
  exit 1
fi
echo "bench.json schema OK ($(wc -l <"$out/schema.txt") key paths)"
