#!/usr/bin/env python3
"""Prints the key schema of a JSON document.

One line per distinct key path, sorted; array elements collapse to "[]",
so documents with the same structure but different data produce identical
output. tools/bench_to_json.sh diffs this against the checked-in
bench_schema_example.json schema.
"""
import json
import sys


def walk(node, prefix, out):
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            out.add(path)
            walk(value, path, out)
    elif isinstance(node, list):
        for value in node:
            walk(value, prefix + "[]", out)


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} <file.json>")
    with open(sys.argv[1], "r", encoding="utf-8") as f:
        doc = json.load(f)
    paths = set()
    walk(doc, "", paths)
    print("\n".join(sorted(paths)))


if __name__ == "__main__":
    main()
